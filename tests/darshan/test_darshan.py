"""Tests for the Darshan substrate: counters, profiler, log, reader, DXT."""

import numpy as np
import pytest

from repro.benchmarks_io.ior import IORConfig, run_ior
from repro.darshan import (
    DarshanProfiler,
    DarshanReport,
    analyze_dxt,
    counters_for_module,
    default_log_name,
    read_log,
    size_bin_name,
    write_log,
)
from repro.iostack.stack import Testbed
from repro.iostack.tracing import TraceEvent
from repro.util.errors import DarshanError
from repro.util.units import KIB, MIB


class TestCounters:
    @pytest.mark.parametrize(
        "nbytes,expected",
        [(0, "0_100"), (99, "0_100"), (100, "100_1K"), (47008, "10K_100K"),
         (2 * MIB, "1M_4M"), (3 * 1024**3, "1G_PLUS")],
    )
    def test_size_bins(self, nbytes, expected):
        assert size_bin_name(nbytes) == expected

    def test_negative_size_rejected(self):
        with pytest.raises(DarshanError):
            size_bin_name(-1)

    def test_module_counter_sets(self):
        posix = counters_for_module("POSIX")
        assert "POSIX_WRITES" in posix and "POSIX_FSYNCS" in posix
        mpiio = counters_for_module("MPIIO")
        assert "MPIIO_COLL_WRITES" in mpiio
        with pytest.raises(DarshanError):
            counters_for_module("NCIO")


class TestProfiler:
    def test_record_single_events(self):
        prof = DarshanProfiler()
        prof.record(TraceEvent("POSIX", "create", 0, "/f", 0, 0, 0.0, 0.1))
        prof.record(TraceEvent("POSIX", "write", 0, "/f", 0, 1 * MIB, 0.1, 0.2))
        prof.record(TraceEvent("POSIX", "fsync", 0, "/f", 0, 0, 0.2, 0.21))
        log = prof.finalize(exe="app", nprocs=1, start_offset_s=0, end_offset_s=1)
        c = log.records[0].counters
        assert c["POSIX_OPENS"] == 1
        assert c["POSIX_WRITES"] == 1
        assert c["POSIX_BYTES_WRITTEN"] == 1 * MIB
        assert c["POSIX_FSYNCS"] == 1
        assert c["POSIX_SIZE_WRITE_1M_4M"] == 1

    def test_record_batch(self):
        prof = DarshanProfiler()
        prof.record_batch("POSIX", "write", 2, "/f", 0, 512 * KIB, np.full(8, 0.01), 0.0)
        log = prof.finalize(exe="app", nprocs=4, start_offset_s=0, end_offset_s=1)
        c = log.records[0].counters
        assert c["POSIX_WRITES"] == 8
        assert c["POSIX_BYTES_WRITTEN"] == 8 * 512 * KIB
        assert c["POSIX_MAX_BYTE_WRITTEN"] == 8 * 512 * KIB - 1
        assert c["POSIX_F_WRITE_TIME"] == pytest.approx(0.08)

    def test_mpiio_coll_vs_indep(self):
        prof = DarshanProfiler()
        prof.record_batch("MPIIO", "write_all", 0, "/f", 0, 1024, np.ones(3), 0.0)
        prof.record_batch("MPIIO", "write", 0, "/f", 0, 1024, np.ones(2), 0.0)
        log = prof.finalize(exe="x", nprocs=1, start_offset_s=0, end_offset_s=9)
        c = log.records[0].counters
        assert c["MPIIO_COLL_WRITES"] == 3
        assert c["MPIIO_INDEP_WRITES"] == 2

    def test_double_finalize_rejected(self):
        prof = DarshanProfiler()
        prof.finalize(exe="x", nprocs=1, start_offset_s=0, end_offset_s=1)
        with pytest.raises(DarshanError):
            prof.finalize(exe="x", nprocs=1, start_offset_s=0, end_offset_s=1)

    def test_dxt_segments_recorded(self):
        prof = DarshanProfiler(enable_dxt=True)
        prof.record_batch("POSIX", "write", 0, "/f", 0, 100, np.full(5, 0.1), 0.0)
        log = prof.finalize(exe="x", nprocs=1, start_offset_s=0, end_offset_s=1)
        segs = log.records[0].dxt_segments
        assert len(segs) == 5
        assert [s.offset for s in segs] == [0, 100, 200, 300, 400]
        assert all(s.end > s.start for s in segs)


class TestLogRoundTrip:
    def test_write_read(self, tmp_path):
        prof = DarshanProfiler(enable_dxt=True)
        prof.record_batch("POSIX", "write", 1, "/data", 0, 4096, np.full(3, 0.02), 1.0)
        log = prof.finalize(exe="ior", nprocs=8, start_offset_s=0.5, end_offset_s=3.5)
        path = write_log(log, tmp_path / "u_ior_id7.darshan")
        loaded = read_log(path)
        assert loaded.job["nprocs"] == 8
        assert loaded.records[0].counters == log.records[0].counters
        assert len(loaded.records[0].dxt_segments) == 3

    def test_missing_file(self, tmp_path):
        with pytest.raises(DarshanError):
            read_log(tmp_path / "nope.darshan")

    def test_bad_magic(self, tmp_path):
        import gzip, json

        p = tmp_path / "bad.darshan"
        with gzip.open(p, "wt") as fh:
            json.dump({"magic": "OTHER", "records": []}, fh)
        with pytest.raises(DarshanError):
            read_log(p)

    def test_corrupt_file(self, tmp_path):
        p = tmp_path / "corrupt.darshan"
        p.write_bytes(b"not gzip at all")
        with pytest.raises(DarshanError):
            read_log(p)

    def test_default_log_name(self):
        assert default_log_name("zhu", "/usr/bin/ior", 42) == "zhu_ior_id42.darshan"


@pytest.fixture(scope="module")
def instrumented_report(tmp_path_factory):
    tb = Testbed.fuchs_csc(seed=55)
    prof = DarshanProfiler(enable_dxt=True)
    cfg = IORConfig(
        api="MPIIO",
        block_size=4 * MIB,
        transfer_size=2 * MIB,
        segment_count=4,
        iterations=2,
        test_file="/scratch/dx/t",
        file_per_proc=True,
        keep_file=True,
    )
    res = run_ior(cfg, tb, num_nodes=1, tasks_per_node=8, tracer=prof)
    log = prof.finalize(exe="ior", nprocs=8, start_offset_s=0, end_offset_s=res.end_offset_s)
    path = write_log(log, tmp_path_factory.mktemp("darshan") / "u_ior_id1.darshan")
    return DarshanReport(path)


class TestReport:
    def test_modules(self, instrumented_report):
        assert instrumented_report.modules == ["MPIIO", "POSIX"]

    def test_totals_match_workload(self, instrumented_report):
        read_bytes, written_bytes = instrumented_report.total_bytes("POSIX")
        # 8 ranks x 2 iterations x 16 MiB each way.
        assert written_bytes == 8 * 2 * 16 * MIB
        assert read_bytes == 8 * 2 * 16 * MIB

    def test_counters_aggregate(self, instrumented_report):
        c = instrumented_report.counters("POSIX")
        assert c["POSIX_WRITES"] == 8 * 2 * 8
        assert c["POSIX_SIZE_WRITE_1M_4M"] == c["POSIX_WRITES"]

    def test_per_file(self, instrumented_report):
        per_file = instrumented_report.per_file("POSIX")
        assert len(per_file) == 8  # one file per rank

    def test_bandwidth_estimates_positive(self, instrumented_report):
        bw = instrumented_report.agg_bandwidth_mib("POSIX")
        assert bw["write_mib_s"] > 0 and bw["read_mib_s"] > 0

    def test_missing_module(self, instrumented_report):
        with pytest.raises(DarshanError):
            instrumented_report.counters("HDF5")

    def test_timeline_bins(self, instrumented_report):
        timeline = instrumented_report.timeline("POSIX", nbins=10)
        assert timeline.shape == (10,)
        assert timeline.sum() == pytest.approx(2 * 8 * 2 * 16 * MIB)


class TestDXTAnalysis:
    def test_analysis(self, instrumented_report):
        a = analyze_dxt(instrumented_report)
        assert len(a.ranks) == 8
        assert a.makespan > 0
        assert a.imbalance() >= 1.0
        assert a.stragglers(threshold=10.0) == []

    def test_requires_dxt(self):
        prof = DarshanProfiler(enable_dxt=False)
        prof.record_batch("POSIX", "write", 0, "/f", 0, 100, np.ones(2), 0.0)
        log = prof.finalize(exe="x", nprocs=1, start_offset_s=0, end_offset_s=1)
        with pytest.raises(DarshanError):
            analyze_dxt(DarshanReport(log))
