"""Tests for the cross-layer correlation analysis."""

import pytest

from repro.benchmarks_io.ior import IORConfig, run_ior
from repro.darshan import DarshanProfiler, DarshanReport, layer_breakdown
from repro.iostack.stack import Testbed
from repro.util.errors import DarshanError
from repro.util.units import MIB


def _profiled(api):
    tb = Testbed.fuchs_csc(seed=44)
    prof = DarshanProfiler()
    cfg = IORConfig(api=api, block_size=4 * MIB, transfer_size=1 * MIB,
                    segment_count=2, iterations=1, test_file=f"/scratch/lb/{api}",
                    file_per_proc=True, keep_file=True)
    res = run_ior(cfg, tb, 1, 4, tracer=prof)
    return DarshanReport(prof.finalize("ior", 4, 0, res.end_offset_s))


class TestLayerBreakdown:
    def test_hdf5_stack_ordering(self):
        b = layer_breakdown(_profiled("HDF5"))
        assert set(b.layer_times_s) == {"POSIX", "MPIIO", "HDF5"}
        # MPI-IO wraps every POSIX op, so its cumulative time dominates.
        assert b.layer_times_s["MPIIO"] >= b.layer_times_s["POSIX"]
        # H5D counts dataset ops only — library metadata I/O surfaces
        # below it (as in real Darshan), so it can be smaller than
        # MPI-IO but must stay in the same ballpark.
        assert b.layer_times_s["HDF5"] >= 0.8 * b.layer_times_s["MPIIO"]
        assert b.overheads_s["mpiio-over-posix"] >= 0
        assert b.overheads_s["software-over-posix"] >= b.overheads_s["mpiio-over-posix"]

    def test_posix_dominates(self):
        # The storage system, not the software, should dominate.
        b = layer_breakdown(_profiled("HDF5"))
        assert b.posix_fraction > 0.8

    def test_posix_only_run(self):
        b = layer_breakdown(_profiled("POSIX"))
        assert set(b.layer_times_s) == {"POSIX"}
        assert b.overheads_s == {"software-over-posix": 0.0}
        assert b.posix_fraction == pytest.approx(1.0)

    def test_bytes_accounted(self):
        b = layer_breakdown(_profiled("MPIIO"))
        assert b.bytes_moved == 2 * 4 * 8 * MIB  # write+read x 4 ranks x 8 MiB

    def test_render(self):
        text = layer_breakdown(_profiled("MPIIO")).render()
        assert "POSIX" in text and "mpiio-over-posix" in text

    def test_requires_posix(self):
        prof = DarshanProfiler()
        import numpy as np

        prof.record_batch("MPIIO", "write", 0, "/f", 0, 1024, np.ones(2), 0.0)
        report = DarshanReport(prof.finalize("x", 1, 0, 1))
        with pytest.raises(DarshanError):
            layer_breakdown(report)
