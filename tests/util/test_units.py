"""Unit tests for size/duration parsing and formatting."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.errors import UnitParseError
from repro.util.units import (
    GIB,
    KIB,
    MIB,
    TIB,
    format_bandwidth,
    format_size,
    parse_duration,
    parse_size,
    to_gib,
    to_mib,
)


class TestParseSize:
    def test_plain_integer(self):
        assert parse_size("47008") == 47008

    def test_int_passthrough(self):
        assert parse_size(1024) == 1024

    def test_float_truncates(self):
        assert parse_size(2.9) == 2

    @pytest.mark.parametrize(
        "text,expected",
        [
            ("4m", 4 * MIB),
            ("2M", 2 * MIB),
            ("4MiB", 4 * MIB),
            ("1g", GIB),
            ("512k", 512 * KIB),
            ("512K", 512 * KIB),
            ("1.5m", int(1.5 * MIB)),
            ("16b", 16),
            ("1t", 1024 * GIB),
            (" 8 m ", 8 * MIB),
        ],
    )
    def test_suffixes(self, text, expected):
        assert parse_size(text) == expected

    @pytest.mark.parametrize("bad", ["", "x", "4x", "m4", "-4m", "4 4m", "nan"])
    def test_rejects_garbage(self, bad):
        with pytest.raises(UnitParseError):
            parse_size(bad)

    def test_rejects_negative_number(self):
        with pytest.raises(UnitParseError):
            parse_size(-5)

    def test_rejects_bool(self):
        with pytest.raises(UnitParseError):
            parse_size(True)

    def test_rejects_nan_float(self):
        with pytest.raises(UnitParseError):
            parse_size(float("nan"))


class TestFormatSize:
    def test_exact_mib(self):
        assert format_size(4 * MIB) == "4 MiB"

    def test_fractional(self):
        assert format_size(int(1.5 * GIB)) == "1.50 GiB"

    def test_bytes(self):
        assert format_size(100) == "100 bytes"

    def test_negative(self):
        assert format_size(-2 * MIB) == "-2 MiB"

    def test_zero(self):
        assert format_size(0) == "0 bytes"


class TestRoundTrip:
    @given(st.integers(min_value=0, max_value=2**50))
    def test_parse_int_is_identity(self, n):
        assert parse_size(str(n)) == n

    @given(st.integers(min_value=1, max_value=2**20))
    def test_mib_round_trip(self, n):
        assert parse_size(f"{n}m") == n * MIB

    @given(st.integers(min_value=0, max_value=2**50))
    def test_format_parse_round_trip_on_exact_units(self, n):
        # Only exact multiples render without decimals; those must round-trip.
        text = format_size(n)
        value, unit = text.split(" ")
        if "." not in value:
            assert parse_size(value + {"bytes": "", "KiB": "k", "MiB": "m", "GiB": "g", "TiB": "t"}[unit]) == n

    @given(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=0, max_value=999),
        st.sampled_from(["k", "m", "g", "t"]),
    )
    def test_fractional_suffix_truncates_toward_zero(self, whole, frac, suffix):
        # "1.5g" means int(1.5 * GiB): the fractional product is
        # *truncated*, never rounded — documented parse_size behaviour.
        text = f"{whole}.{frac:03d}{suffix}"
        unit = {"k": KIB, "m": MIB, "g": GIB, "t": TIB}[suffix]
        expected = int(float(f"{whole}.{frac:03d}") * unit)
        got = parse_size(text)
        assert got == expected
        assert got <= float(f"{whole}.{frac:03d}") * unit  # truncation, not rounding

    def test_truncation_shown_on_half_gib(self):
        # 1.5 GiB is exact, but sub-byte fractions drop: 0.0000000001g
        # is less than one byte and truncates to zero.
        assert parse_size("1.5g") == int(1.5 * GIB) == 3 * GIB // 2
        assert parse_size("0.0000000001g") == 0

    @given(st.integers(min_value=1, max_value=2**40))
    def test_format_parse_round_trip_within_precision(self, n):
        # Fractional renderings ("1.50 GiB") lose sub-precision detail;
        # re-parsing must land within half a least-significant digit of
        # the rendered unit (and exact renderings round-trip exactly).
        text = format_size(n)
        value, unit = text.split(" ")
        suffix = {"bytes": "", "KiB": "k", "MiB": "m", "GiB": "g", "TiB": "t"}[unit]
        reparsed = parse_size(value + suffix)
        unit_bytes = {"": 1, "k": KIB, "m": MIB, "g": GIB, "t": TIB}[suffix]
        tolerance = unit_bytes * 10.0**-2 / 2 + 1  # precision=2 decimals (+1 for truncation)
        assert abs(reparsed - n) <= tolerance


class TestConversions:
    def test_to_mib(self):
        assert to_mib(3 * MIB) == 3.0

    def test_to_gib(self):
        assert to_gib(GIB // 2) == 0.5

    def test_format_bandwidth(self):
        assert format_bandwidth(2850.5 * MIB) == "2850.50 MiB/s"


class TestParseDuration:
    @pytest.mark.parametrize(
        "text,expected",
        [("250ms", 0.25), ("2m", 120.0), ("1.5h", 5400.0), ("10", 10.0), ("3us", 3e-6)],
    )
    def test_valid(self, text, expected):
        assert math.isclose(parse_duration(text), expected)

    def test_numeric_passthrough(self):
        assert parse_duration(5) == 5.0

    @pytest.mark.parametrize("bad", ["", "abc", "-3s", "1d"])
    def test_rejects_garbage(self, bad):
        with pytest.raises(UnitParseError):
            parse_duration(bad)
