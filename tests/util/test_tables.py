"""Tests for monospace table rendering."""

import pytest

from repro.util.tables import render_kv, render_table


class TestRenderTable:
    def test_alignment(self):
        out = render_table(["name", "bw"], [["write", 2850.0], ["read", 3170.25]])
        lines = out.splitlines()
        assert lines[0].startswith("name")
        assert "2850.00" in out and "3170.25" in out
        # numeric column right-aligned: shorter number is padded left
        assert lines[2].endswith("2850.00")

    def test_none_renders_dash(self):
        out = render_table(["a"], [[None]])
        assert "-" in out.splitlines()[2]

    def test_bool_renders_yes_no(self):
        out = render_table(["flag"], [[True], [False]])
        assert "yes" in out and "no" in out

    def test_ragged_row_rejected(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])

    def test_empty_rows_ok(self):
        out = render_table(["a", "b"], [])
        assert len(out.splitlines()) == 2

    def test_custom_float_format(self):
        out = render_table(["x"], [[1.23456]], float_fmt=".4f")
        assert "1.2346" in out


class TestRenderKV:
    def test_alignment(self):
        out = render_kv({"api": "MPIIO", "blockSize": 4194304})
        lines = out.splitlines()
        assert len(lines) == 2
        assert all(" : " in ln for ln in lines)
        assert lines[0].index(":") == lines[1].index(":")

    def test_empty(self):
        assert render_kv({}) == ""

    def test_accepts_pairs(self):
        out = render_kv([("k", 1)])
        assert "k" in out and "1" in out
