"""Tests for deterministic RNG stream derivation."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.rng import choice_without_replacement, derive_seed, lognormal_factor, stream


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "ior", 1) == derive_seed(42, "ior", 1)

    def test_key_sensitivity(self):
        assert derive_seed(42, "ior", 1) != derive_seed(42, "ior", 2)

    def test_root_sensitivity(self):
        assert derive_seed(42, "x") != derive_seed(43, "x")

    def test_order_sensitivity(self):
        assert derive_seed(42, "a", "b") != derive_seed(42, "b", "a")

    @given(st.integers(min_value=0, max_value=2**31), st.text(max_size=20))
    def test_fits_in_63_bits(self, root, key):
        assert 0 <= derive_seed(root, key) < 2**63


class TestStream:
    def test_same_key_same_draws(self):
        a = stream(7, "phase", 3).random(5)
        b = stream(7, "phase", 3).random(5)
        assert np.array_equal(a, b)

    def test_different_key_different_draws(self):
        a = stream(7, "phase", 3).random(5)
        b = stream(7, "phase", 4).random(5)
        assert not np.array_equal(a, b)


class TestLognormalFactor:
    def test_zero_sigma_scalar(self):
        assert lognormal_factor(stream(1, "x"), 0.0) == 1.0

    def test_zero_sigma_vector(self):
        assert np.array_equal(lognormal_factor(stream(1, "x"), 0.0, 4), np.ones(4))

    def test_positive(self):
        draws = lognormal_factor(stream(1, "x"), 0.3, 1000)
        assert (draws > 0).all()

    def test_unit_median(self):
        draws = lognormal_factor(stream(1, "x"), 0.2, 20000)
        assert abs(np.median(draws) - 1.0) < 0.02

    def test_negative_sigma_rejected(self):
        with pytest.raises(ValueError):
            lognormal_factor(stream(1, "x"), -0.1)


class TestChoice:
    def test_distinct(self):
        picked = choice_without_replacement(stream(1, "c"), range(10), 5)
        assert len(set(picked)) == 5

    def test_too_many_raises(self):
        with pytest.raises(ValueError):
            choice_without_replacement(stream(1, "c"), range(3), 4)
