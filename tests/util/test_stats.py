"""Unit and property tests for the shared statistics helpers."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.stats import (
    boxplot_stats,
    geomean,
    iqr_outliers,
    summarize,
    zscores,
)

finite_floats = st.floats(
    min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False
)


class TestSummarize:
    def test_simple_series(self):
        s = summarize([1.0, 2.0, 3.0])
        assert s.count == 3
        assert s.minimum == 1.0
        assert s.maximum == 3.0
        assert s.mean == 2.0
        assert math.isclose(s.stddev, math.sqrt(2 / 3))

    def test_single_value(self):
        s = summarize([5.0])
        assert s.minimum == s.maximum == s.mean == 5.0
        assert s.stddev == 0.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_as_dict_keys(self):
        assert set(summarize([1.0]).as_dict()) == {"count", "max", "min", "mean", "stddev"}

    @given(st.lists(finite_floats, min_size=1, max_size=50))
    def test_invariants(self, values):
        s = summarize(values)
        tol = 1e-9 * max(1.0, abs(s.minimum), abs(s.maximum))
        assert s.minimum - tol <= s.mean <= s.maximum + tol
        assert s.stddev >= 0
        assert s.count == len(values)

    @given(st.lists(finite_floats, min_size=1, max_size=50))
    def test_matches_numpy(self, values):
        s = summarize(values)
        assert math.isclose(s.mean, float(np.mean(values)), abs_tol=1e-9)


class TestGeomean:
    def test_known_value(self):
        assert math.isclose(geomean([1.0, 4.0]), 2.0)

    def test_single(self):
        assert math.isclose(geomean([7.0]), 7.0)

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            geomean([1.0, -2.0])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            geomean([])

    @given(st.lists(st.floats(min_value=1e-3, max_value=1e6), min_size=1, max_size=30))
    def test_between_min_and_max(self, values):
        g = geomean(values)
        tol = 1e-9 * max(1.0, max(values))  # exp/log round-trip error scales with magnitude
        assert min(values) - tol <= g <= max(values) + tol

    @given(
        st.lists(st.floats(min_value=1e-3, max_value=1e6), min_size=1, max_size=10),
        st.floats(min_value=1.1, max_value=10),
    )
    def test_monotone_under_scaling(self, values, factor):
        assert geomean([v * factor for v in values]) > geomean(values)


class TestBoxplot:
    def test_five_numbers(self):
        b = boxplot_stats([1, 2, 3, 4, 5])
        assert b.minimum == 1 and b.maximum == 5
        assert b.median == 3
        assert b.q1 == 2 and b.q3 == 4

    def test_outlier_detected(self):
        values = [10.0] * 10 + [100.0]
        b = boxplot_stats(values)
        assert 100.0 in b.outliers
        assert b.whisker_high == 10.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            boxplot_stats([])

    @given(st.lists(finite_floats, min_size=1, max_size=60))
    def test_ordering_invariants(self, values):
        b = boxplot_stats(values)
        assert b.minimum <= b.q1 <= b.median <= b.q3 <= b.maximum
        assert b.minimum <= b.whisker_low <= b.whisker_high <= b.maximum
        assert b.iqr >= 0
        assert len(b.outliers) <= len(values)
        # Outliers lie strictly outside the whisker range.
        for o in b.outliers:
            assert o < b.whisker_low or o > b.whisker_high


class TestOutliersAndZscores:
    def test_iqr_outliers_flags_dip(self):
        # The Fig. 5 situation: 5 healthy iterations and one collapsed one.
        series = [2850, 1251, 2840, 2860, 2855, 2845]
        assert iqr_outliers(series) == [1]

    def test_no_outliers_in_tight_series(self):
        assert iqr_outliers([10.0, 10.1, 9.9, 10.05]) == []

    def test_empty(self):
        assert iqr_outliers([]) == []

    def test_zscores_constant_series(self):
        assert np.allclose(zscores([5, 5, 5]), 0)

    def test_zscores_mean_zero(self):
        z = zscores([1.0, 2.0, 3.0, 4.0])
        assert math.isclose(float(z.mean()), 0.0, abs_tol=1e-12)

    @given(st.lists(finite_floats, min_size=2, max_size=40))
    def test_zscores_shape(self, values):
        assert zscores(values).shape == (len(values),)
