"""Tests for the simulated MPI runtime."""

import math

import numpy as np
import pytest

from repro.cluster.slurm import Allocation
from repro.mpi.collective import barrier_cost_s, bcast_cost_s, exchange_cost_s, gather_cost_s
from repro.mpi.comm import Communicator
from repro.mpi.hints import MPIIOHints
from repro.util.errors import ConfigurationError, MPIError


def make_comm(nodes=2, tpn=4):
    return Communicator(
        Allocation(job_id=1, node_indices=tuple(range(nodes)), tasks_per_node=tpn)
    )


class TestCollectiveCosts:
    def test_barrier_single_rank_free(self):
        assert barrier_cost_s(1, 1e-6) == 0.0

    def test_barrier_log_scaling(self):
        assert barrier_cost_s(8, 1e-6) == pytest.approx(3e-6)
        assert barrier_cost_s(9, 1e-6) == pytest.approx(4e-6)

    def test_bcast_grows_with_size(self):
        assert bcast_cost_s(8, 1 << 20, 1e-6, 1e9) > bcast_cost_s(8, 1 << 10, 1e-6, 1e9)

    def test_gather_root_receives_all(self):
        cost = gather_cost_s(4, 100, 0.0, 1e3)
        assert cost == pytest.approx(300 / 1e3)

    def test_exchange_zero_bytes_free(self):
        assert exchange_cost_s(8, 2, 0, 1e-6, 1e9) == 0.0

    def test_exchange_more_aggregators_faster(self):
        slow = exchange_cost_s(16, 1, 1 << 26, 1e-6, 1e9)
        fast = exchange_cost_s(16, 8, 1 << 26, 1e-6, 1e9)
        assert fast < slow

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            barrier_cost_s(0, 1e-6)
        with pytest.raises(ConfigurationError):
            bcast_cost_s(4, -1, 1e-6, 1e9)
        with pytest.raises(ConfigurationError):
            exchange_cost_s(4, 0, 10, 1e-6, 1e9)


class TestCommunicator:
    def test_size_and_node_mapping(self):
        comm = make_comm(nodes=2, tpn=4)
        assert comm.size == 8
        assert comm.node_of(0) == 0
        assert comm.node_of(7) == 1

    def test_advance_and_barrier(self):
        comm = make_comm()
        comm.advance(0, 5.0)
        comm.advance(1, 2.0)
        t = comm.barrier()
        assert t >= 5.0
        assert all(comm.now(r) == t for r in comm.ranks())

    def test_advance_all_vectorized(self):
        comm = make_comm(nodes=1, tpn=4)
        comm.advance_all(np.array([1.0, 2.0, 3.0, 4.0]))
        assert comm.max_time() == 4.0

    def test_advance_all_shape_check(self):
        comm = make_comm(nodes=1, tpn=4)
        with pytest.raises(MPIError):
            comm.advance_all(np.ones(3))

    def test_negative_advance_rejected(self):
        comm = make_comm()
        with pytest.raises(MPIError):
            comm.advance(0, -1.0)

    def test_bad_rank(self):
        comm = make_comm()
        with pytest.raises(MPIError):
            comm.now(99)

    def test_elapsed_since(self):
        comm = make_comm()
        t0 = comm.barrier()
        comm.advance(3, 2.5)
        assert math.isclose(comm.elapsed_since(t0), 2.5)

    def test_set_all(self):
        comm = make_comm()
        comm.set_all(10.0)
        assert comm.max_time() == 10.0
        with pytest.raises(MPIError):
            comm.set_all(-1.0)


class TestHints:
    def test_defaults_automatic(self):
        h = MPIIOHints()
        assert h.collective_enabled("write", shared_file=True)
        assert not h.collective_enabled("write", shared_file=False)

    def test_explicit_enable_disable(self):
        assert MPIIOHints(romio_cb_write="enable").collective_enabled("write", False)
        assert not MPIIOHints(romio_cb_write="disable").collective_enabled("write", True)

    def test_read_write_independent(self):
        h = MPIIOHints(romio_cb_write="disable", romio_cb_read="enable")
        assert not h.collective_enabled("write", True)
        assert h.collective_enabled("read", False)

    def test_aggregators_default_per_node(self):
        assert MPIIOHints().aggregators(4) == 4
        assert MPIIOHints(cb_nodes=2).aggregators(4) == 2

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            MPIIOHints(romio_cb_write="yes")
        with pytest.raises(ConfigurationError):
            MPIIOHints(cb_buffer_size=0)

    def test_as_dict_round_trip(self):
        d = MPIIOHints(cb_nodes=2).as_dict()
        assert d["cb_nodes"] == 2
        assert MPIIOHints(**d) == MPIIOHints(cb_nodes=2)
