"""Tests for the /proc provider and the system-info round trip."""

import pytest

from repro.cluster.machine import make_cluster
from repro.cluster.node import NodeSpec
from repro.cluster.procfs import ProcFS, render_cpuinfo, render_meminfo
from repro.cluster.sysinfo import collect_system_info, parse_cpuinfo, parse_meminfo
from repro.util.errors import ExtractionError


class TestRender:
    def test_cpuinfo_has_one_stanza_per_core(self):
        spec = NodeSpec()
        text = render_cpuinfo(spec)
        assert text.count("processor\t:") == spec.cores

    def test_cpuinfo_fields(self):
        text = render_cpuinfo(NodeSpec())
        assert "model name" in text and "cpu MHz" in text and "cache size" in text

    def test_meminfo_total(self):
        spec = NodeSpec()
        text = render_meminfo(spec)
        assert f"MemTotal:       {spec.memory_kib} kB" in text

    def test_procfs_unknown_path(self):
        with pytest.raises(FileNotFoundError):
            ProcFS(NodeSpec()).read("/proc/version")


class TestParse:
    def test_round_trip_cores(self):
        spec = NodeSpec()
        parsed = parse_cpuinfo(render_cpuinfo(spec))
        assert parsed["processor_cores"] == spec.cores
        assert parsed["processor_mhz"] == spec.cpu.frequency_mhz
        assert parsed["cache_size_bytes"] == spec.cpu.cache_size_bytes

    def test_round_trip_memory(self):
        spec = NodeSpec()
        assert parse_meminfo(render_meminfo(spec))["memory_bytes"] == spec.memory_bytes

    def test_rejects_empty_cpuinfo(self):
        with pytest.raises(ExtractionError):
            parse_cpuinfo("garbage")

    def test_rejects_empty_meminfo(self):
        with pytest.raises(ExtractionError):
            parse_meminfo("garbage")


class TestCollect:
    def test_collect_fuchs(self):
        si = collect_system_info(make_cluster())
        assert si.system_name == "FUCHS-CSC"
        assert si.processor_cores == 20
        assert si.architecture == "x86_64"
        assert si.memory_bytes == 128 * 1024**3
        assert "E5-2670 v2" in si.processor_model

    def test_as_dict(self):
        d = collect_system_info(make_cluster()).as_dict()
        assert d["hostname"] == "fuchs0000"
        assert set(d) >= {"processor_cores", "processor_mhz", "memory_bytes"}
