"""Tests for the fabric model."""

import pytest

from repro.cluster.interconnect import Interconnect, InterconnectSpec
from repro.util.errors import ConfigurationError


class TestSpec:
    def test_defaults_match_fuchs(self):
        spec = InterconnectSpec()
        assert spec.name == "InfiniBand FDR"
        assert spec.aggregate_bandwidth_bps == 27e9

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            InterconnectSpec(link_bandwidth_bps=0)
        with pytest.raises(ConfigurationError):
            InterconnectSpec(latency_s=-1)


class TestInterconnect:
    def test_injection_scales_with_nodes(self):
        ic = Interconnect()
        one = ic.injection_ceiling_bps([1.0])
        four = ic.injection_ceiling_bps([1.0] * 4)
        assert four == pytest.approx(4 * one)

    def test_injection_respects_health(self):
        ic = Interconnect()
        healthy = ic.injection_ceiling_bps([1.0, 1.0])
        degraded = ic.injection_ceiling_bps([1.0, 0.5])
        assert degraded == pytest.approx(0.75 * healthy)

    def test_injection_needs_nodes(self):
        with pytest.raises(ConfigurationError):
            Interconnect().injection_ceiling_bps([])

    def test_latency_scales_with_hops(self):
        ic = Interconnect()
        assert ic.message_latency_s(3) == pytest.approx(3 * ic.spec.latency_s)
        with pytest.raises(ConfigurationError):
            ic.message_latency_s(0)

    def test_fabric_ceiling(self):
        assert Interconnect().fabric_ceiling_bps() == 27e9
