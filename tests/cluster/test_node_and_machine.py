"""Tests for node specs, cluster presets and health manipulation."""

import pytest

from repro.cluster.machine import FUCHS_CSC, Cluster, ClusterSpec, make_cluster
from repro.cluster.node import CPUSpec, Node, NodeSpec
from repro.util.errors import ConfigurationError


class TestCPUSpec:
    def test_defaults_match_fuchs(self):
        cpu = CPUSpec()
        assert "E5-2670 v2" in cpu.model_name
        assert cpu.cores == 10

    def test_rejects_zero_cores(self):
        with pytest.raises(ConfigurationError):
            CPUSpec(cores=0)

    def test_rejects_bad_frequency(self):
        with pytest.raises(ConfigurationError):
            CPUSpec(frequency_mhz=-1)


class TestNodeSpec:
    def test_total_cores(self):
        assert NodeSpec().cores == 20

    def test_memory_kib(self):
        assert NodeSpec().memory_kib == 128 * 1024 * 1024

    def test_rejects_zero_memory(self):
        with pytest.raises(ConfigurationError):
            NodeSpec(memory_bytes=0)


class TestNode:
    def test_hostname_format(self):
        n = Node(index=42, spec=NodeSpec(name_prefix="fuchs"))
        assert n.hostname == "fuchs0042"

    def test_degrade_and_restore(self):
        n = Node(index=0, spec=NodeSpec())
        n.degrade(0.4)
        assert n.state == "degraded"
        assert n.effective_nic_bandwidth_bps == pytest.approx(n.spec.nic_bandwidth_bps * 0.4)
        n.restore()
        assert n.performance_factor == 1.0
        assert n.state == "idle"

    def test_degrade_rejects_bad_factor(self):
        n = Node(index=0, spec=NodeSpec())
        with pytest.raises(ConfigurationError):
            n.degrade(1.5)
        with pytest.raises(ConfigurationError):
            n.degrade(0.0)


class TestClusterPreset:
    def test_fuchs_matches_paper(self):
        # §V-E: 198 nodes, 20 cores/node, 3960 cores, 128 GB RAM, 27 GB/s.
        assert FUCHS_CSC.num_nodes == 198
        assert FUCHS_CSC.node.cores == 20
        assert FUCHS_CSC.total_cores == 3960
        assert FUCHS_CSC.node.memory_bytes == 128 * 1024**3
        assert FUCHS_CSC.interconnect.aggregate_bandwidth_bps == 27e9

    def test_make_cluster_by_name(self):
        cl = make_cluster("fuchs-csc")
        assert cl.name == "FUCHS-CSC"
        assert len(cl.nodes) == 198

    def test_make_cluster_unknown_preset(self):
        with pytest.raises(ConfigurationError):
            make_cluster("summit")

    def test_make_cluster_from_spec(self):
        spec = ClusterSpec(name="tiny", num_nodes=2)
        assert isinstance(make_cluster(spec), Cluster)

    def test_node_lookup_out_of_range(self):
        cl = make_cluster(ClusterSpec(name="tiny", num_nodes=2))
        with pytest.raises(ConfigurationError):
            cl.node(5)

    def test_degrade_node_and_restore_all(self):
        cl = make_cluster(ClusterSpec(name="tiny", num_nodes=3))
        cl.degrade_node(1, 0.3)
        assert len(cl.healthy_nodes()) == 2
        cl.restore_all()
        assert len(cl.healthy_nodes()) == 3
