"""Tests for the Slurm-like resource manager."""

import pytest

from repro.cluster.machine import ClusterSpec, make_cluster
from repro.cluster.slurm import Allocation, JobRequest, JobState, Partition, SlurmManager
from repro.util.errors import AllocationError, ConfigurationError


@pytest.fixture()
def small_cluster():
    return make_cluster(ClusterSpec(name="tiny", num_nodes=8))


@pytest.fixture()
def slurm(small_cluster):
    return SlurmManager(small_cluster)


class TestJobRequest:
    def test_total_tasks(self):
        assert JobRequest("x", num_nodes=4, tasks_per_node=20).total_tasks == 80

    def test_rejects_zero_nodes(self):
        with pytest.raises(ConfigurationError):
            JobRequest("x", num_nodes=0, tasks_per_node=1)


class TestAllocation:
    def test_rank_to_node_block_distribution(self):
        alloc = Allocation(job_id=1, node_indices=(3, 5), tasks_per_node=2)
        assert [alloc.rank_to_node(r) for r in range(4)] == [3, 3, 5, 5]

    def test_rank_out_of_range(self):
        alloc = Allocation(job_id=1, node_indices=(0,), tasks_per_node=2)
        with pytest.raises(ConfigurationError):
            alloc.rank_to_node(2)


class TestSlurmManager:
    def test_submit_allocates_exclusively(self, slurm):
        j1 = slurm.submit(JobRequest("a", num_nodes=4, tasks_per_node=2))
        j2 = slurm.submit(JobRequest("b", num_nodes=4, tasks_per_node=2))
        assert j1.state == JobState.RUNNING and j2.state == JobState.RUNNING
        assert not set(j1.allocation.node_indices) & set(j2.allocation.node_indices)

    def test_oversubscription_rejected(self, slurm):
        slurm.submit(JobRequest("a", num_nodes=6, tasks_per_node=1))
        with pytest.raises(AllocationError):
            slurm.submit(JobRequest("b", num_nodes=3, tasks_per_node=1))

    def test_too_many_tasks_per_node(self, slurm):
        with pytest.raises(AllocationError):
            slurm.submit(JobRequest("a", num_nodes=1, tasks_per_node=999))

    def test_unknown_partition(self, slurm):
        with pytest.raises(AllocationError):
            slurm.submit(JobRequest("a", num_nodes=1, tasks_per_node=1, partition="gpu"))

    def test_complete_releases_nodes(self, slurm):
        j = slurm.submit(JobRequest("a", num_nodes=8, tasks_per_node=1))
        slurm.complete(j, elapsed_s=12.5)
        assert j.state == JobState.COMPLETED
        assert j.elapsed_s == 12.5
        # Nodes are free again.
        j2 = slurm.submit(JobRequest("b", num_nodes=8, tasks_per_node=1))
        assert j2.state == JobState.RUNNING

    def test_complete_failed_job(self, slurm):
        j = slurm.submit(JobRequest("a", num_nodes=1, tasks_per_node=1))
        slurm.complete(j, elapsed_s=1.0, failed=True)
        assert j.state == JobState.FAILED

    def test_complete_twice_rejected(self, slurm):
        j = slurm.submit(JobRequest("a", num_nodes=1, tasks_per_node=1))
        slurm.complete(j, elapsed_s=1.0)
        with pytest.raises(AllocationError):
            slurm.complete(j, elapsed_s=1.0)

    def test_squeue_and_sacct(self, slurm):
        j1 = slurm.submit(JobRequest("a", num_nodes=1, tasks_per_node=1))
        j2 = slurm.submit(JobRequest("b", num_nodes=1, tasks_per_node=1))
        assert {j.job_id for j in slurm.squeue()} == {j1.job_id, j2.job_id}
        slurm.complete(j1, elapsed_s=1.0)
        assert [j.job_id for j in slurm.squeue()] == [j2.job_id]
        assert [j.job_id for j in slurm.sacct()] == [j1.job_id, j2.job_id]

    def test_down_node_skipped(self, small_cluster):
        slurm = SlurmManager(small_cluster)
        small_cluster.node(0).state = "down"
        j = slurm.submit(JobRequest("a", num_nodes=7, tasks_per_node=1))
        assert 0 not in j.allocation.node_indices

    def test_custom_partition(self, small_cluster):
        slurm = SlurmManager(small_cluster, [Partition("small", (0, 1))])
        j = slurm.submit(JobRequest("a", num_nodes=2, tasks_per_node=1, partition="small"))
        assert j.allocation.node_indices == (0, 1)
