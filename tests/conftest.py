"""Shared test fixtures: fault-seed parameterisation and test timeouts.

* ``fault_seed`` — the root seed resilience/fault tests derive their
  injected-failure schedules from.  CI's fault-matrix job exports
  ``REPRO_FAULT_SEED`` to re-run the tier-1 suite under different
  deterministic fault patterns; fault-blind tests are unaffected.
* per-test timeout — a lightweight ``pytest-timeout`` equivalent so a
  hung retry loop fails fast instead of wedging CI.  Uses ``SIGALRM``
  (a no-op on platforms without it) and defers entirely to the real
  ``pytest-timeout`` plugin when that is installed.  Override the
  120 s default with ``REPRO_TEST_TIMEOUT`` or a
  ``@pytest.mark.timeout(seconds)`` marker.
"""

import os
import signal

import pytest

try:
    import pytest_timeout  # noqa: F401

    _HAVE_PYTEST_TIMEOUT = True
except ImportError:
    _HAVE_PYTEST_TIMEOUT = False

_DEFAULT_TIMEOUT_S = float(os.environ.get("REPRO_TEST_TIMEOUT", "120"))


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "timeout(seconds): per-test wall-time limit (0 disables)"
    )
    config.addinivalue_line(
        "markers",
        "stress: concurrency soak tests (CI stress job runs `pytest -m stress`)",
    )


@pytest.fixture
def fault_seed():
    """Root seed for injected-fault schedules (CI matrix: REPRO_FAULT_SEED)."""
    return int(os.environ.get("REPRO_FAULT_SEED", "42"))


@pytest.fixture
def chaos_proxy():
    """Factory for seeded wire-level chaos proxies, closed on teardown.

    Usage::

        proxy = chaos_proxy(server.host, server.port,
                            ChaosPolicy(seed=7, corrupt=0.1))
        url = f"knowledge+tcp://{proxy.host}:{proxy.port}/"
    """
    from repro.core.service.chaos import ChaosPolicy, ChaosProxy

    proxies = []

    def _make(upstream_host, upstream_port, policy=None, **kwargs):
        proxy = ChaosProxy(
            upstream_host, upstream_port, policy or ChaosPolicy(), **kwargs
        )
        proxies.append(proxy)
        return proxy.start()

    yield _make
    for proxy in proxies:
        proxy.close()


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    if _HAVE_PYTEST_TIMEOUT or not hasattr(signal, "SIGALRM"):
        yield
        return
    marker = item.get_closest_marker("timeout")
    limit = float(marker.args[0]) if marker and marker.args else _DEFAULT_TIMEOUT_S
    if limit <= 0:
        yield
        return

    def _alarm(signum, frame):
        raise TimeoutError(
            f"{item.nodeid} exceeded its {limit:g}s timeout (repro fallback timer)"
        )

    old_handler = signal.signal(signal.SIGALRM, _alarm)
    signal.setitimer(signal.ITIMER_REAL, limit)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, old_handler)
