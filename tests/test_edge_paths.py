"""Edge-path tests: error branches and rarely-hit paths across modules."""

import pytest

from repro.benchmarks_io.io500.find import FindResult, run_find
from repro.benchmarks_io.io500.output import render_io500_output
from repro.benchmarks_io.io500.runner import IO500Result
from repro.benchmarks_io.io500.config import IO500Config
from repro.cluster.slurm import JobRequest
from repro.iostack.stack import Testbed
from repro.mpi.collective import bcast_cost_s
from repro.util.errors import BenchmarkError, ConfigurationError


class TestFindEdges:
    def test_empty_workdir_rejected(self):
        tb = Testbed.fuchs_csc(seed=301)
        ctx = tb.start_job("f", 1, 4)
        tb.fs.makedirs("/scratch/emptydir")
        with pytest.raises(BenchmarkError):
            run_find(ctx, "/scratch/emptydir")

    def test_match_size_counting(self):
        tb = Testbed.fuchs_csc(seed=302)
        ctx = tb.start_job("f", 1, 4)
        w = ctx.phase_ctx("write")
        tb.fs.makedirs("/scratch/fd")
        for i, size in enumerate((3901, 3901, 100)):
            entry, _ = tb.fs.create(f"/scratch/fd/f{i}", w)
            entry.extend_to(size)
        found = run_find(ctx, "/scratch/fd")
        assert found.total_files == 3
        assert found.matched_files == 2
        assert found.ops_per_sec > 0

    def test_zero_time_guard(self):
        with pytest.raises(BenchmarkError):
            FindResult(total_files=10, matched_files=1, time_s=0.0).ops_per_sec


class TestIO500OutputEdges:
    def test_unscored_run_rejected(self):
        result = IO500Result(config=IO500Config(), num_nodes=1, tasks_per_node=4)
        with pytest.raises(BenchmarkError):
            render_io500_output(result)


class TestSlurmEdges:
    def test_negative_elapsed_rejected(self):
        tb = Testbed.fuchs_csc(seed=303)
        job = tb.slurm.submit(JobRequest("x", 1, 1))
        with pytest.raises(ConfigurationError):
            tb.slurm.complete(job, elapsed_s=-1.0)

    def test_job_elapsed_none_before_completion(self):
        tb = Testbed.fuchs_csc(seed=304)
        job = tb.slurm.submit(JobRequest("x", 1, 1))
        assert job.elapsed_s is None


class TestHDF5Edges:
    def test_read_at_and_flush(self):
        tb = Testbed.fuchs_csc(seed=305)
        ctx = tb.start_job("h", 1, 2)
        w = ctx.phase_ctx("write")
        tb.fs.makedirs("/scratch/h5e")
        layer = ctx.layer("HDF5")
        f, _ = layer.open("/scratch/h5e/x", 0, w, 0.0, create=True, shared_file=False)
        f.write_at(0, 1024 * 1024, w, 0.0)
        assert f.flush(0.0) > 0
        r = ctx.phase_ctx("read")
        assert f.read_at(0, 1024 * 1024, r, 0.0) > 0

    def test_layer_param_validation(self):
        from repro.iostack.hdf5 import HDF5Layer
        from repro.util.errors import IOStackError

        tb = Testbed.fuchs_csc(seed=306)
        with pytest.raises(IOStackError):
            HDF5Layer(tb.fs, chunk_bytes=0)
        with pytest.raises(IOStackError):
            HDF5Layer(tb.fs, chunk_floor=2.0)


class TestCollectiveEdges:
    def test_bcast_single_rank_free(self):
        assert bcast_cost_s(1, 1 << 20, 1e-6, 1e9) == 0.0


class TestTablesEdges:
    def test_indent(self):
        from repro.util.tables import render_table

        out = render_table(["a"], [[1]], indent="    ")
        assert all(line.startswith("    ") for line in out.splitlines())


class TestExportEdges:
    def test_custom_dimensions(self, tmp_path):
        from repro.core.explorer import ChartSpec, Series, export_image

        spec = ChartSpec(kind="bar", title="t",
                         series=[Series("s", (1,), (2.0,))])
        path = export_image(spec, tmp_path / "c.svg", width=320, height=200)
        text = path.read_text()
        assert 'width="320"' in text and 'height="200"' in text
