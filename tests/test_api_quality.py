"""API-quality meta-tests.

Enforces the documentation deliverable mechanically: every public
module, class, function and method in ``repro`` carries a docstring,
public re-exports resolve, and the error taxonomy is complete.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro


def _walk_modules():
    out = []
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        out.append(importlib.import_module(info.name))
    return out


ALL_MODULES = _walk_modules()


class TestDocstrings:
    @pytest.mark.parametrize("module", ALL_MODULES, ids=lambda m: m.__name__)
    def test_module_docstring(self, module):
        assert module.__doc__ and module.__doc__.strip(), f"{module.__name__} lacks a docstring"

    @pytest.mark.parametrize("module", ALL_MODULES, ids=lambda m: m.__name__)
    def test_public_members_documented(self, module):
        undocumented = []
        for name, obj in vars(module).items():
            if name.startswith("_"):
                continue
            if not (inspect.isclass(obj) or inspect.isfunction(obj)):
                continue
            if getattr(obj, "__module__", None) != module.__name__:
                continue  # re-exports are checked at their home module
            if not (obj.__doc__ and obj.__doc__.strip()):
                undocumented.append(name)
                continue
            if inspect.isclass(obj):
                for mname, member in vars(obj).items():
                    if mname.startswith("_") or not inspect.isfunction(member):
                        continue
                    if not (member.__doc__ and member.__doc__.strip()):
                        undocumented.append(f"{name}.{mname}")
        assert not undocumented, (
            f"{module.__name__}: missing docstrings on {sorted(undocumented)}"
        )


class TestExports:
    @pytest.mark.parametrize("module", ALL_MODULES, ids=lambda m: m.__name__)
    def test_all_entries_resolve(self, module):
        exported = getattr(module, "__all__", None)
        if exported is None:
            return
        missing = [name for name in exported if not hasattr(module, name)]
        assert not missing, f"{module.__name__}.__all__ names missing members: {missing}"

    def test_top_level_api(self):
        for name in repro.__all__:
            assert hasattr(repro, name)


class TestErrorTaxonomy:
    def test_all_custom_errors_derive_from_repro_error(self):
        from repro.util import errors

        for name in errors.__all__:
            cls = getattr(errors, name)
            assert issubclass(cls, errors.ReproError), name

    def test_every_phase_has_an_error(self):
        from repro.util import errors

        for expected in (
            "ExtractionError",
            "PersistenceError",
            "AnalysisError",
            "UsageError",
            "BenchmarkError",
            "JubeError",
            "DarshanError",
        ):
            assert hasattr(errors, expected)
