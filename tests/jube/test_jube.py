"""Tests for the JUBE-like benchmarking environment."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.iostack.stack import Testbed
from repro.jube import (
    Analyser,
    DEFAULT_WORK_REGISTRY,
    JubeBenchmark,
    Parameter,
    ParameterSet,
    Pattern,
    Step,
    expand_parameter_space,
    load_benchmark,
    substitute,
)
from repro.util.errors import JubeError


class TestParameters:
    def test_from_text_expansion(self):
        p = Parameter.from_text("ts", "1m, 2m ,4m")
        assert p.values == ("1m", "2m", "4m")
        assert p.is_template

    def test_single_value(self):
        assert not Parameter.from_text("x", "42").is_template

    def test_invalid_name(self):
        with pytest.raises(JubeError):
            Parameter("2bad", ("x",))

    def test_duplicate_in_set(self):
        with pytest.raises(JubeError):
            ParameterSet("s", (Parameter("a", ("1",)), Parameter("a", ("2",))))

    def test_expansion_cartesian(self):
        sets = [
            ParameterSet("a", (Parameter("x", ("1", "2")), Parameter("y", ("a",)))),
            ParameterSet("b", (Parameter("z", ("u", "v")),)),
        ]
        combos = expand_parameter_space(sets)
        assert len(combos) == 4
        assert {(c["x"], c["z"]) for c in combos} == {("1", "u"), ("1", "v"), ("2", "u"), ("2", "v")}

    def test_later_set_overrides(self):
        sets = [
            ParameterSet("a", (Parameter("x", ("1",)),)),
            ParameterSet("b", (Parameter("x", ("9",)),)),
        ]
        assert expand_parameter_space(sets) == [{"x": "9"}]

    def test_empty(self):
        assert expand_parameter_space([]) == [{}]

    @given(
        st.lists(st.sampled_from(["1", "2", "3"]), min_size=1, max_size=3, unique=True),
        st.lists(st.sampled_from(["a", "b"]), min_size=1, max_size=2, unique=True),
    )
    def test_expansion_size_property(self, xs, ys):
        sets = [ParameterSet("s", (Parameter("x", tuple(xs)), Parameter("y", tuple(ys))))]
        assert len(expand_parameter_space(sets)) == len(xs) * len(ys)


class TestSubstitute:
    def test_both_forms(self):
        out = substitute("ior -t $ts -b ${bs}", {"ts": "2m", "bs": "4m"})
        assert out == "ior -t 2m -b 4m"

    def test_strict_undefined(self):
        with pytest.raises(JubeError):
            substitute("$missing", {})

    def test_non_strict_keeps_reference(self):
        assert substitute("$missing", {}, strict=False) == "$missing"


class TestBenchmarkExecution:
    def test_step_per_combination(self, tmp_path):
        seen = []

        def work(ctx):
            seen.append(ctx.params["x"])
            ctx.write_file("out.txt", f"value {ctx.params['x']}")

        bench = JubeBenchmark(
            "t",
            tmp_path,
            parameter_sets=[ParameterSet("p", (Parameter("x", ("1", "2", "3")),))],
            steps=[Step(name="run", work=work, use=("p",))],
        )
        wps = bench.run()
        assert sorted(seen) == ["1", "2", "3"]
        assert len(wps) == 3
        for wp in wps:
            assert (wp.workdir / "out.txt").exists()
            assert (wp.workdir.parent / "parameters.json").exists()

    def test_dependency_wiring(self, tmp_path):
        def producer(ctx):
            ctx.write_file("data.txt", f"from {ctx.params['x']}")

        def consumer(ctx):
            text = ctx.dependency_file("make", "data.txt").read_text()
            assert text == f"from {ctx.params['x']}"
            ctx.write_file("ok.txt", "yes")

        bench = JubeBenchmark(
            "t",
            tmp_path,
            parameter_sets=[ParameterSet("p", (Parameter("x", ("a", "b")),))],
            steps=[
                Step(name="make", work=producer, use=("p",)),
                Step(name="check", work=consumer, use=("p",), depends=("make",)),
            ],
        )
        wps = bench.run()
        assert sum(1 for wp in wps if wp.step == "check") == 2

    def test_unknown_dependency_rejected(self, tmp_path):
        bench = JubeBenchmark("t", tmp_path)
        with pytest.raises(JubeError):
            bench.add_step(Step(name="s", work=lambda ctx: None, depends=("ghost",)))

    def test_run_dirs_increment(self, tmp_path):
        bench = JubeBenchmark(
            "t", tmp_path, steps=[Step(name="run", work=lambda ctx: None)]
        )
        bench.run()
        first = bench.run_dir
        bench.run()
        assert bench.run_dir != first
        assert bench.run_dir.name == "000001"

    def test_run_dir_before_run(self, tmp_path):
        with pytest.raises(JubeError):
            JubeBenchmark("t", tmp_path).run_dir


class TestAnalyser:
    def test_pattern_extraction(self, tmp_path):
        def work(ctx):
            ctx.write_file("out.txt", f"bw = {float(ctx.params['x']) * 10} MiB/s")

        bench = JubeBenchmark(
            "t",
            tmp_path,
            parameter_sets=[ParameterSet("p", (Parameter("x", ("1", "2")),))],
            steps=[Step(name="run", work=work, use=("p",))],
        )
        bench.run()
        analyser = Analyser(
            "a", step="run", files=["out.txt"],
            patterns=[Pattern("bw", r"bw = ([\d.]+) MiB/s")],
        )
        table = analyser.analyse(bench)
        assert table.column("bw") == [10.0, 20.0]
        assert "bw" in table.render()

    def test_pattern_validation(self):
        with pytest.raises(JubeError):
            Pattern("p", "no capture group")
        with pytest.raises(JubeError):
            Pattern("p", "(x)", dtype="complex")
        with pytest.raises(JubeError):
            Pattern("p", "(unclosed")

    def test_missing_file_errors(self, tmp_path):
        bench = JubeBenchmark("t", tmp_path, steps=[Step(name="run", work=lambda c: None)])
        bench.run()
        analyser = Analyser("a", step="run", files=["ghost.txt"], patterns=[Pattern("x", r"(\d+)")])
        with pytest.raises(JubeError):
            analyser.analyse(bench)

    def test_pattern_returns_none_without_match(self, tmp_path):
        def work(ctx):
            ctx.write_file("out.txt", "nothing here")

        bench = JubeBenchmark("t", tmp_path, steps=[Step(name="run", work=work)])
        bench.run()
        analyser = Analyser("a", "run", ["out.txt"], [Pattern("x", r"value (\d+)", "int")])
        assert analyser.analyse(bench).column("x") == [None]


class TestXMLLoading:
    XML = """
    <jube>
      <benchmark name="x" outpath="ignored">
        <parameterset name="p">
          <parameter name="transfersize">1m</parameter>
          <parameter name="command">ior -a posix -b 4m -t $transfersize -s 2 -i 1 -o /scratch/xml/t -w</parameter>
          <parameter name="nodes">1</parameter>
          <parameter name="taskspernode">4</parameter>
        </parameterset>
        <step name="run" work="ior"><use>p</use></step>
        <analyser name="bw" step="run">
          <file>ior_output.txt</file>
          <pattern name="max_write" type="float">Max Write: ([\\d.]+) MiB/sec</pattern>
        </analyser>
      </benchmark>
    </jube>
    """

    def test_load_and_run(self, tmp_path):
        bench, analysers = load_benchmark(
            self.XML, DEFAULT_WORK_REGISTRY, outpath=tmp_path,
            shared={"testbed": Testbed.fuchs_csc(seed=8)},
        )
        bench.run()
        table = analysers[0].analyse(bench)
        assert table.column("max_write")[0] > 0

    def test_bad_xml(self):
        with pytest.raises(JubeError):
            load_benchmark("<jube><benchmark", {})

    def test_unknown_work(self):
        xml = '<jube><benchmark name="b"><step name="s" work="ghost"/></benchmark></jube>'
        with pytest.raises(JubeError):
            load_benchmark(xml, DEFAULT_WORK_REGISTRY)

    def test_missing_benchmark_element(self):
        with pytest.raises(JubeError):
            load_benchmark("<jube></jube>", {})
