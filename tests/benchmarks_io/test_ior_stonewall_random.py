"""Tests for IOR stonewalling (-D) and random offsets (-z)."""

import pytest

from repro.benchmarks_io.ior import IORConfig, parse_command, run_ior
from repro.iostack.stack import Testbed
from repro.util.errors import ConfigurationError
from repro.util.units import MIB


@pytest.fixture()
def tb():
    return Testbed.fuchs_csc(seed=41)


def config(**kw):
    defaults = dict(
        api="POSIX", block_size=4 * MIB, transfer_size=1 * MIB, segment_count=64,
        iterations=1, test_file="/scratch/sw/t", file_per_proc=True,
        keep_file=True, read_file=False,
    )
    defaults.update(kw)
    return IORConfig(**defaults)


class TestCLIOptions:
    def test_parse_and_round_trip(self):
        cfg = parse_command("ior -a posix -b 4m -t 1m -z -D 30 -o /scratch/x -w")
        assert cfg.random_offsets
        assert cfg.stonewall_seconds == 30.0
        assert parse_command(cfg.to_command()) == cfg

    def test_fractional_deadline_round_trip(self):
        cfg = parse_command("ior -a posix -b 1m -t 1m -D 0.5 -o /scratch/x -w")
        assert cfg.stonewall_seconds == 0.5
        assert "-D 0.5" in cfg.to_command()

    def test_negative_deadline_rejected(self):
        with pytest.raises(ConfigurationError):
            IORConfig(stonewall_seconds=-1)


class TestStonewall:
    def test_deadline_limits_data_and_time(self, tb):
        free = run_ior(config(test_file="/scratch/sw/free"), tb, 2, 10, run_id=1)
        walled = run_ior(
            config(test_file="/scratch/sw/wall", stonewall_seconds=0.5), tb, 2, 10, run_id=1
        )
        free_row = free.operation_results("write")[0]
        wall_row = walled.operation_results("write")[0]
        # The full run needs well over the deadline; the stonewalled one
        # stops close to it and moves less data.
        assert free_row.total_time_s > 1.5
        assert wall_row.total_time_s < free_row.total_time_s
        assert wall_row.io_time_s <= 0.5 * 1.2
        assert wall_row.data_moved_bytes < free_row.data_moved_bytes
        assert wall_row.n_ops < free_row.n_ops

    def test_bandwidth_similar_under_stonewall(self, tb):
        # Stonewalling changes the amount of data, not the rate.
        free = run_ior(config(test_file="/scratch/sw/f2"), tb, 2, 10, run_id=2)
        walled = run_ior(
            config(test_file="/scratch/sw/w2", stonewall_seconds=0.5), tb, 2, 10, run_id=2
        )
        bw_free = free.operation_results("write")[0].bandwidth_mib
        bw_wall = walled.operation_results("write")[0].bandwidth_mib
        assert abs(bw_wall - bw_free) / bw_free < 0.25

    def test_at_least_one_op_even_with_tiny_deadline(self, tb):
        walled = run_ior(
            config(test_file="/scratch/sw/tiny", stonewall_seconds=1e-9), tb, 1, 4
        )
        assert walled.operation_results("write")[0].n_ops >= 4  # one per rank


class TestRandomOffsets:
    def test_random_slower_than_sequential(self, tb):
        seq = run_ior(config(test_file="/scratch/rz/seq"), tb, 2, 10, run_id=3)
        rnd = run_ior(
            config(test_file="/scratch/rz/rnd", random_offsets=True), tb, 2, 10, run_id=3
        )
        assert (
            rnd.operation_results("write")[0].bandwidth_mib
            < seq.operation_results("write")[0].bandwidth_mib
        )

    def test_random_hurts_reads_more(self, tb):
        seq = run_ior(
            config(test_file="/scratch/rz/s2", read_file=True), tb, 2, 10, run_id=4
        )
        rnd = run_ior(
            config(test_file="/scratch/rz/r2", read_file=True, random_offsets=True),
            tb, 2, 10, run_id=4,
        )
        write_ratio = (
            rnd.bandwidth_summary("write").mean / seq.bandwidth_summary("write").mean
        )
        read_ratio = (
            rnd.bandwidth_summary("read").mean / seq.bandwidth_summary("read").mean
        )
        assert read_ratio < write_ratio  # prefetch loss > write-back loss
