"""Tests for IOR execution on the simulated testbed."""

import pytest

from repro.benchmarks_io.ior import parse_command, render_ior_output, run_ior
from repro.benchmarks_io.ior.config import IORConfig
from repro.iostack.stack import Testbed
from repro.pfs import Fault
from repro.util.errors import BenchmarkError
from repro.util.units import MIB


@pytest.fixture()
def tb():
    return Testbed.fuchs_csc(seed=77)


def small_config(**kw):
    defaults = dict(
        api="MPIIO",
        block_size=4 * MIB,
        transfer_size=2 * MIB,
        segment_count=4,
        iterations=2,
        test_file="/scratch/t/f",
        file_per_proc=True,
        keep_file=True,
    )
    defaults.update(kw)
    return IORConfig(**defaults)


class TestRunIOR:
    def test_result_structure(self, tb):
        res = run_ior(small_config(), tb, num_nodes=2, tasks_per_node=4)
        assert res.num_tasks == 8
        assert len(res.operation_results("write")) == 2
        assert len(res.operation_results("read")) == 2
        for r in res.results:
            assert r.bandwidth_mib > 0
            assert r.iops > 0
            assert r.total_time_s > 0
            assert r.data_moved_bytes == 8 * 16 * MIB

    def test_iterations_numbered_from_zero(self, tb):
        res = run_ior(small_config(iterations=3), tb, 1, 4)
        assert [r.iteration for r in res.operation_results("write")] == [0, 1, 2]

    def test_write_only(self, tb):
        res = run_ior(small_config(read_file=False), tb, 1, 4)
        assert res.operations() == ["write"]

    def test_read_without_written_file_fails(self, tb):
        with pytest.raises(BenchmarkError):
            run_ior(small_config(write_file=False), tb, 1, 4)

    def test_read_only_after_kept_write(self, tb):
        run_ior(small_config(read_file=False), tb, 1, 4)
        res = run_ior(small_config(write_file=False), tb, 1, 4)
        assert res.operations() == ["read"]

    def test_keep_file_false_removes_files(self, tb):
        run_ior(small_config(keep_file=False, test_file="/scratch/gone/f"), tb, 1, 4)
        assert not tb.fs.namespace.exists("/scratch/gone/f.00000000")

    def test_keep_file_true_keeps_files(self, tb):
        run_ior(small_config(test_file="/scratch/kept/f"), tb, 1, 4)
        assert tb.fs.namespace.exists("/scratch/kept/f.00000000")

    def test_shared_file_mode(self, tb):
        res = run_ior(small_config(file_per_proc=False, test_file="/scratch/sh/f"), tb, 1, 4)
        assert tb.fs.namespace.exists("/scratch/sh/f")
        entry = tb.fs.namespace.lookup_file("/scratch/sh/f")
        # 4 ranks x 4 segments x 4 MiB blocks
        assert entry.size == 4 * 4 * 4 * MIB

    def test_deterministic_under_seed(self):
        r1 = run_ior(small_config(), Testbed.fuchs_csc(seed=5), 1, 4)
        r2 = run_ior(small_config(), Testbed.fuchs_csc(seed=5), 1, 4)
        assert [x.bandwidth_mib for x in r1.results] == [x.bandwidth_mib for x in r2.results]

    def test_different_run_id_different_noise(self, tb):
        r1 = run_ior(small_config(test_file="/scratch/a/f"), tb, 1, 4, run_id=1)
        r2 = run_ior(small_config(test_file="/scratch/b/f"), tb, 1, 4, run_id=2)
        assert r1.results[0].bandwidth_mib != r2.results[0].bandwidth_mib

    def test_summaries(self, tb):
        res = run_ior(small_config(iterations=4), tb, 1, 4)
        s = res.bandwidth_summary("write")
        assert s.count == 4
        assert s.minimum <= s.mean <= s.maximum

    def test_fault_injection_degrades_one_iteration(self, tb):
        tb.fs.faults.add(
            Fault(name="it1", factor=0.4, when={"benchmark": "ior", "iteration": 1, "op": "write"})
        )
        res = run_ior(small_config(iterations=3), tb, 2, 10)
        bws = [r.bandwidth_mib for r in res.operation_results("write")]
        assert bws[1] < 0.6 * bws[0]
        assert bws[1] < 0.6 * bws[2]
        # reads unaffected
        reads = [r.bandwidth_mib for r in res.operation_results("read")]
        assert min(reads) > 0.8 * max(reads)

    def test_hdf5_api_runs(self, tb):
        res = run_ior(small_config(api="HDF5"), tb, 1, 4)
        assert res.operations() == ["write", "read"]


class TestOutputRendering:
    def test_output_sections(self, tb):
        res = run_ior(small_config(), tb, 2, 4)
        text = render_ior_output(res)
        assert "MPI Coordinated Test of Parallel I/O" in text
        assert "Options: " in text
        assert "Results: " in text
        assert "Summary of all tests:" in text
        assert "Max Write:" in text and "Max Read:" in text
        assert "Command line        : " + res.command in text

    def test_output_row_counts(self, tb):
        res = run_ior(small_config(iterations=3), tb, 1, 4)
        text = render_ior_output(res)
        write_rows = [ln for ln in text.splitlines() if ln.startswith("write ")]
        assert len(write_rows) == 4  # 3 result rows + 1 summary row

    def test_paper_command_shape(self):
        # Full Fig. 5 configuration: 4 nodes x 20 tasks, 6 iterations.
        tb = Testbed.fuchs_csc(seed=2022)
        cfg = parse_command(
            "ior -a mpiio -b 4m -t 2m -s 40 -F -C -e -i 6 -o /scratch/fuchs/zhuz/test80 -k"
        )
        res = run_ior(cfg, tb, num_nodes=4, tasks_per_node=20)
        text = render_ior_output(res)
        assert "tasks               : 80" in text
        assert "aggregate filesize  : 12.50 GiB" in text
        writes = [r.bandwidth_mib for r in res.operation_results("write")]
        # Healthy system: all six iterations in a plausible band around
        # the paper's ~2850 MiB/s.
        assert all(2300 < bw < 3500 for bw in writes)
