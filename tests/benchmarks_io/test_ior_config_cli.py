"""Tests for IOR configuration and command-line round trips."""

import pytest

from repro.benchmarks_io.ior.cli import parse_args, parse_command
from repro.benchmarks_io.ior.config import IORConfig
from repro.util.errors import ConfigurationError
from repro.util.units import MIB


class TestIORConfig:
    def test_defaults(self):
        cfg = IORConfig()
        assert cfg.api == "POSIX"
        assert cfg.write_file and cfg.read_file

    def test_derived_quantities_fig5(self):
        # The paper's command: -b 4m -t 2m -s 40 on 80 tasks.
        cfg = IORConfig(block_size=4 * MIB, transfer_size=2 * MIB, segment_count=40)
        assert cfg.transfers_per_block == 2
        assert cfg.transfers_per_task == 80
        assert cfg.bytes_per_task == 160 * MIB
        assert cfg.aggregate_bytes(80) == 12800 * MIB  # 12.5 GiB

    def test_block_must_be_multiple_of_transfer(self):
        with pytest.raises(ConfigurationError):
            IORConfig(block_size=3 * MIB, transfer_size=2 * MIB)

    def test_api_normalized(self):
        assert IORConfig(api="mpiio").api == "MPIIO"

    def test_unknown_api(self):
        with pytest.raises(ConfigurationError):
            IORConfig(api="netcdf")

    def test_collective_needs_mpiio(self):
        with pytest.raises(ConfigurationError):
            IORConfig(api="POSIX", collective=True)
        IORConfig(api="MPIIO", collective=True)

    def test_must_do_something(self):
        with pytest.raises(ConfigurationError):
            IORConfig(write_file=False, read_file=False)

    def test_file_for_rank(self):
        fpp = IORConfig(file_per_proc=True, test_file="/scratch/t")
        assert fpp.file_for_rank(3) == "/scratch/t.00000003"
        shared = IORConfig(file_per_proc=False, test_file="/scratch/t")
        assert shared.file_for_rank(3) == "/scratch/t"
        assert shared.shared_file

    def test_with_modifications(self):
        cfg = IORConfig().with_(transfer_size=2 * MIB, block_size=4 * MIB)
        assert cfg.transfer_size == 2 * MIB

    def test_relative_test_file_rejected(self):
        with pytest.raises(ConfigurationError):
            IORConfig(test_file="relative/path")


class TestCLI:
    def test_paper_command(self):
        # §V-E1 verbatim.
        cfg = parse_command(
            "ior -a mpiio -b 4m -t 2m -s 40 -F -C -e -i 6 -o /scratch/fuchs/zhuz/test80 -k"
        )
        assert cfg.api == "MPIIO"
        assert cfg.block_size == 4 * MIB
        assert cfg.transfer_size == 2 * MIB
        assert cfg.segment_count == 40
        assert cfg.file_per_proc and cfg.reorder_tasks_constant and cfg.fsync
        assert cfg.iterations == 6
        assert cfg.keep_file
        # neither -w nor -r: both phases run (as the paper notes).
        assert cfg.write_file and cfg.read_file

    def test_pdf_dashes_tolerated(self):
        cfg = parse_command("ior –a mpiio –b 4m –t 2m -o /scratch/x")
        assert cfg.api == "MPIIO"

    def test_write_only(self):
        cfg = parse_args(["-w", "-o", "/scratch/x"])
        assert cfg.write_file and not cfg.read_file

    def test_read_only(self):
        cfg = parse_args(["-r", "-o", "/scratch/x"])
        assert cfg.read_file and not cfg.write_file

    def test_unknown_option(self):
        with pytest.raises(ConfigurationError):
            parse_args(["-Z"])

    def test_missing_value(self):
        with pytest.raises(ConfigurationError):
            parse_args(["-b"])

    def test_empty_command(self):
        with pytest.raises(ConfigurationError):
            parse_command("")

    def test_round_trip(self):
        original = "ior -a mpiio -b 4m -t 2m -s 40 -F -C -e -i 6 -o /scratch/t -k"
        cfg = parse_command(original)
        assert parse_command(cfg.to_command()) == cfg

    @pytest.mark.parametrize(
        "command",
        [
            "ior -a posix -b 1m -t 1m -o /scratch/a",
            "ior -a hdf5 -b 8m -t 2m -s 3 -c -o /scratch/b -w",
            "ior -a mpiio -b 47008 -t 47008 -s 100 -o /scratch/c -r",
        ],
    )
    def test_round_trip_various(self, command):
        cfg = parse_command(command)
        assert parse_command(cfg.to_command()) == cfg
