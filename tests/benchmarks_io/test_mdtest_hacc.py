"""Tests for mdtest and HACC-IO."""

import pytest

from repro.benchmarks_io.hacc_io import BYTES_PER_PARTICLE, HaccIOConfig, run_hacc_io
from repro.benchmarks_io.mdtest import HARD_WRITE_BYTES, MdtestConfig, run_mdtest
from repro.iostack.stack import Testbed
from repro.util.errors import BenchmarkError, ConfigurationError


@pytest.fixture()
def tb():
    return Testbed.fuchs_csc(seed=13)


@pytest.fixture()
def jobctx(tb):
    return tb.start_job("md", num_nodes=1, tasks_per_node=8)


class TestMdtestConfig:
    def test_paths(self):
        cfg = MdtestConfig(base_dir="/scratch/md")
        assert cfg.task_dir(3) == "/scratch/md/task3"
        assert cfg.item_path(3, 7) == "/scratch/md/task3/file.mdtest.3.7"

    def test_shared_dir(self):
        cfg = MdtestConfig(base_dir="/scratch/md", unique_dir_per_task=False)
        assert cfg.task_dir(0) == cfg.task_dir(5) == "/scratch/md/shared"

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            MdtestConfig(num_items=0)
        with pytest.raises(ConfigurationError):
            MdtestConfig(phases=("create", "fly"))
        with pytest.raises(ConfigurationError):
            MdtestConfig(write_bytes=10, read_bytes=20, phases=("create", "read"))


class TestRunMdtest:
    def test_all_phases(self, jobctx):
        cfg = MdtestConfig(num_items=50, base_dir="/scratch/md1")
        res = run_mdtest(cfg, jobctx)
        rates = res.rates()
        assert set(rates) == {"create", "stat", "read", "remove"}
        assert all(v > 0 for v in rates.values())
        # stats are cheaper than creates on any metadata server
        assert rates["stat"] > rates["create"]

    def test_namespace_cleaned_after_remove(self, jobctx):
        cfg = MdtestConfig(num_items=10, base_dir="/scratch/md2")
        run_mdtest(cfg, jobctx)
        nfiles, _ = jobctx.fs.namespace.count_entries("/scratch/md2")
        assert nfiles == 0

    def test_hard_slower_than_easy(self, tb):
        ctx = tb.start_job("cmp", 1, 8)
        easy = run_mdtest(
            MdtestConfig(num_items=60, base_dir="/scratch/easy", phases=("create",)), ctx
        )
        hard = run_mdtest(
            MdtestConfig(
                num_items=60,
                base_dir="/scratch/hard",
                unique_dir_per_task=False,
                write_bytes=HARD_WRITE_BYTES,
                phases=("create",),
            ),
            ctx,
        )
        assert hard.rate("create") < easy.rate("create")

    def test_phase_order_enforced(self, jobctx):
        cfg = MdtestConfig(num_items=5, base_dir="/scratch/md3", phases=("stat",))
        with pytest.raises(BenchmarkError):
            run_mdtest(cfg, jobctx)

    def test_rate_lookup_missing(self, jobctx):
        cfg = MdtestConfig(num_items=5, base_dir="/scratch/md4", phases=("create",))
        res = run_mdtest(cfg, jobctx)
        with pytest.raises(BenchmarkError):
            res.rate("remove")


class TestHaccIO:
    def test_bytes_per_rank(self):
        cfg = HaccIOConfig(num_particles=1000)
        assert cfg.bytes_per_rank == 1000 * BYTES_PER_PARTICLE

    def test_modes_file_naming(self):
        ssf = HaccIOConfig(mode="single-shared-file", out_file="/scratch/h/c")
        assert ssf.file_for_rank(0) == ssf.file_for_rank(9) == "/scratch/h/c"
        fpp = HaccIOConfig(mode="file-per-process", out_file="/scratch/h/c")
        assert fpp.file_for_rank(2) == "/scratch/h/c.00000002"
        fpg = HaccIOConfig(mode="file-per-group", group_size=4, out_file="/scratch/h/c")
        assert fpg.file_for_rank(0) == fpg.file_for_rank(3)
        assert fpg.file_for_rank(4) != fpg.file_for_rank(3)

    def test_ranks_sharing(self):
        cfg = HaccIOConfig(mode="file-per-group", group_size=4)
        assert cfg.ranks_sharing(10, 0) == 4
        assert cfg.ranks_sharing(10, 9) == 2  # last partial group

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            HaccIOConfig(mode="striped")
        with pytest.raises(ConfigurationError):
            HaccIOConfig(api="HDF5")
        with pytest.raises(ConfigurationError):
            HaccIOConfig(num_particles=0)

    def test_checkpoint_restart(self, tb):
        ctx = tb.start_job("hacc", 1, 8)
        cfg = HaccIOConfig(num_particles=100_000, mode="file-per-process", out_file="/scratch/h1/c")
        res = run_hacc_io(cfg, ctx)
        w, r = res.phase("write"), res.phase("read")
        assert w.bandwidth_mib > 0 and r.bandwidth_mib > 0
        assert w.data_moved_bytes == 8 * cfg.bytes_per_rank

    def test_fpp_faster_than_shared_for_small_buffered_checkpoints(self, tb):
        # With sub-chunk client buffering, N-to-1 checkpoints pay the
        # shared-file penalty that independent files avoid.
        ctx = tb.start_job("hacc2", 2, 10)
        shared = run_hacc_io(
            HaccIOConfig(num_particles=200_000, mode="single-shared-file",
                         transfer_size=256 * 1024, out_file="/scratch/h2/s"), ctx, run_id=1
        )
        fpp = run_hacc_io(
            HaccIOConfig(num_particles=200_000, mode="file-per-process",
                         transfer_size=256 * 1024, out_file="/scratch/h2/f"), ctx, run_id=2
        )
        assert fpp.phase("write").bandwidth_mib > shared.phase("write").bandwidth_mib

    def test_no_restart(self, tb):
        ctx = tb.start_job("hacc3", 1, 4)
        cfg = HaccIOConfig(num_particles=10_000, restart=False, out_file="/scratch/h3/c")
        res = run_hacc_io(cfg, ctx)
        with pytest.raises(BenchmarkError):
            res.phase("read")
