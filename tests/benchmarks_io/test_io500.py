"""Tests for the IO500 suite: phases, scoring, output."""

import pytest

from repro.benchmarks_io.io500 import (
    BW_PHASES,
    MD_PHASES,
    PHASE_ORDER,
    IO500Config,
    compute_score,
    render_io500_output,
    run_io500,
)
from repro.iostack.stack import Testbed
from repro.util.errors import BenchmarkError, ConfigurationError


@pytest.fixture(scope="module")
def io500_result():
    # One shared run for the read-only assertions (module-scoped: the
    # suite is the most expensive simulated benchmark).
    tb = Testbed.fuchs_csc(seed=21)
    return run_io500(IO500Config(), tb, num_nodes=2, tasks_per_node=10)


class TestScoring:
    def test_phase_lists_cover_twelve(self):
        assert len(PHASE_ORDER) == 12
        assert set(BW_PHASES) | set(MD_PHASES) == set(PHASE_ORDER)

    def test_score_formula(self):
        values = {p: 2.0 for p in BW_PHASES}
        values.update({p: 8.0 for p in MD_PHASES})
        score = compute_score(values)
        assert score.bandwidth_gib == pytest.approx(2.0)
        assert score.iops_kiops == pytest.approx(8.0)
        assert score.total == pytest.approx(4.0)

    def test_incomplete_run_rejected(self):
        with pytest.raises(BenchmarkError):
            compute_score({"ior-easy-write": 1.0})

    def test_zero_phase_rejected(self):
        values = {p: 1.0 for p in PHASE_ORDER}
        values["find"] = 0.0
        with pytest.raises(BenchmarkError):
            compute_score(values)


class TestConfig:
    def test_ior_hard_uses_47008(self):
        cfg = IO500Config()
        hard = cfg.ior_hard()
        assert hard.transfer_size == 47008
        assert not hard.file_per_proc

    def test_ior_easy_is_fpp(self):
        easy = IO500Config().ior_easy()
        assert easy.file_per_proc

    def test_mdtest_hard_is_shared_dir_3901(self):
        hard = IO500Config().mdtest_hard()
        assert not hard.unique_dir_per_task
        assert hard.write_bytes == 3901

    def test_ini_round_trip_keys(self):
        from repro.core.extraction import parse_io500_ini

        ini = parse_io500_ini(IO500Config().to_ini())
        assert "ior-easy" in ini and "mdtest-hard" in ini
        assert int(ini["ior-hard"]["transferSize"]) == 47008

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            IO500Config(ior_easy_block=3 * 1024**2, ior_easy_transfer=2 * 1024**2)
        with pytest.raises(ConfigurationError):
            IO500Config(mdtest_easy_items=0)


class TestRun:
    def test_all_phases_present(self, io500_result):
        assert [p.name for p in io500_result.phases] == list(PHASE_ORDER)
        assert all(p.value > 0 for p in io500_result.phases)

    def test_easy_beats_hard(self, io500_result):
        # The boundary property the bounding box relies on.
        assert io500_result.phase("ior-easy-write").value > io500_result.phase("ior-hard-write").value
        assert io500_result.phase("ior-easy-read").value > io500_result.phase("ior-hard-read").value
        assert (
            io500_result.phase("mdtest-easy-write").value
            > io500_result.phase("mdtest-hard-write").value
        )

    def test_score_consistent_with_phases(self, io500_result):
        recomputed = compute_score(io500_result.phase_values())
        assert io500_result.score.total == pytest.approx(recomputed.total)

    def test_units(self, io500_result):
        for p in io500_result.phases:
            expected = "GiB/s" if p.name in BW_PHASES else "kIOPS"
            assert p.unit == expected

    def test_unknown_phase_lookup(self, io500_result):
        with pytest.raises(BenchmarkError):
            io500_result.phase("ior-medium-write")

    def test_output_format(self, io500_result):
        text = render_io500_output(io500_result)
        assert text.count("[RESULT]") == 12
        assert "[SCORE ]" in text
        assert "IO500 version" in text

    def test_workspace_cleaned_of_ior_files(self, io500_result):
        # mdtest deletes its own files; the runner removes the IOR data.
        pass  # covered via integration: reruns in fresh workdirs succeed

    def test_repeat_runs_differ_by_noise(self):
        tb = Testbed.fuchs_csc(seed=33)
        r1 = run_io500(IO500Config(workdir="/scratch/i1"), tb, 1, 10, run_id=1)
        r2 = run_io500(IO500Config(workdir="/scratch/i2"), tb, 1, 10, run_id=2)
        assert r1.phase("ior-easy-write").value != r2.phase("ior-easy-write").value


class TestStonewallMode:
    def test_stonewalled_suite_runs_and_caps_phase_time(self):
        tb = Testbed.fuchs_csc(seed=34)
        cfg = IO500Config(
            workdir="/scratch/iosw",
            ior_easy_block=256 * 1024**2,  # would take far over the deadline
            stonewall_seconds=0.5,
        )
        result = run_io500(cfg, tb, num_nodes=1, tasks_per_node=10)
        easy_write = result.phase("ior-easy-write")
        assert easy_write.time_s < 1.5  # capped near the 0.5 s deadline
        assert result.score.total > 0

    def test_stonewall_in_ini(self):
        ini = IO500Config(stonewall_seconds=30).to_ini()
        assert "stonewall-time = 30" in ini

    def test_negative_stonewall_rejected(self):
        with pytest.raises(ConfigurationError):
            IO500Config(stonewall_seconds=-1)
