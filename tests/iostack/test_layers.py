"""Tests for the layered I/O stack and the testbed assembly."""

import pytest

from repro.iostack.stack import Testbed
from repro.iostack.tracing import RecordingTracer
from repro.mpi.hints import MPIIOHints
from repro.util.errors import ConfigurationError, IOStackError
from repro.util.units import KIB, MIB


@pytest.fixture()
def tb():
    return Testbed.fuchs_csc(seed=11)


@pytest.fixture()
def jobctx(tb):
    return tb.start_job("t", num_nodes=2, tasks_per_node=4, tracer=RecordingTracer())


class TestPosixLayer:
    def test_create_write_read_close(self, jobctx):
        layer = jobctx.layer("POSIX")
        w = jobctx.phase_ctx("write")
        f, dt = layer.create("/scratch/p0", 0, w, 0.0)
        assert dt > 0
        d1 = f.write(1 * MIB, w, 0.0)
        assert d1 > 0
        assert f.entry.size == 1 * MIB
        r = jobctx.phase_ctx("read")
        f.seek(0)
        d2 = f.read(1 * MIB, r, 0.0)
        assert d2 > 0
        f.close(0.0)
        with pytest.raises(IOStackError):
            f.write(1, w, 0.0)

    def test_io_many_advances_offset(self, jobctx):
        layer = jobctx.layer("POSIX")
        w = jobctx.phase_ctx("write")
        f, _ = layer.create("/scratch/p1", 0, w, 0.0)
        durations = f.io_many("write", 256 * KIB, 8, w, 0.0)
        assert durations.shape == (8,)
        assert f.offset == 8 * 256 * KIB

    def test_io_many_wrong_ctx(self, jobctx):
        layer = jobctx.layer("POSIX")
        w = jobctx.phase_ctx("write")
        f, _ = layer.create("/scratch/p2", 0, w, 0.0)
        with pytest.raises(IOStackError):
            f.io_many("read", 1024, 2, w, 0.0)

    def test_tracing_events_emitted(self, jobctx):
        layer = jobctx.layer("POSIX")
        w = jobctx.phase_ctx("write")
        f, _ = layer.create("/scratch/p3", 0, w, 0.0)
        f.io_many("write", 1 * MIB, 4, w, 0.0)
        f.close(0.0)
        posix_events = jobctx.tracer.by_module("POSIX")
        ops = [e.op for e in posix_events]
        assert ops.count("write") == 4
        assert "create" in ops and "close" in ops
        assert jobctx.tracer.total_bytes("write") == 4 * MIB


class TestMPIIOLayer:
    def test_shared_open_single_create(self, jobctx):
        layer = jobctx.layer("MPIIO")
        w = jobctx.phase_ctx("write", shared_file=True)
        f0, _ = layer.open("/scratch/shared", 0, w, 0.0, create=True, shared_file=True)
        f1, _ = layer.open("/scratch/shared", 1, w, 0.0, create=True, shared_file=True)
        assert f0.posix.entry is f1.posix.entry

    def test_collective_vs_independent_small_shared_writes(self, tb):
        # Collective buffering must help small strided shared-file
        # writes (the MPI-IO optimization the paper's stack view implies).
        ctx = tb.start_job("cmp", 2, 4)
        layer = ctx.layer("MPIIO", MPIIOHints(romio_cb_write="disable"))
        w = ctx.phase_ctx("write", shared_file=True)
        f, _ = layer.open("/scratch/indep", 0, w, 0.0, create=True, shared_file=True)
        t_indep = f.io_many("write", 47008, 64, w, 0.0).sum()

        layer2 = ctx.layer("MPIIO", MPIIOHints(romio_cb_write="enable"))
        f2, _ = layer2.open("/scratch/coll", 0, w, 0.0, create=True, shared_file=True)
        t_coll = f2.io_many("write", 47008, 64, w, 0.0, collective=True).sum()
        assert t_coll < t_indep

    def test_striping_hint_applied(self, jobctx):
        layer = jobctx.layer("MPIIO", MPIIOHints(striping_unit=1 * MIB))
        w = jobctx.phase_ctx("write")
        f, _ = layer.open("/scratch/hinted", 0, w, 0.0, create=True, shared_file=False)
        assert f.posix.entry.layout.chunk_size == 1 * MIB

    def test_delete(self, jobctx):
        layer = jobctx.layer("MPIIO")
        w = jobctx.phase_ctx("write")
        layer.open("/scratch/del", 0, w, 0.0, create=True, shared_file=False)
        layer.delete("/scratch/del", 0, w, 0.0)
        assert not jobctx.fs.namespace.exists("/scratch/del")


class TestHDF5Layer:
    def test_hdf5_slower_than_posix(self, tb):
        # Each layer adds overhead (Fig. 1 stack ordering).
        ctx = tb.start_job("h", 1, 4)
        w = ctx.phase_ctx("write")
        pf, _ = ctx.layer("POSIX").create("/scratch/pp", 0, w, 0.0)
        t_posix = pf.io_many("write", 1 * MIB, 16, w, 0.0).sum()
        hf, _ = ctx.layer("HDF5").open("/scratch/hh", 0, w, 0.0, create=True, shared_file=False)
        t_hdf5 = hf.io_many("write", 1 * MIB, 16, w, 0.0).sum()
        assert t_hdf5 > t_posix

    def test_header_written_at_create(self, jobctx):
        w = jobctx.phase_ctx("write")
        hf, _ = jobctx.layer("HDF5").open(
            "/scratch/h5", 0, w, 0.0, create=True, shared_file=False
        )
        assert hf.mpiio.posix.entry.size > 0  # superblock already on disk

    def test_small_unaligned_access_penalized(self, jobctx):
        w = jobctx.phase_ctx("write")
        hf, _ = jobctx.layer("HDF5").open(
            "/scratch/h5b", 0, w, 0.0, create=True, shared_file=False
        )
        per_byte_small = hf.write_at(0, 64 * KIB, w, 0.0) / (64 * KIB)
        per_byte_big = hf.write_at(0, 4 * MIB, w, 0.0) / (4 * MIB)
        assert per_byte_big < per_byte_small


class TestTestbed:
    def test_unknown_api(self, jobctx):
        with pytest.raises(ConfigurationError):
            jobctx.layer("NCZARR")

    def test_job_lifecycle(self, tb):
        ctx = tb.start_job("life", 2, 2)
        ctx.comm.advance(0, 3.0)
        elapsed = tb.finish_job(ctx)
        assert elapsed == pytest.approx(3.0)
        assert ctx.job.state == "COMPLETED"

    def test_node_factors_reflect_degradation(self, tb):
        ctx = tb.start_job("deg", 2, 2)
        idx = ctx.job.allocation.node_indices[0]
        tb.cluster.node(idx).degrade(0.5)
        assert 0.5 in ctx.node_factors()

    def test_phase_ctx_fields(self, jobctx):
        ctx = jobctx.phase_ctx("write", shared_file=True, fsync=True, tags={"a": 1})
        assert ctx.active_procs == 8
        assert ctx.procs_per_node == 4
        assert ctx.shared_file and ctx.fsync
        assert ctx.tags == {"a": 1}

    def test_system_info(self, tb):
        assert tb.system_info().system_name == "FUCHS-CSC"
