"""Tracer protocol: batch expansion, tee fan-out, testbed default tracer.

The tracer bridge is the seam where the metrics layer, the Darshan
substrate and the online monitor all hang off the same stream of I/O
events — so the fan-out semantics (vectorized vs per-event receivers)
must hold exactly.
"""

import numpy as np

from repro.core.metrics import MetricsRegistry, MetricsTracer
from repro.iostack.stack import Testbed
from repro.iostack.tracing import (
    NullTracer,
    RecordingTracer,
    TeeTracer,
    TraceEvent,
    Tracer,
)


def _event(op="write", length=1024, count=1):
    return TraceEvent(
        module="POSIX", op=op, rank=0, path="/scratch/t/f", offset=0,
        length=length, start=0.0, end=0.5, count=count,
    )


class _VectorizedTracer(Tracer):
    """Counter-style tracer that overrides record_batch (no expansion)."""

    def __init__(self):
        self.batches = []
        self.events = []

    def record(self, event):
        self.events.append(event)

    def record_batch(self, module, op, rank, path, offset0, nbytes, durations, t0):
        self.batches.append((module, op, rank, path, offset0, nbytes,
                             np.asarray(durations, dtype=float), t0))


class TestBatchExpansion:
    def test_default_record_batch_expands_to_sequential_events(self):
        rec = RecordingTracer()
        durations = np.array([0.1, 0.2, 0.3])
        rec.record_batch("POSIX", "write", 2, "/p", 100, 50, durations, 1.0)
        assert len(rec.events) == 3
        # Sequential offsets and back-to-back times.
        assert [e.offset for e in rec.events] == [100, 150, 200]
        assert np.allclose([e.start for e in rec.events], [1.0, 1.1, 1.3])
        assert all(e.length == 50 and e.rank == 2 for e in rec.events)


class TestTeeTracer:
    def test_record_fans_out_to_all(self):
        a, b = RecordingTracer(), RecordingTracer()
        tee = TeeTracer(a, b)
        tee.record(_event())
        assert len(a.events) == len(b.events) == 1

    def test_batch_fans_out_to_mixed_receivers(self):
        # One per-event tracer (expands the batch) and one vectorized
        # tracer (consumes it whole) behind the same tee: the per-event
        # one sees N events, the vectorized one sees 1 batch, and the
        # totals agree.
        per_event = RecordingTracer()
        vectorized = _VectorizedTracer()
        registry = MetricsRegistry()
        metrics = MetricsTracer(registry)
        tee = TeeTracer(per_event, vectorized, metrics, NullTracer())

        durations = np.array([0.01, 0.02, 0.04, 0.08])
        tee.record_batch("MPIIO", "read", 1, "/p", 0, 4096, durations, 0.0)

        assert len(per_event.events) == 4
        assert per_event.total_bytes("read") == 4 * 4096
        assert len(vectorized.batches) == 1
        module, op, *_rest = vectorized.batches[0]
        assert (module, op) == ("MPIIO", "read")
        assert np.allclose(vectorized.batches[0][6], durations)
        snap = registry.snapshot()
        ops = snap["counters"]["io.ops_total"]["series"][0]
        assert ops["value"] == 4
        nbytes = snap["counters"]["io.bytes_total"]["series"][0]
        assert nbytes["value"] == 4 * 4096

    def test_empty_tee_is_harmless(self):
        TeeTracer().record(_event())
        TeeTracer().record_batch("POSIX", "write", 0, "/p", 0, 1, np.array([0.1]), 0.0)


class TestTestbedDefaultTracer:
    def test_default_tracer_sees_job_io(self):
        tb = Testbed.fuchs_csc(seed=7)
        rec = RecordingTracer()
        tb.tracer = rec
        ctx = tb.start_job("trace-me", num_nodes=1, tasks_per_node=2)
        assert ctx.tracer is rec
        tb.finish_job(ctx)

    def test_explicit_and_default_tracers_combine(self):
        tb = Testbed.fuchs_csc(seed=7)
        default, explicit = RecordingTracer(), RecordingTracer()
        tb.tracer = default
        ctx = tb.start_job("both", num_nodes=1, tasks_per_node=1, tracer=explicit)
        assert isinstance(ctx.tracer, TeeTracer)
        ctx.tracer.record(_event())
        assert len(default.events) == len(explicit.events) == 1
        tb.finish_job(ctx)

    def test_no_tracer_still_null(self):
        tb = Testbed.fuchs_csc(seed=7)
        ctx = tb.start_job("none", num_nodes=1, tasks_per_node=1)
        assert isinstance(ctx.tracer, NullTracer)
        tb.finish_job(ctx)
