"""Scale smoke tests and schema versioning.

The simulator must stay laptop-fast at realistic scales (the HPC-Python
guides' rule: measure, don't guess), and the database must identify its
schema version for forward compatibility.
"""

import time


from repro.benchmarks_io.io500 import IO500Config, run_io500
from repro.benchmarks_io.ior import IORConfig, run_ior
from repro.core.persistence import SCHEMA_VERSION, KnowledgeDatabase
from repro.iostack.stack import Testbed
from repro.util.units import MIB


class TestScale:
    def test_large_ior_run_fast_and_sane(self):
        # 16 nodes x 20 tasks = 320 ranks, 3 iterations, write+read.
        tb = Testbed.fuchs_csc(seed=201)
        cfg = IORConfig(
            api="MPIIO", block_size=4 * MIB, transfer_size=2 * MIB, segment_count=4,
            iterations=3, test_file="/scratch/big/t", file_per_proc=True, keep_file=True,
        )
        t0 = time.perf_counter()
        res = run_ior(cfg, tb, num_nodes=16, tasks_per_node=20)
        wall = time.perf_counter() - t0
        assert wall < 20.0, f"320-rank IOR took {wall:.1f}s to simulate"
        # Saturated system: aggregate must stay below the device roof.
        bw = res.bandwidth_summary("write").mean
        raw_pool = 8 * 643  # MiB/s
        assert 0 < bw < raw_pool
        # And per-rank share must shrink vs an 80-rank run.
        small = run_ior(
            cfg.with_(test_file="/scratch/big/s"), tb, num_nodes=4, tasks_per_node=20,
            run_id=2,
        )
        assert bw / 320 < small.bandwidth_summary("write").mean / 80

    def test_io500_at_scale_fast(self):
        tb = Testbed.fuchs_csc(seed=202)
        t0 = time.perf_counter()
        result = run_io500(IO500Config(), tb, num_nodes=8, tasks_per_node=20)
        wall = time.perf_counter() - t0
        assert wall < 30.0, f"160-rank IO500 took {wall:.1f}s to simulate"
        assert result.score.total > 0

    def test_full_cluster_allocation(self):
        # All 198 FUCHS nodes in one job.
        tb = Testbed.fuchs_csc(seed=203)
        ctx = tb.start_job("full", num_nodes=198, tasks_per_node=1)
        assert ctx.comm.size == 198
        tb.finish_job(ctx)


class TestSchemaVersion:
    def test_version_recorded(self):
        with KnowledgeDatabase(":memory:") as db:
            row = db.execute("SELECT value FROM meta WHERE key = 'schema_version'").fetchone()
            assert int(row["value"]) == SCHEMA_VERSION

    def test_reopen_preserves_version(self, tmp_path):
        target = tmp_path / "v.db"
        with KnowledgeDatabase(target):
            pass
        with KnowledgeDatabase(target) as db:
            row = db.execute("SELECT value FROM meta WHERE key = 'schema_version'").fetchone()
            assert int(row["value"]) == SCHEMA_VERSION

    def test_schema_idempotent(self, tmp_path):
        from repro.core.persistence import KnowledgeRepository
        from tests.core.test_persistence import make_knowledge

        target = tmp_path / "i.db"
        with KnowledgeDatabase(target) as db:
            KnowledgeRepository(db).save(make_knowledge())
        # Re-opening re-runs CREATE IF NOT EXISTS without data loss.
        with KnowledgeDatabase(target) as db:
            assert KnowledgeRepository(db).list_ids() == [1]
