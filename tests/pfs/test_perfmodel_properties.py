"""Property-based tests of the performance model's global invariants.

These pin the physics of the simulator with hypothesis: bandwidth is
always positive and bounded by the hardware ceilings, costs are
monotone in size, adding load never helps, and every penalty factor
stays in (0, 1].
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pfs.beegfs import BeeGFS
from repro.pfs.perfmodel import PhaseContext
from repro.util.units import KIB, MIB

_FS = BeeGFS(root_seed=99)
_LAYOUT = _FS.default_layout()

sizes = st.integers(min_value=1, max_value=64 * MIB)
procs = st.integers(min_value=1, max_value=512)
ppn = st.integers(min_value=1, max_value=40)


def ctx(active_procs=8, procs_per_node=8, access="write", **kw):
    return PhaseContext(
        active_procs=active_procs,
        procs_per_node=min(procs_per_node, active_procs),
        node_factors=(1.0,) * max(1, active_procs // max(1, procs_per_node)),
        access=access,
        **kw,
    )


class TestBandwidthInvariants:
    @settings(max_examples=60, deadline=None)
    @given(size=sizes, p=procs, n=ppn, access=st.sampled_from(["read", "write"]))
    def test_positive_and_bounded(self, size, p, n, access):
        bw = _FS.model.per_rank_bandwidth_bps(size, _LAYOUT, ctx(p, n, access))
        assert bw > 0
        # Never above the single-client ceiling or the device raw sum.
        assert bw <= _FS.model.params.client_stream_bw_bps + 1e-6
        raw = sum(t.spec.bandwidth_bps(access) for t in _FS.pool.targets)
        assert bw <= raw

    @settings(max_examples=40, deadline=None)
    @given(size=sizes, p=procs)
    def test_more_procs_never_increase_per_rank_bw(self, size, p):
        a = _FS.model.per_rank_bandwidth_bps(size, _LAYOUT, ctx(p, min(p, 20)))
        b = _FS.model.per_rank_bandwidth_bps(size, _LAYOUT, ctx(p * 2, min(p * 2, 20)))
        assert b <= a + 1e-6

    @settings(max_examples=40, deadline=None)
    @given(small=sizes, factor=st.integers(min_value=2, max_value=16))
    def test_transfer_time_monotone_in_size(self, small, factor):
        t_small = _FS.model.transfer_time_s(small, _LAYOUT, ctx())
        t_big = _FS.model.transfer_time_s(small * factor, _LAYOUT, ctx())
        assert t_big > t_small

    @settings(max_examples=40, deadline=None)
    @given(size=sizes)
    def test_every_modifier_is_a_slowdown(self, size):
        base = _FS.model.per_rank_bandwidth_bps(size, _LAYOUT, ctx())
        for kw in (
            {"shared_file": True},
            {"fsync": True},
            {"random_access": True},
        ):
            modified = _FS.model.per_rank_bandwidth_bps(size, _LAYOUT, ctx(**kw))
            assert modified <= base + 1e-6


class TestFactorRanges:
    @settings(max_examples=50, deadline=None)
    @given(size=sizes)
    def test_size_efficiency_in_unit_interval(self, size):
        assert 0 < _FS.model.size_efficiency(size) < 1

    @settings(max_examples=50, deadline=None)
    @given(p=procs)
    def test_contention_efficiency_in_unit_interval(self, p):
        assert 0 < _FS.model.contention_efficiency(p) <= 1

    @settings(max_examples=50, deadline=None)
    @given(
        transfer=st.integers(min_value=1, max_value=8 * MIB),
        chunk=st.sampled_from([64 * KIB, 512 * KIB, 1 * MIB]),
        collective=st.booleans(),
    )
    def test_shared_penalty_in_unit_interval(self, transfer, chunk, collective):
        p = _FS.model.shared_file_penalty(transfer, chunk, collective)
        assert 0 < p <= 1
        if collective:
            assert p >= _FS.model.params.collective_efficiency - 1e-12


class TestMetadataInvariants:
    @settings(max_examples=40, deadline=None)
    @given(p=procs, op=st.sampled_from(["create", "stat", "remove", "open"]))
    def test_costs_positive(self, p, op):
        assert _FS.model.metadata_time_s(op, ctx(p, min(p, 20))) > 0

    @settings(max_examples=40, deadline=None)
    @given(p=st.integers(min_value=2, max_value=256))
    def test_shared_dir_never_cheaper(self, p):
        c = ctx(p, min(p, 20))
        private = _FS.model.metadata_time_s("create", c, shared_dir=False)
        shared = _FS.model.metadata_time_s("create", c, shared_dir=True)
        assert shared >= private

    @settings(max_examples=40, deadline=None)
    @given(p=procs)
    def test_stat_cheaper_than_create(self, p):
        c = ctx(p, min(p, 20))
        assert _FS.model.metadata_time_s("stat", c) < _FS.model.metadata_time_s("create", c)


class TestNoiseInvariants:
    @settings(max_examples=30, deadline=None)
    @given(n=st.integers(min_value=1, max_value=200), rank=st.integers(min_value=0, max_value=100))
    def test_batched_times_positive_and_deterministic(self, n, rank):
        c = ctx(tags={"t": 1})
        a = _FS.model.transfer_times_s(1 * MIB, _LAYOUT, c, n, rank)
        b = _FS.model.transfer_times_s(1 * MIB, _LAYOUT, c, n, rank)
        assert (a > 0).all()
        assert (a == b).all()
