"""Tests for storage pools, targets and RAID schemes."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.pfs.pool import RAIDScheme, StoragePool
from repro.pfs.target import StorageServer, StorageTarget, TargetSpec
from repro.util.errors import ConfigurationError


def make_pool(n=8, raid=RAIDScheme.RAID0):
    targets = [
        StorageTarget(target_id=100 + i, spec=TargetSpec(), server=f"s{i // 2}")
        for i in range(n)
    ]
    return StoragePool(name="p", targets=targets, raid_scheme=raid, default_num_targets=4)


class TestTargetSpec:
    def test_access_dispatch(self):
        spec = TargetSpec()
        assert spec.bandwidth_bps("read") > spec.bandwidth_bps("write")
        with pytest.raises(ConfigurationError):
            spec.bandwidth_bps("append")

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TargetSpec(write_bandwidth_bps=0)
        with pytest.raises(ConfigurationError):
            TargetSpec(op_latency_s=-1)


class TestStorageTarget:
    def test_degrade_restore_cycle(self):
        t = StorageTarget(target_id=1, spec=TargetSpec(), server="s")
        base = t.effective_bandwidth_bps("write")
        t.degrade(0.5)
        assert t.effective_bandwidth_bps("write") == pytest.approx(base * 0.5)
        t.restore()
        assert t.health == 1.0

    def test_server_degrades_all_its_targets(self):
        server = StorageServer(name="s", targets=[
            StorageTarget(target_id=i, spec=TargetSpec(), server="s") for i in range(3)
        ])
        server.degrade(0.2)
        assert all(t.health == 0.2 for t in server.targets)
        server.restore()
        assert all(t.health == 1.0 for t in server.targets)


class TestStoragePool:
    def test_pick_targets_round_robin_coverage(self):
        pool = make_pool(8)
        # 8 consecutive picks of width 4 must hit every target equally.
        from collections import Counter

        counts = Counter()
        for start in range(8):
            counts.update(pool.pick_targets(4, start))
        assert set(counts.values()) == {4}

    @given(
        n=st.integers(min_value=1, max_value=12),
        width=st.integers(min_value=1, max_value=12),
        start=st.integers(min_value=0, max_value=100),
    )
    def test_pick_targets_properties(self, n, width, start):
        if width > n:
            return
        pool = StoragePool(
            name="p",
            targets=[
                StorageTarget(target_id=i, spec=TargetSpec(), server="s")
                for i in range(n)
            ],
            default_num_targets=1,
        )
        picked = pool.pick_targets(width, start)
        assert len(picked) == width
        assert len(set(picked)) == width  # distinct
        assert set(picked) <= set(pool.target_ids)

    def test_pick_too_wide(self):
        with pytest.raises(ConfigurationError):
            make_pool(4).pick_targets(5, 0)

    def test_aggregate_bandwidth_raid_penalty(self):
        raid0 = make_pool(raid=RAIDScheme.RAID0)
        raid6 = make_pool(raid=RAIDScheme.RAID6)
        assert raid6.aggregate_bandwidth_bps("write") == pytest.approx(
            raid0.aggregate_bandwidth_bps("write") * RAIDScheme.WRITE_EFFICIENCY[RAIDScheme.RAID6]
        )
        # Reads don't pay parity costs.
        assert raid6.aggregate_bandwidth_bps("read") == pytest.approx(
            raid0.aggregate_bandwidth_bps("read")
        )

    def test_min_target_health(self):
        pool = make_pool(4)
        pool.target(101).degrade(0.3)
        assert pool.min_target_health((100, 101)) == 0.3
        assert pool.min_target_health((100, 102)) == 1.0

    def test_lookup_missing_target(self):
        with pytest.raises(ConfigurationError):
            make_pool(2).target(999)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            StoragePool(name="empty", targets=[])
        with pytest.raises(ConfigurationError):
            make_pool(raid="RAID7")
