"""Unit and property tests for stripe layouts."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.pfs.layout import StripeLayout, StripePattern
from repro.util.errors import ConfigurationError
from repro.util.units import KIB, MIB


class TestStripeLayout:
    def test_defaults(self):
        lo = StripeLayout()
        assert lo.chunk_size == 512 * KIB
        assert lo.num_targets == 4
        assert lo.stripe_width == 2 * MIB
        assert lo.pattern == StripePattern.RAID0

    def test_chunk_target_round_robin(self):
        lo = StripeLayout(chunk_size=10, target_ids=(7, 8, 9))
        assert [lo.chunk_target(o) for o in (0, 10, 20, 30, 5, 29)] == [7, 8, 9, 7, 7, 9]

    def test_rejects_duplicates(self):
        with pytest.raises(ConfigurationError):
            StripeLayout(target_ids=(1, 1))

    def test_rejects_empty_targets(self):
        with pytest.raises(ConfigurationError):
            StripeLayout(target_ids=())

    def test_rejects_bad_pattern(self):
        with pytest.raises(ConfigurationError):
            StripeLayout(pattern="RAID9")

    def test_rejects_negative_offset(self):
        with pytest.raises(ConfigurationError):
            StripeLayout().chunk_target(-1)

    def test_describe_chunk_size(self):
        assert StripeLayout(chunk_size=512 * KIB).describe_chunk_size() == "512K"
        assert StripeLayout(chunk_size=1 * MIB).describe_chunk_size() == "1M"


class TestBytesPerTarget:
    def test_exact_stripes_distribute_evenly(self):
        lo = StripeLayout(chunk_size=100, target_ids=(0, 1))
        counts = lo.bytes_per_target(0, 400)
        assert counts == {0: 200, 1: 200}

    def test_partial_head(self):
        lo = StripeLayout(chunk_size=100, target_ids=(0, 1))
        counts = lo.bytes_per_target(50, 100)
        assert counts == {0: 50, 1: 50}

    def test_single_chunk_interior(self):
        lo = StripeLayout(chunk_size=100, target_ids=(0, 1))
        assert lo.bytes_per_target(110, 30) == {0: 0, 1: 30}

    def test_zero_length(self):
        lo = StripeLayout(chunk_size=100, target_ids=(0, 1))
        assert lo.bytes_per_target(10, 0) == {0: 0, 1: 0}

    @given(
        chunk=st.integers(min_value=1, max_value=1 << 16),
        ntargets=st.integers(min_value=1, max_value=8),
        offset=st.integers(min_value=0, max_value=1 << 22),
        length=st.integers(min_value=0, max_value=1 << 22),
    )
    def test_conservation(self, chunk, ntargets, offset, length):
        # Property: bytes are conserved — per-target counts sum to length.
        lo = StripeLayout(chunk_size=chunk, target_ids=tuple(range(ntargets)))
        counts = lo.bytes_per_target(offset, length)
        assert sum(counts.values()) == length
        assert all(v >= 0 for v in counts.values())

    @given(
        chunk=st.integers(min_value=1, max_value=4096),
        ntargets=st.integers(min_value=1, max_value=6),
        nstripes=st.integers(min_value=1, max_value=20),
    )
    def test_whole_stripes_balanced(self, chunk, ntargets, nstripes):
        # Property: an integral number of stripes is perfectly balanced.
        lo = StripeLayout(chunk_size=chunk, target_ids=tuple(range(ntargets)))
        counts = lo.bytes_per_target(0, chunk * ntargets * nstripes)
        assert set(counts.values()) == {chunk * nstripes}
