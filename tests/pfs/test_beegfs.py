"""Tests for the BeeGFS façade: namespace ops, data path, getentryinfo."""

import pytest

from repro.pfs.beegfs import BeeGFS, BeeGFSSpec
from repro.pfs.perfmodel import PhaseContext
from repro.util.errors import ConfigurationError, FileSystemError
from repro.util.units import MIB


@pytest.fixture()
def fs():
    return BeeGFS(root_seed=3)


def wctx(tags=None):
    return PhaseContext(
        active_procs=4, procs_per_node=4, node_factors=(1.0,), access="write", tags=tags or {}
    )


def rctx():
    return PhaseContext(
        active_procs=4, procs_per_node=4, node_factors=(1.0,), access="read"
    )


class TestSpec:
    def test_default_topology(self, fs):
        assert len(fs.servers) == 4
        assert len(fs.pool.targets) == 8
        assert fs.namespace.exists("/scratch")

    def test_rejects_excessive_default_targets(self):
        with pytest.raises(ConfigurationError):
            BeeGFSSpec(num_storage_servers=1, targets_per_server=1, default_num_targets=4)


class TestNamespaceOps:
    def test_create_write_read_round_trip(self, fs):
        entry, c_create = fs.create("/scratch/a", wctx())
        assert c_create > 0
        c_write = fs.write(entry, 0, 2 * MIB, wctx())
        assert c_write > 0
        assert entry.size == 2 * MIB
        c_read = fs.read(entry, 0, 2 * MIB, rctx())
        assert c_read > 0

    def test_read_past_eof(self, fs):
        entry, _ = fs.create("/scratch/a", wctx())
        fs.write(entry, 0, 100, wctx())
        with pytest.raises(FileSystemError):
            fs.read(entry, 50, 100, rctx())

    def test_write_under_read_ctx_rejected(self, fs):
        entry, _ = fs.create("/scratch/a", wctx())
        with pytest.raises(FileSystemError):
            fs.write(entry, 0, 10, rctx())

    def test_makedirs_idempotent(self, fs):
        fs.makedirs("/scratch/x/y/z")
        fs.makedirs("/scratch/x/y/z")
        assert fs.namespace.exists("/scratch/x/y/z")

    def test_unlink_and_stat(self, fs):
        fs.create("/scratch/gone", wctx())
        assert fs.stat("/scratch/gone", rctx()) > 0
        fs.unlink("/scratch/gone", wctx())
        assert not fs.namespace.exists("/scratch/gone")

    def test_io_many_extends_size(self, fs):
        entry, _ = fs.create("/scratch/a", wctx())
        durations = fs.io_many(entry, 1 * MIB, 10, wctx(), rank=2)
        assert durations.shape == (10,)
        assert entry.size == 10 * MIB

    def test_io_many_read_checks_size(self, fs):
        entry, _ = fs.create("/scratch/a", wctx())
        fs.io_many(entry, 1 * MIB, 4, wctx())
        with pytest.raises(FileSystemError):
            fs.io_many(entry, 1 * MIB, 5, rctx())

    def test_round_robin_file_placement(self, fs):
        # Consecutive files must start on different target slots so
        # file-per-process covers the whole pool.
        e1, _ = fs.create("/scratch/f1", wctx())
        e2, _ = fs.create("/scratch/f2", wctx())
        assert e1.layout.target_ids != e2.layout.target_ids


class TestEntryInfo:
    def test_getentryinfo_file_format(self, fs):
        fs.create("/scratch/data", wctx())
        text = fs.getentryinfo("/scratch/data")
        assert "Entry type: file" in text
        assert "EntryID:" in text
        assert "Metadata node: meta01" in text
        assert "Stripe pattern details:" in text
        assert "+ Type: RAID0" in text
        assert "+ Chunksize: 512K" in text
        assert "desired: 4; actual: 4" in text
        assert "+ Storage Pool: 1 (Default)" in text

    def test_getentryinfo_directory(self, fs):
        text = fs.getentryinfo("/scratch")
        assert "Entry type: directory" in text

    def test_unique_entry_ids(self, fs):
        e1, _ = fs.create("/scratch/f1", wctx())
        e2, _ = fs.create("/scratch/f2", wctx())
        assert e1.entry_id != e2.entry_id


class TestAdministration:
    def test_degrade_and_restore_server(self, fs):
        fs.degrade_server("stor01", 0.1)
        assert all(t.health == 0.1 for t in fs.server("stor01").targets)
        fs.restore_all()
        assert all(t.health == 1.0 for t in fs.server("stor01").targets)

    def test_unknown_server(self, fs):
        with pytest.raises(ConfigurationError):
            fs.server("stor99")

    def test_df(self, fs):
        entry, _ = fs.create("/scratch/a", wctx())
        fs.write(entry, 0, 5 * MIB, wctx())
        df = fs.df()
        assert df["used_bytes"] == 5 * MIB
        assert df["num_targets"] == 8
        assert df["raid_scheme"] == "RAID0"
