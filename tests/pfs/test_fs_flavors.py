"""Tests for the Lustre/GPFS presentation adapters and their parsers."""

import pytest

from repro.core.extraction.filesystem import (
    parse_fs_info,
    parse_lfs_getstripe,
    parse_mmlsattr,
)
from repro.iostack.stack import Testbed
from repro.pfs import BeeGFS, GPFSView, LustreView, PhaseContext
from repro.util.errors import ConfigurationError, ExtractionError


@pytest.fixture()
def fs_with_file():
    fs = BeeGFS(root_seed=1)
    ctx = PhaseContext(active_procs=1, procs_per_node=1, node_factors=(1.0,), access="write")
    fs.create("/scratch/lfile", ctx)
    return fs


class TestLustreView:
    def test_getstripe_round_trip(self, fs_with_file):
        view = LustreView(fs_with_file)
        text = view.getstripe("/scratch/lfile")
        assert "lmm_stripe_count:  4" in text
        assert "lmm_stripe_size:   524288" in text
        info = parse_lfs_getstripe(text)
        assert info.fs_type == "lustre"
        assert info.num_targets == 4
        assert info.chunk_size == "524288"
        assert info.stripe_pattern == "RAID0"
        assert info.entry_type == "file"

    def test_getstripe_directory(self, fs_with_file):
        text = LustreView(fs_with_file).getstripe("/scratch")
        assert "stripe_count" in text

    def test_osts_and_mdts(self, fs_with_file):
        view = LustreView(fs_with_file)
        assert view.osts().count("ACTIVE") == 8
        assert "MDT0000" in view.mdts()

    def test_parser_rejects_garbage(self):
        with pytest.raises(ExtractionError):
            parse_lfs_getstripe("hello")


class TestGPFSView:
    def test_mmlsattr_round_trip(self, fs_with_file):
        view = GPFSView(fs_with_file)
        attr = view.mmlsattr("/scratch/lfile")
        fsinfo = view.mmlsfs()
        assert "storage pool name:    default" in attr
        info = parse_mmlsattr(attr, mmlsfs_text=fsinfo)
        assert info.fs_type == "gpfs"
        assert info.storage_pool == "default"
        assert info.chunk_size == str(fs_with_file.spec.default_chunk_size)
        assert info.num_targets == 8

    def test_without_mmlsfs(self, fs_with_file):
        info = parse_mmlsattr(GPFSView(fs_with_file).mmlsattr("/scratch/lfile"))
        assert info.chunk_size == ""

    def test_parser_rejects_garbage(self):
        with pytest.raises(ExtractionError):
            parse_mmlsattr("nope")


class TestDispatch:
    def test_detects_all_three(self, fs_with_file):
        beegfs_text = fs_with_file.getentryinfo("/scratch/lfile")
        lustre_text = LustreView(fs_with_file).getstripe("/scratch/lfile")
        gpfs_text = GPFSView(fs_with_file).mmlsattr("/scratch/lfile")
        assert parse_fs_info(beegfs_text).fs_type == "beegfs"
        assert parse_fs_info(lustre_text).fs_type == "lustre"
        assert parse_fs_info(gpfs_text).fs_type == "gpfs"

    def test_unknown_format(self):
        with pytest.raises(ExtractionError):
            parse_fs_info("some random text")


class TestTestbedFlavors:
    def test_flavor_capture_files(self):
        for flavor, expected in (
            ("beegfs", {"beegfs_entryinfo.txt"}),
            ("lustre", {"lustre_getstripe.txt"}),
            ("gpfs", {"gpfs_mmlsattr.txt", "gpfs_mmlsfs.txt"}),
        ):
            tb = Testbed.fuchs_csc(seed=2)
            tb.fs_flavor = flavor
            ctx = PhaseContext(
                active_procs=1, procs_per_node=1, node_factors=(1.0,), access="write"
            )
            tb.fs.create("/scratch/x", ctx)
            assert set(tb.fs_info_capture("/scratch/x")) == expected

    def test_unknown_flavor_rejected(self):
        with pytest.raises(ConfigurationError):
            Testbed("fuchs-csc", fs_flavor="pvfs")

    def test_lustre_flavor_extraction_end_to_end(self, tmp_path):
        # Generation with a Lustre-flavored testbed -> extraction picks
        # up the lfs getstripe capture (§VI future work, delivered).
        from repro.core.extraction import KnowledgeExtractor
        from repro.jube import DEFAULT_WORK_REGISTRY, load_benchmark

        xml = """
        <jube><benchmark name="l" outpath="x">
          <parameterset name="p">
            <parameter name="command">ior -a posix -b 2m -t 1m -i 1 -o /scratch/lu/t -w -k</parameter>
            <parameter name="nodes">1</parameter>
            <parameter name="taskspernode">4</parameter>
          </parameterset>
          <step name="run" work="ior"><use>p</use></step>
        </benchmark></jube>
        """
        tb = Testbed("fuchs-csc", fs_flavor="lustre", seed=5)
        bench, _ = load_benchmark(
            xml, DEFAULT_WORK_REGISTRY, outpath=tmp_path, shared={"testbed": tb}
        )
        bench.run()
        knowledge = KnowledgeExtractor(jube_workspace=tmp_path).extract()
        assert len(knowledge) == 1
        assert knowledge[0].filesystem is not None
        assert knowledge[0].filesystem.fs_type == "lustre"
        assert knowledge[0].filesystem.num_targets == 4
