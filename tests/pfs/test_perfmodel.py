"""Tests for the analytic performance model — the simulator's heart.

These tests pin the *qualitative shapes* the paper's experiments rely
on (Fig. 3 impact factors): bigger transfers are faster, contention
hurts, shared-file small writes pay a penalty that collective buffering
lifts, faults slow exactly the tagged phases, and noise is
deterministic under a seed.
"""

import numpy as np
import pytest

from repro.cluster.interconnect import Interconnect
from repro.pfs.beegfs import BeeGFS
from repro.pfs.faults import Fault, FaultInjector, FaultScope
from repro.pfs.layout import StripeLayout
from repro.pfs.perfmodel import PhaseContext
from repro.util.errors import ConfigurationError
from repro.util.units import KIB, MIB


@pytest.fixture()
def fs():
    return BeeGFS(interconnect=Interconnect(), root_seed=7)


def ctx(access="write", procs=80, ppn=20, shared=False, collective=False, fsync=False, tags=None):
    return PhaseContext(
        active_procs=procs,
        procs_per_node=ppn,
        node_factors=(1.0,) * max(1, procs // ppn),
        access=access,
        collective=collective,
        shared_file=shared,
        fsync=fsync,
        tags=tags or {},
    )


def layout(fs):
    return fs.default_layout()


class TestEfficiencies:
    def test_size_efficiency_monotone(self, fs):
        m = fs.model
        effs = [m.size_efficiency(s) for s in (4 * KIB, 64 * KIB, 1 * MIB, 16 * MIB)]
        assert effs == sorted(effs)
        assert 0 < effs[0] < effs[-1] < 1

    def test_size_efficiency_rejects_zero(self, fs):
        with pytest.raises(ConfigurationError):
            fs.model.size_efficiency(0)

    def test_contention_monotone(self, fs):
        m = fs.model
        effs = [m.contention_efficiency(p) for p in (1, 8, 80, 800)]
        assert effs == sorted(effs, reverse=True)
        assert all(0 < e <= 1 for e in effs)

    def test_shared_penalty_small_transfers(self, fs):
        m = fs.model
        small = m.shared_file_penalty(47008, 512 * KIB, collective=False)
        large = m.shared_file_penalty(2 * MIB, 512 * KIB, collective=False)
        assert small < large == 1.0
        assert small >= m.params.shared_small_floor

    def test_collective_lifts_small_shared_penalty(self, fs):
        m = fs.model
        indep = m.shared_file_penalty(47008, 512 * KIB, collective=False)
        coll = m.shared_file_penalty(47008, 512 * KIB, collective=True)
        assert coll > indep
        assert coll == pytest.approx(m.params.collective_efficiency)

    def test_collective_never_hurts_aligned(self, fs):
        m = fs.model
        assert m.shared_file_penalty(2 * MIB, 512 * KIB, collective=True) == 1.0


class TestBandwidthShapes:
    def test_larger_transfers_faster_per_byte(self, fs):
        lo = layout(fs)
        t_small = fs.model.transfer_time_s(64 * KIB, lo, ctx()) / (64 * KIB)
        t_large = fs.model.transfer_time_s(4 * MIB, lo, ctx()) / (4 * MIB)
        assert t_large < t_small

    def test_read_faster_than_write(self, fs):
        lo = layout(fs)
        bw_w = fs.model.per_rank_bandwidth_bps(2 * MIB, lo, ctx("write"))
        bw_r = fs.model.per_rank_bandwidth_bps(2 * MIB, lo, ctx("read"))
        assert bw_r > bw_w

    def test_contention_reduces_per_rank_bw(self, fs):
        lo = layout(fs)
        bw_few = fs.model.per_rank_bandwidth_bps(2 * MIB, lo, ctx(procs=20, ppn=20))
        bw_many = fs.model.per_rank_bandwidth_bps(2 * MIB, lo, ctx(procs=160, ppn=20))
        assert bw_many < bw_few

    def test_aggregate_saturates_but_grows_initially(self, fs):
        lo = layout(fs)

        def agg(procs, nodes):
            c = PhaseContext(
                active_procs=procs,
                procs_per_node=procs // nodes,
                node_factors=(1.0,) * nodes,
                access="write",
            )
            return procs * fs.model.per_rank_bandwidth_bps(2 * MIB, lo, c)

        a1, a8, a64 = agg(1, 1), agg(8, 2), agg(64, 16)
        assert a1 < a8  # scales up before saturation
        assert a64 < a8 * 2  # but saturates (not linear forever)

    def test_shared_file_slower_than_fpp_for_small_writes(self, fs):
        lo = layout(fs)
        bw_fpp = fs.model.per_rank_bandwidth_bps(47008, lo, ctx(shared=False))
        bw_shared = fs.model.per_rank_bandwidth_bps(47008, lo, ctx(shared=True))
        assert bw_shared < bw_fpp

    def test_fsync_derates_writes_only(self, fs):
        lo = layout(fs)
        assert fs.model.per_rank_bandwidth_bps(2 * MIB, lo, ctx(fsync=True)) < (
            fs.model.per_rank_bandwidth_bps(2 * MIB, lo, ctx(fsync=False))
        )
        assert fs.model.per_rank_bandwidth_bps(2 * MIB, lo, ctx("read", fsync=True)) == (
            fs.model.per_rank_bandwidth_bps(2 * MIB, lo, ctx("read", fsync=False))
        )

    def test_more_stripe_targets_help_single_stream(self, fs):
        narrow = StripeLayout(chunk_size=512 * KIB, target_ids=(101,))
        wide = StripeLayout(chunk_size=512 * KIB, target_ids=(101, 102, 103, 104))
        c = ctx(procs=1, ppn=1)
        assert fs.model.per_rank_bandwidth_bps(8 * MIB, wide, c) > (
            fs.model.per_rank_bandwidth_bps(8 * MIB, narrow, c)
        )

    def test_degraded_target_slows_stripe(self, fs):
        lo = layout(fs)
        c = ctx(procs=1, ppn=1)
        before = fs.model.per_rank_bandwidth_bps(8 * MIB, lo, c)
        fs.pool.target(lo.target_ids[0]).degrade(0.1)
        after = fs.model.per_rank_bandwidth_bps(8 * MIB, lo, c)
        assert after < before


class TestFaults:
    def test_filesystem_fault_applies_by_tags(self, fs):
        fs.faults.add(
            Fault(name="iter2", factor=0.44, when={"iteration": 2})
        )
        lo = layout(fs)
        bw_ok = fs.model.per_rank_bandwidth_bps(2 * MIB, lo, ctx(tags={"iteration": 1}))
        bw_bad = fs.model.per_rank_bandwidth_bps(2 * MIB, lo, ctx(tags={"iteration": 2}))
        assert bw_bad == pytest.approx(bw_ok * 0.44, rel=0.01)

    def test_server_fault_hits_only_its_targets(self, fs):
        fs.faults.add(
            Fault(name="broken", factor=0.2, scope=FaultScope.SERVER, server="stor01")
        )
        on_broken = StripeLayout(chunk_size=512 * KIB, target_ids=(101, 102))
        on_healthy = StripeLayout(chunk_size=512 * KIB, target_ids=(103, 104))
        c = ctx(procs=1, ppn=1)
        assert fs.model.per_rank_bandwidth_bps(8 * MIB, on_broken, c) < (
            fs.model.per_rank_bandwidth_bps(8 * MIB, on_healthy, c)
        )

    def test_metadata_fault(self, fs):
        fs.faults.add(Fault(name="mdslow", factor=0.5, scope=FaultScope.METADATA))
        slow = fs.model.metadata_time_s("create", ctx())
        fs.faults.clear()
        fast = fs.model.metadata_time_s("create", ctx())
        assert slow > fast

    def test_fault_validation(self):
        with pytest.raises(ConfigurationError):
            Fault(name="x", factor=1.5)
        with pytest.raises(ConfigurationError):
            Fault(name="x", factor=0.5, scope="targets")
        with pytest.raises(ConfigurationError):
            Fault(name="x", factor=0.5, scope="server")

    def test_injector_active_listing(self):
        inj = FaultInjector([Fault(name="a", factor=0.5, when={"run": 1})])
        assert [f.name for f in inj.active({"run": 1})] == ["a"]
        assert inj.active({"run": 2}) == []

    def test_unknown_when_tag_rejected_with_key_name(self):
        # A typo'd condition key used to silently match nothing; now the
        # offending key is named loudly at construction time.
        with pytest.raises(ConfigurationError, match="'iteraton'"):
            Fault(name="typo", factor=0.5, when={"iteraton": 2})

    def test_custom_when_tag_can_be_registered(self):
        from repro.pfs.faults import register_when_tag

        with pytest.raises(ConfigurationError):
            Fault(name="x", factor=0.5, when={"campaign": "night"})
        register_when_tag("campaign")
        assert Fault(name="x", factor=0.5, when={"campaign": "night"}).matches(
            {"campaign": "night"}
        )

    def test_fault_str_is_readable(self):
        soft = Fault(name="slow-srv", factor=0.2, scope=FaultScope.SERVER,
                     server="stor01", when={"op": "read"})
        assert str(soft) == "fault 'slow-srv' [server stor01] slowdown x0.2 when op='read'"
        hard = Fault(name="flaky", fail_probability=0.25, transient=False)
        assert "fails p=0.25 (permanent)" in str(hard)
        both = Fault(name="b", factor=0.5, fail_probability=0.1)
        assert "slowdown x0.5 + fails p=0.1 (transient)" in str(both)

    def test_do_nothing_fault_rejected(self):
        with pytest.raises(ConfigurationError, match="does nothing"):
            Fault(name="noop")


class TestNoiseDeterminism:
    def test_same_seed_same_times(self):
        a = BeeGFS(root_seed=5)
        b = BeeGFS(root_seed=5)
        c = ctx(tags={"run": 1})
        ta = a.model.transfer_times_s(2 * MIB, a.default_layout(), c, 10, rank=3)
        tb = b.model.transfer_times_s(2 * MIB, b.default_layout(), c, 10, rank=3)
        assert np.allclose(ta, tb)

    def test_different_rank_different_noise(self, fs):
        c = ctx(tags={"run": 1})
        lo = layout(fs)
        t0 = fs.model.transfer_times_s(2 * MIB, lo, c, 10, rank=0)
        t1 = fs.model.transfer_times_s(2 * MIB, lo, c, 10, rank=1)
        assert not np.allclose(t0, t1)

    def test_phase_noise_write_wider_than_read(self, fs):
        # Fig. 6 shape: write variance >> read variance.
        writes = [
            fs.model.phase_noise_factor(ctx("write", tags={"run": i})) for i in range(200)
        ]
        reads = [
            fs.model.phase_noise_factor(ctx("read", tags={"run": i})) for i in range(200)
        ]
        assert np.std(writes) > 2 * np.std(reads)

    def test_metadata_times_positive(self, fs):
        times = fs.model.metadata_times_s("create", ctx(), 100, rank=0)
        assert (times > 0).all()
