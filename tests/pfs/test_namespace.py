"""Tests for the PFS namespace (path resolution and tree operations)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.pfs.file import DirEntry, FileEntry, Namespace, normalize_path, split_path
from repro.pfs.layout import StripeLayout
from repro.util.errors import (
    ConfigurationError,
    DirectoryNotEmptyError,
    FileExistsInPFSError,
    FileNotFoundInPFSError,
    NotADirectoryInPFSError,
)


def make_file(name="f"):
    return FileEntry(
        name=name,
        entry_id="1-ABC-1",
        metadata_node="meta01",
        layout=StripeLayout(),
        pool_name="Default",
    )


def make_dir(name="d"):
    return DirEntry(name=name, entry_id="2-ABC-1", metadata_node="meta01")


class TestPathHelpers:
    @pytest.mark.parametrize(
        "raw,norm",
        [
            ("/", "/"),
            ("/a/b", "/a/b"),
            ("/a//b/", "/a/b"),
            ("/a/./b", "/a/b"),
            ("/a/../b", "/b"),
            ("/../a", "/a"),
        ],
    )
    def test_normalize(self, raw, norm):
        assert normalize_path(raw) == norm

    def test_relative_rejected(self):
        with pytest.raises(ConfigurationError):
            normalize_path("a/b")

    def test_split(self):
        assert split_path("/a/b/c") == ("/a/b", "c")
        assert split_path("/a") == ("/", "a")

    def test_split_root_rejected(self):
        with pytest.raises(ConfigurationError):
            split_path("/")


class TestNamespace:
    def test_add_and_resolve(self):
        ns = Namespace()
        ns.add("/scratch", make_dir())
        ns.add("/scratch/file1", make_file())
        assert ns.lookup_file("/scratch/file1").entry_type == "file"
        assert ns.lookup_dir("/scratch").entry_type == "directory"

    def test_missing_raises(self):
        ns = Namespace()
        with pytest.raises(FileNotFoundInPFSError):
            ns.resolve("/nope")

    def test_duplicate_create_raises(self):
        ns = Namespace()
        ns.add("/f", make_file())
        with pytest.raises(FileExistsInPFSError):
            ns.add("/f", make_file())

    def test_exist_ok(self):
        ns = Namespace()
        ns.add("/f", make_file())
        ns.add("/f", make_file(), exist_ok=True)

    def test_file_in_path_raises(self):
        ns = Namespace()
        ns.add("/f", make_file())
        with pytest.raises(NotADirectoryInPFSError):
            ns.resolve("/f/child")

    def test_lookup_file_on_dir_raises(self):
        ns = Namespace()
        ns.add("/d", make_dir())
        with pytest.raises(FileNotFoundInPFSError):
            ns.lookup_file("/d")

    def test_remove_file(self):
        ns = Namespace()
        ns.add("/f", make_file())
        ns.remove_file("/f")
        assert not ns.exists("/f")

    def test_remove_missing_file(self):
        ns = Namespace()
        with pytest.raises(FileNotFoundInPFSError):
            ns.remove_file("/f")

    def test_rmdir_non_empty(self):
        ns = Namespace()
        ns.add("/d", make_dir())
        ns.add("/d/f", make_file())
        with pytest.raises(DirectoryNotEmptyError):
            ns.remove_dir("/d")
        ns.remove_file("/d/f")
        ns.remove_dir("/d")
        assert not ns.exists("/d")

    def test_listdir_sorted(self):
        ns = Namespace()
        ns.add("/d", make_dir())
        for name in ("c", "a", "b"):
            ns.add(f"/d/{name}", make_file(name))
        assert ns.listdir("/d") == ["a", "b", "c"]

    def test_walk_and_count(self):
        ns = Namespace()
        ns.add("/d", make_dir())
        ns.add("/d/sub", make_dir())
        ns.add("/d/f1", make_file())
        ns.add("/d/sub/f2", make_file())
        files = ns.walk_files("/")
        assert [p for p, _ in files] == ["/d/f1", "/d/sub/f2"]
        assert ns.count_entries("/") == (2, 2)

    def test_extend_to(self):
        f = make_file()
        f.extend_to(100)
        f.extend_to(50)
        assert f.size == 100
        with pytest.raises(ConfigurationError):
            f.extend_to(-1)


class TestNamespaceProperties:
    @given(st.lists(st.sampled_from("abcde"), min_size=1, max_size=5, unique=True))
    def test_add_then_listdir_round_trip(self, names):
        ns = Namespace()
        ns.add("/d", make_dir())
        for n in names:
            ns.add(f"/d/{n}", make_file(n))
        assert ns.listdir("/d") == sorted(names)
        nfiles, _ = ns.count_entries("/")
        assert nfiles == len(names)
