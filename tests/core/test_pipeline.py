"""Tests for the phase-pipeline engine: registry, observers, backends."""

import logging

import pytest

from repro.core.cycle import (
    KnowledgeCycle,
    PersistencePhase,
    default_phase_registry,
)
from repro.core.knowledge import Knowledge
from repro.core.persistence import BatchedBackend, KnowledgeDatabase, KnowledgeRepository
from repro.core.persistence.backend import PersistenceBackend
from repro.core.pipeline import (
    LoggingObserver,
    Phase,
    PhasePipeline,
    PhaseRegistry,
    TimingObserver,
)
from repro.iostack.stack import Testbed
from repro.util.errors import PersistenceError, PipelineError

CYCLE_XML = """
<jube>
  <benchmark name="pipe-test" outpath="ignored">
    <parameterset name="pattern">
      <parameter name="transfersize">1m,2m</parameter>
      <parameter name="command">ior -a mpiio -b 4m -t $transfersize -s 4 -F -e -i 3 -o /scratch/pp/test -k</parameter>
      <parameter name="nodes">2</parameter>
      <parameter name="taskspernode">10</parameter>
    </parameterset>
    <step name="run" work="ior">
      <use>pattern</use>
    </step>
  </benchmark>
</jube>
"""


class _NamedPhase:
    def __init__(self, name, fn=None):
        self.name = name
        self.fn = fn
        self.calls = 0

    def run(self, context):
        self.calls += 1
        return self.fn(context) if self.fn else None


class TestPhaseRegistry:
    def test_registration_preserves_order(self):
        reg = PhaseRegistry([_NamedPhase("a"), _NamedPhase("b")])
        reg.register(_NamedPhase("c"))
        assert reg.names() == ["a", "b", "c"]
        assert len(reg) == 3
        assert "b" in reg and "z" not in reg

    def test_before_after_anchors(self):
        reg = PhaseRegistry([_NamedPhase("a"), _NamedPhase("c")])
        reg.register(_NamedPhase("b"), before="c")
        reg.register(_NamedPhase("d"), after="c")
        assert reg.names() == ["a", "b", "c", "d"]

    def test_before_and_after_rejected(self):
        reg = PhaseRegistry([_NamedPhase("a")])
        with pytest.raises(PipelineError):
            reg.register(_NamedPhase("b"), before="a", after="a")

    def test_duplicate_rejected(self):
        reg = PhaseRegistry([_NamedPhase("a")])
        with pytest.raises(PipelineError):
            reg.register(_NamedPhase("a"))

    def test_unnamed_rejected(self):
        with pytest.raises(PipelineError):
            PhaseRegistry([_NamedPhase("")])

    def test_unknown_anchor(self):
        reg = PhaseRegistry([_NamedPhase("a")])
        with pytest.raises(PipelineError, match="no phase 'z'"):
            reg.register(_NamedPhase("b"), before="z")

    def test_replace_and_unregister(self):
        reg = PhaseRegistry([_NamedPhase("a"), _NamedPhase("b")])
        old = reg.replace("a", _NamedPhase("a2"))
        assert old.name == "a"
        assert reg.names() == ["a2", "b"]
        removed = reg.unregister("b")
        assert removed.name == "b"
        with pytest.raises(PipelineError):
            reg.unregister("b")
        with pytest.raises(PipelineError):
            reg.get("b")

    def test_replace_name_collision(self):
        reg = PhaseRegistry([_NamedPhase("a"), _NamedPhase("b")])
        with pytest.raises(PipelineError):
            reg.replace("a", _NamedPhase("b"))

    def test_default_registry_order(self):
        assert default_phase_registry().names() == [
            "generation",
            "extraction",
            "persistence",
            "analysis",
            "usage",
        ]
        for phase in default_phase_registry():
            assert isinstance(phase, Phase)


class TestPipelineExecution:
    def _context(self, tmp_path, db):
        cycle = KnowledgeCycle(Testbed.fuchs_csc(seed=300), db, workspace=tmp_path)
        return cycle._context("<unused/>")

    def test_empty_registry_rejected(self):
        with pytest.raises(PipelineError):
            PhasePipeline(PhaseRegistry())

    def test_runs_in_order_and_reports_counts(self, tmp_path):
        order = []
        reg = PhaseRegistry(
            [
                _NamedPhase("one", lambda ctx: order.append("one") or 3),
                _NamedPhase("two", lambda ctx: order.append("two")),
            ]
        )
        timer = TimingObserver()
        with KnowledgeDatabase(":memory:") as db:
            PhasePipeline(reg, [timer]).run(self._context(tmp_path, db))
        assert order == ["one", "two"]
        assert [(t.phase, t.artifacts) for t in timer.timings] == [("one", 3), ("two", 0)]
        assert all(t.duration_s >= 0 for t in timer.timings)

    def test_error_fires_observer_and_propagates(self, tmp_path):
        def boom(ctx):
            raise ValueError("phase exploded")

        timer = TimingObserver()
        reg = PhaseRegistry([_NamedPhase("ok"), _NamedPhase("bad", boom), _NamedPhase("never")])
        with KnowledgeDatabase(":memory:") as db:
            with pytest.raises(ValueError, match="phase exploded"):
                PhasePipeline(reg, [timer]).run(self._context(tmp_path, db))
        assert [t.phase for t in timer.timings] == ["ok", "bad"]
        assert timer.timings[-1].error and "phase exploded" in timer.timings[-1].error
        assert reg.get("never").calls == 0

    def test_logging_observer(self, tmp_path, caplog):
        reg = PhaseRegistry([_NamedPhase("solo", lambda ctx: 1)])
        with KnowledgeDatabase(":memory:") as db:
            with caplog.at_level(logging.INFO, logger="repro.pipeline"):
                PhasePipeline(reg, [LoggingObserver()]).run(self._context(tmp_path, db))
        assert any("phase solo: done" in r.message for r in caplog.records)

    def test_timing_observer_durations_and_reset(self, tmp_path):
        timer = TimingObserver()
        reg = PhaseRegistry([_NamedPhase("p", lambda ctx: 1)])
        with KnowledgeDatabase(":memory:") as db:
            ctx = self._context(tmp_path, db)
            PhasePipeline(reg, [timer]).run(ctx)
            PhasePipeline(reg, [timer]).run(ctx)
        assert len(timer.timings) == 2
        assert set(timer.durations) == {"p"}
        timer.reset()
        assert timer.timings == []


class TestCycleThroughPipeline:
    def test_custom_sixth_phase_batched_backend_and_timings(self, tmp_path):
        # The ISSUE acceptance test: add a validation phase between
        # extraction and persistence, swap in the batched backend, and
        # time every phase — all without touching cycle.py.
        validated = []

        class ValidationPhase:
            name = "validation"

            def run(self, context):
                for k in context.extracted:
                    assert k.summary("write").bw_mean > 0
                    validated.append(k)
                return len(validated)

        phases = default_phase_registry()
        phases.register(ValidationPhase(), after="extraction")
        timer = TimingObserver()
        backend = BatchedBackend(KnowledgeDatabase(":memory:"))
        assert isinstance(backend, PersistenceBackend)
        try:
            cycle = KnowledgeCycle(
                Testbed.fuchs_csc(seed=301),
                backend,
                workspace=tmp_path,
                phases=phases,
                observers=[timer],
            )
            result = cycle.run_cycle(CYCLE_XML)
            assert len(result.knowledge) == 2
            assert len(validated) == 2
            assert result.knowledge_ids == [1, 2]
            assert backend.table_count("performances") == 2
            # Every phase of the revolution was timed, in order.
            assert [t.phase for t in timer.timings] == [
                "generation",
                "extraction",
                "validation",
                "persistence",
                "analysis",
                "usage",
            ]
            assert all(t.duration_s >= 0 for t in timer.timings)
            assert timer.timings[3].artifacts == 2  # persistence saved both
        finally:
            backend.close()

    def test_phase_can_be_skipped(self, tmp_path):
        phases = default_phase_registry()
        phases.unregister("persistence")
        with KnowledgeDatabase(":memory:") as db:
            cycle = KnowledgeCycle(
                Testbed.fuchs_csc(seed=302), db, workspace=tmp_path, phases=phases
            )
            result = cycle.run_cycle(CYCLE_XML)
            assert len(result.knowledge) == 2
            assert result.knowledge_ids == []
            assert db.table_count("performances") == 0

    def test_observer_sequence_across_revolutions(self, tmp_path):
        timer = TimingObserver()
        with KnowledgeDatabase(":memory:") as db:
            cycle = KnowledgeCycle(
                Testbed.fuchs_csc(seed=303), db, workspace=tmp_path, observers=[timer]
            )
            cycle.run_cycle(CYCLE_XML)
            cycle.run_cycle(CYCLE_XML)
        assert len(timer.timings) == 10  # 5 phases x 2 revolutions
        assert timer.durations.keys() == {
            "generation", "extraction", "persistence", "analysis", "usage",
        }


class TestAtomicPersistence:
    def test_mid_batch_failure_rolls_back(self, tmp_path):
        # Satellite: one revolution's persistence is a single
        # transaction; a failure on the second object must also undo
        # the first.
        good = Knowledge(benchmark="ior", command="c", parameters={"x": 1})
        bad = Knowledge(benchmark="ior", command="c")
        bad.summaries = None  # iterating summaries raises TypeError
        with KnowledgeDatabase(":memory:") as db:
            cycle = KnowledgeCycle(Testbed.fuchs_csc(seed=304), db, workspace=tmp_path)
            context = cycle._context()
            context.extracted = [good, bad]
            with pytest.raises(TypeError):
                PersistencePhase().run(context)
            assert db.table_count("performances") == 0

    def test_save_many_rolls_back_together(self):
        with KnowledgeDatabase(":memory:") as db:
            repo = KnowledgeRepository(db)
            bad = Knowledge(benchmark="ior")
            bad.summaries = None
            with pytest.raises(TypeError):
                repo.save_many([Knowledge(benchmark="ior"), bad])
            assert db.table_count("performances") == 0
            assert repo.save_many([Knowledge(benchmark="ior")] * 3) == [1, 2, 3]


class TestBatchedBackend:
    def test_commits_deferred_until_flush(self, tmp_path):
        path = tmp_path / "batched.db"
        backend = BatchedBackend(KnowledgeDatabase(path))
        repo = KnowledgeRepository(backend)
        repo.save(Knowledge(benchmark="ior"))
        repo.save(Knowledge(benchmark="ior"))
        assert backend.pending_commits == 2
        # Nothing is durable yet: rolling back erases the whole batch.
        backend.rollback()
        assert backend.table_count("performances") == 0
        repo.save(Knowledge(benchmark="ior"))
        backend.flush()
        assert backend.pending_commits == 0
        backend.close()
        with KnowledgeDatabase(path) as other:
            assert other.table_count("performances") == 1

    def test_rollback_abandons_batch(self):
        backend = BatchedBackend(KnowledgeDatabase(":memory:"))
        KnowledgeRepository(backend).save(Knowledge(benchmark="ior"))
        backend.rollback()
        assert backend.table_count("performances") == 0
        backend.close()

    def test_context_manager_flushes(self, tmp_path):
        path = tmp_path / "cm.db"
        with BatchedBackend(KnowledgeDatabase(path)) as backend:
            KnowledgeRepository(backend).save(Knowledge(benchmark="ior"))
        with KnowledgeDatabase(path) as db:
            assert db.table_count("performances") == 1


class TestDatabaseTransaction:
    def test_nested_transactions_commit_once_at_outermost(self):
        with KnowledgeDatabase(":memory:") as db:
            with db.transaction():
                with db.transaction():
                    db.execute(
                        "INSERT INTO performances (benchmark, command) VALUES ('ior', 'c')"
                    )
                    db.commit()  # no-op inside the transaction
            assert db.table_count("performances") == 1

    def test_exception_rolls_back(self):
        with KnowledgeDatabase(":memory:") as db:
            with pytest.raises(RuntimeError):
                with db.transaction():
                    db.execute(
                        "INSERT INTO performances (benchmark, command) VALUES ('ior', 'c')"
                    )
                    raise RuntimeError("abort")
            assert db.table_count("performances") == 0

    def test_use_after_close_is_persistence_error(self):
        db = KnowledgeDatabase(":memory:")
        db.close()
        db.close()  # idempotent
        assert db.closed
        with pytest.raises(PersistenceError, match="closed"):
            db.execute("SELECT 1")
        with pytest.raises(PersistenceError):
            db.commit()
        with pytest.raises(PersistenceError):
            with db.transaction():
                pass
