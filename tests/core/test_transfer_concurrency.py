"""Concurrency tests for knowledge import/export (`transfer.py`).

The JSON interchange is the sharing path between knowledge bases; it
must stay consistent when the source database is being written to at
the same time.  Repository saves are atomic (child rows land in the
same transaction as the parent), so an exporter running against a live
database may miss objects that have not committed yet — but it must
never transfer a *partial* object.
"""

import threading

import pytest

from repro.core.knowledge import Knowledge, KnowledgeResult, KnowledgeSummary
from repro.core.persistence.backend import ResilientBackend
from repro.core.persistence.database import KnowledgeDatabase
from repro.core.persistence.repository import KnowledgeRepository
from repro.core.persistence.transfer import export_json, import_json

N_OBJECTS = 30
N_SUMMARIES = 2
N_RESULTS = 3


def make_knowledge(marker: int) -> Knowledge:
    """A knowledge object with a fixed, checkable shape."""
    summaries = [
        KnowledgeSummary(
            operation=op, api="MPIIO",
            bw_max=100.0 + marker, bw_min=90.0 + marker, bw_mean=95.0 + marker,
            bw_stddev=1.0, ops_max=30.0, ops_min=10.0, ops_mean=20.0,
            ops_stddev=5.0, iterations=N_RESULTS,
            results=[
                KnowledgeResult(iteration=i, bandwidth_mib=95.0 + marker + i,
                                iops=10.0 * (i + 1))
                for i in range(N_RESULTS)
            ],
        )
        for op in ("write", "read")
    ]
    return Knowledge(
        benchmark="ior", command=f"ior -m {marker}", api="MPIIO",
        num_nodes=2, num_tasks=8,
        parameters={"marker": marker, "xfersize_bytes": 1 << 20},
        summaries=summaries,
    )


def assert_complete(knowledge: Knowledge) -> None:
    """Every transferred object must be whole — no partial child rows."""
    assert len(knowledge.summaries) == N_SUMMARIES, (
        f"object {knowledge.parameters.get('marker')} transferred with "
        f"{len(knowledge.summaries)} of {N_SUMMARIES} summaries"
    )
    for summary in knowledge.summaries:
        assert len(summary.results) == N_RESULTS, (
            f"object {knowledge.parameters.get('marker')} summary "
            f"{summary.operation!r} transferred with "
            f"{len(summary.results)} of {N_RESULTS} results"
        )
        assert summary.iterations == N_RESULTS


@pytest.mark.timeout(60)
def test_export_import_round_trip_during_concurrent_writes(tmp_path):
    """Export/import stays whole-object atomic while a writer runs."""
    db_path = tmp_path / "knowledge.db"
    # Prime the schema before the threads race to create it.
    KnowledgeDatabase(db_path).close()

    started = threading.Event()
    failures: list[BaseException] = []

    def writer() -> None:
        try:
            with ResilientBackend(KnowledgeDatabase(db_path)) as backend:
                repo = KnowledgeRepository(backend)
                started.set()
                for marker in range(N_OBJECTS):
                    repo.save(make_knowledge(marker))
        except BaseException as exc:  # pragma: no cover - surfaced below
            failures.append(exc)
            started.set()

    thread = threading.Thread(target=writer, name="transfer-writer")
    thread.start()
    started.wait(timeout=10)

    # Round-trip repeatedly while the writer is live: every object that
    # makes it into an export must be complete.
    reader_backend = ResilientBackend(KnowledgeDatabase(db_path))
    reader = KnowledgeRepository(reader_backend)
    rounds = 0
    while thread.is_alive() or rounds == 0:
        exported = reader.load_all()
        path = tmp_path / f"transfer-{rounds}.json"
        export_json(exported, path)
        for knowledge in import_json(path):
            assert_complete(knowledge)
        rounds += 1
        if rounds > 500:  # pragma: no cover - runaway guard
            break
    thread.join(timeout=30)
    assert not thread.is_alive(), "writer thread hung"
    assert not failures, f"writer failed: {failures[0]!r}"

    # After the writer finishes, the transfer must carry everything.
    final_path = tmp_path / "transfer-final.json"
    export_json(reader.load_all(), final_path)
    final = import_json(final_path)
    assert len(final) == N_OBJECTS
    markers = sorted(k.parameters["marker"] for k in final)
    assert markers == list(range(N_OBJECTS))
    for knowledge in final:
        assert_complete(knowledge)
    reader_backend.close()
