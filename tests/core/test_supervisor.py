"""Self-healing knowledge server: supervised respawn, breaker heal via
half-open probe, crash-loop demotion, startup deadlines, the health op,
and the client honoring server-supplied ``retry_after`` hints."""

import socket
import time
from types import SimpleNamespace

import pytest

from repro.core.knowledge import (
    Knowledge,
    KnowledgeResult,
    KnowledgeSummary,
)
from repro.core.metrics import MetricsRegistry, render_metrics_report
from repro.core.resilience import CircuitBreaker, RetryPolicy
from repro.core.service.client import ServiceClient, open_service
from repro.core.service.server import (
    CrashLoopedHandle,
    KnowledgeServer,
    WorkerHandle,
)
from repro.core.service.wire import error_body, error_code, raise_wire_error
from repro.util.errors import (
    ServiceError,
    ServiceTransportError,
    WorkerStartupError,
)


def make_knowledge(marker: int, host: str = "node1") -> Knowledge:
    return Knowledge(
        benchmark="ior", command=f"ior -m {marker}", api="MPIIO",
        num_nodes=2, num_tasks=8,
        parameters={"marker": marker},
        summaries=[
            KnowledgeSummary(
                operation="write", api="MPIIO",
                bw_max=101.0, bw_min=99.0, bw_mean=100.0, bw_stddev=1.0,
                ops_max=3.0, ops_min=1.0, ops_mean=2.0, ops_stddev=0.5,
                iterations=1,
                results=[
                    KnowledgeResult(iteration=0, bandwidth_mib=100.0, iops=2.0)
                ],
            )
        ],
        system={"hostname": host},
    )


def _url(server) -> str:
    return f"knowledge+tcp://{server.host}:{server.port}/"


def _counter(metrics: MetricsRegistry, name: str) -> float:
    family = metrics.snapshot().get("counters", {}).get(name)
    if not family:
        return 0.0
    return sum(row["value"] for row in family["series"])


# ----------------------------------------------------------------------
# the acceptance path: SIGKILL'd worker respawns and serves again
# ----------------------------------------------------------------------
class TestSupervisedRespawn:
    def test_sigkilled_worker_respawns_and_serves_all_shards(self, tmp_path):
        metrics = MetricsRegistry()
        server = KnowledgeServer(
            tmp_path / "store", shards=2, worker_processes=2,
            metrics=metrics, request_timeout_s=15.0, supervisor_poll_s=0.05,
        )
        server.start()
        try:
            with ServiceClient.open(_url(server)) as client:
                objs = [make_knowledge(m, host=f"n{m}") for m in range(8)]
                ids = client.save_many(objs)
                victim = server.workers[0]
                old_pid = victim.process.pid
                unhealthy_at = time.monotonic()
                victim.process.kill()
                victim.process.wait()

                deadline = time.monotonic() + 30.0
                healed = False
                while time.monotonic() < deadline:
                    try:
                        if client.count() == 8:
                            healed = True
                            break
                    except ServiceError:
                        pass
                    time.sleep(0.05)
                assert healed, "server never returned to serving all shards"
                time_to_heal = time.monotonic() - unhealthy_at
                assert time_to_heal < 30.0

                # zero lost, zero duplicated rows: the respawned worker
                # reopened the same durable shards
                assert client.list_ids() == sorted(ids)
                successor = server.workers[0]
                assert successor.process.pid != old_pid
                assert successor.owned_shards == victim.owned_shards

                health = client.health()
                assert health["status"] == "healthy"
                assert health["supervised"] is True
                by_worker = {w["worker"]: w for w in health["workers"]}
                assert by_worker[0]["respawns"] >= 1
                assert by_worker[0]["pid"] == successor.process.pid
                assert by_worker[0]["breaker"] == "closed"
                assert by_worker[0]["last_heal_s_ago"] is not None
        finally:
            server.close()
        assert _counter(metrics, "service.supervisor.respawns_total") >= 1
        heal = metrics.snapshot()["histograms"].get(
            "service.supervisor.heal_seconds"
        )
        assert heal and sum(row["count"] for row in heal["series"]) >= 1
        report = render_metrics_report(metrics.snapshot())
        assert "worker respawns" in report
        assert "time to heal" in report

    def test_breaker_heals_without_respawn_via_single_probe(self, tmp_path):
        """A quarantined-but-alive worker is readmitted through exactly
        one half-open probe — no process churn."""
        metrics = MetricsRegistry()
        server = KnowledgeServer(
            tmp_path / "store", shards=2, worker_processes=2,
            metrics=metrics, supervisor_poll_s=3600.0,  # tick by hand
        )
        server.start()
        try:
            victim = server.workers[0]
            pid = victim.process.pid
            for _ in range(victim.breaker.failure_threshold):
                victim.breaker.record_failure()
            assert victim.breaker.state == CircuitBreaker.OPEN
            with pytest.raises(ServiceTransportError) as excinfo:
                victim.call("ping", {})
            assert excinfo.value.wire_code == "quarantine"
            assert excinfo.value.retry_after_s > 0  # honest hint

            server.supervisor.tick()  # sees OPEN inside its window: waits
            assert victim.breaker.state == CircuitBreaker.OPEN
            assert server.workers[0] is victim

            time.sleep(victim.breaker.reset_timeout_s + 0.1)
            assert victim.breaker.state == CircuitBreaker.HALF_OPEN
            server.supervisor.tick()  # one ping through the probe slot

            assert victim.breaker.state == CircuitBreaker.CLOSED
            assert server.workers[0] is victim  # same handle,
            assert victim.process.pid == pid  # same process
            slot = server.supervisor.slot_info(0)
            assert slot["respawns"] == 0
            assert slot["crash_looped"] is False
            assert slot["last_heal_s_ago"] is not None
            assert slot["unhealthy_for_s"] is None

            # exactly one probe: one open->half-open and one
            # half-open->closed transition, nothing more
            transitions = metrics.snapshot()["counters"][
                "resilience.breaker_transitions_total"
            ]["series"]
            worker0 = {
                (r["labels"]["from"], r["labels"]["to"]): r["value"]
                for r in transitions
                if r["labels"].get("name") == "service-worker-0"
            }
            assert worker0[("open", "half-open")] == 1
            assert worker0[("half-open", "closed")] == 1
            heal = metrics.snapshot()["histograms"][
                "service.supervisor.heal_seconds"
            ]
            probe_rows = [
                r for r in heal["series"] if r["labels"].get("mode") == "probe"
            ]
            assert sum(r["count"] for r in probe_rows) == 1
        finally:
            server.close()
        assert _counter(metrics, "service.supervisor.respawns_total") == 0

    def test_crash_loop_demotes_group_with_typed_retry_after(self, tmp_path):
        metrics = MetricsRegistry()
        server = KnowledgeServer(
            tmp_path / "store", shards=2, worker_processes=2,
            metrics=metrics, supervisor_poll_s=3600.0,
            crash_loop_threshold=2, crash_loop_window_s=30.0,
            respawn_policy=RetryPolicy(
                max_attempts=3, base_delay_s=0.0, jitter=0.0,
                salt="test-supervisor",
            ),
        )
        server.start()
        try:
            victim = server.workers[0]
            owned = victim.owned_shards
            victim.process.kill()
            victim.process.wait()

            def failing_respawn(index):
                raise ServiceError("injected: worker cannot come back up")

            server._respawn_worker = failing_respawn
            for _ in range(4):  # threshold 2 -> third attempt demotes
                server.supervisor.tick()

            tombstone = server.workers[0]
            assert isinstance(tombstone, CrashLoopedHandle)
            assert tombstone.owned_shards == owned
            assert server.router._owner[owned[0]] is tombstone
            with pytest.raises(ServiceTransportError) as excinfo:
                tombstone.call("ping", {})
            assert excinfo.value.wire_code == "crash_loop"
            assert excinfo.value.retry_after_s > 0
            assert excinfo.value.transient  # retry *after the hint* is sane

            # over the wire: typed crash_loop error, no hang
            policy = RetryPolicy(max_attempts=1, salt="t")
            with ServiceClient.open(_url(server), retry_policy=policy) as c:
                with pytest.raises(ServiceTransportError) as wired:
                    c.count()
                assert wired.value.wire_code == "crash_loop"
                assert wired.value.retry_after_s > 0
                health = c.health()
                assert health["status"] == "degraded"
                by_worker = {w["worker"]: w for w in health["workers"]}
                assert by_worker[0]["crash_looped"] is True
                assert by_worker[0]["pid"] is None
                assert by_worker[0]["breaker"] == "crash-loop"

            # demoted means *stopped*: further ticks never respawn
            before = _counter(metrics, "service.supervisor.crash_loops_total")
            server.supervisor.tick()
            assert _counter(
                metrics, "service.supervisor.crash_loops_total"
            ) == before == 1
        finally:
            server.close()


# ----------------------------------------------------------------------
# startup deadline (satellite 1)
# ----------------------------------------------------------------------
class TestStartupDeadline:
    def test_hung_handshake_raises_typed_worker_startup_error(self):
        parent, child = socket.socketpair()
        fake_process = SimpleNamespace(
            poll=lambda: None, kill=lambda: None,
            wait=lambda timeout=None: 0, pid=4242,
        )
        handle = WorkerHandle(
            0, (0,), fake_process, [parent],
            breaker=CircuitBreaker(failure_threshold=3, reset_timeout_s=1.0),
            request_timeout_s=0.2,
        )
        start = time.monotonic()
        with pytest.raises(WorkerStartupError) as excinfo:
            handle.handshake(deadline_s=0.4)  # nobody ever answers hello
        assert time.monotonic() - start < 5.0  # bounded, not a hang
        assert excinfo.value.transient  # the supervisor may retry
        assert error_code(excinfo.value) == "worker-startup"
        child.close()
        handle.close_channels()

    def test_boot_respects_deadline_when_unsupervised(self, tmp_path,
                                                      monkeypatch):
        real_spawn = KnowledgeServer._spawn_worker

        def hung_spawn(self, worker_index, owned, *args):
            handle = real_spawn(self, worker_index, owned, *args)
            handle.process.kill()  # dies before it can answer hello
            handle.process.wait()
            return handle

        monkeypatch.setattr(KnowledgeServer, "_spawn_worker", hung_spawn)
        with pytest.raises(WorkerStartupError):
            KnowledgeServer(
                tmp_path / "store", shards=2, worker_processes=2,
                supervise=False, startup_deadline_s=2.0,
            )


# ----------------------------------------------------------------------
# retry_after plumbing (satellite 3) + wire round trip
# ----------------------------------------------------------------------
class _QuarantineOnceTransport:
    """Fails the first call with a hinted quarantine, then succeeds."""

    metrics = None

    def __init__(self, hint_s: float) -> None:
        self.hint_s = hint_s
        self.calls = 0

    def call(self, op, payload, *, timeout_s=None):
        self.calls += 1
        if self.calls == 1:
            exc = ServiceTransportError("quarantined", retryable=True)
            exc.wire_code = "quarantine"
            exc.retry_after_s = self.hint_s
            raise exc
        return {}

    def close(self):
        pass


class TestRetryAfterHint:
    def test_error_frame_round_trips_retry_after(self):
        exc = ServiceTransportError("worker 0 quarantined", retryable=True)
        exc.wire_code = "quarantine"
        exc.retry_after_s = 2.5
        body = error_body(exc)
        assert body["retry_after"] == 2.5
        assert body["retryable"] is True
        with pytest.raises(ServiceTransportError) as excinfo:
            raise_wire_error(body)
        assert excinfo.value.wire_code == "quarantine"
        assert excinfo.value.retry_after_s == 2.5
        assert excinfo.value.transient

    def test_crash_loop_code_reconstructs_transport_error(self):
        body = {"code": "crash_loop", "message": "shards dark",
                "retryable": True, "retry_after": 30.0}
        with pytest.raises(ServiceTransportError) as excinfo:
            raise_wire_error(body)
        assert excinfo.value.wire_code == "crash_loop"
        assert excinfo.value.retry_after_s == 30.0

    def test_client_sleeps_the_server_hint_not_its_own_schedule(self):
        sleeps = []
        client = ServiceClient(
            _QuarantineOnceTransport(hint_s=0.123),
            retry_policy=RetryPolicy(
                max_attempts=4, base_delay_s=5.0, jitter=0.0, salt="t",
            ),
            sleep=sleeps.append,
        )
        assert client.ping() is True
        assert sleeps == [0.123]  # the hint, not the 5 s policy delay

    def test_hint_is_still_clamped_to_the_request_deadline(self):
        sleeps = []
        client = ServiceClient(
            _QuarantineOnceTransport(hint_s=60.0),
            retry_policy=RetryPolicy(
                max_attempts=4, base_delay_s=0.001, jitter=0.0, salt="t",
            ),
            sleep=sleeps.append,
            timeout_s=0.5,
        )
        assert client.ping() is True
        assert len(sleeps) == 1
        assert sleeps[0] <= 0.5  # deadline clamp beats the hint


# ----------------------------------------------------------------------
# the health op (satellite 2)
# ----------------------------------------------------------------------
class TestHealthOp:
    def test_embedded_service_answers_a_minimal_stub(self, tmp_path):
        with ServiceClient(open_service(str(tmp_path / "emb"))) as client:
            health = client.health()
        assert health["status"] == "healthy"
        assert health["supervised"] is False
        assert health["workers"] == []

    def test_health_answers_while_draining(self, tmp_path):
        server = KnowledgeServer(tmp_path / "store", shards=2)
        server.start()
        try:
            with ServiceClient.open(_url(server)) as client:
                assert client.health()["status"] == "healthy"
                server.initiate_drain()
                health = client.health()  # not a typed draining error
                assert health["status"] == "draining"
        finally:
            server.close()
