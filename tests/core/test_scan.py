"""Columnar scan layer: sketches, pushdown, chunking, LIKE escaping.

The contract under test everywhere: ``repo.scan(query)`` must be
value-identical to the plain-Python reference fold
:func:`~repro.core.persistence.scan.fold_scan` over ``load_all()`` —
exactly for counts/min/max/percentiles (same order-independent sketch
on both sides), to 1e-9 relative for mean/stddev (float summation
order) — whatever the backing transport.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.analytics import synthesize_fleet
from repro.core.knowledge import Knowledge, KnowledgeResult, KnowledgeSummary
from repro.core.persistence.database import KnowledgeDatabase
from repro.core.persistence.repository import KnowledgeRepository
from repro.core.persistence.scan import (
    AggregateState,
    PercentileSketch,
    ScanQuery,
    chunked,
    escape_like,
    fold_scan,
    merge_partial_payloads,
)
from repro.core.service.client import ServiceClient
from repro.core.service.service import KnowledgeService
from repro.core.service.shard import KnowledgeShardMap
from repro.util.errors import PersistenceError


def make_knowledge(marker=0, benchmark="ior", api="POSIX", num_nodes=2,
                   num_tasks=8, operations=("write",), bw=500.0, ops=4000.0,
                   parameters=None):
    return Knowledge(
        benchmark, command=f"{benchmark} -m {marker}", api=api,
        num_nodes=num_nodes, num_tasks=num_tasks,
        parameters=dict(parameters or {}, marker=marker),
        summaries=[
            KnowledgeSummary(
                operation=op, api=api,
                bw_max=bw + 10, bw_min=bw - 10, bw_mean=bw, bw_stddev=2.0,
                ops_max=ops + 100, ops_min=ops - 100, ops_mean=ops,
                ops_stddev=40.0, iterations=2,
                results=[KnowledgeResult(iteration=i, bandwidth_mib=bw, iops=ops)
                         for i in range(2)],
            )
            for op in operations
        ],
        system={"hostname": "n0"},
    )


def assert_results_equal(scan_result, fold_result, rel_tol=1e-9):
    """Group-by-group, value-by-value equality (mean/stddev tolerant)."""
    assert [r.group for r in scan_result.rows] == [
        r.group for r in fold_result.rows
    ]
    for a, b in zip(scan_result.rows, fold_result.rows):
        assert set(a.values) == set(b.values)
        for key, va in a.values.items():
            vb = b.values[key]
            if key in ("mean", "stddev"):
                assert math.isclose(va, vb, rel_tol=rel_tol, abs_tol=1e-12), (
                    a.group, key, va, vb)
            else:
                assert va == vb, (a.group, key, va, vb)


# ----------------------------------------------------------------------
# building blocks: chunking, escaping, sketch, aggregate state
# ----------------------------------------------------------------------
class TestBuildingBlocks:
    def test_chunked_covers_every_item_in_order(self):
        items = list(range(1203))
        chunks = list(chunked(items, 500))
        assert [len(c) for c in chunks] == [500, 500, 203]
        assert [x for c in chunks for x in c] == items

    def test_chunked_empty_yields_nothing(self):
        assert list(chunked([], 500)) == []

    @pytest.mark.parametrize("raw,expected", [
        ("100%", "100\\%"),
        ("a_b", "a\\_b"),
        ("50\\%", "50\\\\\\%"),
        ("plain", "plain"),
    ])
    def test_escape_like_neutralises_wildcards(self, raw, expected):
        assert escape_like(raw) == expected

    @given(st.lists(st.floats(-1e6, 1e6, allow_nan=False), min_size=1,
                    max_size=200),
           st.integers(min_value=1, max_value=5))
    @settings(max_examples=50, deadline=None)
    def test_sketch_merge_is_order_independent(self, values, parts):
        whole = PercentileSketch()
        for v in values:
            whole.add(v)
        merged = PercentileSketch()
        for i in range(parts):
            part = PercentileSketch()
            for v in values[i::parts]:
                part.add(v)
            merged.merge(part)
        for q in (0.0, 0.25, 0.5, 0.75, 1.0):
            assert whole.quantile(q) == merged.quantile(q)

    def test_sketch_quantile_relative_accuracy(self):
        sketch = PercentileSketch()
        values = [1.0 + 0.37 * i for i in range(1000)]
        for v in values:
            sketch.add(v)
        values.sort()
        for q in (0.05, 0.5, 0.95):
            exact = values[round(q * (len(values) - 1))]
            assert math.isclose(sketch.quantile(q), exact, rel_tol=0.03)

    def test_sketch_payload_round_trip(self):
        sketch = PercentileSketch()
        for v in (-3.0, 0.0, 0.0, 2.5, 1e9):
            sketch.add(v)
        clone = PercentileSketch.from_payload(sketch.to_payload())
        for q in (0.0, 0.5, 1.0):
            assert clone.quantile(q) == sketch.quantile(q)

    def test_aggregate_state_matches_population_stats(self):
        values = [3.0, 7.0, 7.0, 11.0, 42.0]
        state = AggregateState()
        for v in values:
            state.add(v)
        out = state.finalize(())
        mean = sum(values) / len(values)
        var = sum((v - mean) ** 2 for v in values) / len(values)
        assert out["count"] == len(values)
        assert out["min"] == min(values) and out["max"] == max(values)
        assert math.isclose(out["mean"], mean, rel_tol=1e-12)
        assert math.isclose(out["stddev"], math.sqrt(var), rel_tol=1e-9)

    def test_aggregate_payload_round_trip_and_merge(self):
        a, b = AggregateState(), AggregateState()
        for v in (1.0, 2.0):
            a.add(v)
        for v in (3.0, 4.0):
            b.add(v)
        restored = AggregateState.from_payload(a.to_payload())
        restored.merge(b)
        whole = AggregateState()
        for v in (1.0, 2.0, 3.0, 4.0):
            whole.add(v)
        assert restored.finalize(()) == pytest.approx(whole.finalize(()))

    def test_merge_partial_payloads_unions_groups(self):
        a, b = AggregateState(), AggregateState()
        a.add(1.0)
        b.add(5.0)
        merged = merge_partial_payloads([
            {'["ior"]': a.to_payload()},
            {'["ior"]': b.to_payload(), '["mdtest"]': b.to_payload()},
        ])
        assert set(merged) == {'["ior"]', '["mdtest"]'}
        ior = AggregateState.from_payload(merged['["ior"]']).finalize(())
        assert ior["count"] == 2 and ior["max"] == 5.0


class TestScanQueryValidation:
    def test_unknown_metric_rejected(self):
        with pytest.raises(PersistenceError, match="metric"):
            ScanQuery(metric="latency_p99")

    def test_unknown_group_rejected(self):
        with pytest.raises(PersistenceError, match="group"):
            ScanQuery(group_by=("hostname",))

    def test_percentile_out_of_range_rejected(self):
        with pytest.raises(PersistenceError, match="percentile"):
            ScanQuery(percentiles=(101.0,))

    def test_payload_round_trip(self):
        query = ScanQuery(
            metric="ops_mean", benchmark="ior", api="POSIX",
            num_nodes_min=2, num_tasks_max=64,
            parameter=("stripe_pattern", "8x1M"),
            group_by=("benchmark", "operation"), percentiles=(50.0, 99.0),
        )
        assert ScanQuery.from_payload(query.to_payload()) == query


# ----------------------------------------------------------------------
# embedded repository: pushdown == fold, fast path, maintenance
# ----------------------------------------------------------------------
@pytest.fixture()
def fleet_repo(tmp_path):
    with KnowledgeDatabase(tmp_path / "fleet.db") as db:
        repo = KnowledgeRepository(db)
        runs, _ = synthesize_fleet(1234, runs=60, io500_runs=0)
        for k in runs:
            repo.save(k)
        yield repo


SCAN_QUERIES = [
    ScanQuery(),
    ScanQuery(group_by=("benchmark", "operation")),
    ScanQuery(metric="ops_mean", group_by=("benchmark",),
              percentiles=(50.0, 95.0)),
    ScanQuery(benchmark="ior", group_by=("num_nodes",), percentiles=(75.0,)),
    ScanQuery(api="POSIX", num_nodes_min=2, num_nodes_max=8,
              group_by=("benchmark", "num_nodes")),
    ScanQuery(num_tasks_min=16, metric="bw_max", group_by=("operation",)),
    ScanQuery(parameter=("raid_scheme", "RAID6"),
              group_by=("benchmark", "operation"), percentiles=(50.0,)),
]


class TestEmbeddedScan:
    @pytest.mark.parametrize("query", SCAN_QUERIES,
                             ids=lambda q: q.metric + "/" + ",".join(q.group_by))
    def test_scan_equals_reference_fold(self, fleet_repo, query):
        assert_results_equal(
            fleet_repo.scan(query), fold_scan(query, fleet_repo.load_all())
        )

    def test_summary_table_fast_path_is_used_and_correct(self, fleet_repo):
        query = ScanQuery(group_by=("benchmark", "api", "operation"))
        result = fleet_repo.scan(query)
        assert result.source == "summary-table"
        assert_results_equal(result, fold_scan(query, fleet_repo.load_all()))

    def test_percentiles_force_base_tables(self, fleet_repo):
        result = fleet_repo.scan(ScanQuery(group_by=("benchmark",),
                                           percentiles=(50.0,)))
        assert result.source == "base-tables"

    def test_parameter_filter_forces_base_tables(self, fleet_repo):
        result = fleet_repo.scan(
            ScanQuery(parameter=("raid_scheme", "RAID0"))
        )
        assert result.source == "base-tables"
        assert result.single()["count"] > 0

    def test_empty_store_scans_to_no_rows(self, tmp_path):
        with KnowledgeDatabase(tmp_path / "empty.db") as db:
            repo = KnowledgeRepository(db)
            assert not repo.scan(ScanQuery()).rows
            assert not repo.scan(ScanQuery(group_by=("benchmark",))).rows

    def test_delete_rebuilds_summary_table(self, fleet_repo):
        victim = fleet_repo.list_ids()[0]
        fleet_repo.delete(victim)
        query = ScanQuery(group_by=("benchmark", "operation"))
        result = fleet_repo.scan(query)
        assert result.source == "summary-table"
        assert_results_equal(result, fold_scan(query, fleet_repo.load_all()))

    def test_delete_missing_id_is_typed_error(self, fleet_repo):
        with pytest.raises(PersistenceError, match="no knowledge"):
            fleet_repo.delete(999_999)


class TestRowLoopRegressions:
    def test_fetch_many_survives_two_thousand_ids(self, tmp_path):
        # Regression: a single "IN (?,?,...)" with 2k ids used to raise
        # sqlite3.OperationalError: too many SQL variables.
        with KnowledgeDatabase(tmp_path / "big.db") as db:
            repo = KnowledgeRepository(db)
            ids = [repo.save(make_knowledge(i, bw=400.0 + i % 50))
                   for i in range(2000)]
            fetched = repo.fetch_many(ids)
            assert [k.knowledge_id for k in fetched] == ids
            assert fetched[1500].parameters["marker"] == 1500

    def test_fetch_many_missing_id_still_detected_across_chunks(self, tmp_path):
        with KnowledgeDatabase(tmp_path / "big.db") as db:
            repo = KnowledgeRepository(db)
            ids = [repo.save(make_knowledge(i)) for i in range(600)]
            with pytest.raises(PersistenceError, match="777777"):
                repo.fetch_many(ids + [777_777])

    def test_load_all_equals_per_id_loads(self, fleet_repo):
        batched = fleet_repo.load_all()
        looped = [fleet_repo.load(i) for i in fleet_repo.list_ids()]
        assert batched == looped

    def test_find_ids_by_parameter_escapes_like_wildcards(self, tmp_path):
        # "100%" must not glob onto "100x" (nor "a_b" onto "axb").
        with KnowledgeDatabase(tmp_path / "like.db") as db:
            repo = KnowledgeRepository(db)
            pct = repo.save(make_knowledge(1, parameters={"hint": "100%"}))
            repo.save(make_knowledge(2, parameters={"hint": "100x"}))
            under = repo.save(make_knowledge(3, parameters={"hint": "a_b"}))
            repo.save(make_knowledge(4, parameters={"hint": "axb"}))
            assert repo.find_ids_by_parameter("hint", "100%") == [pct]
            assert repo.find_ids_by_parameter("hint", "a_b") == [under]

    def test_scan_parameter_filter_with_wildcard_value(self, tmp_path):
        with KnowledgeDatabase(tmp_path / "like.db") as db:
            repo = KnowledgeRepository(db)
            repo.save(make_knowledge(1, parameters={"hint": "100%"}, bw=100.0))
            repo.save(make_knowledge(2, parameters={"hint": "100x"}, bw=900.0))
            query = ScanQuery(parameter=("hint", "100%"))
            result = repo.scan(query)
            assert result.single()["count"] == 1
            assert result.single()["mean"] == pytest.approx(100.0)
            assert_results_equal(result, fold_scan(query, repo.load_all()))


# ----------------------------------------------------------------------
# service transports: embedded service and knowledge+tcp://
# ----------------------------------------------------------------------
class TestServiceScan:
    def test_embedded_service_scan_equals_fold(self, tmp_path):
        shard_map = KnowledgeShardMap(tmp_path / "store", num_shards=3)
        service = KnowledgeService(shard_map, cache_size=16)
        try:
            with ServiceClient(service) as client:
                runs, _ = synthesize_fleet(99, runs=40, io500_runs=0)
                for k in runs:
                    client.save(k)
                for query in SCAN_QUERIES:
                    result = client.scan(query)
                    assert result.source == "service"
                    assert_results_equal(
                        result, fold_scan(query, client.load_all())
                    )
        finally:
            service.close()
            shard_map.close()

    def test_scan_result_reflects_new_saves(self, tmp_path):
        # The scan cache must invalidate on epoch bumps, not serve the
        # pre-save aggregate forever.
        shard_map = KnowledgeShardMap(tmp_path / "store", num_shards=2)
        service = KnowledgeService(shard_map, cache_size=16)
        try:
            with ServiceClient(service) as client:
                client.save(make_knowledge(1, bw=100.0))
                first = client.scan(ScanQuery())
                assert first.single()["count"] == 1
                client.save(make_knowledge(2, bw=300.0))
                second = client.scan(ScanQuery())
                assert second.single()["count"] == 2
                assert second.single()["mean"] == pytest.approx(200.0)
        finally:
            service.close()
            shard_map.close()

    def test_tcp_scan_equals_fold_across_worker_partials(self, tmp_path):
        from repro.core.service.server import KnowledgeServer

        server = KnowledgeServer(tmp_path / "store", shards=4,
                                 worker_processes=2)
        server.start()
        try:
            url = f"knowledge+tcp://{server.host}:{server.port}/"
            with ServiceClient.open(url) as client:
                runs, _ = synthesize_fleet(7, runs=48, io500_runs=0)
                for k in runs:
                    client.save(k)
                for query in SCAN_QUERIES:
                    assert_results_equal(
                        client.scan(query),
                        fold_scan(query, client.load_all()),
                    )
        finally:
            server.close()
