"""Tests for Phase-III persistence: schema, round trips, queries."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.knowledge import (
    FilesystemInfo,
    IO500Knowledge,
    IO500Testcase,
    Knowledge,
    KnowledgeResult,
    KnowledgeSummary,
)
from repro.core.persistence import (
    IO500Repository,
    KnowledgeDatabase,
    KnowledgeQueries,
    KnowledgeRepository,
    TABLES,
    resolve_database_target,
)
from repro.util.errors import PersistenceError


@pytest.fixture()
def db():
    with KnowledgeDatabase(":memory:") as database:
        yield database


def make_knowledge(bw_mean=2850.0, n_iters=3, **kw):
    results = [
        KnowledgeResult(iteration=i, bandwidth_mib=bw_mean + i, iops=10.0 * (i + 1),
                        latency_s=0.01, wrrd_time_s=1.0, total_time_s=1.1)
        for i in range(n_iters)
    ]
    summary = KnowledgeSummary(
        operation="write", api="MPIIO",
        bw_max=bw_mean + n_iters - 1, bw_min=bw_mean, bw_mean=bw_mean,
        bw_stddev=1.0, ops_max=30.0, ops_min=10.0, ops_mean=20.0, ops_stddev=5.0,
        iterations=n_iters, results=results,
    )
    defaults = dict(
        benchmark="ior",
        command="ior -a mpiio -b 4m -t 2m -o /scratch/t",
        api="MPIIO",
        test_file="/scratch/t",
        file_per_proc=True,
        num_nodes=4,
        num_tasks=80,
        tasks_per_node=20,
        start_time=100.0,
        end_time=200.0,
        parameters={"xfersize": "2 MiB", "xfersize_bytes": 2097152},
        summaries=[summary],
        filesystem=FilesystemInfo(
            entry_type="file", entry_id="1-A-1", metadata_node="meta01",
            stripe_pattern="RAID0", chunk_size="512K", num_targets=4,
            raid_scheme="RAID0", storage_pool="Default",
        ),
        system={"hostname": "fuchs0000", "system_name": "FUCHS-CSC",
                "processor_model": "Xeon", "architecture": "x86_64",
                "processor_cores": 20, "processor_mhz": 2500.0,
                "cache_size_bytes": 25 * 1024 * 1024, "memory_bytes": 128 * 1024**3},
    )
    defaults.update(kw)
    return Knowledge(**defaults)


class TestDatabase:
    def test_all_tables_created(self, db):
        names = {
            r["name"]
            for r in db.execute("SELECT name FROM sqlite_master WHERE type='table'")
        }
        assert set(TABLES) <= names

    def test_url_resolution(self):
        assert resolve_database_target(":memory:") == ":memory:"
        assert resolve_database_target("sqlite:///tmp/x.db") == "/tmp/x.db"
        assert resolve_database_target("local.db") == "local.db"

    def test_url_resolution_relative_vs_absolute(self):
        # Two slashes -> relative path, three or more -> absolute.
        assert resolve_database_target("sqlite://rel.db") == "rel.db"
        assert resolve_database_target("sqlite:///abs.db") == "/abs.db"
        assert resolve_database_target("sqlite:///var/lib/k.db") == "/var/lib/k.db"
        assert resolve_database_target("sqlite3:///tmp/x.db") == "/tmp/x.db"

    def test_path_object_passes_through(self, tmp_path):
        target = tmp_path / "k.db"
        assert resolve_database_target(target) == str(target)

    def test_bad_scheme_rejected(self):
        with pytest.raises(PersistenceError, match="unsupported database URL scheme"):
            resolve_database_target("postgres://host/db")
        with pytest.raises(PersistenceError):
            resolve_database_target("mysql://host/db")

    def test_empty_url_path_rejected(self):
        # No path at all, and slashes-only paths, are both rejected.
        with pytest.raises(PersistenceError, match="has no path"):
            resolve_database_target("sqlite://")
        with pytest.raises(PersistenceError, match="has no path"):
            resolve_database_target("sqlite:///")
        with pytest.raises(PersistenceError, match="has no path"):
            resolve_database_target("sqlite3://")

    def test_close_is_idempotent(self):
        db = KnowledgeDatabase(":memory:")
        db.close()
        db.close()
        assert db.closed

    def test_context_exit_after_close(self):
        # close() inside the with-block must not break __exit__.
        with KnowledgeDatabase(":memory:") as db:
            db.close()
        assert db.closed

    def test_use_after_close_raises_persistence_error(self):
        db = KnowledgeDatabase(":memory:")
        db.close()
        with pytest.raises(PersistenceError, match="closed"):
            db.execute("SELECT 1")
        with pytest.raises(PersistenceError, match="closed"):
            db.executemany("SELECT ?", [(1,)])
        with pytest.raises(PersistenceError, match="closed"):
            db.table_count("performances")

    def test_file_database_round_trip(self, tmp_path):
        target = tmp_path / "knowledge.db"
        with KnowledgeDatabase(target) as db:
            KnowledgeRepository(db).save(make_knowledge())
        with KnowledgeDatabase(target) as db:
            assert KnowledgeRepository(db).list_ids() == [1]

    def test_bad_table_name(self, db):
        with pytest.raises(PersistenceError):
            db.table_count("evil; DROP")


class TestKnowledgeRepository:
    def test_full_round_trip(self, db):
        repo = KnowledgeRepository(db)
        original = make_knowledge()
        kid = repo.save(original)
        assert original.knowledge_id == kid
        loaded = repo.load(kid)
        assert loaded.command == original.command
        assert loaded.parameters == original.parameters
        assert loaded.filesystem == original.filesystem
        assert loaded.system["processor_cores"] == 20
        ls, os_ = loaded.summary("write"), original.summary("write")
        assert ls.bw_mean == os_.bw_mean
        assert [r.bandwidth_mib for r in ls.results] == [
            r.bandwidth_mib for r in os_.results
        ]

    def test_load_missing(self, db):
        with pytest.raises(PersistenceError):
            KnowledgeRepository(db).load(404)

    def test_delete_cascades(self, db):
        repo = KnowledgeRepository(db)
        kid = repo.save(make_knowledge())
        repo.delete(kid)
        assert db.table_count("summaries") == 0
        assert db.table_count("results") == 0
        assert db.table_count("filesystems") == 0
        assert db.table_count("systems") == 0

    def test_delete_missing(self, db):
        with pytest.raises(PersistenceError):
            KnowledgeRepository(db).delete(7)

    def test_list_filter_by_benchmark(self, db):
        repo = KnowledgeRepository(db)
        repo.save(make_knowledge())
        repo.save(make_knowledge(benchmark="hacc-io"))
        assert len(repo.list_ids()) == 2
        assert len(repo.list_ids("ior")) == 1

    @settings(max_examples=20, deadline=None)
    @given(
        bw=st.floats(min_value=0.1, max_value=1e6),
        n=st.integers(min_value=1, max_value=8),
        fpp=st.booleans(),
    )
    def test_round_trip_property(self, bw, n, fpp):
        # Property: save → load is the identity on the stored fields.
        with KnowledgeDatabase(":memory:") as db:
            repo = KnowledgeRepository(db)
            k = make_knowledge(bw_mean=bw, n_iters=n, file_per_proc=fpp)
            loaded = repo.load(repo.save(k))
            assert loaded.file_per_proc == fpp
            assert loaded.summary("write").iterations == n
            assert loaded.summary("write").bw_mean == pytest.approx(bw)


class TestIO500Repository:
    def make_io500(self):
        return IO500Knowledge(
            score_total=3.0, score_bw=1.0, score_md=9.0,
            num_nodes=2, num_tasks=40, timestamp=1e9, version="sc22",
            testcases=[
                IO500Testcase(name="ior-easy-write", value=2.9, unit="GiB/s",
                              time_s=10.0, options={"blockSize": "64m"}),
                IO500Testcase(name="find", value=300.0, unit="kIOPS", time_s=0.5),
            ],
            system={"hostname": "fuchs0000", "processor_cores": 20},
        )

    def test_round_trip(self, db):
        repo = IO500Repository(db)
        original = self.make_io500()
        iofh = repo.save(original)
        loaded = repo.load(iofh)
        assert loaded.score_total == 3.0
        assert loaded.num_tasks == 40
        assert loaded.value("ior-easy-write") == pytest.approx(2.9)
        assert loaded.testcase("ior-easy-write").options == {"blockSize": "64m"}
        assert loaded.system["processor_cores"] == 20

    def test_delete_cascades(self, db):
        repo = IO500Repository(db)
        iofh = repo.save(self.make_io500())
        repo.delete(iofh)
        for table in ("IOFHsScores", "IOFHsTestcases", "IOFHsOptions", "IOFHsResults"):
            assert db.table_count(table) == 0

    def test_load_missing(self, db):
        with pytest.raises(PersistenceError):
            IO500Repository(db).load(99)


class TestQueries:
    def test_summary_rows_and_filters(self, db):
        repo = KnowledgeRepository(db)
        repo.save(make_knowledge(bw_mean=1000.0, api="POSIX"))
        repo.save(make_knowledge(bw_mean=3000.0))
        q = KnowledgeQueries(db)
        assert len(q.summary_rows()) == 2
        assert len(q.summary_rows(api="POSIX")) == 1
        best = q.best_configuration("write")
        assert best.bw_mean == 3000.0

    def test_best_configuration_empty(self, db):
        with pytest.raises(PersistenceError):
            KnowledgeQueries(db).best_configuration("write")

    def test_similar_knowledge(self, db):
        repo = KnowledgeRepository(db)
        a = repo.save(make_knowledge())
        b = repo.save(make_knowledge())
        c = repo.save(make_knowledge(num_tasks=8))
        q = KnowledgeQueries(db)
        assert q.similar_knowledge(a) == [b]
        assert set(q.similar_knowledge(a, same_tasks=False)) == {b, c}

    def test_similar_missing(self, db):
        with pytest.raises(PersistenceError):
            KnowledgeQueries(db).similar_knowledge(5)

    def test_database_report(self, db):
        KnowledgeRepository(db).save(make_knowledge())
        report = KnowledgeQueries(db).database_report()
        assert report["performances"] == 1
        assert report["results"] == 3
