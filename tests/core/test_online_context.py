"""Tests for online monitoring and anomaly-context collection."""

import numpy as np
import pytest

from repro.benchmarks_io.ior import IORConfig, parse_command, render_ior_output, run_ior
from repro.core.extraction import parse_ior_output
from repro.core.usage import (
    IterationAnomalyDetector,
    OnlineMonitor,
    collect_context,
)
from repro.darshan import DarshanProfiler
from repro.iostack.stack import Testbed
from repro.iostack.tracing import TeeTracer, TraceEvent
from repro.pfs import Fault
from repro.util.errors import UsageError
from repro.util.units import MIB


class TestOnlineMonitorUnit:
    def test_validation(self):
        with pytest.raises(UsageError):
            OnlineMonitor(interval_s=0)
        with pytest.raises(UsageError):
            OnlineMonitor(drop_threshold=1.5)
        with pytest.raises(UsageError):
            OnlineMonitor(warmup_intervals=0)

    def test_steady_stream_no_alerts(self):
        mon = OnlineMonitor(interval_s=1.0)
        for i in range(10):
            mon.record(TraceEvent("POSIX", "write", 0, "/f", 0, 100 * MIB, i + 0.1, i + 0.9))
        assert mon.finish() == []
        series = mon.throughput_series()
        assert len(series) == 10
        assert all(abs(v - 100.0) < 1e-9 for _, v in series)

    def test_drop_alerts(self):
        mon = OnlineMonitor(interval_s=1.0, drop_threshold=0.5)
        for i in range(5):
            mon.record(TraceEvent("POSIX", "write", 0, "/f", 0, 100 * MIB, i + 0.1, i + 0.9))
        # interval 5 collapses to 20% of baseline
        mon.record(TraceEvent("POSIX", "write", 0, "/f", 0, 20 * MIB, 5.1, 5.9))
        for i in range(6, 9):
            mon.record(TraceEvent("POSIX", "write", 0, "/f", 0, 100 * MIB, i + 0.1, i + 0.9))
        alerts = mon.finish()
        assert len(alerts) == 1
        assert alerts[0].kind == "throughput-drop"
        assert alerts[0].time_s == pytest.approx(5.0)
        assert alerts[0].observed_mib_s == pytest.approx(20.0)

    def test_warmup_suppresses_early_alerts(self):
        mon = OnlineMonitor(interval_s=1.0, warmup_intervals=3)
        mon.record(TraceEvent("POSIX", "write", 0, "/f", 0, 100 * MIB, 0.5, 0.6))
        mon.record(TraceEvent("POSIX", "write", 0, "/f", 0, 1 * MIB, 1.5, 1.6))
        assert mon.finish() == []

    def test_batch_ingestion(self):
        mon = OnlineMonitor(interval_s=0.5)
        durations = np.full(20, 0.1)
        mon.record_batch("POSIX", "write", 0, "/f", 0, 10 * MIB, durations, 0.0)
        series = mon.throughput_series()
        assert sum(v * 0.5 for _, v in series) == pytest.approx(200.0)  # total MiB

    def test_non_data_ops_ignored(self):
        mon = OnlineMonitor()
        mon.record(TraceEvent("POSIX", "open", 0, "/f", 0, 0, 0.0, 0.1))
        assert mon.throughput_series() == []


class TestOnlineMonitorIntegration:
    def test_detects_mid_run_fault_live(self):
        # The online counterpart of Fig. 5: fault during iteration 1
        # (0-based), detected from the event stream during the run.
        tb = Testbed.fuchs_csc(seed=23)
        tb.fs.faults.add(
            Fault(name="live", factor=0.3,
                  when={"benchmark": "ior", "iteration": 1, "op": "write"})
        )
        monitor = OnlineMonitor(interval_s=0.5, drop_threshold=0.6)
        cfg = IORConfig(api="MPIIO", block_size=4 * MIB, transfer_size=2 * MIB,
                        segment_count=20, iterations=3, test_file="/scratch/on/t",
                        file_per_proc=True, keep_file=True, read_file=False)
        run_ior(cfg, tb, num_nodes=2, tasks_per_node=10, tracer=monitor)
        alerts = monitor.finish()
        assert alerts, "online monitor missed the mid-run fault"

    def test_tee_tracer_feeds_monitor_and_darshan(self):
        tb = Testbed.fuchs_csc(seed=24)
        monitor = OnlineMonitor(interval_s=0.5)
        profiler = DarshanProfiler()
        cfg = IORConfig(api="POSIX", block_size=4 * MIB, transfer_size=2 * MIB,
                        segment_count=4, iterations=1, test_file="/scratch/tee/t",
                        file_per_proc=True, keep_file=True, read_file=False)
        res = run_ior(cfg, tb, 1, 4, tracer=TeeTracer(monitor, profiler))
        assert monitor.throughput_series()
        log = profiler.finalize(exe="ior", nprocs=4, start_offset_s=0,
                                end_offset_s=res.end_offset_s)
        assert log.records


class TestAnomalyContext:
    def test_context_names_injected_fault(self):
        tb = Testbed.fuchs_csc(seed=25)
        fault_tags = {"benchmark": "ior", "iteration": 1, "op": "write"}
        tb.fs.faults.add(Fault(name="ctx-fault", factor=0.4, when=fault_tags))
        cfg = parse_command(
            "ior -a mpiio -b 4m -t 2m -s 8 -F -e -i 4 -o /scratch/ctx/t -k"
        )
        res = run_ior(cfg, tb, num_nodes=2, tasks_per_node=10)
        knowledge = parse_ior_output(render_ior_output(res))
        anomaly = IterationAnomalyDetector().detect(knowledge)[0]

        context = collect_context(anomaly, tb, anomaly_tags=fault_tags)
        assert any("ctx-fault" in c for c in context.probable_causes)
        assert context.job_info["state"] == "COMPLETED"
        assert context.job_info["nodes"] == 2
        report = context.render()
        assert "Probable causes:" in report
        assert "ctx-fault" in report

    def test_context_with_degraded_target(self):
        tb = Testbed.fuchs_csc(seed=26)
        tb.fs.pool.targets[0].degrade(0.2)
        cfg = parse_command("ior -a posix -b 2m -t 1m -i 4 -o /scratch/ctx2/t -w -k")
        res = run_ior(cfg, tb, 1, 4)
        knowledge = parse_ior_output(render_ior_output(res))
        from repro.core.usage.anomaly import IterationAnomaly

        anomaly = IterationAnomaly(
            operation="write", iteration=1, bandwidth_mib=100.0,
            healthy_mean_mib=300.0, severity=3.0,
        )
        context = collect_context(anomaly, tb)
        assert context.degraded_targets
        assert any("degraded to 20%" in c for c in context.probable_causes)

    def test_context_without_causes(self):
        tb = Testbed.fuchs_csc(seed=27)
        from repro.core.usage.anomaly import IterationAnomaly

        anomaly = IterationAnomaly(
            operation="write", iteration=2, bandwidth_mib=1.0,
            healthy_mean_mib=2.0, severity=2.0,
        )
        context = collect_context(anomaly, tb)
        assert context.probable_causes == [
            "no degraded component recorded: suspect external interference"
        ]
