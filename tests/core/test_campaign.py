"""Campaign orchestrator: spec expansion, the job state machine, the
launcher worker pool, and the kill-and-resume exactly-once property."""

import itertools
import json

import pytest

from repro.core.campaign import (
    CampaignSpec,
    CampaignStore,
    Launcher,
    parse_campaign_toml,
)
from repro.core.campaign.cli import main as campaign_main
from repro.core.campaign.spec import job_jube_xml, load_campaign_file
from repro.core.campaign.store import ALLOWED_TRANSITIONS, JOB_STATES
from repro.core.metrics import MetricsRegistry, render_metrics_report
from repro.core.persistence.database import KnowledgeDatabase
from repro.core.persistence.repository import KnowledgeRepository
from repro.core.resilience import CircuitBreaker
from repro.core.service.client import ServiceClient
from repro.iostack.stack import Testbed
from repro.pfs.faults import Fault
from repro.util.errors import CampaignError, PersistenceError
from repro.util.rng import stream

SWEEP_TOML = """
[campaign]
name = "ior-xfersweep"
benchmark = "ior"
max_attempts = 3

[parameters]
transfersize = "1m,2m"

[fixed]
command = "ior -a mpiio -b 4m -t $transfersize -s 8 -F -e -i 3 -o /scratch/c/test -k"
nodes = "2"

[report]
x_axis = "transfersize"
metric = "bw_mean"
"""


def _submit(tmp_path, toml=SWEEP_TOML, backend=None, **store_kwargs):
    store = CampaignStore(tmp_path / "campaigns.db", **store_kwargs)
    backend_url = backend or str(tmp_path / "knowledge.db")
    campaign_id = store.submit(parse_campaign_toml(toml), backend_url)
    return store, campaign_id, backend_url


def _launcher(store, campaign_id, tmp_path, tag="ws", **kwargs):
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("seed", 7)
    return Launcher(store, campaign_id, workspace=tmp_path / tag, **kwargs)


def _knowledge_rows(backend_url):
    if backend_url.startswith("knowledge+"):  # service:// and tcp:// alike
        with ServiceClient.open(backend_url) as client:
            return client.fetch_many(client.list_ids())
    with KnowledgeDatabase(backend_url) as db:
        return KnowledgeRepository(db).load_all()


class _InjectedCrash(RuntimeError):
    """Simulates the launcher process dying at a checkpoint."""


# ----------------------------------------------------------------------
# spec parsing and expansion
# ----------------------------------------------------------------------
class TestCampaignSpec:
    def test_expansion_builds_dag(self):
        spec = parse_campaign_toml(SWEEP_TOML)
        jobs = spec.expand()
        assert [j.name for j in jobs] == ["run-0000", "run-0001", "report"]
        assert jobs[0].kind == "benchmark" and jobs[2].kind == "report"
        assert jobs[2].depends == ("run-0000", "run-0001")
        # the fixed command is merged into every combination unexpanded
        assert all("-t $transfersize" in j.params["command"] for j in jobs[:2])
        assert sorted(j.params["transfersize"] for j in jobs[:2]) == ["1m", "2m"]

    def test_cartesian_product(self):
        spec = CampaignSpec(
            name="c", benchmark="ior",
            parameters={"transfersize": "1m,2m,4m", "nodes": "2,4"},
            fixed={"command": "ior -t $transfersize"},
        )
        assert len(spec.expand()) == 6  # no report table -> no report job

    def test_validation_errors(self):
        with pytest.raises(CampaignError, match="unknown benchmark"):
            CampaignSpec(name="c", benchmark="nope", parameters={"a": "1"})
        with pytest.raises(CampaignError, match="at least one"):
            parse_campaign_toml("[campaign]\nname='c'\nbenchmark='ior'\n")
        with pytest.raises(CampaignError, match="unknown campaign table"):
            parse_campaign_toml(
                "[campaign]\nname='c'\nbenchmark='ior'\n[typo]\na='1'\n"
            )
        with pytest.raises(CampaignError, match="max_attempts"):
            CampaignSpec(
                name="c", benchmark="ior", parameters={"a": "1"}, max_attempts=0
            )
        with pytest.raises(CampaignError, match="cannot read"):
            load_campaign_file("/nonexistent/campaign.toml")

    def test_job_xml_keeps_commas_single_valued(self):
        # IOR commands contain commas; the per-job XML must not expand
        # them into extra workpackages.
        from repro.jube.parameters import expand_parameter_space
        from repro.jube.steps import DEFAULT_WORK_REGISTRY
        from repro.jube.xmlconfig import load_benchmark

        xml = job_jube_xml(
            "c", "ior", {"command": "ior -b 1m,2m <odd>", "nodes": "2"}
        )
        benchmark, _ = load_benchmark(
            xml, DEFAULT_WORK_REGISTRY, outpath="unused",
            shared={"testbed": None},
        )
        combos = expand_parameter_space(list(benchmark.parameter_sets.values()))
        assert len(combos) == 1
        assert combos[0]["command"] == "ior -b 1m,2m <odd>"


# ----------------------------------------------------------------------
# the store state machine
# ----------------------------------------------------------------------
class TestCampaignStore:
    def test_submit_counts_and_persistence(self, tmp_path):
        store, cid, _ = _submit(tmp_path)
        counts = store.counts(cid)
        assert counts == {
            "CREATED": 1, "READY": 2, "RUNNING": 0,
            "DONE": 0, "FAILED": 0, "RESTARTING": 0,
        }
        store.close()
        # the DAG survives reopening the file
        reopened = CampaignStore(tmp_path / "campaigns.db")
        assert reopened.counts(cid)["READY"] == 2
        assert [j.name for j in reopened.jobs(cid)] == [
            "run-0000", "run-0001", "report",
        ]

    def test_terminal_states_have_no_exits(self):
        assert ALLOWED_TRANSITIONS["DONE"] == ()
        assert ALLOWED_TRANSITIONS["FAILED"] == ()
        assert set(ALLOWED_TRANSITIONS) == set(JOB_STATES)

    def test_acquire_lease_and_complete(self, tmp_path):
        store, cid, _ = _submit(tmp_path)
        job = store.acquire(cid, "w0", now=100.0, lease_s=60.0)
        assert job.name == "run-0000" and job.state == "RUNNING"
        assert job.lease_owner == "w0" and job.lease_expires_at == 160.0
        assert job.attempts == 1
        store.heartbeat(job.job_id, now=150.0, lease_s=60.0)
        assert store.job(job.job_id).lease_expires_at == 210.0
        done = store.complete(job.job_id, [5, 3])
        assert done.state == "DONE" and done.knowledge_ids == (3, 5)
        assert done.lease_owner is None

    def test_illegal_transition_rejected(self, tmp_path):
        store, cid, _ = _submit(tmp_path)
        job = store.acquire(cid, "w0", now=0.0, lease_s=1.0)
        store.complete(job.job_id, [])
        with pytest.raises(CampaignError, match="illegal transition"):
            store.complete(job.job_id, [])
        with pytest.raises(CampaignError, match="cannot heartbeat"):
            store.heartbeat(job.job_id, now=0.0, lease_s=1.0)

    def test_retry_budget(self, tmp_path):
        store, cid, _ = _submit(tmp_path)
        job = store.acquire(cid, "w0", now=0.0, lease_s=1.0)
        # attempts 1 and 2 requeue; attempt 3 (== max_attempts) fails for good
        assert store.fail(job.job_id, "boom", retryable=True).state == "READY"
        job = store.acquire(cid, "w0", now=0.0, lease_s=1.0)
        assert job.attempts == 2
        assert store.fail(job.job_id, "boom", retryable=True).state == "READY"
        job = store.acquire(cid, "w0", now=0.0, lease_s=1.0)
        assert job.attempts == 3
        assert store.fail(job.job_id, "boom", retryable=True).state == "FAILED"

    def test_permanent_failure_skips_budget(self, tmp_path):
        store, cid, _ = _submit(tmp_path)
        job = store.acquire(cid, "w0", now=0.0, lease_s=1.0)
        failed = store.fail(job.job_id, "config error", retryable=False)
        assert failed.state == "FAILED" and failed.attempts == 1

    def test_dependency_gating_and_cascade(self, tmp_path):
        store, cid, _ = _submit(tmp_path)
        report = next(j for j in store.jobs(cid) if j.kind == "report")
        assert report.state == "CREATED"  # gated on the runs
        first = store.acquire(cid, "w0", now=0.0, lease_s=1.0)
        store.complete(first.job_id, [1])
        assert store.job(report.job_id).state == "CREATED"  # one dep left
        second = store.acquire(cid, "w0", now=0.0, lease_s=1.0)
        store.fail(second.job_id, "x", retryable=False)
        cascaded = store.job(report.job_id)
        assert cascaded.state == "FAILED" and cascaded.error == "dependency failed"

    def test_reclaim_is_deterministic_in_the_clock(self, tmp_path):
        store, cid, _ = _submit(tmp_path)
        job = store.acquire(cid, "w0", now=100.0, lease_s=50.0)
        assert store.reclaim(cid, now=149.0) == []  # lease still live
        reclaimed = store.reclaim(cid, now=151.0)
        assert [j.job_id for j in reclaimed] == [job.job_id]
        assert store.job(job.job_id).state == "RESTARTING"

    def test_force_reclaim_ignores_live_lease(self, tmp_path):
        store, cid, _ = _submit(tmp_path)
        job = store.acquire(cid, "w0", now=100.0, lease_s=1000.0)
        assert store.reclaim(cid, now=101.0, force=True)[0].job_id == job.job_id

    def test_release_returns_the_attempt(self, tmp_path):
        store, cid, _ = _submit(tmp_path)
        job = store.acquire(cid, "w0", now=0.0, lease_s=1.0)
        assert job.attempts == 1
        released = store.release(job.job_id)
        assert released.state == "READY" and released.attempts == 0

    def test_cancel(self, tmp_path):
        store, cid, _ = _submit(tmp_path)
        running = store.acquire(cid, "w0", now=0.0, lease_s=10.0)
        assert store.cancel(cid) == 2  # the other run + the report
        assert store.is_cancelled(cid)
        assert store.job(running.job_id).state == "RUNNING"  # left to finish
        cancelled = [j for j in store.jobs(cid) if j.error == "cancelled"]
        assert len(cancelled) == 2

    def test_counts_are_exact_throughout(self, tmp_path):
        store, cid, _ = _submit(tmp_path)

        def check():
            counts = store.counts(cid)
            states = [j.state for j in store.jobs(cid)]
            assert counts == {s: states.count(s) for s in JOB_STATES}
            assert sum(counts.values()) == 3

        check()
        job = store.acquire(cid, "w0", now=0.0, lease_s=1.0)
        check()
        store.fail(job.job_id, "x", retryable=True)
        check()


# ----------------------------------------------------------------------
# the launcher
# ----------------------------------------------------------------------
class TestLauncher:
    def test_drains_campaign_to_done(self, tmp_path):
        store, cid, backend = _submit(tmp_path)
        counts = _launcher(store, cid, tmp_path).run()
        assert counts["DONE"] == 3 and counts["FAILED"] == 0
        report = next(j for j in store.jobs(cid) if j.kind == "report")
        assert "bw_mean" in (report.result_text or "")
        rows = _knowledge_rows(backend)
        tokens = [r.parameters["campaign_job"] for r in rows]
        assert sorted(tokens) == [f"campaign-{cid}/run-0000", f"campaign-{cid}/run-0001"]
        runs = [j for j in store.jobs(cid) if j.kind == "benchmark"]
        assert sorted(i for j in runs for i in j.knowledge_ids) == sorted(
            r.knowledge_id for r in rows
        )

    def test_transient_fault_exhausts_budget_and_cascades(self, tmp_path):
        store, cid, _ = _submit(tmp_path)

        def broken_testbed(job_seed):
            testbed = Testbed.fuchs_csc(seed=job_seed)
            testbed.fs.faults.add(
                Fault(name="always", fail_probability=1.0,
                      error_kind="benchmark", when={"benchmark": "ior"},
                      transient=True)
            )
            return testbed

        counts = _launcher(
            store, cid, tmp_path, workers=1, testbed_factory=broken_testbed
        ).run()
        assert counts["FAILED"] == 3 and counts["DONE"] == 0
        runs = [j for j in store.jobs(cid) if j.kind == "benchmark"]
        assert all(j.attempts == j.max_attempts for j in runs)
        report = next(j for j in store.jobs(cid) if j.kind == "report")
        assert report.error == "dependency failed"

    def test_open_breaker_pauses_without_burning_budget(self, tmp_path):
        class TickClock:
            """Advances 50 ms per reading: the open window spans a few
            acquire attempts, then decays to half-open."""

            def __init__(self):
                self.t = 0.0

            def __call__(self):
                self.t += 0.05
                return self.t

        metrics = MetricsRegistry()
        store, cid, _ = _submit(tmp_path, metrics=metrics)
        breaker = CircuitBreaker(
            failure_threshold=1, reset_timeout_s=0.5, clock=TickClock()
        )
        breaker.record_failure()  # tripped before the campaign starts
        assert breaker.state == "open"
        counts = _launcher(store, cid, tmp_path, workers=1, breaker=breaker).run()
        # jobs acquired while the breaker was open were released (the
        # budget refunded), the half-open probe succeeded, and the
        # campaign still drained completely
        assert counts["DONE"] == 3
        assert all(j.attempts <= 1 for j in store.jobs(cid))
        snapshot = metrics.snapshot()
        released = sum(
            row["value"]
            for row in snapshot["counters"]["campaign.transitions_total"]["series"]
            if row["labels"] == {"from": "RUNNING", "to": "RESTARTING"}
        )
        assert released >= 1
        assert breaker.state == "closed"

    def test_campaign_metrics_family(self, tmp_path):
        metrics = MetricsRegistry()
        store, cid, _ = _submit(tmp_path, metrics=metrics)
        _launcher(store, cid, tmp_path, metrics=metrics).run()
        snapshot = metrics.snapshot()
        assert "campaign.transitions_total" in snapshot["counters"]
        assert "campaign.jobs" in snapshot["gauges"]
        assert "campaign.job_seconds" in snapshot["histograms"]
        report = render_metrics_report(snapshot)
        assert "Campaign orchestrator" in report
        assert "3 DONE" in report


# ----------------------------------------------------------------------
# the kill-and-resume exactly-once property
# ----------------------------------------------------------------------
def _run_crash_resume(tmp_path, crash_at, backend=None, workers=1):
    """Crash the launcher at the ``crash_at``-th state-transition
    checkpoint (pre- and post-commit sides both counted), resume, and
    assert zero lost / zero duplicated knowledge rows."""
    store, cid, backend_url = _submit(tmp_path, backend=backend)
    calls = itertools.count(1)

    def hook(job, old, new, when):
        if next(calls) == crash_at:
            raise _InjectedCrash(f"at checkpoint {crash_at}: {old}->{new} ({when})")

    store.on_transition = hook
    crashed = False
    try:
        _launcher(store, cid, tmp_path, tag="ws1", workers=workers).run()
    except _InjectedCrash:
        crashed = True
    # --status-style counts are exact at the crash point too
    counts = store.counts(cid)
    assert sum(counts.values()) == 3
    assert counts == {
        s: [j.state for j in store.jobs(cid)].count(s) for s in JOB_STATES
    }
    if crashed:
        store.on_transition = None
        _launcher(store, cid, tmp_path, tag="ws2", workers=workers).run(resume=True)
    final = store.counts(cid)
    assert final["DONE"] == 3, (crash_at, final)
    rows = _knowledge_rows(backend_url)
    real = [r for r in rows if not r.parameters.get("campaign_marker")]
    tokens = [r.parameters["campaign_job"] for r in real]
    assert len(tokens) == len(set(tokens)) == 2, (crash_at, tokens)  # exactly once
    return crashed


class TestKillAndResume:
    def test_every_early_checkpoint(self, tmp_path):
        # The first few launcher transitions deterministically cover
        # acquire (pre/post), complete (pre/post) and the requeue path.
        crashed = [
            _run_crash_resume(tmp_path / f"k{k}", crash_at=k) for k in (1, 2, 3, 4)
        ]
        assert all(crashed)

    def test_seeded_checkpoint_matrix(self, tmp_path, fault_seed):
        # CI's REPRO_FAULT_SEED matrix moves the sampled crash points.
        rng = stream(fault_seed, "campaign-crash-points")
        points = sorted({int(rng.random() * 14) + 1 for _ in range(4)})
        for k in points:
            _run_crash_resume(tmp_path / f"k{k}", crash_at=k)

    def test_resume_through_service_backend(self, tmp_path, fault_seed):
        rng = stream(fault_seed, "campaign-service-crash")
        k = int(rng.random() * 10) + 1
        url = f"knowledge+service://{tmp_path}/svcstore?shards=2&workers=2"
        _run_crash_resume(tmp_path, crash_at=k, backend=url)

    def test_resume_through_tcp_backend(self, tmp_path, fault_seed):
        """The same exactly-once guarantee with the knowledge base a
        network hop away: launcher crash, resume, zero lost / zero
        duplicated rows through a knowledge+tcp:// server whose shard
        groups live in separate worker processes."""
        from repro.core.service.server import KnowledgeServer

        rng = stream(fault_seed, "campaign-tcp-crash")
        k = int(rng.random() * 10) + 1
        server = KnowledgeServer(
            tmp_path / "tcpstore", shards=2, worker_processes=2
        )
        server.start()
        try:
            url = f"knowledge+tcp://{server.host}:{server.port}/"
            _run_crash_resume(tmp_path, crash_at=k, backend=url)
        finally:
            server.close()
        assert server.worker_returncodes == [0, 0]

    def test_resume_of_a_clean_campaign_is_a_no_op(self, tmp_path):
        store, cid, backend = _submit(tmp_path)
        _launcher(store, cid, tmp_path, tag="ws1").run()
        _launcher(store, cid, tmp_path, tag="ws2").run(resume=True)
        assert store.counts(cid)["DONE"] == 3
        assert len(_knowledge_rows(backend)) == 2  # nothing re-ran

    @pytest.mark.stress
    def test_soak_kill_resume_under_worker_pool(self, tmp_path, fault_seed):
        """CI campaign soak: a wider sweep, a multi-worker launcher
        killed mid-flight at seed-selected checkpoints, resumed, and
        checked for exactly-once knowledge rows."""
        toml = SWEEP_TOML.replace('transfersize = "1m,2m"', 'transfersize = "1m,2m,4m"')
        rng = stream(fault_seed, "campaign-soak")
        for trial in range(2):
            k = int(rng.random() * 20) + 1
            base = tmp_path / f"trial{trial}"
            store, cid, backend_url = _submit(base, toml=toml)
            calls = itertools.count(1)

            def hook(job, old, new, when, _calls=calls, _k=k):
                if next(_calls) == _k:
                    raise _InjectedCrash(f"soak checkpoint {_k}")

            store.on_transition = hook
            try:
                _launcher(store, cid, base, tag="ws1", workers=3).run()
            except _InjectedCrash:
                pass
            store.on_transition = None
            _launcher(store, cid, base, tag="ws2", workers=3).run(resume=True)
            assert store.counts(cid)["DONE"] == 4
            rows = [
                r for r in _knowledge_rows(backend_url)
                if not r.parameters.get("campaign_marker")
            ]
            tokens = [r.parameters["campaign_job"] for r in rows]
            assert len(tokens) == len(set(tokens)) == 3, (trial, k, tokens)

    @pytest.mark.stress
    @pytest.mark.timeout(600)
    def test_exactly_once_through_chaos_proxy(self, tmp_path, chaos_proxy,
                                              fault_seed):
        """CI chaos-soak: the campaign's exactly-once tokens survive a
        knowledge backend whose workers are SIGKILL'd on a seeded
        cadence mid-campaign — supervised respawn heals each kill, and
        the campaign-job idempotence check absorbs the ambiguity."""
        from repro.core.service.chaos import ChaosPolicy, WorkerKiller
        from repro.core.service.server import KnowledgeServer

        toml = SWEEP_TOML.replace("max_attempts = 3", "max_attempts = 8")
        metrics = MetricsRegistry()
        server = KnowledgeServer(
            tmp_path / "tcpstore", shards=2, worker_processes=2,
            metrics=metrics, supervisor_poll_s=0.05,
            crash_loop_threshold=10_000,
        )
        server.start()
        try:
            policy = ChaosPolicy(seed=fault_seed, kill_every=6)
            killer = WorkerKiller(server, every_frames=6, metrics=metrics)
            proxy = chaos_proxy(server.host, server.port, policy,
                                metrics=metrics, killer=killer)
            url = f"knowledge+tcp://{proxy.host}:{proxy.port}/"
            store, cid, backend_url = _submit(tmp_path, toml=toml, backend=url)
            for attempt in range(6):
                try:
                    _launcher(store, cid, tmp_path, tag=f"ws{attempt}").run(
                        resume=attempt > 0
                    )
                except Exception:  # noqa: BLE001 - a kill window; resume
                    continue
                if store.counts(cid)["DONE"] == 3:
                    break
            assert store.counts(cid)["DONE"] == 3
            rows = [
                r for r in _knowledge_rows(backend_url)
                if not r.parameters.get("campaign_marker")
            ]
            tokens = [r.parameters["campaign_job"] for r in rows]
            assert len(tokens) == len(set(tokens)) == 2, tokens
            assert killer.kills >= 1
            respawns = sum(
                row["value"]
                for row in metrics.snapshot()["counters"][
                    "service.supervisor.respawns_total"
                ]["series"]
            )
            assert respawns >= 1
        finally:
            server.close()


# ----------------------------------------------------------------------
# the CLI
# ----------------------------------------------------------------------
class TestCampaignCLI:
    def test_submit_run_status_roundtrip(self, tmp_path, capsys):
        toml_file = tmp_path / "sweep.toml"
        toml_file.write_text(SWEEP_TOML, encoding="utf-8")
        store_file = str(tmp_path / "campaigns.db")
        metrics_file = tmp_path / "m.json"
        assert campaign_main(
            [store_file, "--submit", str(toml_file), "--db", str(tmp_path / "k.db")]
        ) == 0
        assert "submitted campaign 1" in capsys.readouterr().out
        assert campaign_main(
            [store_file, "--run", "1", "--workspace", str(tmp_path / "ws"),
             "--metrics-json", str(metrics_file)]
        ) == 0
        assert "3 DONE" in capsys.readouterr().out
        snapshot = json.loads(metrics_file.read_text(encoding="utf-8"))
        assert "campaign.transitions_total" in snapshot["counters"]
        assert campaign_main([store_file, "--status"]) == 0
        out = capsys.readouterr().out
        assert "3 DONE" in out and "run-0000" in out

    def test_cancel_and_failed_exit_code(self, tmp_path, capsys):
        toml_file = tmp_path / "sweep.toml"
        toml_file.write_text(SWEEP_TOML, encoding="utf-8")
        store_file = str(tmp_path / "campaigns.db")
        campaign_main(
            [store_file, "--submit", str(toml_file), "--db", str(tmp_path / "k.db")]
        )
        capsys.readouterr()
        assert campaign_main([store_file, "--cancel", "1"]) == 0
        assert "cancelled 3" in capsys.readouterr().out
        # a drained campaign with failures exits 1
        assert campaign_main(
            [store_file, "--run", "1", "--workspace", str(tmp_path / "ws")]
        ) == 1

    def test_bad_arguments(self, tmp_path):
        store_file = str(tmp_path / "campaigns.db")
        assert campaign_main([store_file, "--run", "1", "--workers", "0"]) == 2
        assert campaign_main([store_file, "--run", "1", "--retries", "-1"]) == 2
        assert campaign_main([store_file, "--run", "99"]) == 1  # unknown campaign


# ----------------------------------------------------------------------
# the repository satellites the launcher builds on
# ----------------------------------------------------------------------
class TestBatchedReads:
    def _seed_repo(self, tmp_path, n=3):
        from repro.core.knowledge import Knowledge, KnowledgeResult, KnowledgeSummary

        db = KnowledgeDatabase(tmp_path / "k.db")
        repo = KnowledgeRepository(db)
        ids = []
        for i in range(n):
            ids.append(repo.save(Knowledge(
                benchmark="ior", command=f"ior -t {i}m", api="MPIIO",
                num_nodes=2, num_tasks=4,
                parameters={"transfersize": f"{i}m", "campaign_job": f"tok-{i}"},
                summaries=[KnowledgeSummary(
                    operation="write", api="MPIIO", bw_max=2.0, bw_min=1.0,
                    bw_mean=1.5, bw_stddev=0.1, ops_max=2.0, ops_min=1.0,
                    ops_mean=1.5, ops_stddev=0.1, iterations=1,
                    results=[KnowledgeResult(
                        iteration=0, bandwidth_mib=1.5, iops=1.5, latency_s=0.1,
                        open_time_s=0.0, wrrd_time_s=0.1, close_time_s=0.0,
                        total_time_s=0.1,
                    )],
                )],
            )))
        return db, repo, ids

    def test_fetch_many_round_trips_in_order(self, tmp_path):
        db, repo, ids = self._seed_repo(tmp_path)
        fetched = repo.fetch_many([ids[2], ids[0]])
        assert [k.knowledge_id for k in fetched] == [ids[2], ids[0]]
        # identical to one-at-a-time loads, including nested rows
        for k in fetched:
            single = repo.load(k.knowledge_id)
            assert k.parameters == single.parameters
            assert len(k.summaries) == len(single.summaries) == 1
            assert k.summaries[0].results[0].bandwidth_mib == pytest.approx(
                single.summaries[0].results[0].bandwidth_mib
            )
        assert repo.fetch_many([]) == []
        db.close()

    def test_fetch_many_missing_id_raises(self, tmp_path):
        db, repo, ids = self._seed_repo(tmp_path)
        with pytest.raises(PersistenceError, match="999"):
            repo.fetch_many([ids[0], 999])
        db.close()

    def test_find_ids_by_parameter_verifies_matches(self, tmp_path):
        from repro.core.knowledge import Knowledge

        db, repo, ids = self._seed_repo(tmp_path)
        # a value that merely *contains* the needle must not match
        repo.save(Knowledge(
            benchmark="ior", parameters={"campaign_job": "tok-1-extended"},
        ))
        assert repo.find_ids_by_parameter("campaign_job", "tok-1") == [ids[1]]
        assert repo.find_ids_by_parameter("campaign_job", "absent") == []
        db.close()

    def test_service_fetch_many_and_find(self, tmp_path):
        from repro.core.knowledge import Knowledge

        url = f"knowledge+service://{tmp_path}/store?shards=2"
        with ServiceClient.open(url) as client:
            ids = client.save_many([
                Knowledge(benchmark="ior", command=f"c{i}",
                          parameters={"campaign_job": f"tok-{i}"})
                for i in range(4)
            ])
            fetched = client.fetch_many(list(reversed(ids)))
            assert [k.knowledge_id for k in fetched] == list(reversed(ids))
            # second fetch is served from the cache and stays correct
            assert [
                k.knowledge_id for k in client.fetch_many(ids)
            ] == ids
            assert client.find_ids_by_parameter("campaign_job", "tok-2") == [ids[2]]
            assert client.find_ids_by_parameter("campaign_job", "tok") == []
