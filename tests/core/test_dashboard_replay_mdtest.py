"""Tests for the HTML dashboard, DXT replay and the mdtest generator."""

import pytest

from repro.benchmarks_io.ior import IORConfig, run_ior
from repro.benchmarks_io.mdtest import MdtestConfig, render_mdtest_output, run_mdtest
from repro.core.explorer import render_dashboard, write_dashboard
from repro.core.extraction import KnowledgeExtractor
from repro.core.extraction.mdtest_ext import parse_mdtest_output
from repro.core.knowledge import (
    IO500Knowledge,
    IO500Testcase,
    Knowledge,
    KnowledgeResult,
    KnowledgeSummary,
)
from repro.darshan import DarshanProfiler, DarshanReport, replay_trace
from repro.iostack.stack import Testbed
from repro.jube import DEFAULT_WORK_REGISTRY, load_benchmark
from repro.util.errors import AnalysisError, DarshanError, ExtractionError
from repro.util.units import MIB


def make_knowledge(kid=1, bws=(2850.0, 1251.0, 2840.0, 2860.0)):
    results = [
        KnowledgeResult(iteration=i, bandwidth_mib=bw, iops=bw / 2) for i, bw in enumerate(bws)
    ]
    summary = KnowledgeSummary(
        operation="write", api="MPIIO", bw_max=max(bws), bw_min=min(bws),
        bw_mean=sum(bws) / len(bws), bw_stddev=1.0, ops_max=1.0, ops_min=1.0,
        ops_mean=1.0, ops_stddev=0.0, iterations=len(bws), results=results,
    )
    return Knowledge(benchmark="ior", command="ior -t 2m", api="MPIIO",
                     num_tasks=80, summaries=[summary], knowledge_id=kid)


def make_io500(iofh, easy_w):
    return IO500Knowledge(
        score_total=2.0, score_bw=1.0, score_md=4.0, iofh_id=iofh,
        num_nodes=2, num_tasks=40,
        testcases=[
            IO500Testcase("ior-easy-write", easy_w, "GiB/s"),
            IO500Testcase("ior-easy-read", 3.2, "GiB/s"),
            IO500Testcase("ior-hard-write", 0.04, "GiB/s"),
            IO500Testcase("ior-hard-read", 0.05, "GiB/s"),
        ],
    )


class TestDashboard:
    def test_full_dashboard(self, tmp_path):
        html_text = render_dashboard(
            [make_knowledge(1), make_knowledge(2, (3000.0, 3010.0, 2990.0, 3005.0))],
            io500_runs=[make_io500(1, 2.9), make_io500(2, 3.1)],
        )
        assert html_text.startswith("<!DOCTYPE html>")
        assert "knowledge objects" in html_text
        assert html_text.count("<svg") >= 5  # overview + 2 runs + 2 io500 charts
        assert "⚠" in html_text  # the injected anomaly in knowledge #1
        assert "no iteration anomalies" in html_text  # knowledge #2 is clean
        assert "IO500" in html_text

    def test_write_dashboard(self, tmp_path):
        out = write_dashboard([make_knowledge()], tmp_path / "dash.html")
        assert out.exists()
        assert "<html>" in out.read_text()

    def test_requires_html_suffix(self, tmp_path):
        with pytest.raises(AnalysisError):
            write_dashboard([make_knowledge()], tmp_path / "dash.pdf")

    def test_requires_content(self):
        with pytest.raises(AnalysisError):
            render_dashboard([])

    def test_io500_only_dashboard(self):
        html_text = render_dashboard([], io500_runs=[make_io500(1, 3.0)])
        assert "IO500" in html_text

    def test_escapes_content(self):
        k = make_knowledge()
        k.command = 'ior -o "/scratch/<evil>&file"'
        assert "<evil>" not in render_dashboard([k])


@pytest.fixture(scope="module")
def traced_report():
    tb = Testbed.fuchs_csc(seed=51)
    prof = DarshanProfiler(enable_dxt=True)
    cfg = IORConfig(api="POSIX", block_size=4 * MIB, transfer_size=1 * MIB,
                    segment_count=2, iterations=1, test_file="/scratch/rp/t",
                    file_per_proc=True, keep_file=True)
    res = run_ior(cfg, tb, 1, 4, tracer=prof)
    return DarshanReport(prof.finalize("ior", 4, 0, res.end_offset_s))


class TestReplay:
    def test_replay_on_fresh_testbed(self, traced_report):
        target = Testbed.fuchs_csc(seed=52)
        ctx = target.start_job("replay", 1, 4)
        result = replay_trace(traced_report, ctx)
        assert len(result.ranks) == 4
        # 4 ranks x 8 MiB write + 8 MiB read.
        assert result.total_bytes == 4 * 16 * MIB
        assert result.original_makespan_s > 0
        assert result.replayed_makespan_s > 0
        # Same hardware: replay time within 3x of the original.
        assert 1 / 3 < result.speedup < 3

    def test_replay_on_degraded_testbed_slower(self, traced_report):
        healthy = Testbed.fuchs_csc(seed=53)
        r_healthy = replay_trace(traced_report, healthy.start_job("r1", 1, 4))
        degraded = Testbed.fuchs_csc(seed=53)
        for server in degraded.fs.servers:
            server.degrade(0.25)
        r_degraded = replay_trace(
            traced_report, degraded.start_job("r2", 1, 4), base_dir="/scratch/replay2"
        )
        assert r_degraded.replayed_makespan_s > 2 * r_healthy.replayed_makespan_s

    def test_replay_needs_enough_ranks(self, traced_report):
        target = Testbed.fuchs_csc(seed=54)
        ctx = target.start_job("small", 1, 2)
        with pytest.raises(DarshanError):
            replay_trace(traced_report, ctx)

    def test_replay_needs_dxt(self):
        prof = DarshanProfiler(enable_dxt=False)
        import numpy as np

        prof.record_batch("POSIX", "write", 0, "/f", 0, 1024, np.ones(2), 0.0)
        report = DarshanReport(prof.finalize("x", 1, 0, 1))
        target = Testbed.fuchs_csc(seed=55)
        with pytest.raises(DarshanError):
            replay_trace(report, target.start_job("r", 1, 1))


class TestMdtestGenerator:
    def test_output_round_trip(self):
        tb = Testbed.fuchs_csc(seed=56)
        ctx = tb.start_job("md", 1, 8)
        res = run_mdtest(MdtestConfig(num_items=50, base_dir="/scratch/mg1"), ctx)
        text = render_mdtest_output(res)
        assert "SUMMARY rate" in text
        k = parse_mdtest_output(text)
        assert k.benchmark == "mdtest"
        assert k.num_tasks == 8
        assert k.parameters["items_per_task"] == 50
        assert k.summary("create").ops_mean == pytest.approx(res.rate("create"), rel=1e-3)
        assert k.summary("stat").ops_mean == pytest.approx(res.rate("stat"), rel=1e-3)

    def test_parse_rejects_garbage(self):
        with pytest.raises(ExtractionError):
            parse_mdtest_output("nope")

    def test_jube_step_to_extraction(self, tmp_path):
        xml = """
        <jube><benchmark name="md" outpath="x">
          <parameterset name="p">
            <parameter name="variant">easy,hard</parameter>
            <parameter name="items">40</parameter>
            <parameter name="nodes">1</parameter>
            <parameter name="taskspernode">4</parameter>
          </parameterset>
          <step name="run" work="mdtest"><use>p</use></step>
        </benchmark></jube>
        """
        tb = Testbed.fuchs_csc(seed=57)
        bench, _ = load_benchmark(xml, DEFAULT_WORK_REGISTRY, outpath=tmp_path,
                                  shared={"testbed": tb})
        bench.run()
        knowledge = KnowledgeExtractor(jube_workspace=tmp_path).extract()
        assert len(knowledge) == 2
        assert all(k.benchmark == "mdtest" for k in knowledge)
        easy = next(k for k in knowledge if k.parameters["unique_dir_per_task"])
        hard = next(k for k in knowledge if not k.parameters["unique_dir_per_task"])
        assert easy.summary("create").ops_mean > hard.summary("create").ops_mean
