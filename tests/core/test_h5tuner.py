"""Tests for the H5Tuner-style cross-layer tuning module."""

import pytest

from repro.benchmarks_io.ior import IORConfig
from repro.core.usage import H5TunerConfig, tune
from repro.iostack.stack import Testbed
from repro.mpi.hints import MPIIOHints
from repro.util.errors import UsageError
from repro.util.units import MIB


def shared_small_kernel():
    return IORConfig(
        api="HDF5", block_size=94016, transfer_size=47008, segment_count=16,
        iterations=2, test_file="/scratch/h5t/kernel", file_per_proc=False,
        keep_file=True, read_file=False,
    )


CANDIDATES = [
    # "independent" disables collective buffering — the untuned baseline
    # (ROMIO's "automatic" default would already aggregate on a shared
    # file, which is itself a finding the tuner confirms).
    H5TunerConfig(name="independent", hints=MPIIOHints(romio_cb_write="disable")),
    H5TunerConfig(
        name="collective",
        hints=MPIIOHints(romio_cb_write="enable", cb_nodes=2),
    ),
    H5TunerConfig(
        name="collective-aligned",
        hints=MPIIOHints(romio_cb_write="enable", cb_nodes=2),
        striping_unit=1 * MIB,
    ),
]


class TestConfig:
    def test_json_round_trip(self):
        cfg = CANDIDATES[2]
        assert H5TunerConfig.from_json(cfg.to_json()) == cfg

    def test_invalid_json(self):
        with pytest.raises(UsageError):
            H5TunerConfig.from_json("{broken")
        with pytest.raises(UsageError):
            H5TunerConfig.from_json("{}")

    def test_validation(self):
        with pytest.raises(UsageError):
            H5TunerConfig(name="")
        with pytest.raises(UsageError):
            H5TunerConfig(name="x", hdf5_chunk_bytes=0)

    def test_effective_hints_fold_striping(self):
        cfg = H5TunerConfig(name="x", striping_unit=2 * MIB)
        assert cfg.effective_hints().striping_unit == 2 * MIB
        assert H5TunerConfig(name="y").effective_hints().striping_unit == 0


class TestTune:
    def test_collective_wins_small_shared_kernel(self):
        tb = Testbed.fuchs_csc(seed=91)
        best, runs = tune(tb, shared_small_kernel(), CANDIDATES,
                          num_nodes=2, tasks_per_node=10)
        assert len(runs) == 3
        assert best.name in ("collective", "collective-aligned")
        by_name = {r.config.name: r for r in runs}
        assert by_name["collective"].write_bw_mib > 2 * by_name["independent"].write_bw_mib

    def test_requires_hdf5_kernel(self):
        tb = Testbed.fuchs_csc(seed=92)
        kernel = shared_small_kernel().with_(api="MPIIO")
        with pytest.raises(UsageError):
            tune(tb, kernel, CANDIDATES)

    def test_requires_candidates(self):
        tb = Testbed.fuchs_csc(seed=93)
        with pytest.raises(UsageError):
            tune(tb, shared_small_kernel(), [])

    def test_duplicate_names_rejected(self):
        tb = Testbed.fuchs_csc(seed=94)
        with pytest.raises(UsageError):
            tune(tb, shared_small_kernel(), [CANDIDATES[0], CANDIDATES[0]])
