"""repro.wire/v1 codec tests + malformed-input hardening (live server).

The hardening half feeds a running :class:`KnowledgeServer` raw bytes —
truncated length prefixes, oversized frames, unknown ops, wrong version
bytes, mid-frame disconnects — and asserts the contract from the
architecture doc: a typed error frame or a clean close, never a dead
worker, and the very next well-formed request succeeds.
"""

import socket
import struct

import pytest

from repro.core.metrics import MetricsRegistry
from repro.core.service.server import KnowledgeServer
from repro.core.service.wire import (
    HEADER,
    MAGIC,
    PROTOCOL,
    WIRE_VERSION,
    TruncatedFrameError,
    WireVersionError,
    encode_frame,
    error_body,
    error_code,
    raise_wire_error,
    read_frame,
    write_frame,
)
from repro.util.errors import (
    DeadlineError,
    PersistenceError,
    ServiceError,
    ServiceOverloadError,
    ServiceTransportError,
    WireProtocolError,
)


# ----------------------------------------------------------------------
# framing
# ----------------------------------------------------------------------
class TestFraming:
    def test_round_trip_over_socketpair(self):
        a, b = socket.socketpair()
        try:
            body = {"id": 7, "op": "ping", "args": {"deep": [1, {"k": "v"}]}}
            sent = write_frame(a, body)
            assert sent == len(encode_frame(body))
            seen = []
            got = read_frame(b, on_bytes=seen.append)
            assert got == body
            assert seen == [sent]  # the byte hook sees header + body
        finally:
            a.close()
            b.close()

    def test_clean_eof_is_none_mid_frame_is_truncated(self):
        a, b = socket.socketpair()
        a.close()
        assert read_frame(b) is None  # EOF at a frame boundary
        b.close()

        a, b = socket.socketpair()
        a.sendall(encode_frame({"id": 1, "op": "ping"})[:5])  # header cut short
        a.close()
        with pytest.raises(TruncatedFrameError, match="mid-frame"):
            read_frame(b)
        b.close()

    def test_bad_magic_and_wrong_version(self):
        a, b = socket.socketpair()
        a.sendall(HEADER.pack(b"HTTP", WIRE_VERSION, 2) + b"{}")
        with pytest.raises(WireProtocolError, match="magic"):
            read_frame(b)
        a.close()
        b.close()

        a, b = socket.socketpair()
        a.sendall(HEADER.pack(MAGIC, 9, 2) + b"{}")
        with pytest.raises(WireVersionError) as excinfo:
            read_frame(b)
        assert excinfo.value.version == 9
        a.close()
        b.close()

    def test_length_cap_both_directions(self):
        with pytest.raises(WireProtocolError, match="cap"):
            encode_frame({"blob": "x" * 64}, max_frame=16)
        a, b = socket.socketpair()
        a.sendall(HEADER.pack(MAGIC, WIRE_VERSION, 1 << 30))  # hostile prefix
        with pytest.raises(WireProtocolError, match="refusing to allocate"):
            read_frame(b, max_frame=1024)
        a.close()
        b.close()

    def test_non_json_and_non_object_bodies(self):
        for payload in (b"not json!!", b"[1,2,3]"):
            a, b = socket.socketpair()
            a.sendall(HEADER.pack(MAGIC, WIRE_VERSION, len(payload)) + payload)
            with pytest.raises(WireProtocolError):
                read_frame(b)
            a.close()
            b.close()


# ----------------------------------------------------------------------
# typed error registry
# ----------------------------------------------------------------------
class TestErrorRegistry:
    def test_codes_most_specific_first(self):
        assert error_code(ServiceOverloadError("full")) == "overload"
        assert error_code(ServiceTransportError("reset")) == "unavailable"
        assert error_code(WireProtocolError("junk")) == "bad-request"
        assert error_code(PersistenceError("no row")) == "persistence"
        assert error_code(DeadlineError("late")) == "deadline"
        assert error_code(ServiceError("generic")) == "service"
        assert error_code(RuntimeError("boom")) == "internal"

    def test_explicit_wire_code_wins(self):
        exc = ServiceTransportError("drain", retryable=True)
        exc.wire_code = "draining"
        assert error_code(exc) == "draining"
        exc.wire_code = "made-up"  # unknown codes fall back to the class
        assert error_code(exc) == "unavailable"

    def test_error_body_carries_transient_flag(self):
        assert error_body(ServiceOverloadError("shed"))["retryable"] is True
        assert error_body(ServiceTransportError("x", retryable=False))[
            "retryable"
        ] is False

    def test_raise_wire_error_reconstructs_class_and_flags(self):
        with pytest.raises(ServiceOverloadError) as excinfo:
            raise_wire_error({"code": "overload", "message": "shed", "retryable": True})
        assert excinfo.value.transient and excinfo.value.wire_code == "overload"

        with pytest.raises(ServiceTransportError) as excinfo:
            raise_wire_error({"code": "quarantine", "message": "w0", "retryable": True})
        assert excinfo.value.transient and excinfo.value.wire_code == "quarantine"

        with pytest.raises(PersistenceError) as excinfo:
            raise_wire_error({"code": "persistence", "message": "gone"})
        assert not excinfo.value.transient

        with pytest.raises(ServiceError):  # unknown code -> base class
            raise_wire_error({"code": "from-the-future", "message": "?"})


# ----------------------------------------------------------------------
# malformed input against a live server (S2 hardening)
# ----------------------------------------------------------------------
@pytest.fixture()
def server(tmp_path):
    srv = KnowledgeServer(
        tmp_path / "store", shards=2, worker_processes=2,
        metrics=MetricsRegistry(), request_timeout_s=10.0,
    )
    srv.start()
    yield srv
    srv.close()


def _connect(server):
    sock = socket.create_connection((server.host, server.port), timeout=10.0)
    sock.settimeout(10.0)
    return sock


def _roundtrip(sock, body):
    write_frame(sock, body)
    return read_frame(sock)


def _expect_close(sock):
    """The server hung up: clean FIN or RST (unread bytes pending) both
    count — the contract is the typed frame *then* a close, not which
    TCP teardown the kernel picks."""
    try:
        assert read_frame(sock) is None
    except (ConnectionResetError, TruncatedFrameError):
        pass


def _assert_server_healthy(server):
    """Every worker still runs and a fresh connection serves requests."""
    assert all(worker.alive for worker in server.workers)
    with _connect(server) as sock:
        response = _roundtrip(sock, {"id": 99, "op": "ping", "args": {}})
        assert response == {"id": 99, "ok": True, "result": {}}


class TestMalformedInputHardening:
    def test_truncated_length_prefix(self, server):
        with _connect(server) as sock:
            sock.sendall(HEADER.pack(MAGIC, WIRE_VERSION, 64)[:6])
        _assert_server_healthy(server)

    def test_mid_frame_disconnect(self, server):
        with _connect(server) as sock:
            sock.sendall(HEADER.pack(MAGIC, WIRE_VERSION, 400) + b'{"id"')
        _assert_server_healthy(server)

    def test_oversized_frame_gets_typed_error_then_close(self, server):
        with _connect(server) as sock:
            sock.sendall(HEADER.pack(MAGIC, WIRE_VERSION, server.max_frame + 1))
            response = read_frame(sock)
            assert response["ok"] is False
            assert response["error"]["code"] == "frame-too-large"
            _expect_close(sock)
        _assert_server_healthy(server)

    def test_wrong_version_byte_gets_version_mismatch(self, server):
        with _connect(server) as sock:
            sock.sendall(HEADER.pack(MAGIC, 42, 2) + b"{}")
            response = read_frame(sock)
            assert response["ok"] is False
            assert response["error"]["code"] == "version-mismatch"
            _expect_close(sock)
        _assert_server_healthy(server)

    def test_garbage_bytes_get_bad_frame(self, server):
        with _connect(server) as sock:
            sock.sendall(b"GET / HTTP/1.1\r\n\r\n" + b"\x00" * 16)
            response = read_frame(sock)
            assert response["ok"] is False
            assert response["error"]["code"] == "bad-frame"
        _assert_server_healthy(server)

    def test_unknown_op_is_typed_and_keeps_connection(self, server):
        with _connect(server) as sock:
            response = _roundtrip(sock, {"id": 1, "op": "explode", "args": {}})
            assert response["ok"] is False
            assert response["error"]["code"] == "unknown-op"
            # same connection keeps serving after the typed error
            assert _roundtrip(sock, {"id": 2, "op": "ping", "args": {}})["ok"]
        _assert_server_healthy(server)

    def test_malformed_args_are_bad_request(self, server):
        with _connect(server) as sock:
            response = _roundtrip(
                sock, {"id": 3, "op": "load", "args": {"wrong": "shape"}}
            )
            assert response["ok"] is False
            assert response["error"]["code"] == "bad-request"
        _assert_server_healthy(server)

    def test_hello_negotiation_rejects_alien_protocol(self, server):
        with _connect(server) as sock:
            response = _roundtrip(
                sock,
                {"id": 4, "op": "hello", "args": {"protocols": ["sprockets/v9"]}},
            )
            assert response["ok"] is False
            assert response["error"]["code"] == "version-mismatch"
        with _connect(server) as sock:
            response = _roundtrip(
                sock, {"id": 5, "op": "hello", "args": {"protocols": [PROTOCOL]}}
            )
            assert response["ok"] is True
            assert response["result"]["protocol"] == PROTOCOL
            assert response["result"]["shards"] == 2

    def test_abuse_volley_never_kills_a_worker(self, server):
        """The whole rogues' gallery in sequence against one server."""
        volleys = [
            HEADER.pack(MAGIC, WIRE_VERSION, 64)[:3],
            HEADER.pack(MAGIC, 7, 2) + b"{}",
            HEADER.pack(MAGIC, WIRE_VERSION, 12) + b"half a body",
            b"\xff" * 32,
            struct.pack("!4sBI", MAGIC, WIRE_VERSION, 4) + b"null",
        ]
        for volley in volleys:
            with _connect(server) as sock:
                sock.sendall(volley)
                try:
                    read_frame(sock)
                except (WireProtocolError, OSError):
                    pass
        _assert_server_healthy(server)
