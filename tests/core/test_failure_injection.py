"""Failure-injection tests: the workflow must fail loudly and cleanly.

The paper's phases hand data between tools via files and a database;
these tests corrupt each hand-off point and check that errors are
specific, typed, and never silently produce wrong knowledge.
"""

import gzip
import json

import pytest

from repro.core.extraction import KnowledgeExtractor, scan_workspace
from repro.core.persistence import (
    KnowledgeDatabase,
    KnowledgeRepository,
    import_json,
)
from repro.core.usage import cross_validate
from repro.util.errors import (
    DarshanError,
    ExtractionError,
    PersistenceError,
    ReproError,
    UsageError,
)


class TestCorruptOutputs:
    def test_truncated_ior_output(self, tmp_path):
        d = tmp_path / "wp" / "work"
        d.mkdir(parents=True)
        (d / "ior_output.txt").write_text(
            "IOR-3.3.0: MPI Coordinated Test of Parallel I/O\ntruncated"
        )
        with pytest.raises(ExtractionError):
            scan_workspace(tmp_path)

    def test_binary_garbage_in_output(self, tmp_path):
        d = tmp_path / "wp" / "work"
        d.mkdir(parents=True)
        (d / "ior_output.txt").write_bytes(b"\x00\x01\x02 MPI Coordinated Test of Parallel I/O")
        with pytest.raises(ExtractionError):
            scan_workspace(tmp_path)

    def test_swapped_file_contents(self, tmp_path):
        # An io500 result saved under the IOR marker name: the IOR
        # parser must reject it rather than fabricate a knowledge object.
        d = tmp_path / "wp" / "work"
        d.mkdir(parents=True)
        (d / "ior_output.txt").write_text("[RESULT] ior-easy-write 1.0 GiB/s : time 1 seconds")
        with pytest.raises(ExtractionError):
            scan_workspace(tmp_path)

    def test_corrupt_darshan_log_in_workspace(self, tmp_path):
        d = tmp_path / "wp" / "work"
        d.mkdir(parents=True)
        (d / "app.darshan").write_bytes(b"not gzip")
        with pytest.raises(DarshanError):
            scan_workspace(tmp_path)

    def test_truncated_gzip_darshan_log(self, tmp_path):
        d = tmp_path / "wp" / "work"
        d.mkdir(parents=True)
        valid = gzip.compress(json.dumps({"magic": "DARSHAN-REPRO/1"}).encode())
        (d / "app.darshan").write_bytes(valid[: len(valid) // 2])
        with pytest.raises(DarshanError):
            scan_workspace(tmp_path)

    def test_all_failures_are_repro_errors(self, tmp_path):
        # Callers can catch the whole workflow with one handler.
        d = tmp_path / "wp" / "work"
        d.mkdir(parents=True)
        (d / "ior_output.txt").write_text("garbage")
        with pytest.raises(ReproError):
            scan_workspace(tmp_path)


class TestCorruptDatabase:
    def test_unwritable_target_rejected(self):
        with pytest.raises(PersistenceError):
            KnowledgeDatabase("/proc/definitely/not/writable/x.db")

    def test_existing_non_database_file(self, tmp_path):
        bad = tmp_path / "not_a_db.db"
        bad.write_text("this is a text file, not sqlite")
        with pytest.raises(PersistenceError):
            with KnowledgeDatabase(bad) as db:
                KnowledgeRepository(db).list_ids()

    def test_foreign_keys_enforced(self):
        with KnowledgeDatabase(":memory:") as db:
            with pytest.raises(PersistenceError):
                db.execute(
                    "INSERT INTO summaries (performance_id, operation, api, bw_max,"
                    " bw_min, bw_mean, bw_stddev, ops_max, ops_min, ops_mean,"
                    " ops_stddev, iterations)"
                    " VALUES (999, 'write', '', 1, 1, 1, 0, 1, 1, 1, 0, 1)"
                )


class TestCorruptInterchange:
    def test_json_with_wrong_entry_type(self, tmp_path):
        p = tmp_path / "x.json"
        p.write_text(json.dumps({"format": "repro-knowledge/1", "entries": [{"type": "alien"}]}))
        with pytest.raises(PersistenceError):
            import_json(p)

    def test_json_entry_with_corrupt_summary(self, tmp_path):
        p = tmp_path / "y.json"
        p.write_text(
            json.dumps(
                {
                    "format": "repro-knowledge/1",
                    "entries": [
                        {
                            "type": "knowledge",
                            "benchmark": "ior",
                            "summaries": [{"operation": "write", "bw_max": "not-a-number"}],
                        }
                    ],
                }
            )
        )
        with pytest.raises(PersistenceError):
            import_json(p)


class TestUsageGuards:
    def test_cross_validate_too_small(self):
        with pytest.raises(UsageError):
            cross_validate([])

    def test_extractor_mixed_good_and_bad(self, tmp_path):
        # One corrupt workpackage poisons the scan loudly (fail-stop,
        # not partial silent results).
        from repro.benchmarks_io.ior import parse_command, render_ior_output, run_ior
        from repro.iostack.stack import Testbed

        good = tmp_path / "000000_run" / "work"
        good.mkdir(parents=True)
        tb = Testbed.fuchs_csc(seed=61)
        res = run_ior(
            parse_command("ior -a posix -b 2m -t 1m -i 1 -o /scratch/fi/t -w -k"), tb, 1, 4
        )
        (good / "ior_output.txt").write_text(render_ior_output(res))
        bad = tmp_path / "000001_run" / "work"
        bad.mkdir(parents=True)
        (bad / "ior_output.txt").write_text("MPI Coordinated Test of Parallel I/O broken")
        with pytest.raises(ExtractionError):
            KnowledgeExtractor(jube_workspace=tmp_path).extract()
