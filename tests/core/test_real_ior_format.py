"""Robustness: the extractor parses genuine IOR-3.3 output.

The paper stresses tool-agnosticism — the extractor must work on the
"output of established benchmarks", not only on this repository's own
writer.  This fixture is a faithful sample of real IOR 3.3.0 output
(the upstream column set; note the absence of our extra Options lines
and the slightly different spacing).
"""

import pytest

from repro.core.extraction import parse_ior_output
from repro.util.errors import ExtractionError

REAL_IOR_OUTPUT = """\
IOR-3.3.0: MPI Coordinated Test of Parallel I/O
Began               : Thu Jul 21 09:12:33 2022
Command line        : ior -a MPIIO -b 4m -t 2m -s 40 -F -C -e -i 6 -o /scratch/fuchs/zhuz/test80 -k
Machine             : Linux fuchs001.cluster
TestID              : 0
StartTime           : Thu Jul 21 09:12:33 2022
Path                : /scratch/fuchs/zhuz
FS                  : 160.5 TiB   Used FS: 12.3%   Inodes: 180.0 Mi   Used Inodes: 1.2%

Options:
api                 : MPIIO
apiVersion          : (3.1)
test filename       : /scratch/fuchs/zhuz/test80
access              : file-per-process
type                : independent
segments            : 40
ordering in a file  : sequential
ordering inter file : constant task offset
task offset         : 1
nodes               : 4
tasks               : 80
clients per node    : 20
repetitions         : 6
xfersize            : 2 MiB
blocksize           : 4 MiB
aggregate filesize  : 12.50 GiB

Results:

access    bw(MiB/s)  IOPS       Latency(s)  block(KiB) xfer(KiB)  open(s)    wr/rd(s)   close(s)   total(s)   iter
------    ---------  ----       ----------  ---------- ---------  --------   --------   --------   --------   ----
write     2851.23    1425.61    0.055123    4096       2048       0.002134   4.489231   0.000312   4.491694   0
write     1251.02    625.51     0.127834    4096       2048       0.002201   10.230122  0.000301   10.232671  1
write     2848.91    1424.45    0.055201    4096       2048       0.002156   4.492833   0.000308   4.495311   2
write     2852.44    1426.22    0.055089    4096       2048       0.002141   4.487332   0.000305   4.489792   3
write     2849.85    1424.92    0.055173    4096       2048       0.002149   4.491334   0.000300   4.493796   4
write     2850.33    1425.16    0.055164    4096       2048       0.002138   4.490601   0.000309   4.493062   5
read      3180.12    1590.06    0.049412    4096       2048       0.001823   4.024911   0.000288   4.027033   0
read      3178.55    1589.27    0.049438    4096       2048       0.001830   4.026903   0.000291   4.029035   1
read      3181.44    1590.72    0.049391    4096       2048       0.001819   4.023241   0.000290   4.025361   2
read      3179.23    1589.61    0.049427    4096       2048       0.001825   4.026043   0.000287   4.028168   3
read      3180.87    1590.43    0.049400    4096       2048       0.001821   4.023960   0.000289   4.026081   4
read      3179.98    1589.99    0.049414    4096       2048       0.001824   4.025088   0.000290   4.027213   5
Max Write: 2852.44 MiB/sec (2991.07 MB/sec)
Max Read:  3181.44 MiB/sec (3336.07 MB/sec)

Summary of all tests:
Operation   Max(MiB)   Min(MiB)  Mean(MiB)     StdDev   Max(OPs)   Min(OPs)  Mean(OPs)     StdDev    Mean(s) Stonewall(s) Stonewall(MiB) Test# #Tasks tPN reps fPP reord reordoff reordrand seed segcnt   blksiz    xsize aggs(MiB)   API RefNum
write        2852.44    1251.02    2583.96     595.83    1426.22     625.51    1291.98     297.92    5.36605         NA            NA     0     80  20    6   1     1        1        0    0     40  4194304  2097152   12800.0  MPIIO     0
read         3181.44    3178.55    3180.03       0.95    1590.72    1589.27    1590.01       0.48    4.02715         NA            NA     0     80  20    6   1     1        1        0    0     40  4194304  2097152   12800.0  MPIIO     0
Finished            : Thu Jul 21 09:14:02 2022
"""


class TestRealIORFormat:
    def test_parses(self):
        k = parse_ior_output(REAL_IOR_OUTPUT)
        assert k.api == "MPIIO"
        assert k.num_tasks == 80
        assert k.num_nodes == 4
        assert k.file_per_proc

    def test_paper_numbers_recovered(self):
        # This sample encodes the paper's own Fig. 5 numbers.
        k = parse_ior_output(REAL_IOR_OUTPUT)
        writes = k.summary("write").bandwidth_series()
        assert writes[1] == pytest.approx(1251.02)
        assert len(writes) == 6
        assert k.summary("write").bw_mean == pytest.approx(2583.96)
        assert k.summary("read").bw_stddev == pytest.approx(0.95)

    def test_result_row_details(self):
        k = parse_ior_output(REAL_IOR_OUTPUT)
        row = k.summary("write").results[1]
        assert row.wrrd_time_s == pytest.approx(10.230122)
        assert row.open_time_s == pytest.approx(0.002201)
        assert row.total_time_s == pytest.approx(10.232671)

    def test_anomaly_detector_on_real_output(self):
        # The whole point: real output flows straight into Phase V.
        from repro.core.usage import IterationAnomalyDetector

        k = parse_ior_output(REAL_IOR_OUTPUT)
        anomalies = IterationAnomalyDetector().detect(k)
        assert [a.iteration for a in anomalies] == [2]
        assert anomalies[0].bandwidth_mib == pytest.approx(1251.02)

    def test_timestamps(self):
        k = parse_ior_output(REAL_IOR_OUTPUT)
        assert k.end_time > k.start_time > 0

    def test_command_round_trips_into_config(self):
        from repro.core.usage import config_from_knowledge

        cfg = config_from_knowledge(parse_ior_output(REAL_IOR_OUTPUT))
        assert cfg.segment_count == 40
        assert cfg.iterations == 6

    def test_truncated_output_rejected(self):
        with pytest.raises(ExtractionError):
            parse_ior_output(REAL_IOR_OUTPUT.split("Results:")[0])
