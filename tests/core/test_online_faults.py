"""Online monitor under fault injection: a producer whose stream is
interrupted by :class:`InjectedFaultError` mid-run must degrade (drop
the faulted events) without corrupting the monitor's window state.
Batch ingest must additionally tolerate out-of-order, duplicated and
degenerate batches, and streaming period detection must survive a
faulted (gappy) event stream."""

import random

import numpy as np
import pytest

from repro.core.usage.online import OnlineMonitor
from repro.iostack.tracing import TraceEvent
from repro.pfs.faults import Fault, FaultInjector, InjectedFaultError
from repro.util.errors import UsageError


def _event(i, interval_s=0.25, nbytes=4 * 1024**2):
    t = i * interval_s / 4  # four events per interval
    return TraceEvent(
        module="MPIIO", op="write", rank=0, path="/scratch/f", offset=i * nbytes,
        length=nbytes, start=t, end=t + 0.01,
    )


def _faulted_feed(monitor, injector, n=64):
    """Stream n events through the monitor; a firing hard fault loses
    that event (the producer degrades), the stream continues."""
    dropped = 0
    for i in range(n):
        event = _event(i)
        try:
            injector.maybe_raise({"op": event.op})
        except InjectedFaultError as exc:
            assert exc.transient  # the injected fault declares itself
            dropped += 1
            continue
        monitor.record(event)
    return dropped


def _flaky_injector(seed, probability=0.3):
    return FaultInjector(
        [Fault(name="stream-loss", fail_probability=probability,
               when={"op": "write"}, transient=True)],
        root_seed=seed,
    )


class TestOnlineMonitorUnderFaults:
    def test_degrades_instead_of_corrupting_windows(self, fault_seed):
        healthy = OnlineMonitor(interval_s=0.25)
        for i in range(64):
            healthy.record(_event(i))
        faulted = OnlineMonitor(interval_s=0.25)
        dropped = _faulted_feed(faulted, _flaky_injector(fault_seed))
        assert 0 < dropped < 64  # the fault actually fired, stream survived

        healthy_series = dict(healthy.throughput_series())
        faulted_series = dict(faulted.throughput_series())
        # every surviving interval holds at most the healthy bytes —
        # lost events never reappear, and none are double-counted
        for t, mib_s in faulted_series.items():
            assert mib_s <= healthy_series[t] + 1e-9
        total_healthy = sum(healthy_series.values())
        total_faulted = sum(faulted_series.values())
        assert total_faulted == pytest.approx(
            total_healthy * (64 - dropped) / 64, rel=1e-6
        )

    def test_finish_is_consistent_after_faults(self, fault_seed):
        monitor = OnlineMonitor(interval_s=0.25, warmup_intervals=2)
        _faulted_feed(monitor, _flaky_injector(fault_seed))
        alerts = monitor.finish()
        assert alerts == monitor.alerts  # finish returns the same list
        # finish() is idempotent: the evaluation cursor does not rewind
        assert monitor.finish() == alerts
        # alerts reference only intervals that exist
        times = {t for t, _ in monitor.throughput_series()}
        assert all(a.time_s in times for a in alerts)

    def test_fault_schedule_is_deterministic(self, fault_seed):
        runs = []
        for _ in range(2):
            monitor = OnlineMonitor(interval_s=0.25)
            dropped = _faulted_feed(monitor, _flaky_injector(fault_seed))
            runs.append((dropped, monitor.throughput_series(), monitor.finish()))
        assert runs[0] == runs[1]

    def test_mid_stream_fault_still_raises_real_drops(self, fault_seed):
        # a genuine throughput collapse is still detected after the
        # stream was interrupted by faults during the healthy phase
        monitor = OnlineMonitor(
            interval_s=0.25, drop_threshold=0.5, warmup_intervals=3
        )
        injector = _flaky_injector(fault_seed, probability=0.15)
        for i in range(48):
            event = _event(i)
            try:
                injector.maybe_raise({"op": event.op})
            except InjectedFaultError:
                continue
            monitor.record(event)
        # collapse: a late interval moves a tiny fraction of the bytes
        t = 13 * 0.25
        monitor.record(TraceEvent(
            module="MPIIO", op="write", rank=0, path="/scratch/f",
            offset=0, length=1024, start=t, end=t + 0.01,
        ))
        alerts = monitor.finish()
        assert any(a.kind == "throughput-drop" for a in alerts)

    def test_validation_still_guards_construction(self):
        with pytest.raises(UsageError):
            OnlineMonitor(interval_s=0.0)
        with pytest.raises(UsageError):
            OnlineMonitor(detection_min_windows=4)
        with pytest.raises(UsageError):
            OnlineMonitor(detection_stride=0)
        with pytest.raises(UsageError):
            OnlineMonitor(detection_confidence=1.5)


def _batches(n_windows=40, interval_s=0.25, ops_per_window=4):
    """One record_batch call per window, varying bytes per window."""
    out = []
    for w in range(n_windows):
        nbytes = (32 + 8 * (w % 7)) * 1024**2 / ops_per_window
        durations = np.full(ops_per_window, interval_s / ops_per_window)
        out.append(("posix", "write", 0, "/scratch/f", 0, nbytes, durations, w * interval_s))
    return out


class TestRecordBatchEdgeCases:
    def test_out_of_order_batches_preserve_series(self):
        ordered, shuffled = OnlineMonitor(), OnlineMonitor()
        batches = _batches()
        for b in batches:
            ordered.record_batch(*b)
        random.Random(9).shuffle(batches)
        for b in batches:
            shuffled.record_batch(*b)
        assert ordered.throughput_series() == shuffled.throughput_series()

    def test_duplicate_window_accumulates_once_per_delivery(self):
        monitor = OnlineMonitor(interval_s=0.25)
        batch = _batches(n_windows=1)[0]
        monitor.record_batch(*batch)
        monitor.record_batch(*batch)  # a revisit adds bytes, never corrupts
        single = OnlineMonitor(interval_s=0.25)
        single.record_batch(*batch)
        doubled = monitor.throughput_series()
        reference = single.throughput_series()
        assert [t for t, _ in doubled] == [t for t, _ in reference]
        for (_, twice), (_, once) in zip(doubled, reference):
            assert twice == pytest.approx(2 * once)

    def test_empty_batch_is_a_noop(self):
        monitor = OnlineMonitor()
        monitor.record_batch("posix", "write", 0, "/f", 0, 1024.0, np.array([]), 5.0)
        assert monitor.throughput_series() == []
        assert monitor.finish() == []

    def test_non_finite_bytes_dropped(self):
        monitor = OnlineMonitor(interval_s=0.25)
        monitor.record_batch(
            "posix", "write", 0, "/f", 0, float("nan"), np.full(2, 0.05), 0.0
        )
        monitor.record_batch(
            "posix", "write", 0, "/f", 0, float("inf"), np.full(2, 0.05), 1.0
        )
        assert monitor.throughput_series() == []

    def test_negative_timestamps_bin_correctly(self):
        monitor = OnlineMonitor(interval_s=0.25)
        monitor.record_batch(
            "posix", "write", 0, "/f", 0, 1024.0, np.full(2, 0.01), -0.30
        )
        indices = [t / 0.25 for t, _ in monitor.throughput_series()]
        assert indices and all(i == int(i) for i in indices)
        assert min(indices) < 0  # floored, not truncated toward zero

    def test_late_batch_cannot_rewind_evaluation(self):
        monitor = OnlineMonitor(interval_s=0.25, warmup_intervals=2)
        for b in _batches(n_windows=20):
            monitor.record_batch(*b)
        evaluated = monitor._evaluated_upto
        alerts_before = list(monitor.alerts)
        # a late, tiny batch for an already-evaluated early window
        monitor.record_batch(
            "posix", "write", 0, "/f", 0, 16.0, np.full(1, 0.01), 0.5
        )
        assert monitor._evaluated_upto == evaluated
        assert monitor.alerts == alerts_before  # no retroactive re-alerting

    def test_reads_and_writes_both_counted_others_ignored(self):
        monitor = OnlineMonitor(interval_s=0.25)
        monitor.record_batch("posix", "read", 0, "/f", 0, 1024.0, np.full(1, 0.01), 0.0)
        monitor.record_batch("posix", "open", 0, "/f", 0, 1024.0, np.full(1, 0.01), 0.0)
        series = monitor.throughput_series()
        assert len(series) == 1  # the open contributed nothing


class TestStreamingPeriodDetection:
    INTERVAL = 0.25
    PERIOD = 4.0

    def _planted_batches(self, n_windows=240):
        out = []
        for w in range(n_windows):
            phase = (w * self.INTERVAL) % self.PERIOD / self.PERIOD
            mib_s = 240.0 if phase < 0.3 else 12.0
            nbytes = mib_s * 1024**2 * self.INTERVAL / 4
            durations = np.full(4, self.INTERVAL / 4)
            out.append(
                ("mpiio", "write", 0, "/scratch/f", 0, nbytes, durations, w * self.INTERVAL)
            )
        return out

    def test_detects_planted_period_mid_run(self):
        monitor = OnlineMonitor(interval_s=self.INTERVAL, detect_periods=True)
        for b in self._planted_batches():
            monitor.record_batch(*b)
        periodic = monitor.detected_periods()
        assert periodic
        assert periodic[0].period_s == pytest.approx(self.PERIOD, rel=0.15)
        assert periodic[0].confidence >= 0.5
        # the alert fired while the stream was still flowing, not at finish
        assert periodic[0].time_s < 239 * self.INTERVAL
        # same period is not re-alerted by later windows or finish()
        monitor.finish()
        assert len(monitor.detected_periods()) == len(periodic)

    def test_detects_planted_period_under_faults(self, fault_seed):
        injector = FaultInjector(
            [Fault(name="stream-loss", fail_probability=0.2,
                   when={"op": "write"}, transient=True)],
            root_seed=fault_seed,
        )
        monitor = OnlineMonitor(interval_s=self.INTERVAL, detect_periods=True)
        dropped = 0
        for b in self._planted_batches():
            try:
                injector.maybe_raise({"op": b[1]})
            except InjectedFaultError:
                dropped += 1
                continue
            monitor.record_batch(*b)
        assert dropped > 0  # the fault really fired
        monitor.finish()
        periodic = monitor.detected_periods()
        assert periodic, "planted period lost to a 20% faulted stream"
        assert periodic[0].period_s == pytest.approx(self.PERIOD, rel=0.2)

    def test_aperiodic_stream_stays_quiet(self):
        monitor = OnlineMonitor(interval_s=self.INTERVAL, detect_periods=True)
        rng = np.random.default_rng(11)
        for w in range(200):
            nbytes = float(rng.uniform(40, 60)) * 1024**2 * self.INTERVAL / 2
            monitor.record_batch(
                "posix", "write", 0, "/f", 0, nbytes,
                np.full(2, self.INTERVAL / 2), w * self.INTERVAL,
            )
        monitor.finish()
        assert monitor.detected_periods() == []

    def test_detection_off_by_default(self):
        monitor = OnlineMonitor(interval_s=self.INTERVAL)
        for b in self._planted_batches(120):
            monitor.record_batch(*b)
        monitor.finish()
        assert monitor.detected_periods() == []
