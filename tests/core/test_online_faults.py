"""Online monitor under fault injection: a producer whose stream is
interrupted by :class:`InjectedFaultError` mid-run must degrade (drop
the faulted events) without corrupting the monitor's window state."""

import pytest

from repro.core.usage.online import OnlineMonitor
from repro.iostack.tracing import TraceEvent
from repro.pfs.faults import Fault, FaultInjector, InjectedFaultError
from repro.util.errors import UsageError


def _event(i, interval_s=0.25, nbytes=4 * 1024**2):
    t = i * interval_s / 4  # four events per interval
    return TraceEvent(
        module="MPIIO", op="write", rank=0, path="/scratch/f", offset=i * nbytes,
        length=nbytes, start=t, end=t + 0.01,
    )


def _faulted_feed(monitor, injector, n=64):
    """Stream n events through the monitor; a firing hard fault loses
    that event (the producer degrades), the stream continues."""
    dropped = 0
    for i in range(n):
        event = _event(i)
        try:
            injector.maybe_raise({"op": event.op})
        except InjectedFaultError as exc:
            assert exc.transient  # the injected fault declares itself
            dropped += 1
            continue
        monitor.record(event)
    return dropped


def _flaky_injector(seed, probability=0.3):
    return FaultInjector(
        [Fault(name="stream-loss", fail_probability=probability,
               when={"op": "write"}, transient=True)],
        root_seed=seed,
    )


class TestOnlineMonitorUnderFaults:
    def test_degrades_instead_of_corrupting_windows(self, fault_seed):
        healthy = OnlineMonitor(interval_s=0.25)
        for i in range(64):
            healthy.record(_event(i))
        faulted = OnlineMonitor(interval_s=0.25)
        dropped = _faulted_feed(faulted, _flaky_injector(fault_seed))
        assert 0 < dropped < 64  # the fault actually fired, stream survived

        healthy_series = dict(healthy.throughput_series())
        faulted_series = dict(faulted.throughput_series())
        # every surviving interval holds at most the healthy bytes —
        # lost events never reappear, and none are double-counted
        for t, mib_s in faulted_series.items():
            assert mib_s <= healthy_series[t] + 1e-9
        total_healthy = sum(healthy_series.values())
        total_faulted = sum(faulted_series.values())
        assert total_faulted == pytest.approx(
            total_healthy * (64 - dropped) / 64, rel=1e-6
        )

    def test_finish_is_consistent_after_faults(self, fault_seed):
        monitor = OnlineMonitor(interval_s=0.25, warmup_intervals=2)
        _faulted_feed(monitor, _flaky_injector(fault_seed))
        alerts = monitor.finish()
        assert alerts == monitor.alerts  # finish returns the same list
        # finish() is idempotent: the evaluation cursor does not rewind
        assert monitor.finish() == alerts
        # alerts reference only intervals that exist
        times = {t for t, _ in monitor.throughput_series()}
        assert all(a.time_s in times for a in alerts)

    def test_fault_schedule_is_deterministic(self, fault_seed):
        runs = []
        for _ in range(2):
            monitor = OnlineMonitor(interval_s=0.25)
            dropped = _faulted_feed(monitor, _flaky_injector(fault_seed))
            runs.append((dropped, monitor.throughput_series(), monitor.finish()))
        assert runs[0] == runs[1]

    def test_mid_stream_fault_still_raises_real_drops(self, fault_seed):
        # a genuine throughput collapse is still detected after the
        # stream was interrupted by faults during the healthy phase
        monitor = OnlineMonitor(
            interval_s=0.25, drop_threshold=0.5, warmup_intervals=3
        )
        injector = _flaky_injector(fault_seed, probability=0.15)
        for i in range(48):
            event = _event(i)
            try:
                injector.maybe_raise({"op": event.op})
            except InjectedFaultError:
                continue
            monitor.record(event)
        # collapse: a late interval moves a tiny fraction of the bytes
        t = 13 * 0.25
        monitor.record(TraceEvent(
            module="MPIIO", op="write", rank=0, path="/scratch/f",
            offset=0, length=1024, start=t, end=t + 0.01,
        ))
        alerts = monitor.finish()
        assert any(a.kind == "throughput-drop" for a in alerts)

    def test_validation_still_guards_construction(self):
        with pytest.raises(UsageError):
            OnlineMonitor(interval_s=0.0)
