"""Tests for the knowledge diff tool."""

import pytest

from repro.core.explorer import diff_knowledge
from repro.core.knowledge import Knowledge, KnowledgeResult, KnowledgeSummary
from repro.util.errors import AnalysisError


def make(kid, bw=1000.0, op="write", xfer="2m", api="MPIIO", tasks=80):
    summary = KnowledgeSummary(
        operation=op, api=api, bw_max=bw * 1.1, bw_min=bw * 0.9, bw_mean=bw,
        bw_stddev=1.0, ops_max=bw / 2, ops_min=bw / 2, ops_mean=bw / 2,
        ops_stddev=0.0, iterations=1,
        results=[KnowledgeResult(iteration=0, bandwidth_mib=bw, iops=bw / 2)],
    )
    return Knowledge(benchmark="ior", api=api, num_tasks=tasks, num_nodes=4,
                     parameters={"xfersize": xfer}, summaries=[summary],
                     knowledge_id=kid)


class TestDiff:
    def test_identical_config_perf_delta(self):
        d = diff_knowledge(make(1, 1000.0), make(2, 2000.0))
        assert d.identical_configuration
        bw = next(f for f in d.performance if f.field == "write.bw_mean")
        assert bw.relative_change == pytest.approx(1.0)
        assert "+100.0%" in d.render()

    def test_config_changes_listed(self):
        d = diff_knowledge(make(1, xfer="1m", tasks=40), make(2, xfer="4m"))
        fields = {f.field for f in d.configuration}
        assert fields == {"param:xfersize", "num_tasks"}
        assert not d.identical_configuration

    def test_missing_operation_reported(self):
        left = make(1)
        right = make(2, op="read")
        d = diff_knowledge(left, right)
        kinds = {f.field for f in d.performance}
        assert "read" in kinds and "write" in kinds

    def test_self_diff_rejected(self):
        k = make(1)
        with pytest.raises(AnalysisError):
            diff_knowledge(k, k)

    def test_equal_objects_no_perf_diff(self):
        d = diff_knowledge(make(1), make(2))
        assert d.performance == []
        assert "Configuration: identical" in d.render()

    def test_describe(self):
        d = diff_knowledge(make(1, 1000.0), make(2, 1500.0))
        assert "+50.0%" in d.performance[0].describe()
