"""Tests for Phase-V usage modules."""

import pytest

from repro.core.knowledge import (
    IO500Knowledge,
    IO500Testcase,
    Knowledge,
    KnowledgeResult,
    KnowledgeSummary,
)
from repro.core.usage import (
    FeatureVector,
    IterationAnomalyDetector,
    PerformancePredictor,
    Recommender,
    RunComparisonDetector,
    Verdict,
    build_bounding_box,
    config_from_knowledge,
    create_configuration,
    generate_jube_config,
)
from repro.util.errors import UsageError
from repro.util.units import MIB


def make_knowledge(bws, op="write", command="ior -a mpiio -b 4m -t 2m -s 40 -F -o /scratch/t -k",
                   iops=None, times=None, tasks=80, nodes=4, api="MPIIO",
                   xfer=2 * MIB, kid=None):
    iops = iops or [bw / 2 for bw in bws]
    times = times or [1000.0 / bw for bw in bws]
    results = [
        KnowledgeResult(iteration=i, bandwidth_mib=bw, iops=io, wrrd_time_s=t,
                        total_time_s=t * 1.01)
        for i, (bw, io, t) in enumerate(zip(bws, iops, times))
    ]
    summary = KnowledgeSummary(
        operation=op, api=api, bw_max=max(bws), bw_min=min(bws),
        bw_mean=sum(bws) / len(bws), bw_stddev=0.0, ops_max=max(iops),
        ops_min=min(iops), ops_mean=sum(iops) / len(iops), ops_stddev=0.0,
        iterations=len(bws), results=results,
    )
    return Knowledge(
        benchmark="ior", command=command, api=api, num_tasks=tasks, num_nodes=nodes,
        file_per_proc=True, parameters={"xfersize_bytes": xfer},
        summaries=[summary], knowledge_id=kid,
    )


FIG5_WRITES = [2850.0, 1251.0, 2840.0, 2860.0, 2855.0, 2845.0]


class TestIterationAnomalyDetector:
    def test_fig5_case_detected(self):
        # The paper's exact scenario: iteration 2 at 1251 vs ~2850 mean.
        k = make_knowledge(FIG5_WRITES)
        anomalies = IterationAnomalyDetector().detect(k)
        assert len(anomalies) == 1
        a = anomalies[0]
        assert a.iteration == 2  # 1-based, as the paper reports
        assert a.bandwidth_mib == 1251.0
        assert 2840 < a.healthy_mean_mib < 2860
        assert a.severity > 2.0
        assert "iops" in a.corroborated_by
        assert "iteration 2" in a.description

    def test_healthy_run_clean(self):
        k = make_knowledge([2850.0, 2840.0, 2860.0, 2855.0, 2845.0, 2850.0])
        assert IterationAnomalyDetector().detect(k) == []

    def test_fast_outlier_not_flagged(self):
        k = make_knowledge([2850.0, 6000.0, 2840.0, 2860.0, 2855.0])
        assert IterationAnomalyDetector().detect(k) == []

    def test_too_few_iterations(self):
        k = make_knowledge([2850.0, 1251.0])
        assert IterationAnomalyDetector().detect(k) == []

    def test_corroboration_excludes_unrelated_metrics(self):
        # IOPS constant: anomaly must not claim iops corroboration.
        k = make_knowledge(FIG5_WRITES, iops=[100.0] * 6)
        a = IterationAnomalyDetector().detect(k)[0]
        assert "iops" not in a.corroborated_by
        assert "wrrd_time_s" in a.corroborated_by

    def test_validation(self):
        with pytest.raises(UsageError):
            IterationAnomalyDetector(whis=0)
        with pytest.raises(UsageError):
            IterationAnomalyDetector(min_severity=0.5)


class TestRunComparisonDetector:
    def test_slow_run_flagged(self):
        runs = [make_knowledge([2800.0] * 3) for _ in range(5)]
        runs.append(make_knowledge([900.0] * 3))
        flagged = RunComparisonDetector().detect(runs)
        assert len(flagged) == 1
        assert flagged[0][0] is runs[-1]

    def test_needs_three_runs(self):
        with pytest.raises(UsageError):
            RunComparisonDetector().detect([make_knowledge([1.0] * 3)] * 2)


def make_io500(easy_w, easy_r, hard_w, hard_r, iofh=None):
    return IO500Knowledge(
        score_total=1.0, score_bw=1.0, score_md=1.0, iofh_id=iofh,
        testcases=[
            IO500Testcase("ior-easy-write", easy_w, "GiB/s"),
            IO500Testcase("ior-easy-read", easy_r, "GiB/s"),
            IO500Testcase("ior-hard-write", hard_w, "GiB/s"),
            IO500Testcase("ior-hard-read", hard_r, "GiB/s"),
        ],
    )


class TestBoundingBox:
    def reference(self):
        return [
            make_io500(2.9, 3.2, 0.30, 0.35),
            make_io500(3.1, 3.25, 0.33, 0.36),
            make_io500(3.0, 3.22, 0.28, 0.355),
        ]

    def test_bands(self):
        box = build_bounding_box(self.reference())
        band = box.band("ior-easy-write")
        assert band.low == 2.9 and band.high == 3.1
        assert box.n_reference_runs == 3

    def test_within(self):
        box = build_bounding_box(self.reference())
        healthy = make_io500(3.0, 3.21, 0.31, 0.352)
        assert box.anomalies(healthy) == []
        assert all(v == Verdict.WITHIN for v in box.check_run(healthy).values())

    def test_broken_node_read_detected(self):
        # The Fig. 6 case: an anomalously bad ior-easy read.
        box = build_bounding_box(self.reference())
        broken = make_io500(3.0, 1.1, 0.31, 0.35)
        assert box.anomalies(broken) == ["ior-easy-read"]
        assert box.classify("ior-easy-read", 1.1) == Verdict.BELOW

    def test_above_expectation(self):
        box = build_bounding_box(self.reference())
        assert box.classify("ior-easy-write", 9.0) == Verdict.ABOVE

    def test_tolerance_expands_band(self):
        box = build_bounding_box(self.reference())
        assert box.classify("ior-easy-write", 2.89, tolerance=0.0) == Verdict.BELOW
        assert box.classify("ior-easy-write", 2.89, tolerance=0.2) == Verdict.WITHIN

    def test_needs_two_references(self):
        with pytest.raises(UsageError):
            build_bounding_box(self.reference()[:1])

    def test_unknown_band(self):
        box = build_bounding_box(self.reference())
        with pytest.raises(UsageError):
            box.band("mdtest-easy-write")


class TestWorkloadGeneration:
    def test_config_from_knowledge(self):
        cfg = config_from_knowledge(make_knowledge([2850.0] * 3))
        assert cfg.api == "MPIIO"
        assert cfg.segment_count == 40

    def test_requires_command(self):
        with pytest.raises(UsageError):
            config_from_knowledge(make_knowledge([1.0] * 3, command=""))

    def test_requires_ior(self):
        k = make_knowledge([1.0] * 3)
        k.benchmark = "hacc-io"
        with pytest.raises(UsageError):
            config_from_knowledge(k)

    def test_create_configuration_round_trip(self):
        # §V-E1: load the stored command, modify, "create configuration".
        command = create_configuration(make_knowledge([2850.0] * 3), transfer_size=4 * MIB)
        assert "-t 4m" in command
        assert "-s 40" in command  # untouched parameters preserved

    def test_invalid_modification(self):
        with pytest.raises(UsageError):
            create_configuration(make_knowledge([1.0] * 3), colour="red")

    def test_generate_jube_config_runs(self, tmp_path):
        from repro.iostack.stack import Testbed
        from repro.jube import DEFAULT_WORK_REGISTRY, load_benchmark

        xml = generate_jube_config(
            make_knowledge([2850.0] * 3, command="ior -a mpiio -b 4m -t 2m -s 2 -F -o /scratch/g/t -k"),
            sweep={"transfersize": ["1m", "2m"]},
            nodes=1,
            tasks_per_node=4,
        )
        assert "$transfersize" in xml
        bench, _ = load_benchmark(
            xml, DEFAULT_WORK_REGISTRY, outpath=tmp_path,
            shared={"testbed": Testbed.fuchs_csc(seed=14)},
        )
        wps = bench.run()
        assert len(wps) == 2  # the sweep expanded and executed

    def test_generate_jube_config_validation(self):
        k = make_knowledge([1.0] * 3)
        with pytest.raises(UsageError):
            generate_jube_config(k, sweep={})
        with pytest.raises(UsageError):
            generate_jube_config(k, sweep={"stripes": ["1"]})


class TestRecommender:
    def base(self):
        return [
            make_knowledge([1000.0] * 3, command="ior -t 1m", xfer=1 * MIB, kid=1),
            make_knowledge([3000.0] * 3, command="ior -t 4m", xfer=4 * MIB, kid=2),
            make_knowledge([2000.0] * 3, command="ior -t 2m", xfer=2 * MIB, kid=3),
        ]

    def test_recommends_best(self):
        rec = Recommender(self.base()).recommend(operation="write", num_tasks=80)
        assert rec.command == "ior -t 4m"
        assert rec.knowledge_id == 2
        assert rec.improvement_over_worst == pytest.approx(3.0)
        assert rec.n_candidates == 3
        assert "3000" in rec.description

    def test_filters_apply(self):
        base = self.base()
        base[1] = make_knowledge([3000.0] * 3, command="ior big", tasks=160, kid=2)
        rec = Recommender(base).recommend(num_tasks=80)
        assert rec.command == "ior -t 2m"

    def test_empty_base(self):
        with pytest.raises(UsageError):
            Recommender([]).recommend()


class TestPredictor:
    def training_base(self):
        base = []
        # Plausible saturating data: bw grows with transfer size and tasks.
        for xfer_mib in (1, 2, 4, 8):
            for tasks in (20, 40, 80):
                bw = 3000 * (xfer_mib / (xfer_mib + 1)) * (tasks / (tasks + 10))
                base.append(
                    make_knowledge([bw] * 3, xfer=xfer_mib * MIB, tasks=tasks,
                                   nodes=max(1, tasks // 20))
                )
        return base

    def test_fit_predict(self):
        model = PerformancePredictor().fit(self.training_base())
        assert model.n_samples_ == 12
        f = FeatureVector(transfer_size=2 * MIB, num_tasks=40, num_nodes=2, api="MPIIO")
        predicted = model.predict(f)
        actual = 3000 * (2 / 3) * (40 / 50)
        assert abs(predicted - actual) / actual < 0.25

    def test_interval_contains_prediction(self):
        model = PerformancePredictor().fit(self.training_base())
        f = FeatureVector(transfer_size=4 * MIB, num_tasks=80, num_nodes=4, api="MPIIO")
        lo, hi = model.predict_interval(f)
        assert lo <= model.predict(f) <= hi

    def test_relative_error_low_in_sample(self):
        base = self.training_base()
        model = PerformancePredictor().fit(base)
        assert model.relative_error(base[5]) < 0.3

    def test_unfitted(self):
        with pytest.raises(UsageError):
            PerformancePredictor().predict(
                FeatureVector(transfer_size=MIB, num_tasks=1, num_nodes=1)
            )

    def test_too_few_samples(self):
        with pytest.raises(UsageError):
            PerformancePredictor().fit(self.training_base()[:3])

    def test_feature_validation(self):
        with pytest.raises(UsageError):
            FeatureVector(transfer_size=0, num_tasks=1, num_nodes=1)
