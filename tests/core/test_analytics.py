"""Fleet analytics: distributions, correlations, balance, outliers.

Everything runs over the deterministic synthetic fleet from
:func:`repro.core.analytics.synthesize_fleet` — same seed, same fleet —
so planted degraded runs are recoverable by the outlier miners and the
assertions stay exact across platforms.
"""

import math

import numpy as np
import pytest

from repro.core.analytics import (
    QUANTILES,
    analytics_report,
    cdf_table,
    correlation_matrix,
    io500_correlations,
    io500_distributions,
    metric_distributions,
    percentile_table,
    run_outliers,
    score_outliers,
    scoring_balance,
    synthesize_fleet,
)
from repro.core.analytics.distributions import distribution_rows
from repro.core.persistence.database import KnowledgeDatabase
from repro.core.persistence.io500_repo import IO500Repository
from repro.core.persistence.repository import KnowledgeRepository
from repro.util.errors import PersistenceError, UsageError


@pytest.fixture(scope="module")
def fleet():
    return synthesize_fleet(4242, runs=75, io500_runs=30)


@pytest.fixture()
def stores(tmp_path, fleet):
    runs, io500_runs = fleet
    with KnowledgeDatabase(tmp_path / "fleet.db") as db:
        repo = KnowledgeRepository(db)
        io5 = IO500Repository(db)
        for k in runs:
            repo.save(k)
        for k in io500_runs:
            io5.save(k)
        yield repo, io5


class TestFleetSynthesis:
    def test_same_seed_same_fleet(self):
        a_runs, a_io5 = synthesize_fleet(7, runs=30, io500_runs=10)
        b_runs, b_io5 = synthesize_fleet(7, runs=30, io500_runs=10)
        assert [k.parameters for k in a_runs] == [k.parameters for k in b_runs]
        assert [k.summary("write").bw_mean for k in a_runs] == [
            k.summary("write").bw_mean for k in b_runs
        ]
        assert [k.score_total for k in a_io5] == [k.score_total for k in b_io5]

    def test_different_seeds_differ(self):
        a, _ = synthesize_fleet(1, runs=10, io500_runs=0)
        b, _ = synthesize_fleet(2, runs=10, io500_runs=0)
        assert [k.summary("write").bw_mean for k in a] != [
            k.summary("write").bw_mean for k in b
        ]

    def test_fleet_plants_degraded_runs(self, fleet):
        runs, _ = fleet
        degraded = [k for k in runs if k.parameters.get("degraded")]
        assert len(degraded) == len(runs) // 25
        for k in degraded:
            # Degradation is relative to the run's own cohort — node
            # scaling means a degraded 8-node run can still out-run a
            # healthy 1-node one.
            cohort = np.median([
                other.summary("write").bw_mean for other in runs
                if other.benchmark == k.benchmark
                and other.num_nodes == k.num_nodes
                and not other.parameters.get("degraded")
            ])
            assert k.summary("write").bw_mean < cohort / 2

    def test_io500_scores_follow_geometric_mean(self, fleet):
        _, io500_runs = fleet
        for k in io500_runs:
            assert k.score_total == pytest.approx(
                math.sqrt(k.score_bw * k.score_md), rel=1e-9
            )


class TestDistributions:
    def test_percentile_table_on_known_values(self):
        table = percentile_table(list(range(101)), (5, 50, 95))
        assert table["p5"] == pytest.approx(5.0)
        assert table["p50"] == pytest.approx(50.0)
        assert table["p95"] == pytest.approx(95.0)

    def test_cdf_table_is_monotone_and_spans_unit_interval(self):
        points = cdf_table([3.0, 1.0, 4.0, 1.0, 5.0], points=10)
        fractions = [f for _, f in points]
        assert fractions == sorted(fractions)
        assert fractions[-1] == pytest.approx(1.0)
        values = [v for v, _ in points]
        assert values[0] == pytest.approx(1.0)
        assert values[-1] == pytest.approx(5.0)

    def test_metric_distributions_run_over_scan(self, stores):
        repo, _ = stores
        result = metric_distributions(repo, metric="bw_mean",
                                      group_by=("benchmark", "operation"))
        assert result.source in ("summary-table", "base-tables")
        groups = {tuple(row.group.values()) for row in result.rows}
        assert ("ior", "write") in groups and ("mdtest", "read") in groups
        for row in result.rows:
            assert row.values["count"] > 0
            assert {f"p{q:g}" for q in QUANTILES} <= set(row.values)

    def test_io500_distribution_tables_render(self, stores):
        _, io5 = stores
        tables = io500_distributions(io5, QUANTILES)
        assert "score_total" in tables and "ior-easy-write" in tables
        headers, rows = distribution_rows(tables)
        assert headers[0] == "series"
        assert len(rows) == len(tables)


class TestCorrelation:
    def test_perfectly_correlated_series(self):
        names, matrix = correlation_matrix(
            {"a": [1.0, 2.0, 3.0], "b": [2.0, 4.0, 6.0],
             "c": [3.0, 2.0, 1.0]}
        )
        i, j, k = names.index("a"), names.index("b"), names.index("c")
        assert matrix[i, j] == pytest.approx(1.0)
        assert matrix[i, k] == pytest.approx(-1.0)

    def test_constant_series_yields_zero_not_nan(self):
        _, matrix = correlation_matrix(
            {"flat": [5.0, 5.0, 5.0], "vary": [1.0, 2.0, 3.0]}
        )
        assert not np.isnan(matrix).any()
        assert matrix[0, 1] == 0.0 and matrix[0, 0] == 1.0

    def test_single_series_rejected(self):
        with pytest.raises(UsageError, match="two series"):
            correlation_matrix({"only": [1.0, 2.0]})

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(UsageError, match="lengths"):
            correlation_matrix({"a": [1.0], "b": [1.0, 2.0]})

    def test_io500_families_correlate_internally(self, stores):
        _, io5 = stores
        names, matrix = io500_correlations(io5)
        assert not np.isnan(matrix).any()

        def corr(a, b):
            return matrix[names.index(a), names.index(b)]

        # Same-family testcases ride the same per-run system factor, so
        # bw/bw and md/md pairs must correlate more strongly than the
        # cross-family pair.
        assert corr("ior-easy-write", "ior-hard-write") > corr(
            "ior-easy-write", "mdtest-easy-stat"
        )
        assert corr("score_bw", "score_total") > 0.5
        assert corr("score_md", "score_total") > 0.5

    def test_scoring_balance_reports_consistent_geomean(self, stores):
        _, io5 = stores
        balance = scoring_balance(io5)
        assert balance["runs"] == len(io5.list_ids())
        assert balance["geomean_max_rel_error"] < 1e-9
        assert 0.0 <= balance["bw_heavy_fraction"] <= 1.0
        assert balance["ratio_p5"] <= balance["ratio_median"] <= balance["ratio_p95"]


class TestOutliers:
    def test_run_outliers_recover_planted_degraded_runs(self, fleet):
        runs, _ = fleet
        # Compare within one cohort, as the report does.
        cohorts = {}
        for k in runs:
            cohorts.setdefault((k.benchmark, k.num_nodes), []).append(k)
        # |z| in an n-run cohort is bounded by (n-1)/sqrt(n), so small
        # cohorts need a permissive threshold for the superset check.
        flagged_ids = set()
        for cohort in cohorts.values():
            for k, _z in run_outliers(cohort, operation="write",
                                      threshold_z=1.0):
                flagged_ids.add(id(k))
        degraded_ids = {id(k) for k in runs if k.parameters.get("degraded")}
        assert degraded_ids <= flagged_ids

    def test_run_outliers_need_three_comparable_runs(self, fleet):
        runs, _ = fleet
        assert run_outliers(runs[:2], operation="write") == []

    def test_score_outliers_flag_degraded_io500_runs(self, stores):
        # Fleet-wide z on the node-scaled (right-skewed) score spread
        # puts the planted degraded run near -1.1, so mine at 1.0.
        _, io5 = stores
        flagged = score_outliers(io5, threshold_z=1.0)
        assert flagged, "no outliers despite planted degraded runs"
        totals = io5.fetch_score_columns()["score_total"]
        worst_id, worst_total, worst_z = flagged[0]
        assert worst_total == min(totals)
        assert worst_z < -1.0


class TestIO500Columnar:
    def test_fetch_many_preserves_order_and_options(self, stores):
        _, io5 = stores
        ids = io5.list_ids()
        shuffled = ids[::-1]
        fetched = io5.fetch_many(shuffled)
        assert [k.iofh_id for k in fetched] == shuffled
        assert fetched == [io5.load(i) for i in shuffled]

    def test_fetch_many_missing_id_is_typed(self, stores):
        _, io5 = stores
        with pytest.raises(PersistenceError, match="424242"):
            io5.fetch_many(io5.list_ids()[:2] + [424242])

    def test_score_columns_are_aligned(self, stores):
        _, io5 = stores
        columns = io5.fetch_score_columns()
        n = len(columns["iofh_id"])
        assert n == len(io5.list_ids())
        assert all(len(v) == n for v in columns.values())
        first = io5.load(columns["iofh_id"][0])
        assert columns["score_total"][0] == pytest.approx(first.score_total)

    def test_testcase_columns_cover_every_run(self, stores):
        _, io5 = stores
        by_testcase = io5.fetch_testcase_columns()
        ids = set(io5.list_ids())
        for values in by_testcase.values():
            assert set(values) == ids


class TestReportAndCli:
    def test_report_renders_every_section(self, stores):
        repo, io5 = stores
        text = analytics_report(repo, io5)
        assert "Fleet analytics" in text
        assert "bw_mean by benchmark/operation" in text
        assert "IO500 sub-benchmark distributions" in text
        assert "IO500 cross-metric correlation" in text
        assert "IO500 scoring balance" in text
        assert "score outliers" in text

    def test_report_on_empty_store(self, tmp_path):
        with KnowledgeDatabase(tmp_path / "empty.db") as db:
            text = analytics_report(KnowledgeRepository(db))
        assert "(empty store)" in text

    def test_explorer_analytics_flag(self, tmp_path, fleet, capsys):
        from repro.core.explorer.cli import main

        runs, io500_runs = fleet
        path = tmp_path / "fleet.db"
        with KnowledgeDatabase(path) as db:
            repo = KnowledgeRepository(db)
            io5 = IO500Repository(db)
            for k in runs:
                repo.save(k)
            for k in io500_runs:
                io5.save(k)
        assert main([str(path), "--analytics"]) == 0
        out = capsys.readouterr().out
        assert "Fleet analytics" in out
        assert "IO500 scoring balance" in out


class TestFleetPreset:
    def test_fleet_toml_expands_to_full_cartesian_fleet(self):
        from repro.core.campaign.spec import load_campaign_file

        spec = load_campaign_file("examples/fleet.toml")
        assert spec.benchmark == "io500"
        jobs = spec.expand()
        benchmark_jobs = [j for j in jobs if j.kind == "benchmark"]
        assert len(benchmark_jobs) == 3 * 2 * 3 * 2 * 2
        stripe_values = {j.params["stripe_pattern"] for j in benchmark_jobs}
        assert stripe_values == {"4x512K", "8x1M", "16x1M"}
        report = [j for j in jobs if j.kind == "report"]
        assert len(report) == 1
        assert set(report[0].depends) == {j.name for j in benchmark_jobs}
