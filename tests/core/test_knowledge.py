"""Tests for the Knowledge object model."""

import pytest

from repro.core.knowledge import (
    FilesystemInfo,
    IO500Knowledge,
    IO500Testcase,
    Knowledge,
    KnowledgeResult,
    KnowledgeSummary,
)
from repro.util.errors import ConfigurationError


def make_summary(op="write", bws=(100.0, 200.0, 300.0)):
    results = [
        KnowledgeResult(iteration=i, bandwidth_mib=bw, iops=bw / 2) for i, bw in enumerate(bws)
    ]
    return KnowledgeSummary(
        operation=op,
        api="MPIIO",
        bw_max=max(bws),
        bw_min=min(bws),
        bw_mean=sum(bws) / len(bws),
        bw_stddev=0.0,
        ops_max=max(bws) / 2,
        ops_min=min(bws) / 2,
        ops_mean=sum(bws) / len(bws) / 2,
        ops_stddev=0.0,
        iterations=len(bws),
        results=results,
    )


class TestKnowledge:
    def test_summary_lookup(self):
        k = Knowledge(benchmark="ior", summaries=[make_summary("write"), make_summary("read")])
        assert k.summary("read").operation == "read"
        with pytest.raises(ConfigurationError):
            k.summary("append")

    def test_operations_ordering(self):
        k = Knowledge(benchmark="ior", summaries=[make_summary("read"), make_summary("write")])
        assert k.operations() == ["write", "read"]

    def test_parameter_access(self):
        k = Knowledge(benchmark="ior", parameters={"xfersize": "2 MiB"})
        assert k.parameter("xfersize") == "2 MiB"
        assert k.parameter("missing", "dflt") == "dflt"

    def test_series_ordered_by_iteration(self):
        s = make_summary(bws=(10.0, 20.0, 30.0))
        # shuffle results; series must still come back in iteration order
        s.results = [s.results[2], s.results[0], s.results[1]]
        assert s.bandwidth_series() == [10.0, 20.0, 30.0]
        assert s.iops_series() == [5.0, 10.0, 15.0]

    def test_boxplot(self):
        b = make_summary(bws=(10.0, 20.0, 30.0)).boxplot()
        assert b.median == 20.0

    def test_result_metric_lookup(self):
        r = KnowledgeResult(iteration=0, bandwidth_mib=5.0, iops=2.0, latency_s=0.1)
        assert r.metric("latency_s") == 0.1
        with pytest.raises(ConfigurationError):
            r.metric("colour")

    def test_filesystem_info_dict(self):
        fs = FilesystemInfo(entry_id="1-A-1", chunk_size="512K", num_targets=4)
        d = fs.as_dict()
        assert d["entry_id"] == "1-A-1" and d["num_targets"] == 4


class TestIO500Knowledge:
    def test_testcase_lookup(self):
        k = IO500Knowledge(
            score_total=3.0,
            score_bw=1.0,
            score_md=9.0,
            testcases=[IO500Testcase(name="ior-easy-write", value=2.5, unit="GiB/s")],
        )
        assert k.value("ior-easy-write") == 2.5
        with pytest.raises(ConfigurationError):
            k.value("ior-hard-write")
