"""Metrics/observability layer: registry, spans, bridges, CLI snapshots.

Covers the ISSUE-3 acceptance criteria: deterministic snapshot layout,
wall-clock scrubbing for byte-identical same-seed comparison, the
tracer and pipeline bridges, persistence instrumentation, and the
``repro-cycle --metrics-json`` / ``repro-explore --metrics`` endpoints.
"""

import json
import sqlite3

import numpy as np
import pytest

from repro.core.cycle import KnowledgeCycle
from repro.core.metrics import (
    DEFAULT_BUCKETS,
    SCHEMA,
    MetricsObserver,
    MetricsRegistry,
    MetricsTracer,
    Span,
    render_metrics_report,
    scrub_wallclock,
)
from repro.core.persistence import KnowledgeDatabase
from repro.core.persistence.backend import ResilientBackend, transient_db_error
from repro.core.pipeline import FailurePolicy, PhasePipeline, PhaseRegistry
from repro.core.resilience import CircuitBreaker, RetryPolicy, retry
from repro.iostack.stack import Testbed
from repro.iostack.tracing import TraceEvent
from repro.util.errors import ConfigurationError
from repro.util.rng import stream


# ----------------------------------------------------------------------
# registry primitives
# ----------------------------------------------------------------------
class TestRegistry:
    def test_counter_series_identity_and_labels(self):
        reg = MetricsRegistry()
        a = reg.counter("cycle.things_total", "things", kind="x")
        b = reg.counter("cycle.things_total", kind="x")
        assert a is b
        a.inc()
        a.inc(2.5)
        assert b.value == 3.5
        other = reg.counter("cycle.things_total", kind="y")
        assert other.value == 0.0

    def test_counters_only_go_up(self):
        reg = MetricsRegistry()
        with pytest.raises(ConfigurationError):
            reg.counter("a.b").inc(-1)

    def test_gauge_moves_both_ways(self):
        reg = MetricsRegistry()
        g = reg.gauge("queue.depth")
        g.set(5)
        g.dec(2)
        g.inc()
        assert g.value == 4.0

    def test_kind_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x.y")
        with pytest.raises(ConfigurationError, match="counter"):
            reg.gauge("x.y")

    def test_name_validation(self):
        reg = MetricsRegistry()
        for bad in ("", "Upper.case", "with space", "dash-ed"):
            with pytest.raises(ConfigurationError):
                reg.counter(bad)

    def test_histogram_observe_and_bucket_edges(self):
        reg = MetricsRegistry()
        h = reg.histogram("t.s", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.1, 0.5, 5.0, 100.0):
            h.observe(v)
        # bisect_left: values equal to a boundary land in that bucket.
        assert h.bucket_counts == [2, 1, 1, 1]
        assert h.count == 5
        assert h.sum == pytest.approx(105.65)

    def test_histogram_vectorized_matches_scalar(self):
        values = stream(3, "metrics-test").random(200) * 30.0
        reg = MetricsRegistry()
        scalar = reg.histogram("a.b", buckets=DEFAULT_BUCKETS)
        vector = reg.histogram("a.c", buckets=DEFAULT_BUCKETS)
        for v in values:
            scalar.observe(float(v))
        vector.observe_many(values)
        assert vector.bucket_counts == scalar.bucket_counts
        assert vector.count == scalar.count
        assert vector.sum == pytest.approx(scalar.sum)

    def test_histogram_rejects_unsorted_buckets(self):
        reg = MetricsRegistry()
        with pytest.raises(ConfigurationError):
            reg.histogram("bad.h", buckets=(1.0, 0.5))
        with pytest.raises(ConfigurationError):
            reg.histogram("bad.h2", buckets=(1.0, 1.0))


class TestSpans:
    def test_span_context_manager_times_block(self):
        clock = {"t": 10.0}
        reg = MetricsRegistry(clock=lambda: clock["t"])
        with reg.span("phase.generation", phase="generation") as span:
            clock["t"] = 12.5
        assert span.duration_s == pytest.approx(2.5)
        assert reg.spans_finished == 1
        snap = reg.snapshot()
        calls = snap["counters"]["span.calls_total"]["series"][0]
        assert calls["value"] == 1
        assert calls["labels"]["span"] == "phase.generation"
        hist = snap["histograms"]["span.duration_seconds"]
        assert hist["wallclock"] is True
        assert hist["series"][0]["sum"] == pytest.approx(2.5)

    def test_span_records_even_on_exception(self):
        reg = MetricsRegistry(clock=lambda: 0.0)
        with pytest.raises(ValueError):
            with reg.span("doomed"):
                raise ValueError("x")
        assert reg.spans_finished == 1

    def test_record_span_directly(self):
        reg = MetricsRegistry()
        reg.record_span(Span(name="manual", start_s=1.0, end_s=3.0))
        snap = reg.snapshot()
        assert snap["histograms"]["span.duration_seconds"]["series"][0][
            "sum"
        ] == pytest.approx(2.0)


# ----------------------------------------------------------------------
# snapshots
# ----------------------------------------------------------------------
class TestSnapshots:
    def _populated(self):
        reg = MetricsRegistry(clock=lambda: 0.0)
        reg.counter("b.total", "b", site="z").inc(2)
        reg.counter("a.total", "a").inc()
        reg.gauge("g.depth").set(7)
        reg.histogram("h.seconds", buckets=(1.0,)).observe(0.5)
        return reg

    def test_snapshot_layout_is_sorted_and_versioned(self):
        snap = self._populated().snapshot()
        assert snap["schema"] == SCHEMA
        assert list(snap["counters"]) == ["a.total", "b.total"]
        row = snap["histograms"]["h.seconds"]["series"][0]
        assert row["buckets"] == [[1.0, 1], ["+inf", 0]]
        assert row["count"] == 1 and row["sum"] == 0.5

    def test_to_json_is_stable(self):
        a, b = self._populated(), self._populated()
        assert a.to_json() == b.to_json()
        assert a.to_json().endswith("\n")
        json.loads(a.to_json())  # parses

    def test_write_json(self, tmp_path):
        path = tmp_path / "m.json"
        self._populated().write_json(path)
        assert json.loads(path.read_text())["schema"] == SCHEMA

    def test_scrub_wallclock_zeroes_only_flagged_families(self):
        reg = MetricsRegistry(clock=lambda: 0.0)
        reg.counter("stable.total").inc(3)
        reg.counter("wall.seconds_total", wallclock=True).inc(1.23)
        reg.histogram("wall.hist", wallclock=True, buckets=(1.0,)).observe(0.4)
        scrubbed = scrub_wallclock(reg.snapshot())
        assert scrubbed["counters"]["stable.total"]["series"][0]["value"] == 3
        assert scrubbed["counters"]["wall.seconds_total"]["series"][0]["value"] == 0.0
        wall = scrubbed["histograms"]["wall.hist"]["series"][0]
        assert wall["sum"] == 0.0
        assert wall["buckets"] == [[1.0, 0], ["+inf", 0]]
        assert wall["count"] == 1  # observation counts stay: they are deterministic
        # The original snapshot is untouched (deep copy).
        original = reg.snapshot()
        assert original["counters"]["wall.seconds_total"]["series"][0]["value"] == 1.23


# ----------------------------------------------------------------------
# tracer bridge
# ----------------------------------------------------------------------
class TestMetricsTracer:
    def test_single_event_counts(self):
        reg = MetricsRegistry()
        tracer = MetricsTracer(reg)
        tracer.record(TraceEvent(module="POSIX", op="write", rank=0, path="/p",
                                 offset=0, length=1024, start=0.0, end=0.25, count=4))
        snap = reg.snapshot()
        ops = snap["counters"]["io.ops_total"]["series"][0]
        assert ops["labels"] == {"module": "POSIX", "op": "write"}
        assert ops["value"] == 4
        assert snap["counters"]["io.bytes_total"]["series"][0]["value"] == 4096
        # Simulated durations are deterministic: NOT flagged wallclock.
        assert snap["histograms"]["io.op_duration_seconds"]["wallclock"] is False

    def test_batch_is_vectorized_and_equivalent(self):
        durations = np.array([0.01, 0.02, 0.03])
        a, b = MetricsRegistry(), MetricsRegistry()
        MetricsTracer(a).record_batch("MPIIO", "read", 0, "/p", 0, 512, durations, 0.0)
        tr = MetricsTracer(b)
        t = 0.0
        for d in durations:
            tr.record(TraceEvent(module="MPIIO", op="read", rank=0, path="/p",
                                 offset=0, length=512, start=t, end=t + d))
            t += d
        assert a.snapshot() == b.snapshot()

    def test_empty_batch_is_noop(self):
        reg = MetricsRegistry()
        MetricsTracer(reg).record_batch("POSIX", "write", 0, "/p", 0, 1,
                                        np.array([]), 0.0)
        assert reg.snapshot()["counters"] == {}


# ----------------------------------------------------------------------
# pipeline + resilience bridges
# ----------------------------------------------------------------------
class _FlakyPhase:
    def __init__(self, name, failures):
        self.name = name
        self.failures = failures
        self.calls = 0

    def run(self, context):
        self.calls += 1
        if self.calls <= self.failures:
            exc = RuntimeError("boom")
            exc.transient = True
            raise exc
        return 3


def _context(tmp_path, db):
    cycle = KnowledgeCycle(Testbed.fuchs_csc(seed=300), db, workspace=tmp_path)
    return cycle._context("<unused/>")


class TestMetricsObserver:
    def test_phase_retries_and_outcomes_are_counted(self, tmp_path):
        reg = MetricsRegistry(clock=lambda: 0.0)
        flaky = _FlakyPhase("flaky", failures=2)
        policy = FailurePolicy(retry=RetryPolicy(max_attempts=3, base_delay_s=0.01, seed=5))
        with KnowledgeDatabase(":memory:") as db:
            PhasePipeline(
                PhaseRegistry([flaky]), [MetricsObserver(reg)],
                default_policy=policy, sleep=lambda s: None,
            ).run(_context(tmp_path, db))
        snap = reg.snapshot()
        retries = snap["counters"]["pipeline.phase_retries_total"]["series"][0]
        assert retries["labels"] == {"phase": "flaky"} and retries["value"] == 2
        backoff = snap["counters"]["pipeline.retry_backoff_seconds_total"]["series"][0]
        expected = sum(policy.retry.with_salt("phase:flaky").delays_s())
        assert backoff["value"] == pytest.approx(expected)
        runs = snap["counters"]["pipeline.phase_runs_total"]["series"][0]
        assert runs["labels"] == {"outcome": "ok", "phase": "flaky"}
        artifacts = snap["counters"]["pipeline.phase_artifacts_total"]["series"][0]
        assert artifacts["value"] == 3
        assert snap["histograms"]["pipeline.phase_duration_seconds"]["wallclock"] is True

    def test_exhausted_phase_counts_as_error(self, tmp_path):
        reg = MetricsRegistry(clock=lambda: 0.0)
        policy = FailurePolicy(
            retry=RetryPolicy(max_attempts=2, base_delay_s=0.0, jitter=0.0),
            on_exhausted="skip",
        )
        with KnowledgeDatabase(":memory:") as db:
            PhasePipeline(
                PhaseRegistry([_FlakyPhase("doomed", failures=99)]),
                [MetricsObserver(reg)], default_policy=policy, sleep=lambda s: None,
            ).run(_context(tmp_path, db))
        runs = reg.snapshot()["counters"]["pipeline.phase_runs_total"]["series"][0]
        assert runs["labels"]["outcome"] == "error" and runs["value"] == 1


class TestResilienceMetrics:
    def test_retry_counts_by_site(self):
        reg = MetricsRegistry()
        policy = RetryPolicy(max_attempts=3, base_delay_s=0.25, jitter=0.0)
        calls = {"n": 0}

        def fn():
            calls["n"] += 1
            if calls["n"] < 3:
                exc = RuntimeError("x")
                exc.transient = True
                raise exc
            return "ok"

        retry(fn, policy, sleep=lambda s: None, metrics=reg, site="unit-test")
        snap = reg.snapshot()
        retries = snap["counters"]["resilience.retries_total"]["series"][0]
        assert retries["labels"] == {"site": "unit-test"} and retries["value"] == 2
        backoff = snap["counters"]["resilience.backoff_seconds_total"]["series"][0]
        assert backoff["value"] == pytest.approx(0.25 + 0.5)

    def test_breaker_transitions_and_state_gauge(self):
        reg = MetricsRegistry()
        clock = {"t": 0.0}
        cb = CircuitBreaker(failure_threshold=1, reset_timeout_s=1.0,
                            clock=lambda: clock["t"], metrics=reg, name="db")
        cb.record_failure()  # closed -> open
        clock["t"] = 1.0
        assert cb.allow()  # open -> half-open (decay) + probe
        cb.record_success()  # half-open -> closed
        snap = reg.snapshot()
        transitions = {
            (row["labels"]["from"], row["labels"]["to"]): row["value"]
            for row in snap["counters"]["resilience.breaker_transitions_total"]["series"]
        }
        assert transitions == {
            ("closed", "open"): 1, ("open", "half-open"): 1, ("half-open", "closed"): 1,
        }
        state = snap["gauges"]["resilience.breaker_state"]["series"][0]
        assert state["labels"] == {"name": "db"} and state["value"] == 0.0


class _AlwaysLocked:
    """Backend stub whose writes always fail with a transient lock."""

    def __init__(self, db):
        self.db = db

    def execute(self, sql, params=()):
        if sql.lstrip().split(None, 1)[0].lower() in ("insert", "update", "delete"):
            raise sqlite3.OperationalError("database is locked")
        return self.db.execute(sql, params)

    def executemany(self, sql, rows):
        raise sqlite3.OperationalError("database is locked")

    def commit(self):
        self.db.commit()

    def rollback(self):
        self.db.rollback()

    def close(self):
        self.db.close()

    def transaction(self):
        return self.db.transaction()

    def table_count(self, table):
        return self.db.table_count(table)


class TestPersistenceMetrics:
    def test_degraded_writes_update_buffer_depth_and_counters(self):
        reg = MetricsRegistry()
        with KnowledgeDatabase(":memory:") as db:
            backend = ResilientBackend(
                _AlwaysLocked(db),
                retry_policy=RetryPolicy(max_attempts=2, base_delay_s=0.0, jitter=0.0,
                                         retryable=transient_db_error),
                breaker=CircuitBreaker(failure_threshold=1, reset_timeout_s=1e9,
                                       metrics=reg, name="persistence"),
                sleep=lambda s: None,
                metrics=reg,
            )
            backend.execute(
                "INSERT INTO performances (benchmark, command) VALUES ('a', 'c')"
            )
            backend.execute(
                "INSERT INTO performances (benchmark, command) VALUES ('b', 'c')"
            )
            snap = reg.snapshot()
            stmts = {
                (row["labels"]["kind"], row["labels"]["outcome"]): row["value"]
                for row in snap["counters"]["persistence.statements_total"]["series"]
            }
            assert stmts[("write", "failed")] == 1  # first write trips the breaker
            assert stmts[("write", "buffered")] == 2
            depth = snap["gauges"]["persistence.degraded_buffer_depth"]["series"][0]
            assert depth["value"] == 2
            # Retries under the persistence site were counted too.
            retries = snap["counters"]["resilience.retries_total"]["series"][0]
            assert retries["labels"] == {"site": "persistence"}
            assert retries["value"] >= 1

    def test_flush_and_replay_outcomes(self):
        reg = MetricsRegistry()
        with KnowledgeDatabase(":memory:") as db:
            inner = _AlwaysLocked(db)
            backend = ResilientBackend(
                inner,
                retry_policy=RetryPolicy(max_attempts=2, base_delay_s=0.0, jitter=0.0,
                                         retryable=transient_db_error),
                breaker=CircuitBreaker(failure_threshold=1, reset_timeout_s=0.0,
                                       metrics=reg, name="persistence"),
                sleep=lambda s: None,
                metrics=reg,
            )
            backend.execute(
                "INSERT INTO performances (benchmark, command) VALUES ('a', 'c')"
            )
            inner.execute = db.execute  # database heals
            backend.flush()
            snap = reg.snapshot()
            flushes = {
                row["labels"]["outcome"]: row["value"]
                for row in snap["counters"]["persistence.flushes_total"]["series"]
            }
            assert flushes.get("ok") == 1
            replays = {
                row["labels"]["outcome"]: row["value"]
                for row in snap["counters"]["persistence.replays_total"]["series"]
            }
            assert replays.get("ok") == 1
            depth = snap["gauges"]["persistence.degraded_buffer_depth"]["series"][0]
            assert depth["value"] == 0
            rows = snap["counters"]["persistence.rows_written_total"]["series"][0]
            assert rows["value"] >= 1

    def test_database_statement_counters(self):
        reg = MetricsRegistry()
        with KnowledgeDatabase(":memory:", metrics=reg) as db:
            db.execute("INSERT INTO performances (benchmark, command) VALUES ('a', 'c')")
            db.execute("SELECT COUNT(*) FROM performances")
        snap = reg.snapshot()
        verbs = {
            (row["labels"]["verb"], row["labels"]["outcome"]): row["value"]
            for row in snap["counters"]["persistence.db_statements_total"]["series"]
        }
        assert verbs[("insert", "ok")] == 1
        assert verbs[("select", "ok")] >= 1


# ----------------------------------------------------------------------
# text report
# ----------------------------------------------------------------------
class TestReport:
    def test_report_lists_all_kinds(self):
        reg = MetricsRegistry(clock=lambda: 0.0)
        reg.counter("a.total", site="x").inc(3)
        reg.gauge("g.depth").set(2)
        reg.histogram("h.seconds", buckets=(1.0,)).observe(0.5)
        text = render_metrics_report(reg.snapshot())
        assert SCHEMA in text
        assert "a.total{site=x}" in text and " 3" in text
        assert "g.depth" in text
        assert "count=1" in text and "mean=0.5" in text

    def test_report_rejects_non_snapshot(self):
        with pytest.raises(ConfigurationError, match="schema"):
            render_metrics_report({"counters": {}})


# ----------------------------------------------------------------------
# end to end: CLI snapshot determinism + explorer report
# ----------------------------------------------------------------------
def _find_cli_fault_seed():
    """Smallest seed whose first cli-injected draw fires at p=0.5."""
    for seed in range(500):
        if stream(seed, "hard-fault", "cli-injected", 0).random() < 0.5:
            return seed
    raise AssertionError("no seed found")


class TestCliMetrics:
    def _run(self, tmp_path, tag, seed=42, extra=()):
        from repro.core.cycle import main

        path = tmp_path / f"metrics-{tag}.json"
        rc = main([
            "--workspace", str(tmp_path / f"ws-{tag}"),
            "--seed", str(seed),
            "--retries", "2",
            "--on-failure", "skip",
            "--metrics-json", str(path),
            *extra,
        ])
        assert rc == 0
        return json.loads(path.read_text())

    def test_same_seed_snapshots_identical_modulo_wallclock(self, tmp_path):
        a = self._run(tmp_path, "a")
        b = self._run(tmp_path, "b")
        sa = json.dumps(scrub_wallclock(a), sort_keys=True, indent=2)
        sb = json.dumps(scrub_wallclock(b), sort_keys=True, indent=2)
        assert sa == sb
        # The snapshot carries all three metric groups of the tentpole.
        assert a["schema"] == SCHEMA
        assert "pipeline.phase_runs_total" in a["counters"]
        assert "io.ops_total" in a["counters"]
        assert "persistence.statements_total" in a["counters"]
        assert "cycle.revolutions_total" in a["counters"]
        assert "pipeline.phase_duration_seconds" in a["histograms"]

    def test_injected_fault_reports_retries(self, tmp_path):
        seed = _find_cli_fault_seed()
        snap = self._run(tmp_path, "fault", seed=seed,
                         extra=("--inject-fault", "0.5"))
        retries = sum(
            row["value"]
            for row in snap["counters"]["pipeline.phase_retries_total"]["series"]
        )
        assert retries > 0

    def test_inject_fault_validation(self):
        from repro.core.cycle import main

        assert main(["--inject-fault", "0"]) == 2
        assert main(["--inject-fault", "1.5"]) == 2

    def test_explorer_metrics_report(self, tmp_path, capsys):
        from repro.core.explorer.cli import main as explore

        snap_path = tmp_path / "m.json"
        reg = MetricsRegistry()
        reg.counter("a.total").inc(5)
        reg.write_json(snap_path)
        assert explore(["--metrics", str(snap_path)]) == 0
        out = capsys.readouterr().out
        assert "Metrics snapshot" in out and "a.total" in out

    def test_explorer_requires_db_or_metrics(self, capsys):
        from repro.core.explorer.cli import main as explore

        assert explore([]) == 2
        assert "knowledge database" in capsys.readouterr().err

    def test_explorer_rejects_bad_snapshot(self, tmp_path, capsys):
        from repro.core.explorer.cli import main as explore

        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert explore(["--metrics", str(bad)]) == 1
        not_snapshot = tmp_path / "list.json"
        not_snapshot.write_text('{"no": "schema"}')
        assert explore(["--metrics", str(not_snapshot)]) == 1
