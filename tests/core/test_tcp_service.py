"""knowledge+tcp:// end to end: parity, retries, drain, kill, soak.

The networked half of the service contract: a :class:`KnowledgeServer`
with shard groups in separate worker processes must behave exactly like
the embedded service through the same :class:`ServiceClient` — same
results, same ordering, same typed errors — and die well: graceful
drain flushes every worker (exit 0), a SIGKILL'd server surfaces typed
transport errors in clients instead of hangs.
"""

import os
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.core.knowledge import Knowledge, KnowledgeResult, KnowledgeSummary
from repro.core.metrics import MetricsRegistry
from repro.core.resilience import RetryPolicy
from repro.core.service.client import ServiceClient, parse_tcp_url
from repro.core.service.server import KnowledgeServer
from repro.core.service.service import KnowledgeService
from repro.core.service.shard import KnowledgeShardMap, decode_knowledge_id
from repro.core.service.wire import PROTOCOL
from repro.util.errors import (
    PersistenceError,
    ServiceError,
    ServiceTransportError,
    WireProtocolError,
)


def make_knowledge(marker: int, host: str = "nodeA", benchmark: str = "ior") -> Knowledge:
    return Knowledge(
        benchmark=benchmark, command=f"{benchmark} -m {marker}", api="MPIIO",
        num_nodes=2, num_tasks=8,
        parameters={"marker": marker, "xfersize_bytes": 1 << 20},
        summaries=[
            KnowledgeSummary(
                operation="write", api="MPIIO",
                bw_max=100.0 + marker, bw_min=90.0 + marker, bw_mean=95.0 + marker,
                bw_stddev=1.0, ops_max=30.0, ops_min=10.0, ops_mean=20.0,
                ops_stddev=5.0, iterations=2,
                results=[
                    KnowledgeResult(iteration=i, bandwidth_mib=95.0 + marker, iops=7.0)
                    for i in range(2)
                ],
            )
        ],
        system={"hostname": host},
    )


@pytest.fixture()
def server(tmp_path):
    srv = KnowledgeServer(
        tmp_path / "store", shards=2, worker_processes=2,
        metrics=MetricsRegistry(), request_timeout_s=15.0,
    )
    srv.start()
    yield srv
    srv.close()


def _url(server) -> str:
    return f"knowledge+tcp://{server.host}:{server.port}/"


# ----------------------------------------------------------------------
# parity with the embedded service
# ----------------------------------------------------------------------
class TestTcpParity:
    def test_crud_round_trip_and_id_assignment(self, server):
        with ServiceClient.open(_url(server)) as client:
            first = make_knowledge(1, host="n1")
            gid = client.save(first)
            assert first.knowledge_id == gid  # id assigned on the caller's object
            loaded = client.load(gid)
            assert loaded.parameters["marker"] == 1
            assert loaded.summaries[0].bw_mean == 96.0

            batch = [make_knowledge(m, host=f"n{m}") for m in range(2, 8)]
            ids = client.save_many(batch)
            assert [k.knowledge_id for k in batch] == ids
            # objects really spread across both shard-group processes
            shards = {decode_knowledge_id(i)[1] for i in ids + [gid]}
            assert shards == {0, 1}

            assert client.count() == 7
            assert client.list_ids() == sorted(ids + [gid])
            fetched = client.fetch_many(ids[::-1])
            assert [k.parameters["marker"] for k in fetched] == [7, 6, 5, 4, 3, 2]
            # int-valued parameter queried as a string stays a miss —
            # same contract as the embedded path
            assert client.find_ids_by_parameter("marker", "3") == []
            assert [k.parameters["marker"] for k in client.load_all()] == [
                k.parameters["marker"]
                for k in sorted(batch + [first], key=lambda k: k.knowledge_id)
            ]

            tagged = make_knowledge(42, host="n1")
            tagged.parameters["tag"] = "blue"
            client.save(tagged)
            assert client.find_ids_by_parameter("tag", "blue") == [
                tagged.knowledge_id
            ]

            client.delete(gid)
            assert client.exists(gid) is False
            assert client.exists(3) is False  # undecodable plain id -> False
            assert client.count() == 7

    def test_matches_embedded_service_results(self, server, tmp_path):
        objs = [make_knowledge(m, host=f"h{m % 3}") for m in range(6)]
        with ServiceClient.open(_url(server)) as remote:
            remote.save_many([make_knowledge(m, host=f"h{m % 3}") for m in range(6)])
            remote_rows = [
                (k.parameters["marker"], decode_knowledge_id(k.knowledge_id)[1])
                for k in remote.load_all()
            ]
        shard_map = KnowledgeShardMap(tmp_path / "embedded", num_shards=2)
        with ServiceClient(KnowledgeService(shard_map)) as local:
            local.save_many(objs)
            local_rows = [
                (k.parameters["marker"], decode_knowledge_id(k.knowledge_id)[1])
                for k in local.load_all()
            ]
        assert remote_rows == local_rows  # same placement, same ordering

    def test_typed_errors_cross_the_wire(self, server):
        with ServiceClient.open(_url(server)) as client:
            k = make_knowledge(9)
            client.save(k)
            client.delete(k.knowledge_id)
            with pytest.raises(PersistenceError) as excinfo:
                client.load(k.knowledge_id)
            assert excinfo.value.wire_code == "persistence"
            with pytest.raises(ServiceError):
                client.transport.call("not-an-op", {})
            with pytest.raises(WireProtocolError):  # bad-request from the router
                client.transport.call("load", {"junk": True})

    def test_hello_negotiation_and_server_info(self, server):
        with ServiceClient.open(_url(server)) as client:
            assert client.ping() is True
            info = client.server_info
            assert info["protocol"] == PROTOCOL
            assert info["shards"] == 2 and info["worker_processes"] == 2
            stats = client.stats()
            assert stats["worker_processes"] == 2
            assert sorted(s for g in stats["shard_groups"] for s in g) == [0, 1]

    def test_transport_metrics_counted(self, server):
        client_metrics = MetricsRegistry()
        with ServiceClient.open(_url(server), metrics=client_metrics) as client:
            client.save(make_knowledge(4))
            client.list_ids()
        for snapshot in (client_metrics.snapshot(), server.metrics.snapshot()):
            counters = snapshot["counters"]
            assert "service.transport.connections_total" in counters
            assert "service.transport.frames_total" in counters
            assert "service.transport.bytes_total" in counters
            assert "service.transport.request_seconds" in snapshot["histograms"]

    def test_url_options_reach_the_transport(self, server):
        url = _url(server) + "?pool=2&timeout_ms=5000&connect_timeout_ms=1000"
        host, port, options = parse_tcp_url(url)
        assert (host, port) == (server.host, server.port)
        assert options == {"pool": 2, "timeout_ms": 5000, "connect_timeout_ms": 1000}
        with ServiceClient.open(url) as client:
            assert client.transport.pool_size == 2
            assert client.transport.timeout_s == 5.0
            assert client.ping() is True


# ----------------------------------------------------------------------
# retry classification and deadlines (S1)
# ----------------------------------------------------------------------
class _ScriptedTransport:
    """Raises a scripted error per call until the script runs out."""

    def __init__(self, errors):
        self.errors = list(errors)
        self.calls = 0
        self.metrics = MetricsRegistry()

    def call(self, op, payload, *, timeout_s=None):
        self.calls += 1
        if self.errors:
            raise self.errors.pop(0)
        return {}

    def close(self):
        pass


class TestRetryClassification:
    def test_transient_transport_fault_is_retried_and_counted(self):
        transport = _ScriptedTransport(
            [ServiceTransportError("reset", retryable=True)] * 2
        )
        client = ServiceClient(transport, sleep=lambda s: None)
        assert client.ping() is True
        assert transport.calls == 3
        snapshot = transport.metrics.snapshot()
        series = snapshot["counters"]["service.client.retries_total"]["series"]
        assert {row["labels"]["kind"]: row["value"] for row in series} == {
            "transport": 2.0
        }

    def test_non_retryable_transport_fault_surfaces_first_try(self):
        transport = _ScriptedTransport(
            [ServiceTransportError("post-send save", retryable=False)] * 5
        )
        client = ServiceClient(transport, sleep=lambda s: None)
        with pytest.raises(ServiceTransportError, match="post-send"):
            client.ping()
        assert transport.calls == 1  # at-most-once: no blind replay

    def test_retry_sleeps_clamped_to_deadline(self):
        sleeps = []
        transport = _ScriptedTransport(
            [ServiceTransportError("flaky", retryable=True)] * 50
        )
        client = ServiceClient(
            transport,
            retry_policy=RetryPolicy(
                max_attempts=50, base_delay_s=0.05, max_delay_s=0.5,
                salt="test", retryable=lambda exc: True,
            ),
            sleep=sleeps.append,
            timeout_s=0.2,
        )
        with pytest.raises(ServiceTransportError):
            client.ping()
        # the policy's 0.5 s exponential ceiling never survives the
        # clamp: no single backoff may exceed the 0.2 s request budget
        assert sleeps and max(sleeps) <= 0.2


# ----------------------------------------------------------------------
# lifecycle: drain, kill, real subprocess
# ----------------------------------------------------------------------
class TestLifecycle:
    def test_graceful_drain_flushes_workers(self, server, tmp_path):
        with ServiceClient.open(_url(server)) as client:
            client.save_many([make_knowledge(m, host=f"n{m}") for m in range(4)])
        server.initiate_drain()
        server.close()
        assert server.worker_returncodes == [0, 0]
        # the drain flushed: a fresh embedded open sees every row
        shard_map = KnowledgeShardMap(tmp_path / "store")
        with ServiceClient(KnowledgeService(shard_map)) as reopened:
            assert reopened.count() == 4

    def test_draining_server_answers_typed_error(self, server):
        client = ServiceClient.open(
            _url(server),
            retry_policy=RetryPolicy(max_attempts=2, base_delay_s=0.001,
                                     retryable=lambda exc: False),
        )
        try:
            client.ping()  # pre-drain: pools a healthy connection
            server.initiate_drain()
            with pytest.raises(ServiceTransportError) as excinfo:
                client.count()
            assert excinfo.value.wire_code == "draining"
            assert excinfo.value.transient  # a retrying client may wait it out
        finally:
            client.close()

    def test_sigkilled_workers_surface_typed_errors_not_hangs(self, tmp_path):
        """SIGKILL every shard-group worker mid-session: requests fail
        fast with typed transport errors and the breaker quarantines.
        (``supervise=False`` — with the supervisor on, the workers would
        be respawned before the quarantine could be observed.)"""
        server = KnowledgeServer(
            tmp_path / "store", shards=2, worker_processes=2,
            metrics=MetricsRegistry(), request_timeout_s=15.0,
            supervise=False,
        )
        server.start()
        self._kill_and_observe(server)
        server.close()

    def _kill_and_observe(self, server):
        policy = RetryPolicy(max_attempts=2, base_delay_s=0.001,
                             retryable=lambda exc: False)
        with ServiceClient.open(_url(server), retry_policy=policy) as client:
            k = make_knowledge(1)
            client.save(k)
            for worker in server.workers:
                worker.process.kill()
                worker.process.wait()
            start = time.monotonic()
            with pytest.raises(ServiceTransportError):
                client.load(k.knowledge_id)
            # breaker now open for the dead worker: instant quarantine
            with pytest.raises(ServiceTransportError) as excinfo:
                client.load(k.knowledge_id)
            assert excinfo.value.wire_code in ("quarantine", "unavailable")
            assert time.monotonic() - start < 60.0


def _spawn_serve(tmp_path, *extra):
    """Start a real ``repro-serve --listen`` subprocess; returns (proc, url)."""
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[2] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.core.service.serve",
         str(tmp_path / "served"), "--listen", "127.0.0.1:0",
         "--worker-processes", "2", *extra],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    line = proc.stdout.readline()
    assert "listening on knowledge+tcp://" in line, line
    url = line.split("listening on ", 1)[1].split(" ")[0]
    return proc, url


class TestRealServerSubprocess:
    def test_sigterm_drains_real_server(self, tmp_path):
        proc, url = _spawn_serve(tmp_path)
        try:
            with ServiceClient.open(url) as client:
                client.save_many([make_knowledge(m, host=f"n{m}") for m in range(3)])
                assert client.count() == 3
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=30)
            assert proc.returncode == 0, out
            assert "drained; worker exit codes [0, 0]" in out
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()

    def test_sigkill_mid_stress_clients_fail_typed_not_hang(self, tmp_path):
        """CI's tcp-smoke scenario in miniature: soak a real server,
        SIGKILL it mid-stress, and require every client thread to come
        back with a typed error (or clean success) — never a hang."""
        proc, url = _spawn_serve(tmp_path)
        outcomes: list[str] = []
        lock = threading.Lock()
        policy = RetryPolicy(max_attempts=3, base_delay_s=0.005,
                             max_delay_s=0.05, salt="kill-soak")

        def hammer(worker_id: int) -> None:
            try:
                with ServiceClient.open(
                    url, retry_policy=policy, timeout_s=20.0
                ) as client:
                    # long enough to still be mid-flight when the kill
                    # lands; the dead server ends the loop with an error
                    for i in range(5000):
                        k = make_knowledge(worker_id * 10000 + i,
                                           host=f"w{worker_id}")
                        client.save(k)
                        client.load(k.knowledge_id)
                outcome = "ok"
            except (ServiceError, OSError) as exc:
                outcome = f"typed:{type(exc).__name__}"
            except Exception as exc:  # noqa: BLE001 - the failure we test for
                outcome = f"WRONG:{type(exc).__name__}:{exc}"
            with lock:
                outcomes.append(outcome)

        threads = [threading.Thread(target=hammer, args=(t,)) for t in range(4)]
        try:
            for thread in threads:
                thread.start()
            time.sleep(0.3)  # let the soak get going
            proc.kill()
            proc.wait()
            deadline = time.monotonic() + 60.0
            for thread in threads:
                thread.join(timeout=max(0.0, deadline - time.monotonic()))
            hung = [t for t in threads if t.is_alive()]
            assert not hung, f"{len(hung)} client thread(s) hung after SIGKILL"
            assert all(
                outcome == "ok" or outcome.startswith("typed:")
                for outcome in outcomes
            ), outcomes
            # at least one client actually saw the kill
            assert any(outcome.startswith("typed:") for outcome in outcomes), outcomes
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()


# ----------------------------------------------------------------------
# concurrency soak over TCP (CI stress job)
# ----------------------------------------------------------------------
@pytest.mark.stress
@pytest.mark.timeout(180)
class TestTcpStressSoak:
    N_WRITERS = 8
    N_READERS = 8
    SAVES_PER_WRITER = 6

    def test_sixteen_thread_soak_over_tcp(self, server):
        url = _url(server)
        errors: list[BaseException] = []
        written: list[int] = []
        lock = threading.Lock()
        stop = threading.Event()

        def writer(worker_id: int) -> None:
            try:
                with ServiceClient.open(url, timeout_s=60.0) as client:
                    for i in range(self.SAVES_PER_WRITER):
                        k = make_knowledge(worker_id * 1000 + i,
                                           host=f"w{worker_id}")
                        gid = client.save(k)
                        with lock:
                            written.append(gid)
            except BaseException as exc:  # noqa: BLE001 - collected for assert
                with lock:
                    errors.append(exc)

        def reader() -> None:
            try:
                with ServiceClient.open(url, timeout_s=60.0) as client:
                    while not stop.is_set():
                        with lock:
                            ids = list(written)
                        if ids:
                            loaded = client.load(ids[len(ids) // 2])
                            assert loaded.parameters["marker"] >= 0
                        client.count()
            except BaseException as exc:  # noqa: BLE001 - collected for assert
                with lock:
                    errors.append(exc)

        writers = [threading.Thread(target=writer, args=(t,))
                   for t in range(self.N_WRITERS)]
        readers = [threading.Thread(target=reader) for _ in range(self.N_READERS)]
        for thread in writers + readers:
            thread.start()
        for thread in writers:
            thread.join()
        stop.set()
        for thread in readers:
            thread.join()
        assert not errors, errors
        with ServiceClient.open(url) as client:
            ids = client.list_ids()
            expected = self.N_WRITERS * self.SAVES_PER_WRITER
            assert len(ids) == len(set(ids)) == expected  # zero lost, zero dup
            assert sorted(written) == ids
            markers = sorted(k.parameters["marker"] for k in client.fetch_many(ids))
            assert markers == sorted(
                w * 1000 + i
                for w in range(self.N_WRITERS)
                for i in range(self.SAVES_PER_WRITER)
            )
        assert all(worker.alive for worker in server.workers)
