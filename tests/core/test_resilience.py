"""Resilience layer: retry/backoff, breaker, quarantine, degraded DB.

Covers the PR-2 acceptance criteria: deterministic backoff schedules,
circuit-breaker state transitions, quarantined revolutions that do not
poison later ones, a persistence backend that survives "database is
locked" bursts, and the end-to-end cycle demo with hard faults injected
at both the benchmark and the database layer.
"""

import sqlite3

import pytest

from repro.core.cycle import KnowledgeCycle
from repro.core.persistence import KnowledgeDatabase, KnowledgeRepository
from repro.core.persistence.backend import ResilientBackend, transient_db_error
from repro.core.pipeline import (
    FailurePolicy,
    PhaseObserver,
    PhasePipeline,
    PhaseRegistry,
    TimingObserver,
)
from repro.core.resilience import CircuitBreaker, Deadline, RetryPolicy, retry
from repro.iostack.stack import Testbed
from repro.pfs.faults import Fault, FaultInjector, InjectedBenchmarkError
from repro.util.errors import (
    ConfigurationError,
    DeadlineError,
    PersistenceError,
    PipelineError,
)
from repro.util.rng import stream

CYCLE_XML = """
<jube>
  <benchmark name="resilience-test" outpath="ignored">
    <parameterset name="pattern">
      <parameter name="transfersize">1m</parameter>
      <parameter name="command">ior -a mpiio -b 4m -t $transfersize -s 4 -F -e -i 3 -o /scratch/rz/test -k</parameter>
      <parameter name="nodes">2</parameter>
      <parameter name="taskspernode">8</parameter>
    </parameterset>
    <step name="run" work="ior">
      <use>pattern</use>
    </step>
  </benchmark>
</jube>
"""


def _transient(msg="boom"):
    exc = RuntimeError(msg)
    exc.transient = True
    return exc


class _FlakyPhase:
    """Fails with a transient error a set number of times, then succeeds."""

    def __init__(self, name, failures, error_factory=_transient):
        self.name = name
        self.failures = failures
        self.error_factory = error_factory
        self.calls = 0

    def run(self, context):
        self.calls += 1
        if self.calls <= self.failures:
            raise self.error_factory()
        return 1


def _context(tmp_path, db, seed=300):
    cycle = KnowledgeCycle(Testbed.fuchs_csc(seed=seed), db, workspace=tmp_path)
    return cycle._context("<unused/>")


# ----------------------------------------------------------------------
# RetryPolicy / retry()
# ----------------------------------------------------------------------
class TestRetryPolicy:
    def test_schedule_is_deterministic_for_fixed_seed(self, fault_seed):
        a = RetryPolicy(max_attempts=5, base_delay_s=0.1, seed=fault_seed)
        b = RetryPolicy(max_attempts=5, base_delay_s=0.1, seed=fault_seed)
        assert a.delays_s() == b.delays_s()
        assert len(a.delays_s()) == 4
        # Exponential envelope survives the +-10% jitter.
        for n, delay in enumerate(a.delays_s(), start=1):
            base = 0.1 * 2.0 ** (n - 1)
            assert base * 0.9 <= delay <= base * 1.1
        different = RetryPolicy(max_attempts=5, base_delay_s=0.1, seed=fault_seed + 1)
        assert different.delays_s() != a.delays_s()

    def test_max_delay_caps_backoff(self):
        p = RetryPolicy(max_attempts=10, base_delay_s=1.0, max_delay_s=2.0, jitter=0.0)
        assert p.delays_s() == [1.0, 2.0, 2.0, 2.0, 2.0, 2.0, 2.0, 2.0, 2.0]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ConfigurationError):
            RetryPolicy(jitter=1.0)

    def test_retry_sleeps_exact_schedule_then_succeeds(self):
        policy = RetryPolicy(max_attempts=4, base_delay_s=0.05, seed=9)
        calls = {"n": 0}

        def fn():
            calls["n"] += 1
            if calls["n"] < 4:
                raise _transient()
            return "done"

        slept = []
        assert retry(fn, policy, sleep=slept.append) == "done"
        assert slept == policy.delays_s()

    def test_retry_gives_up_after_max_attempts(self):
        policy = RetryPolicy(max_attempts=3, base_delay_s=0.0, jitter=0.0)
        slept = []
        with pytest.raises(RuntimeError):
            retry(lambda: (_ for _ in ()).throw(_transient()), policy, sleep=slept.append)
        assert len(slept) == 2  # two retries after the first attempt

    def test_permanent_error_is_not_retried(self):
        policy = RetryPolicy(max_attempts=5)
        slept = []

        def fn():
            raise ValueError("permanent")

        with pytest.raises(ValueError):
            retry(fn, policy, sleep=slept.append)
        assert slept == []

    def test_deadline_stops_retrying(self):
        clock = {"t": 0.0}
        deadline = Deadline(1.0, clock=lambda: clock["t"])
        policy = RetryPolicy(max_attempts=10, base_delay_s=0.0, jitter=0.0)

        def fn():
            clock["t"] += 0.6
            raise _transient()

        with pytest.raises(RuntimeError):
            retry(fn, policy, sleep=lambda s: None, deadline=deadline)
        assert clock["t"] == pytest.approx(1.2)  # two attempts, not ten

    def test_backoff_sleep_is_clamped_to_remaining_deadline(self):
        # Regression: with 0.3s left and a 2s backoff due, retry() used
        # to sleep the full 2s, overshooting the budget by 1.7s.
        clock = {"t": 0.0}
        deadline = Deadline(1.0, clock=lambda: clock["t"])
        policy = RetryPolicy(max_attempts=10, base_delay_s=2.0, jitter=0.0)
        slept = []

        def sleep(s):
            slept.append(s)
            clock["t"] += s  # the fake clock advances while we sleep

        def fn():
            clock["t"] += 0.7
            raise _transient()

        with pytest.raises(RuntimeError):
            retry(fn, policy, sleep=sleep, deadline=deadline)
        # First attempt ends at t=0.7 with 0.3s left: the 2s backoff is
        # clamped to 0.3s.  The second attempt ends past the budget and
        # re-raises with no parting sleep.
        assert slept == [pytest.approx(0.3)]
        assert clock["t"] == pytest.approx(1.7)  # 0.7 + 0.3 + 0.7, not +2.0

    def test_expired_deadline_reraises_without_sleeping(self):
        clock = {"t": 0.0}
        deadline = Deadline(0.5, clock=lambda: clock["t"])
        policy = RetryPolicy(max_attempts=10, base_delay_s=1.0, jitter=0.0)
        slept = []

        def fn():
            clock["t"] += 0.6  # single attempt blows the whole budget
            raise _transient()

        with pytest.raises(RuntimeError):
            retry(fn, policy, sleep=slept.append, deadline=deadline)
        assert slept == []

    def test_distinct_salts_decorrelate_schedules(self):
        # Regression: jitter was keyed by (seed, attempt) only, so every
        # call site sharing the default seed slept an identical schedule
        # — the thundering herd jitter exists to prevent.
        base = RetryPolicy(max_attempts=6, base_delay_s=0.1, seed=42)
        a = base.with_salt("phase:generation")
        b = base.with_salt("persistence")
        assert a.delays_s() != b.delays_s()
        # Same seed + same salt stays bit-reproducible.
        assert a.delays_s() == base.with_salt("phase:generation").delays_s()
        # And the unsalted policy is itself reproducible.
        assert base.delays_s() == RetryPolicy(
            max_attempts=6, base_delay_s=0.1, seed=42
        ).delays_s()


class TestDeadline:
    def test_budget_accounting(self):
        clock = {"t": 10.0}
        d = Deadline(2.0, clock=lambda: clock["t"])
        assert not d.expired and d.remaining_s == pytest.approx(2.0)
        clock["t"] = 11.5
        assert d.remaining_s == pytest.approx(0.5)
        clock["t"] = 12.5
        assert d.expired
        with pytest.raises(DeadlineError, match="phase 'x'"):
            d.check("phase 'x'")

    def test_unlimited_budget(self):
        d = Deadline(None)
        assert d.remaining_s == float("inf")
        d.check()  # never raises

    def test_rejects_nonpositive_budget(self):
        with pytest.raises(ConfigurationError):
            Deadline(0.0)


class TestCircuitBreaker:
    def test_opens_half_opens_closes(self):
        clock = {"t": 0.0}
        cb = CircuitBreaker(failure_threshold=3, reset_timeout_s=5.0, clock=lambda: clock["t"])
        assert cb.state == CircuitBreaker.CLOSED and cb.allow()
        cb.record_failure()
        cb.record_failure()
        assert cb.state == CircuitBreaker.CLOSED  # below threshold
        cb.record_failure()
        assert cb.state == CircuitBreaker.OPEN and not cb.allow()
        clock["t"] = 4.9
        assert cb.state == CircuitBreaker.OPEN
        clock["t"] = 5.0
        assert cb.state == CircuitBreaker.HALF_OPEN and cb.allow()
        cb.record_success()
        assert cb.state == CircuitBreaker.CLOSED
        assert cb.consecutive_failures == 0

    def test_failed_probe_reopens(self):
        clock = {"t": 0.0}
        cb = CircuitBreaker(failure_threshold=1, reset_timeout_s=1.0, clock=lambda: clock["t"])
        cb.record_failure()
        assert not cb.allow()
        clock["t"] = 1.0
        assert cb.state == CircuitBreaker.HALF_OPEN
        cb.record_failure()  # probe failed: snap back open
        assert cb.state == CircuitBreaker.OPEN
        clock["t"] = 1.5
        assert cb.state == CircuitBreaker.OPEN  # timer restarted at reopen

    def test_success_resets_failure_streak(self):
        cb = CircuitBreaker(failure_threshold=2)
        cb.record_failure()
        cb.record_success()
        cb.record_failure()
        assert cb.state == CircuitBreaker.CLOSED

    def test_half_open_admits_exactly_one_probe(self):
        # Regression: allow() used to admit *every* caller while
        # HALF_OPEN, stampeding the dependency with concurrent probes.
        clock = {"t": 0.0}
        cb = CircuitBreaker(failure_threshold=1, reset_timeout_s=1.0, clock=lambda: clock["t"])
        cb.record_failure()
        clock["t"] = 1.0
        assert cb.state == CircuitBreaker.HALF_OPEN
        assert cb.allow()  # first caller claims the probe slot
        assert not cb.allow()  # everyone else is rejected...
        assert not cb.allow()
        cb.record_success()  # ...until the probe reports back
        assert cb.state == CircuitBreaker.CLOSED
        assert cb.allow()

    def test_failed_probe_frees_slot_for_next_window(self):
        clock = {"t": 0.0}
        cb = CircuitBreaker(failure_threshold=1, reset_timeout_s=1.0, clock=lambda: clock["t"])
        cb.record_failure()
        clock["t"] = 1.0
        assert cb.allow() and not cb.allow()
        cb.record_failure()  # probe failed: snap back open
        assert cb.state == CircuitBreaker.OPEN and not cb.allow()
        clock["t"] = 2.0  # next half-open window gets a fresh slot
        assert cb.allow() and not cb.allow()

    def test_state_peek_does_not_claim_probe_slot(self):
        clock = {"t": 0.0}
        cb = CircuitBreaker(failure_threshold=1, reset_timeout_s=1.0, clock=lambda: clock["t"])
        cb.record_failure()
        clock["t"] = 1.0
        for _ in range(3):
            assert cb.state == CircuitBreaker.HALF_OPEN  # peeks are free
        assert cb.allow()  # the probe slot is still available


# ----------------------------------------------------------------------
# pipeline failure policies
# ----------------------------------------------------------------------
class TestPipelinePolicies:
    def test_transient_phase_failure_is_retried(self, tmp_path):
        flaky = _FlakyPhase("flaky", failures=2)
        policy = FailurePolicy(retry=RetryPolicy(max_attempts=3, base_delay_s=0.01, seed=5))
        timer = TimingObserver()
        slept = []
        with KnowledgeDatabase(":memory:") as db:
            pipeline = PhasePipeline(
                PhaseRegistry([flaky]), [timer],
                default_policy=policy, sleep=slept.append,
            )
            result = pipeline.run(_context(tmp_path, db))
        assert result.ok and flaky.calls == 3
        # The pipeline salts the policy per phase so concurrent phases
        # sharing a seed do not sleep in lockstep.
        assert slept == policy.retry.with_salt("phase:flaky").delays_s()
        assert [(t.phase, t.attempts) for t in timer.timings] == [("flaky", 3)]

    def test_identical_seed_identical_backoff_schedule(self, tmp_path, fault_seed):
        schedules = []
        for _ in range(2):
            flaky = _FlakyPhase("flaky", failures=3)
            policy = FailurePolicy(
                retry=RetryPolicy(max_attempts=4, base_delay_s=0.02, seed=fault_seed)
            )
            slept = []
            with KnowledgeDatabase(":memory:") as db:
                PhasePipeline(
                    PhaseRegistry([flaky]), default_policy=policy, sleep=slept.append
                ).run(_context(tmp_path, db))
            schedules.append(slept)
        assert schedules[0] == schedules[1] and len(schedules[0]) == 3

    def test_exhausted_retries_quarantine_with_skip(self, tmp_path):
        always = _FlakyPhase("doomed", failures=99)
        never = _FlakyPhase("never", failures=0)
        policy = FailurePolicy(
            retry=RetryPolicy(max_attempts=3, base_delay_s=0.0, jitter=0.0),
            on_exhausted="skip",
        )
        with KnowledgeDatabase(":memory:") as db:
            result = PhasePipeline(
                PhaseRegistry([always, never]),
                default_policy=policy, sleep=lambda s: None,
            ).run(_context(tmp_path, db))
        assert not result.ok and len(result.failures) == 1
        failure = result.failures[0]
        assert failure.phase == "doomed" and failure.attempts == 3
        assert "boom" in failure.error and failure.elapsed_s >= 0
        assert isinstance(failure.exception, RuntimeError)
        assert never.calls == 0  # revolution abandoned after quarantine
        assert "doomed" in str(failure)

    def test_abort_policy_propagates(self, tmp_path):
        policy = FailurePolicy(
            retry=RetryPolicy(max_attempts=2, base_delay_s=0.0, jitter=0.0),
            on_exhausted="abort",
        )
        with KnowledgeDatabase(":memory:") as db:
            with pytest.raises(RuntimeError, match="boom"):
                PhasePipeline(
                    PhaseRegistry([_FlakyPhase("doomed", failures=99)]),
                    default_policy=policy, sleep=lambda s: None,
                ).run(_context(tmp_path, db))

    def test_permanent_error_skips_retry_entirely(self, tmp_path):
        def permanent():
            return ValueError("not transient")

        phase = _FlakyPhase("perm", failures=99, error_factory=permanent)
        policy = FailurePolicy(
            retry=RetryPolicy(max_attempts=5, base_delay_s=0.0, jitter=0.0),
            on_exhausted="skip",
        )
        with KnowledgeDatabase(":memory:") as db:
            result = PhasePipeline(
                PhaseRegistry([phase]), default_policy=policy, sleep=lambda s: None
            ).run(_context(tmp_path, db))
        assert result.failures[0].attempts == 1 and phase.calls == 1

    def test_phase_timeout_becomes_deadline_failure(self, tmp_path):
        import time as _time

        class SlowPhase:
            name = "slow"

            def run(self, context):
                _time.sleep(0.05)
                return 1

        policy = FailurePolicy(timeout_s=0.01, on_exhausted="skip")
        with KnowledgeDatabase(":memory:") as db:
            result = PhasePipeline(
                PhaseRegistry([SlowPhase()]), default_policy=policy
            ).run(_context(tmp_path, db))
        assert "DeadlineError" in result.failures[0].error

    def test_cooperative_deadline_in_context(self, tmp_path):
        seen = {}

        class Cooperative:
            name = "coop"

            def run(self, context):
                seen["deadline"] = context.artifacts["deadline"]
                return 0

        with KnowledgeDatabase(":memory:") as db:
            PhasePipeline(
                PhaseRegistry([Cooperative()]),
                default_policy=FailurePolicy(timeout_s=30.0),
            ).run(_context(tmp_path, db))
        assert isinstance(seen["deadline"], Deadline)
        assert seen["deadline"].budget_s == 30.0

    def test_policy_for_unknown_phase_rejected(self):
        with pytest.raises(PipelineError, match="unknown phase"):
            PhasePipeline(
                PhaseRegistry([_FlakyPhase("a", 0)]),
                policies={"zz": FailurePolicy()},
            )

    def test_invalid_policy_rejected(self):
        with pytest.raises(PipelineError):
            FailurePolicy(on_exhausted="retry-forever")
        with pytest.raises(PipelineError):
            FailurePolicy(timeout_s=-1.0)

    def test_retry_observer_hook_fires(self, tmp_path):
        events = []

        class Watcher(PhaseObserver):
            def on_phase_retry(self, phase, context, attempt, error, delay_s):
                events.append((phase.name, attempt, str(error), delay_s))

        policy = FailurePolicy(
            retry=RetryPolicy(max_attempts=3, base_delay_s=0.5, jitter=0.0)
        )
        with KnowledgeDatabase(":memory:") as db:
            PhasePipeline(
                PhaseRegistry([_FlakyPhase("flaky", failures=2)]),
                [Watcher()], default_policy=policy, sleep=lambda s: None,
            ).run(_context(tmp_path, db))
        assert events == [("flaky", 1, "boom", 0.5), ("flaky", 2, "boom", 1.0)]

    def test_logging_observer_reports_retries(self, tmp_path, caplog):
        import logging

        policy = FailurePolicy(
            retry=RetryPolicy(max_attempts=2, base_delay_s=0.0, jitter=0.0)
        )
        from repro.core.pipeline import LoggingObserver

        with KnowledgeDatabase(":memory:") as db:
            with caplog.at_level(logging.WARNING, logger="repro.pipeline"):
                PhasePipeline(
                    PhaseRegistry([_FlakyPhase("flaky", failures=1)]),
                    [LoggingObserver()], default_policy=policy, sleep=lambda s: None,
                ).run(_context(tmp_path, db))
        assert any("retrying" in r.message for r in caplog.records)


# ----------------------------------------------------------------------
# hard faults from the injector
# ----------------------------------------------------------------------
def _find_seed(pattern, p, name="flaky"):
    """Smallest root seed whose draw sequence matches ``pattern``."""
    for seed in range(5000):
        draws = [
            stream(seed, "hard-fault", name, n).random() < p
            for n in range(len(pattern))
        ]
        if draws == pattern:
            return seed
    raise AssertionError("no seed found for pattern")


class TestHardFaults:
    def test_same_seed_same_failure_pattern(self, fault_seed):
        def pattern(seed):
            inj = FaultInjector(
                [Fault(name="flaky", fail_probability=0.5, error_kind="benchmark")],
                root_seed=seed,
            )
            out = []
            for _ in range(20):
                try:
                    inj.maybe_raise({"benchmark": "ior"})
                    out.append(0)
                except InjectedBenchmarkError:
                    out.append(1)
            return out

        assert pattern(fault_seed) == pattern(fault_seed)
        assert 0 < sum(pattern(fault_seed)) < 20  # p=0.5 fires sometimes, not always

    def test_transient_fault_clears_on_retry(self):
        # Seed chosen so the first draw fires and the second does not:
        # exactly the "transient fault survives one retry" shape.
        seed = _find_seed([True, False], 0.5)
        inj = FaultInjector(
            [Fault(name="flaky", fail_probability=0.5, error_kind="benchmark")],
            root_seed=seed,
        )
        with pytest.raises(InjectedBenchmarkError) as err:
            inj.maybe_raise({"benchmark": "ior"})
        assert err.value.transient and err.value.fault_name == "flaky"
        inj.maybe_raise({"benchmark": "ior"})  # retry: no raise

    def test_non_matching_tags_never_raise(self):
        inj = FaultInjector(
            [Fault(name="f", fail_probability=1.0, when={"benchmark": "mdtest"})]
        )
        inj.maybe_raise({"benchmark": "ior"})  # no raise

    def test_error_kind_and_scope_mapping(self):
        from repro.pfs.faults import (
            FaultScope,
            MetadataServiceError,
            ServerCrashError,
        )

        md = FaultInjector(
            [Fault(name="md", fail_probability=1.0, scope=FaultScope.METADATA)]
        )
        with pytest.raises(MetadataServiceError):
            md.maybe_raise({})
        srv = FaultInjector(
            [Fault(name="crash", fail_probability=1.0, scope=FaultScope.SERVER,
                   server="stor01", transient=False)]
        )
        with pytest.raises(ServerCrashError) as err:
            srv.maybe_raise({})
        assert not err.value.transient

    def test_ior_run_aborts_on_hard_fault(self):
        from repro.benchmarks_io.ior import parse_command, run_ior

        tb = Testbed.fuchs_csc(seed=11)
        tb.fs.faults.add(
            Fault(name="dead", fail_probability=1.0, error_kind="benchmark",
                  when={"benchmark": "ior"}, transient=False)
        )
        with pytest.raises(InjectedBenchmarkError):
            run_ior(
                parse_command("ior -a posix -b 2m -t 1m -i 1 -o /scratch/hf/t -w -k"),
                tb, 1, 4,
            )


# ----------------------------------------------------------------------
# resilient persistence backend
# ----------------------------------------------------------------------
class _LockedBackend:
    """Wraps a KnowledgeDatabase, failing the first N write executes."""

    def __init__(self, db, fail_writes=0, fail_commits=0):
        self.db = db
        self.fail_writes = fail_writes
        self.fail_commits = fail_commits
        self.write_attempts = 0

    def execute(self, sql, params=()):
        if sql.lstrip().split(None, 1)[0].lower() in ("insert", "update", "delete"):
            self.write_attempts += 1
            if self.write_attempts <= self.fail_writes:
                raise sqlite3.OperationalError("database is locked")
        return self.db.execute(sql, params)

    def executemany(self, sql, rows):
        self.write_attempts += 1
        if self.write_attempts <= self.fail_writes:
            raise sqlite3.OperationalError("database is locked")
        return self.db.executemany(sql, rows)

    def commit(self):
        if self.fail_commits > 0:
            self.fail_commits -= 1
            raise sqlite3.OperationalError("database is locked")
        self.db.commit()

    def rollback(self):
        self.db.rollback()

    def close(self):
        self.db.close()

    def transaction(self):
        return self.db.transaction()

    def table_count(self, table):
        return self.db.table_count(table)


class TestTransientDbPredicate:
    def test_recognises_locked_and_transient(self):
        assert transient_db_error(sqlite3.OperationalError("database is locked"))
        assert transient_db_error(PersistenceError("database error on INSERT: database is locked"))
        assert transient_db_error(_transient())
        assert not transient_db_error(sqlite3.OperationalError("no such table: x"))
        assert not transient_db_error(ValueError("nope"))


class TestResilientBackend:
    def _resilient(self, inner, threshold=3):
        return ResilientBackend(
            inner,
            retry_policy=RetryPolicy(
                max_attempts=3, base_delay_s=0.0, jitter=0.0,
                retryable=transient_db_error,
            ),
            breaker=CircuitBreaker(failure_threshold=threshold, reset_timeout_s=0.0),
            sleep=lambda s: None,
        )

    def test_survives_locked_burst_within_retry_budget(self):
        from repro.core.knowledge import Knowledge

        with KnowledgeDatabase(":memory:") as db:
            flaky = _LockedBackend(db, fail_writes=2)
            backend = self._resilient(flaky)
            repo = KnowledgeRepository(backend)
            ids = [repo.save(Knowledge(benchmark="ior")) for _ in range(3)]
            assert ids == [1, 2, 3]
            assert not backend.degraded
            assert backend.table_count("performances") == 3

    def test_long_burst_trips_breaker_and_buffers(self):
        from repro.core.knowledge import Knowledge

        with KnowledgeDatabase(":memory:") as db:
            # Each save retries 3x; a long burst exhausts the budget and
            # trips the breaker after `threshold` failed statements.
            flaky = _LockedBackend(db, fail_writes=10_000)
            backend = self._resilient(flaky, threshold=1)
            repo = KnowledgeRepository(backend)
            ids = [repo.save(Knowledge(benchmark="ior")) for _ in range(2)]
            assert backend.degraded and backend.buffered_statements > 0
            assert ids == [1, 2]  # predicted rowids keep the sequence
            # Database heals: flush replays the buffer in order.
            flaky.fail_writes = 0
            backend.flush()
            assert not backend.degraded
            assert backend.table_count("performances") == 2
            loaded = repo.load(1)
            assert loaded.benchmark == "ior"

    def test_degraded_reads_still_pass_through(self):
        with KnowledgeDatabase(":memory:") as db:
            flaky = _LockedBackend(db, fail_writes=10_000)
            backend = self._resilient(flaky, threshold=1)
            backend.execute("INSERT INTO performances (benchmark, command) VALUES ('a', 'c')")
            assert backend.degraded
            # Reads bypass the breaker entirely (read-only degraded mode).
            rows = backend.execute("SELECT COUNT(*) AS n FROM performances").fetchone()
            assert rows["n"] == 0  # buffered write not yet visible

    def test_close_flushes_buffer(self, tmp_path):
        path = tmp_path / "resilient.db"
        db = KnowledgeDatabase(path)
        flaky = _LockedBackend(db, fail_writes=3)
        backend = self._resilient(flaky, threshold=1)
        backend.execute("INSERT INTO performances (benchmark, command) VALUES ('a', 'c')")
        assert backend.degraded
        flaky.fail_writes = 0
        backend.close()
        with KnowledgeDatabase(path) as check:
            assert check.table_count("performances") == 1

    def test_close_raises_when_flush_impossible(self):
        db = KnowledgeDatabase(":memory:")
        flaky = _LockedBackend(db, fail_writes=10_000)
        backend = self._resilient(flaky, threshold=1)
        backend.execute("INSERT INTO performances (benchmark, command) VALUES ('a', 'c')")
        with pytest.raises(PersistenceError, match="unsaved"):
            backend.close()
        assert backend.buffered_statements == 1  # nothing silently dropped
        db.close()

    def test_rollback_drops_uncommitted_buffer(self):
        with KnowledgeDatabase(":memory:") as db:
            flaky = _LockedBackend(db, fail_writes=10_000)
            backend = self._resilient(flaky, threshold=1)
            backend.execute("INSERT INTO performances (benchmark, command) VALUES ('a', 'c')")
            backend.commit()
            backend.execute("INSERT INTO performances (benchmark, command) VALUES ('b', 'c')")
            backend.rollback()  # drops only the write after the commit marker
            assert backend.buffered_statements == 1
            flaky.fail_writes = 0
            backend.flush()
            assert backend.table_count("performances") == 1

    def test_non_transient_error_propagates(self):
        with KnowledgeDatabase(":memory:") as db:
            backend = self._resilient(db)
            with pytest.raises(PersistenceError):
                backend.execute("INSERT INTO nonexistent_table (x) VALUES (1)")
            assert not backend.degraded


# ----------------------------------------------------------------------
# end-to-end: the acceptance demo
# ----------------------------------------------------------------------
class TestEndToEndResilientCycle:
    def _run_cycle(self, tmp_path, root_seed, fail_writes=4):
        """One three-revolution run; returns (results, sleeps, db counts)."""
        tb = Testbed.fuchs_csc(seed=root_seed)
        # Transient benchmark fault: fires on its first draw, clears on a
        # later one (seed selected so retries eventually succeed).
        tb.fs.faults.add(
            Fault(name="flaky-bench", fail_probability=0.5, error_kind="benchmark",
                  when={"benchmark": "ior"})
        )
        slept = []
        timer = TimingObserver()
        policy = FailurePolicy(
            retry=RetryPolicy(max_attempts=4, base_delay_s=0.01, seed=root_seed),
            on_exhausted="skip",
        )
        db = KnowledgeDatabase(":memory:")
        flaky_db = _LockedBackend(db, fail_writes=fail_writes)
        backend = ResilientBackend(
            flaky_db,
            retry_policy=RetryPolicy(
                max_attempts=4, base_delay_s=0.0, jitter=0.0,
                retryable=transient_db_error,
            ),
            breaker=CircuitBreaker(failure_threshold=3, reset_timeout_s=0.0),
            sleep=lambda s: None,
        )
        cycle = KnowledgeCycle(
            tb, backend, workspace=tmp_path / f"ws{root_seed}",
            observers=[timer], default_policy=policy, sleep=slept.append,
        )
        results = [cycle.run_cycle(CYCLE_XML) for _ in range(3)]
        backend.flush()
        counts = backend.table_count("performances")
        db.close()
        return results, slept, counts, timer

    def test_faulty_revolutions_retry_and_healthy_knowledge_persists(self, tmp_path):
        # Seed chosen so the injected benchmark fault fires at least once
        # but a retry eventually clears it (draws: fail, ..., pass).
        seed = _find_seed([True, False], 0.5, name="flaky-bench")
        results, slept, count, timer = self._run_cycle(tmp_path, seed)
        # The transient fault forced at least one retry...
        assert len(slept) >= 1
        retried = [t for t in timer.timings if t.attempts > 1]
        assert retried and retried[0].phase == "generation"
        # ...and every revolution that completed persisted its knowledge
        # through the locked burst.
        completed = [r for r in results if r.ok]
        assert completed
        persisted = sum(len(r.knowledge_ids) for r in completed)
        assert persisted == count > 0
        # Quarantined revolutions (if any) carry full diagnostics.
        for r in results:
            for f in r.failures:
                assert f.attempts == 4 and f.phase == "generation"

    def test_unrecoverable_revolution_is_quarantined_but_later_ones_persist(
        self, tmp_path
    ):
        tb = Testbed.fuchs_csc(seed=21)
        policy = FailurePolicy(
            retry=RetryPolicy(max_attempts=3, base_delay_s=0.0, jitter=0.0),
            on_exhausted="skip",
        )
        with KnowledgeDatabase(":memory:") as db:
            cycle = KnowledgeCycle(
                tb, db, workspace=tmp_path / "ws",
                default_policy=policy, sleep=lambda s: None,
            )
            healthy_first = cycle.run_cycle(CYCLE_XML)
            assert healthy_first.ok and healthy_first.knowledge_ids

            # Revolution 2: a permanently failing benchmark exhausts its
            # retries and is quarantined instead of killing the run.
            tb.fs.faults.add(
                Fault(name="dead", fail_probability=1.0, error_kind="benchmark",
                      when={"benchmark": "ior"})
            )
            doomed = cycle.run_cycle(CYCLE_XML)
            assert not doomed.ok
            assert doomed.failures[0].phase == "generation"
            assert doomed.failures[0].attempts == 3
            assert "flaky" not in doomed.failures[0].error  # it names the fault
            assert "dead" in doomed.failures[0].error
            assert doomed.knowledge_ids == []

            # Revolution 3: system healed; the cycle keeps going.
            tb.fs.faults.clear()
            healed = cycle.run_cycle(CYCLE_XML)
            assert healed.ok and healed.knowledge_ids
            assert db.table_count("performances") == len(
                healthy_first.knowledge_ids
            ) + len(healed.knowledge_ids)

    def test_identical_seed_reproduces_identical_retry_schedule(self, tmp_path, fault_seed):
        a = self._run_cycle(tmp_path / "a", fault_seed)
        b = self._run_cycle(tmp_path / "b", fault_seed)
        assert a[1] == b[1]  # exact backoff sleep sequence
        assert a[2] == b[2]  # same persisted knowledge count
        assert [r.ok for r in a[0]] == [r.ok for r in b[0]]

    def test_cli_resilience_flags_exit_zero(self, tmp_path, capsys):
        from repro.core.cycle import main

        rc = main([
            "--workspace", str(tmp_path / "cli_ws"),
            "--repeat", "2",
            "--retries", "2",
            "--phase-timeout", "300",
            "--on-failure", "skip",
            "--modules", "anomaly-detection",
            "--timings",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "revolution 2/2" in out
        assert "attempt(s)" in out

    def test_cli_flag_validation(self, capsys):
        from repro.core.cycle import main

        assert main(["--retries", "-1"]) == 2
        assert main(["--phase-timeout", "0"]) == 2
