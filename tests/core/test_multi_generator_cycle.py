"""Integration: one cycle revolution over all four knowledge generators.

§V-A integrates IOR, IO500, HACC-IO and Darshan as generation-phase
data sources; this test drives all four through a single JUBE benchmark
and checks the full pipeline sorts every artifact into the right
knowledge type and tables.
"""

import pytest

from repro.core.cycle import KnowledgeCycle
from repro.core.knowledge import IO500Knowledge, Knowledge
from repro.core.persistence import KnowledgeDatabase, KnowledgeQueries
from repro.core.usage import cross_validate
from repro.iostack.stack import Testbed

ALL_GENERATORS_XML = """
<jube>
  <benchmark name="all-sources" outpath="ignored">
    <parameterset name="common">
      <parameter name="nodes">1</parameter>
      <parameter name="taskspernode">8</parameter>
    </parameterset>
    <parameterset name="iorp">
      <parameter name="command">ior -a mpiio -b 4m -t 2m -s 2 -F -i 2 -o /scratch/mg/ior -k</parameter>
    </parameterset>
    <parameterset name="dxp">
      <parameter name="command">ior -a posix -b 2m -t 1m -i 1 -o /scratch/mg/dx -w -k</parameter>
      <parameter name="dxt">1</parameter>
    </parameterset>
    <parameterset name="haccp">
      <parameter name="particles">50000</parameter>
      <parameter name="mode">file-per-process</parameter>
    </parameterset>
    <step name="ior" work="ior"><use>common</use><use>iorp</use></step>
    <step name="io500" work="io500"><use>common</use></step>
    <step name="hacc" work="hacc"><use>common</use><use>haccp</use></step>
    <step name="darshan" work="ior-darshan"><use>common</use><use>dxp</use></step>
  </benchmark>
</jube>
"""


@pytest.fixture(scope="module")
def cycle_result(tmp_path_factory):
    workspace = tmp_path_factory.mktemp("multi")
    testbed = Testbed.fuchs_csc(seed=111)
    db = KnowledgeDatabase(":memory:")
    cycle = KnowledgeCycle(testbed, db, workspace=workspace)
    result = cycle.run_cycle(ALL_GENERATORS_XML)
    yield result, db
    db.close()


class TestAllGenerators:
    def test_every_source_extracted(self, cycle_result):
        result, _ = cycle_result
        benchmarks = sorted(
            k.benchmark for k in result.knowledge if isinstance(k, Knowledge)
        )
        # The darshan step produces two objects: the IOR output and the
        # darshan log itself.
        assert benchmarks == ["darshan", "hacc-io", "ior", "ior"]
        assert len(result.io500_knowledge) == 1

    def test_tables_populated(self, cycle_result):
        _, db = cycle_result
        counts = KnowledgeQueries(db).database_report()
        assert counts["performances"] == 4
        assert counts["IOFHsRuns"] == 1
        assert counts["IOFHsTestcases"] == 12
        assert counts["systems"] >= 3  # ior, hacc, io500 captured /proc

    def test_io500_scored(self, cycle_result):
        result, _ = cycle_result
        run = result.io500_knowledge[0]
        assert isinstance(run, IO500Knowledge)
        assert run.score_total > 0
        assert run.value("ior-easy-write") > run.value("ior-hard-write")

    def test_darshan_knowledge_has_pattern_params(self, cycle_result):
        result, _ = cycle_result
        darshan = next(k for k in result.knowledge if k.benchmark == "darshan")
        assert darshan.parameters["dominant_write_size"] == "1M_4M"  # 1 MiB transfers
        assert darshan.num_tasks == 8

    def test_hacc_knowledge(self, cycle_result):
        result, _ = cycle_result
        hacc = next(k for k in result.knowledge if k.benchmark == "hacc-io")
        assert hacc.parameters["particles"] == 50000
        assert hacc.summary("write").bw_mean > 0

    def test_analysis_report_covers_everything(self, cycle_result):
        result, _ = cycle_result
        report = result.analysis_report
        assert report.count("benchmark    : ") >= 4
        assert "score (total)" in report  # the IO500 viewer section


class TestCrossValidation:
    def test_loocv_on_sweep(self, tmp_path):
        xml = """
        <jube><benchmark name="cv" outpath="x">
          <parameterset name="p">
            <parameter name="transfersize">256k,1m,4m</parameter>
            <parameter name="nodes">1,2,4</parameter>
            <parameter name="taskspernode">10</parameter>
            <parameter name="command">ior -a posix -b 4m -t $transfersize -s 2 -F -i 2 -o /scratch/cv/t -k</parameter>
          </parameterset>
          <step name="run" work="ior"><use>p</use></step>
        </benchmark></jube>
        """
        testbed = Testbed.fuchs_csc(seed=112)
        with KnowledgeDatabase(":memory:") as db:
            cycle = KnowledgeCycle(testbed, db, workspace=tmp_path)
            base = cycle.run_cycle(xml).knowledge
        stats = cross_validate(base)
        assert stats["n"] == 9
        assert 0 <= stats["median_rel_error"] <= stats["max_rel_error"]
        # The log-log model generalises decently on this smooth surface.
        assert stats["median_rel_error"] < 0.35
