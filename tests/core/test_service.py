"""Tests for the knowledge service (shards, queue, cache, client).

Covers the serving-layer contract: deterministic shard placement,
global-id routing, read-through caching with epoch invalidation,
admission control (typed overload, never a hang), client backoff with
deterministic jitter, wedged-shard quarantine via the circuit breaker,
rebalancing, and the ``repro-serve`` / ``repro-explore --service``
CLIs.  The ``stress``-marked soak at the bottom is the acceptance run:
16 client threads over 2 shards, zero lost or duplicated rows.
"""

import threading
import time

import pytest

from repro.core.knowledge import Knowledge, KnowledgeResult, KnowledgeSummary
from repro.core.metrics import MetricsRegistry, render_metrics_report
from repro.core.persistence.transfer import export_json
from repro.core.resilience import CircuitBreaker, RetryPolicy
from repro.core.service import (
    KnowledgeService,
    KnowledgeShardMap,
    MAX_SHARDS,
    ServiceClient,
    decode_knowledge_id,
    encode_knowledge_id,
    is_service_url,
    open_service,
    parse_service_url,
    shard_key,
)
from repro.core.service.serve import main as serve_main
from repro.core.explorer.cli import main as explore_main
from repro.util.errors import (
    PersistenceError,
    ServiceError,
    ServiceOverloadError,
)


def make_knowledge(marker: int, host: str = "nodeA", benchmark: str = "ior") -> Knowledge:
    return Knowledge(
        benchmark=benchmark, command=f"{benchmark} -m {marker}", api="MPIIO",
        num_nodes=2, num_tasks=8,
        parameters={"marker": marker, "xfersize_bytes": 1 << 20},
        summaries=[
            KnowledgeSummary(
                operation="write", api="MPIIO",
                bw_max=100.0 + marker, bw_min=90.0 + marker, bw_mean=95.0 + marker,
                bw_stddev=1.0, ops_max=30.0, ops_min=10.0, ops_mean=20.0,
                ops_stddev=5.0, iterations=2,
                results=[
                    KnowledgeResult(iteration=i, bandwidth_mib=95.0 + marker, iops=7.0)
                    for i in range(2)
                ],
            )
        ],
        system={"hostname": host},
    )


@pytest.fixture()
def service(tmp_path):
    metrics = MetricsRegistry()
    shard_map = KnowledgeShardMap(tmp_path / "store", num_shards=2, metrics=metrics)
    svc = KnowledgeService(shard_map, workers=4, queue_size=64, cache_size=32,
                           metrics=metrics)
    yield svc
    svc.close()


@pytest.fixture()
def client(service):
    return ServiceClient(service, sleep=lambda s: None)


# ----------------------------------------------------------------------
# global ids + placement determinism
# ----------------------------------------------------------------------
def test_global_id_round_trip():
    for local, shard in [(1, 0), (1, 1), (7, 1023), (12345, 17)]:
        assert decode_knowledge_id(encode_knowledge_id(local, shard)) == (local, shard)


def test_global_id_rejects_bad_parts():
    with pytest.raises(ServiceError):
        encode_knowledge_id(0, 0)  # local rowids start at 1
    with pytest.raises(ServiceError):
        encode_knowledge_id(1, MAX_SHARDS)
    with pytest.raises(ServiceError):
        decode_knowledge_id(5)  # a plain single-database id


def test_shard_assignment_is_deterministic_across_maps(tmp_path):
    keys = [f"ior/node{i}" for i in range(32)] + ["hacc-io/cluster/x"]
    with KnowledgeShardMap(tmp_path / "a", num_shards=4) as left, \
            KnowledgeShardMap(tmp_path / "b", num_shards=4) as right:
        assert [left.shard_index_for_key(k) for k in keys] == \
            [right.shard_index_for_key(k) for k in keys]


def test_shard_key_uses_benchmark_and_system():
    k = make_knowledge(1, host="n7", benchmark="ior")
    assert shard_key(k) == "ior/n7"
    k.system = None
    assert shard_key(k) == "ior/"


def test_manifest_discovery_and_conflict(tmp_path):
    root = tmp_path / "store"
    KnowledgeShardMap(root, num_shards=3).close()
    discovered = KnowledgeShardMap(root)  # no count: discovered from manifest
    assert discovered.num_shards == 3
    assert [row["path"] for row in discovered.manifest()] == [
        "shard-000.db", "shard-001.db", "shard-002.db"
    ]
    discovered.close()
    with pytest.raises(ServiceError, match="rebalance"):
        KnowledgeShardMap(root, num_shards=5)


# ----------------------------------------------------------------------
# URL resolution
# ----------------------------------------------------------------------
def test_parse_service_url_absolute_and_options():
    root, options = parse_service_url(
        "knowledge+service:///var/lib/repro/store?shards=4&cache=256"
    )
    assert root == "/var/lib/repro/store"
    assert options == {"shards": 4, "cache": 256}


def test_parse_service_url_relative():
    # Mirrors the sqlite:// resolver: fewer than three slashes in the
    # URL means a relative path (so only a single segment stays relative).
    root, options = parse_service_url("knowledge+service://devstore")
    assert root == "devstore"
    assert options == {}
    assert parse_service_url("knowledge+service://stores/dev")[0] == "/stores/dev"


def test_parse_service_url_rejects_bad_input():
    assert not is_service_url("sqlite:///x.db")
    with pytest.raises(ServiceError, match="unknown service URL option"):
        parse_service_url("knowledge+service:///s?shard=2")
    with pytest.raises(ServiceError, match="not an integer"):
        parse_service_url("knowledge+service:///s?shards=two")
    with pytest.raises(ServiceError, match="no store directory"):
        parse_service_url("knowledge+service://")


def test_open_service_from_url(tmp_path):
    url = f"knowledge+service://{tmp_path}/store?shards=3&workers=2&queue=8&cache=16"
    with open_service(url) as svc:
        assert svc.shard_map.num_shards == 3
        assert svc.queue_size == 8
        assert svc.cache.capacity == 16


# ----------------------------------------------------------------------
# CRUD through the client
# ----------------------------------------------------------------------
def test_save_load_round_trip(client):
    gid = client.save(make_knowledge(7))
    loaded = client.load(gid)
    assert loaded.knowledge_id == gid
    assert loaded.parameters["marker"] == 7
    assert loaded.summary("write").bw_mean == pytest.approx(102.0)
    assert loaded.system["hostname"] == "nodeA"


def test_list_count_exists_delete(client):
    ids = [client.save(make_knowledge(i, host=f"n{i}")) for i in range(5)]
    assert client.count() == 5
    assert sorted(ids) == client.list_ids()
    assert client.count("ior") == 5 and client.count("mdtest") == 0
    assert client.exists(ids[0]) and not client.exists(encode_knowledge_id(999, 0))
    assert not client.exists(3)  # undecodable plain id: absent, not an error
    client.delete(ids[0])
    assert client.count() == 4
    with pytest.raises(PersistenceError):
        client.load(ids[0])


def test_save_many_spans_shards_and_keeps_order(client):
    objects = [make_knowledge(i, host=f"n{i % 5}") for i in range(10)]
    ids = client.save_many(objects)
    assert len(ids) == 10
    shards = {decode_knowledge_id(g)[1] for g in ids}
    assert len(shards) > 1, "keys should spread over both shards"
    for gid, obj in zip(ids, objects):
        assert obj.knowledge_id == gid
        assert client.load(gid).parameters["marker"] == obj.parameters["marker"]


def test_load_all_matches_individual_loads(client):
    ids = [client.save(make_knowledge(i, host=f"n{i}")) for i in range(4)]
    everything = client.load_all()
    assert sorted(k.knowledge_id for k in everything) == sorted(ids)


# ----------------------------------------------------------------------
# cache: hits, epoch invalidation, capacity eviction
# ----------------------------------------------------------------------
def test_cache_hit_and_epoch_invalidation(service, client):
    gid = client.save(make_knowledge(1))  # host nodeA
    client.load(gid)
    assert service.cache.hits == 0
    client.load(gid)
    assert service.cache.hits == 1
    # A committed write to the *same shard* bumps its epoch...
    client.save(make_knowledge(2))  # same key "ior/nodeA" -> same shard
    # ...so the cached entry is stale and lazily evicted on next lookup.
    before = service.cache.evictions_stale
    client.load(gid)
    assert service.cache.evictions_stale == before + 1
    client.load(gid)
    assert service.cache.hits == 2  # re-cached under the new epoch


def test_epoch_invalidation_lands_in_metrics(service, client):
    gid = client.save(make_knowledge(1))
    client.load(gid)
    client.load(gid)
    client.save(make_knowledge(2))
    client.load(gid)
    snap = service.metrics.snapshot()
    hits = snap["counters"]["service.cache_hits_total"]["series"][0]["value"]
    stale = [
        row["value"]
        for row in snap["counters"]["service.cache_evictions_total"]["series"]
        if row["labels"]["reason"] == "stale"
    ][0]
    assert hits >= 1 and stale >= 1


def test_cache_capacity_eviction(tmp_path):
    shard_map = KnowledgeShardMap(tmp_path / "store", num_shards=1)
    with KnowledgeService(shard_map, workers=1, cache_size=2) as svc:
        client = ServiceClient(svc, sleep=lambda s: None)
        ids = [client.save(make_knowledge(i, host=f"n{i}")) for i in range(3)]
        for gid in ids:
            client.load(gid)
        assert svc.cache.evictions_capacity >= 1


def test_cache_disabled_when_capacity_zero(tmp_path):
    shard_map = KnowledgeShardMap(tmp_path / "store", num_shards=1)
    with KnowledgeService(shard_map, workers=1, cache_size=0) as svc:
        client = ServiceClient(svc, sleep=lambda s: None)
        gid = client.save(make_knowledge(1))
        client.load(gid)
        client.load(gid)
        assert svc.cache.hits == 0 and len(svc.cache) == 0


def test_warm_up_preloads_cache(tmp_path):
    root = tmp_path / "store"
    with open_service(str(root), shards=2) as svc:
        client = ServiceClient(svc, sleep=lambda s: None)
        ids = [client.save(make_knowledge(i, host=f"n{i}")) for i in range(5)]
    with open_service(str(root)) as svc:
        assert svc.warm_up() == 5
        client = ServiceClient(svc, sleep=lambda s: None)
        before = svc.cache.hits
        for gid in ids:
            client.load(gid)
        assert svc.cache.hits == before + 5
    with open_service(str(root)) as svc:
        assert svc.warm_up(limit=2) == 2


# ----------------------------------------------------------------------
# admission control + client backoff
# ----------------------------------------------------------------------
def _flood_until_overload(service, gid, max_submits=50):
    """Fill the queue behind a blocked worker; returns pending futures."""
    futures = []
    with pytest.raises(ServiceOverloadError):
        for _ in range(max_submits):
            futures.append(service.submit("load", gid))
    return futures


@pytest.mark.timeout(30)
def test_overload_sheds_with_typed_error(tmp_path):
    metrics = MetricsRegistry()
    shard_map = KnowledgeShardMap(tmp_path / "store", num_shards=1, metrics=metrics)
    with KnowledgeService(shard_map, workers=1, queue_size=2, cache_size=0,
                          metrics=metrics) as svc:
        client = ServiceClient(svc, sleep=lambda s: None)
        gid = client.save(make_knowledge(1))
        shard = shard_map.shards[0]
        shard.lock.acquire()
        try:
            futures = _flood_until_overload(svc, gid)
        finally:
            shard.lock.release()
        # Never a hang: every admitted request completes once unblocked.
        for future in futures:
            assert future.result(timeout=10).parameters["marker"] == 1
        snap = metrics.snapshot()
        shed = [
            row["value"]
            for row in snap["counters"]["service.requests_total"]["series"]
            if row["labels"]["outcome"] == "shed"
        ]
        assert sum(shed) >= 1


@pytest.mark.timeout(30)
def test_client_backs_off_and_recovers(tmp_path):
    shard_map = KnowledgeShardMap(tmp_path / "store", num_shards=1)
    with KnowledgeService(shard_map, workers=1, queue_size=1, cache_size=0) as svc:
        seed_client = ServiceClient(svc, sleep=lambda s: None)
        gid = seed_client.save(make_knowledge(1))
        shard = shard_map.shards[0]
        slept: list[float] = []
        policy = RetryPolicy(max_attempts=4, base_delay_s=0.01,
                             salt="service-client",
                             retryable=lambda e: isinstance(e, ServiceOverloadError))

        def sleep_and_release(delay: float) -> None:
            slept.append(delay)
            try:
                shard.lock.release()  # unwedge the shard on the first backoff
            except RuntimeError:
                pass  # already released on an earlier attempt
            time.sleep(min(delay, 0.05))  # let the worker drain the queue

        client = ServiceClient(svc, retry_policy=policy, sleep=sleep_and_release)
        shard.lock.acquire()
        _flood_until_overload(svc, gid)
        # The client sees the full queue, backs off once (deterministic
        # jitter), the sleep hook unwedges the shard, and the retry lands.
        result = client.load(gid)
        assert result.parameters["marker"] == 1
        assert slept and slept[0] == pytest.approx(policy.delay_s(1))


def test_backoff_schedule_is_deterministic():
    policy = RetryPolicy(max_attempts=5, base_delay_s=0.01, salt="service-client")
    again = RetryPolicy(max_attempts=5, base_delay_s=0.01, salt="service-client")
    assert policy.delays_s() == again.delays_s()


def test_submit_rejects_unknown_op_and_closed_service(tmp_path):
    shard_map = KnowledgeShardMap(tmp_path / "store", num_shards=1)
    svc = KnowledgeService(shard_map, workers=1)
    with pytest.raises(ServiceError, match="unknown service operation"):
        svc.submit("drop_tables")
    svc.close()
    with pytest.raises(ServiceError, match="closed"):
        svc.submit("count", None)


# ----------------------------------------------------------------------
# wedged-shard quarantine (circuit breaker + degraded writes)
# ----------------------------------------------------------------------
@pytest.mark.timeout(30)
def test_wedged_shard_quarantines_and_heals(tmp_path):
    now = [0.0]
    breakers = {}

    def breaker_factory(index):
        breakers[index] = CircuitBreaker(
            failure_threshold=3, reset_timeout_s=1.0,
            clock=lambda: now[0], name=f"shard-{index}",
        )
        return breakers[index]

    shard_map = KnowledgeShardMap(tmp_path / "store", num_shards=2,
                                  breaker_factory=breaker_factory)
    with KnowledgeService(shard_map, workers=2, cache_size=0) as svc:
        client = ServiceClient(svc, sleep=lambda s: None)
        healthy_gid = client.save(make_knowledge(1, host="other"))
        target = shard_map.shard_for(make_knowledge(2, host="wedge"))
        # Trip the target shard's breaker: it is now quarantined.
        for _ in range(3):
            breakers[target.index].record_failure()
        assert breakers[target.index].state == CircuitBreaker.OPEN
        # A write to the wedged shard degrades into the buffer — the
        # service keeps answering, nothing fails the cycle.
        buffered_gid = client.save(make_knowledge(2, host="wedge"))
        assert target.backend.degraded
        assert target.backend.buffered_statements > 0
        # Other shards are untouched.
        assert client.load(healthy_gid).parameters["marker"] == 1
        # Heal: past the reset timeout the next write probes, replays
        # the buffer, and the quarantined knowledge becomes readable.
        now[0] += 2.0
        client.save(make_knowledge(3, host="wedge"))
        assert not target.backend.degraded
        assert client.load(buffered_gid).parameters["marker"] == 2


# ----------------------------------------------------------------------
# rebalance
# ----------------------------------------------------------------------
def test_rebalance_preserves_content(tmp_path):
    root = tmp_path / "store"
    with open_service(str(root), shards=2) as svc:
        client = ServiceClient(svc, sleep=lambda s: None)
        client.save_many([make_knowledge(i, host=f"n{i}") for i in range(8)])
    shard_map = KnowledgeShardMap(root)
    assert shard_map.rebalance(3) == 8
    assert shard_map.num_shards == 3 and sum(shard_map.counts()) == 8
    shard_map.close()
    with open_service(str(root)) as svc:
        client = ServiceClient(svc, sleep=lambda s: None)
        markers = sorted(k.parameters["marker"] for k in client.load_all())
        assert markers == list(range(8))


# ----------------------------------------------------------------------
# metrics report section
# ----------------------------------------------------------------------
def test_metrics_report_gains_service_section(service, client):
    gid = client.save(make_knowledge(1))
    client.load(gid)
    client.load(gid)
    report = render_metrics_report(service.metrics.snapshot())
    assert "Knowledge service" in report
    assert "cache hit rate" in report
    assert "shed (overload)" in report


def test_metrics_report_omits_section_without_service_traffic():
    registry = MetricsRegistry()
    registry.counter("pipeline.phase_runs_total", "x", phase="generation").inc()
    assert "Knowledge service" not in render_metrics_report(registry.snapshot())


# ----------------------------------------------------------------------
# CLIs
# ----------------------------------------------------------------------
def test_serve_cli_ingest_list_exercise(tmp_path, capsys):
    store = tmp_path / "store"
    payload = tmp_path / "knowledge.json"
    export_json([make_knowledge(i, host=f"n{i}") for i in range(4)], payload)
    assert serve_main([str(store), "--shards", "2", "--ingest", str(payload)]) == 0
    assert "ingested 4 knowledge object(s)" in capsys.readouterr().out
    assert serve_main([str(store), "--list"]) == 0
    out = capsys.readouterr().out
    assert "total: 4 object(s) in 2 shard(s)" in out and "shard-001.db" in out
    metrics_path = tmp_path / "serve.metrics.json"
    assert serve_main([str(store), "--exercise", "8",
                       "--metrics-json", str(metrics_path)]) == 0
    out = capsys.readouterr().out
    assert "cache hit rate" in out
    assert metrics_path.exists()


def test_serve_cli_rebalance(tmp_path, capsys):
    store = tmp_path / "store"
    payload = tmp_path / "knowledge.json"
    export_json([make_knowledge(i, host=f"n{i}") for i in range(6)], payload)
    assert serve_main([str(store), "--ingest", str(payload)]) == 0
    capsys.readouterr()
    assert serve_main([str(store), "--rebalance", "4", "--list"]) == 0
    out = capsys.readouterr().out
    assert "rebalanced 6 object(s) across 4 shard(s)" in out
    assert "total: 6 object(s) in 4 shard(s)" in out


def test_explore_cli_service_mode(tmp_path, capsys):
    store = tmp_path / "store"
    with open_service(str(store), shards=2) as svc:
        client = ServiceClient(svc, sleep=lambda s: None)
        gid = client.save(make_knowledge(3))
    url = f"knowledge+service://{store}"
    assert explore_main([url, "--list"]) == 0
    out = capsys.readouterr().out
    assert "1 knowledge object(s)" in out and "served from 2 shard(s)" in out
    assert explore_main([str(store), "--service", "--view", str(gid)]) == 0
    assert "ior" in capsys.readouterr().out


def test_explore_cli_service_mode_rejects_missing_store(tmp_path, capsys):
    assert explore_main([str(tmp_path / "nope"), "--service", "--list"]) == 1
    assert "not a knowledge-service store" in capsys.readouterr().err


def test_explore_cli_service_mode_rejects_io500(tmp_path, capsys):
    store = tmp_path / "store"
    open_service(str(store), shards=1).close()
    assert explore_main([str(store), "--service", "--io500", "1"]) == 2
    assert "not available through the knowledge service" in capsys.readouterr().err


# ----------------------------------------------------------------------
# stress soak (CI stress job: pytest -m stress)
# ----------------------------------------------------------------------
N_WRITERS = 8
N_READERS = 8
SAVES_PER_WRITER = 6


@pytest.mark.stress
@pytest.mark.timeout(120)
def test_sixteen_thread_soak_two_shards(tmp_path, fault_seed):
    """The acceptance soak: 16 mixed client threads over a 2-shard service.

    Asserts zero lost or duplicated rows, at least one cache hit and
    one epoch invalidation in the metrics snapshot, a typed overload
    under forced pressure, and seed-stable shard placement.
    """
    metrics = MetricsRegistry()
    shard_map = KnowledgeShardMap(tmp_path / "store", num_shards=2, metrics=metrics)
    svc = KnowledgeService(shard_map, workers=4, queue_size=256, cache_size=64,
                           metrics=metrics)
    stop = threading.Event()
    errors: list[BaseException] = []
    saved_ids: list[list[int]] = [[] for _ in range(N_WRITERS)]

    def writer(slot: int) -> None:
        client = ServiceClient(svc, timeout_s=60.0)
        try:
            for n in range(SAVES_PER_WRITER):
                marker = slot * SAVES_PER_WRITER + n
                # Two hostnames -> traffic on both shards, with repeats
                # so committed writes invalidate cached reads.
                gid = client.save(make_knowledge(marker, host=f"n{marker % 2}"))
                saved_ids[slot].append(gid)
        except BaseException as exc:  # pragma: no cover - surfaced below
            errors.append(exc)

    def reader(slot: int) -> None:
        client = ServiceClient(svc, timeout_s=60.0)
        try:
            while not stop.is_set():
                ids = client.list_ids()
                for gid in ids[: 4 + slot % 3]:
                    try:
                        loaded = client.load(gid)
                    except PersistenceError:
                        continue  # raced a delete/rebalance window; fine
                    assert loaded.knowledge_id == gid
                client.count()
        except BaseException as exc:  # pragma: no cover - surfaced below
            errors.append(exc)

    threads = [
        threading.Thread(target=writer, args=(i,), name=f"soak-writer-{i}")
        for i in range(N_WRITERS)
    ] + [
        threading.Thread(target=reader, args=(i,), name=f"soak-reader-{i}")
        for i in range(N_READERS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads[:N_WRITERS]:
        thread.join(timeout=90)
    stop.set()
    for thread in threads[N_WRITERS:]:
        thread.join(timeout=30)
    try:
        assert not any(t.is_alive() for t in threads), "soak thread hung"
        assert not errors, f"soak thread failed: {errors[0]!r}"

        # Zero lost or duplicated rows: every writer's ids exist exactly
        # once, and the store holds exactly the union.
        all_ids = [gid for slot in saved_ids for gid in slot]
        assert len(all_ids) == N_WRITERS * SAVES_PER_WRITER
        assert len(set(all_ids)) == len(all_ids), "duplicated global ids"
        client = ServiceClient(svc, sleep=lambda s: None)
        assert client.count() == len(all_ids), "lost rows"
        assert sorted(all_ids) == client.list_ids()
        markers = sorted(k.parameters["marker"] for k in client.load_all())
        assert markers == list(range(N_WRITERS * SAVES_PER_WRITER)), \
            "lost or duplicated row content"

        # The metrics snapshot recorded cache traffic and invalidation.
        snap = metrics.snapshot()
        hits = snap["counters"]["service.cache_hits_total"]["series"][0]["value"]
        stale = [
            row["value"]
            for row in snap["counters"]["service.cache_evictions_total"]["series"]
            if row["labels"]["reason"] == "stale"
        ]
        assert hits >= 1, "soak never hit the cache"
        assert stale and stale[0] >= 1, "soak never invalidated an epoch"

        # Forced overload sheds with the typed error, never a hang or a
        # raw sqlite3.OperationalError.  Clear the cache first so every
        # flooded read must take the (held) shard lock.
        svc.cache.clear()
        shard = shard_map.shards[0]
        shard.lock.acquire()
        try:
            with pytest.raises(ServiceOverloadError):
                for _ in range(svc.queue_size + len(svc._workers) + 2):
                    svc.submit("count", None)
        finally:
            shard.lock.release()
        overloads = sum(
            row["value"]
            for row in metrics.snapshot()["counters"]["service.requests_total"]["series"]
            if row["labels"]["outcome"] == "shed"
        )
        assert overloads >= 1
    finally:
        svc.close()

    # Same-seed determinism: an independent map places every key on the
    # same shard this run chose (fault_seed pins the CI matrix entry).
    with KnowledgeShardMap(tmp_path / f"replay-{fault_seed}",
                           num_shards=2) as replay:
        for slot in range(N_WRITERS):
            for n in range(SAVES_PER_WRITER):
                marker = slot * SAVES_PER_WRITER + n
                key = f"ior/n{marker % 2}"
                expected = replay.shard_index_for_key(key)
                gid = saved_ids[slot][n]
                assert decode_knowledge_id(gid)[1] == expected, \
                    f"shard placement drifted for key {key!r}"
