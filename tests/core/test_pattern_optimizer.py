"""Tests for the pattern extractor, optimizer and synthetic generation."""

import numpy as np
import pytest

from repro.benchmarks_io.ior import IORConfig, run_ior
from repro.core.usage import (
    IOOptimizer,
    extract_pattern,
    ior_config_from_pattern,
    validate_suggestion,
)
from repro.core.usage.pattern_extractor import IOPattern
from repro.darshan import DarshanProfiler, DarshanReport
from repro.iostack.stack import Testbed
from repro.util.errors import UsageError
from repro.util.units import KIB, MIB


def profile_run(config, nodes=1, tpn=8, seed=3, dxt=True):
    tb = Testbed.fuchs_csc(seed=seed)
    prof = DarshanProfiler(enable_dxt=dxt)
    res = run_ior(config, tb, num_nodes=nodes, tasks_per_node=tpn, tracer=prof)
    log = prof.finalize(
        exe="ior", nprocs=res.num_tasks,
        start_offset_s=res.start_offset_s, end_offset_s=res.end_offset_s,
    )
    return DarshanReport(log)


@pytest.fixture(scope="module")
def fpp_report():
    return profile_run(
        IORConfig(api="MPIIO", block_size=4 * MIB, transfer_size=2 * MIB,
                  segment_count=2, iterations=1, test_file="/scratch/pa/f",
                  file_per_proc=True, keep_file=True)
    )


@pytest.fixture(scope="module")
def shared_small_report():
    return profile_run(
        IORConfig(api="MPIIO", block_size=47008, transfer_size=47008,
                  segment_count=16, iterations=1, test_file="/scratch/pa/s",
                  file_per_proc=False, keep_file=True)
    )


class TestPatternExtraction:
    def test_fpp_pattern(self, fpp_report):
        p = extract_pattern(fpp_report)
        assert p.nprocs == 8
        assert p.n_files == 8
        assert not p.shared_file
        assert p.file_per_process
        assert p.representative_write_size == 2 * MIB
        assert p.bytes_written == 8 * 8 * MIB
        assert p.write_ops == 8 * 4
        assert p.sequential_fraction == 1.0
        assert p.write_dominant

    def test_shared_pattern(self, shared_small_report):
        p = extract_pattern(shared_small_report)
        assert p.shared_file
        assert not p.file_per_process
        assert p.representative_write_size == 47 * 1024  # 10K-100K bin

    def test_bursts_detected(self, fpp_report):
        p = extract_pattern(fpp_report)
        assert p.n_bursts >= 1
        assert p.mean_burst_bytes > 0

    def test_missing_module(self, fpp_report):
        with pytest.raises(UsageError):
            extract_pattern(fpp_report, module="HDF5")


def make_pattern(**kw):
    defaults = dict(
        nprocs=40, n_files=1, shared_file=True,
        representative_write_size=47008, representative_read_size=47008,
        bytes_written=40 * MIB, bytes_read=0, write_ops=1000, read_ops=0,
        sequential_fraction=1.0, n_bursts=1, mean_burst_bytes=40 * MIB,
    )
    defaults.update(kw)
    return IOPattern(**defaults)


class TestOptimizer:
    def test_small_shared_writes_get_collective_buffering(self):
        suggestions = IOOptimizer().suggest(make_pattern())
        params = {s.parameter for s in suggestions}
        assert "romio_cb_write" in params
        assert "cb_nodes" in params
        hint = IOOptimizer().suggested_hints(make_pattern())
        assert hint.romio_cb_write == "enable"
        assert hint.cb_nodes == 2  # 40 ranks / 16

    def test_aligned_shared_writes_no_cb_suggestion(self):
        p = make_pattern(representative_write_size=2 * MIB)
        params = {s.parameter for s in IOOptimizer().suggest(p)}
        assert "romio_cb_write" not in params

    def test_fpp_flood_gets_single_stripe(self):
        p = make_pattern(shared_file=False, n_files=200, nprocs=200,
                         representative_write_size=4 * MIB)
        suggestions = IOOptimizer(num_targets=8).suggest(p)
        assert any(s.parameter == "stripe_count" and s.suggested == "1" for s in suggestions)

    def test_small_independent_transfers_get_buffering_advice(self):
        p = make_pattern(shared_file=False, n_files=8, nprocs=8,
                         representative_write_size=64 * KIB)
        assert any(s.parameter == "transfer_size" for s in IOOptimizer().suggest(p))

    def test_random_access_advice(self):
        p = make_pattern(sequential_fraction=0.2)
        assert any(s.parameter == "access order" for s in IOOptimizer().suggest(p))

    def test_suggestion_str(self):
        s = IOOptimizer().suggest(make_pattern())[0]
        assert "->" in str(s) and s.rationale in str(s)

    def test_validate_suggestion_improves_small_shared_writes(self):
        tb = Testbed.fuchs_csc(seed=17)
        base = IORConfig(
            api="MPIIO", block_size=47008, transfer_size=47008, segment_count=32,
            iterations=2, test_file="/scratch/opt/t", file_per_proc=False,
            keep_file=True, read_file=False,
        )
        hints = IOOptimizer().suggested_hints(make_pattern())
        before, after = validate_suggestion(tb, base, hints, num_nodes=2, tasks_per_node=10)
        assert after > 2 * before  # collective buffering rescues the pattern

    def test_validate_requires_mpiio(self):
        tb = Testbed.fuchs_csc(seed=18)
        base = IORConfig(api="POSIX", test_file="/scratch/opt/p")
        with pytest.raises(UsageError):
            validate_suggestion(tb, base, IOOptimizer().suggested_hints(make_pattern()))


class TestSyntheticGeneration:
    def test_replays_fpp_pattern(self, fpp_report):
        pattern = extract_pattern(fpp_report)
        cfg = ior_config_from_pattern(pattern, test_file="/scratch/syn/t")
        assert cfg.transfer_size == pattern.representative_write_size
        assert cfg.file_per_proc
        # Per-process volume approximately preserved (within rounding).
        per_proc = pattern.bytes_written // pattern.nprocs
        assert abs(cfg.bytes_per_task - per_proc) <= cfg.transfer_size

    def test_synthetic_config_runs(self, shared_small_report):
        pattern = extract_pattern(shared_small_report)
        cfg = ior_config_from_pattern(pattern, test_file="/scratch/syn/s")
        assert cfg.shared_file == pattern.shared_file
        tb = Testbed.fuchs_csc(seed=19)
        res = run_ior(cfg, tb, num_nodes=1, tasks_per_node=pattern.nprocs)
        assert res.bandwidth_summary("write").mean > 0

    def test_empty_pattern_rejected(self):
        p = make_pattern(representative_write_size=0, representative_read_size=0)
        with pytest.raises(UsageError):
            ior_config_from_pattern(p)
