"""Tests for Phase-II extraction: parsers and workspace scanning."""

import pytest

from repro.benchmarks_io.hacc_io import HaccIOConfig, run_hacc_io
from repro.benchmarks_io.io500 import IO500Config, render_io500_output, run_io500
from repro.benchmarks_io.ior import parse_command, render_ior_output, run_ior
from repro.core.extraction import (
    KnowledgeExtractor,
    default_registry,
    parse_entryinfo,
    parse_hacc_output,
    parse_io500_output,
    parse_ior_output,
    scan_workspace,
)
from repro.core.knowledge import IO500Knowledge, Knowledge
from repro.iostack.stack import Testbed
from repro.util.errors import ExtractionError


@pytest.fixture(scope="module")
def testbed():
    return Testbed.fuchs_csc(seed=99)


@pytest.fixture(scope="module")
def ior_text(testbed):
    cfg = parse_command("ior -a mpiio -b 4m -t 2m -s 4 -F -C -e -i 3 -o /scratch/ex/t -k")
    return render_ior_output(run_ior(cfg, testbed, num_nodes=2, tasks_per_node=10))


class TestIORParsing:
    def test_fields(self, ior_text):
        k = parse_ior_output(ior_text)
        assert k.benchmark == "ior"
        assert k.api == "MPIIO"
        assert k.num_tasks == 20 and k.num_nodes == 2 and k.tasks_per_node == 10
        assert k.file_per_proc
        assert k.test_file == "/scratch/ex/t"
        assert "-C" in k.command
        assert k.end_time >= k.start_time > 0

    def test_results_and_summaries(self, ior_text):
        k = parse_ior_output(ior_text)
        assert len(k.summary("write").results) == 3
        assert len(k.summary("read").results) == 3
        s = k.summary("write")
        series = s.bandwidth_series()
        assert s.bw_min == pytest.approx(min(series), abs=0.01)
        assert s.bw_max == pytest.approx(max(series), abs=0.01)

    def test_parameters_include_sizes(self, ior_text):
        k = parse_ior_output(ior_text)
        assert k.parameters["xfersize_bytes"] == 2 * 1024**2
        assert k.parameters["blocksize_bytes"] == 4 * 1024**2
        assert k.parameters["segments"] == "4"

    def test_rejects_garbage(self):
        with pytest.raises(ExtractionError):
            parse_ior_output("hello world")

    def test_rejects_output_without_results(self):
        with pytest.raises(ExtractionError):
            parse_ior_output(
                "IOR-3.3.0: MPI Coordinated Test of Parallel I/O\nOptions: \napi : POSIX\n\n"
            )

    def test_summary_recomputed_when_section_missing(self, ior_text):
        truncated = ior_text.split("Summary of all tests:")[0]
        k = parse_ior_output(truncated)
        s = k.summary("write")
        assert s.bw_mean == pytest.approx(
            sum(s.bandwidth_series()) / 3, rel=1e-6
        )


class TestEntryinfoParsing:
    def test_round_trip_from_fs(self, testbed):
        text = testbed.fs.getentryinfo("/scratch/ex/t.00000000")
        info = parse_entryinfo(text, raid_scheme="RAID0")
        assert info.entry_type == "file"
        assert info.metadata_node == "meta01"
        assert info.stripe_pattern == "RAID0"
        assert info.chunk_size == "512K"
        assert info.num_targets == 4
        assert info.storage_pool == "Default"
        assert info.raid_scheme == "RAID0"

    def test_rejects_garbage(self):
        with pytest.raises(ExtractionError):
            parse_entryinfo("not entry info")


class TestIO500Parsing:
    def test_round_trip(self, testbed):
        result = run_io500(IO500Config(workdir="/scratch/ex500"), testbed, 1, 10)
        k = parse_io500_output(render_io500_output(result))
        assert k.score_total == pytest.approx(result.score.total, abs=1e-5)
        assert len(k.testcases) == 12
        assert k.num_tasks == 10
        assert k.value("ior-easy-write") == pytest.approx(
            result.phase("ior-easy-write").value, abs=1e-5
        )

    def test_rejects_unscored(self):
        with pytest.raises(ExtractionError):
            parse_io500_output("[RESULT] ior-easy-write 1.0 GiB/s : time 1.0 seconds")


class TestHaccParsing:
    def test_round_trip(self, testbed):
        ctx = testbed.start_job("hx", 1, 4)
        res = run_hacc_io(HaccIOConfig(num_particles=50_000, out_file="/scratch/hx/c"), ctx)
        text = (
            f"HACC-IO mode={res.config.mode} api={res.config.api} "
            f"particles={res.config.num_particles}\n"
        )
        for p in res.results:
            text += (
                f"{p.operation} bandwidth: {p.bandwidth_mib:.2f} MiB/s "
                f"time: {p.time_s:.4f} s bytes: {p.data_moved_bytes}\n"
            )
        k = parse_hacc_output(text)
        assert k.benchmark == "hacc-io"
        assert k.parameters["particles"] == 50_000
        assert k.summary("write").bw_mean == pytest.approx(
            res.phase("write").bandwidth_mib, abs=0.01
        )

    def test_rejects_garbage(self):
        with pytest.raises(ExtractionError):
            parse_hacc_output("nope")


class TestWorkspaceScan:
    def test_scan_multiple_sources(self, tmp_path, testbed):
        d1 = tmp_path / "000000_ior" / "work"
        d1.mkdir(parents=True)
        cfg = parse_command("ior -a posix -b 2m -t 1m -i 2 -o /scratch/ws2/t -w")
        res = run_ior(cfg, testbed, 1, 4)
        (d1 / "ior_output.txt").write_text(render_ior_output(res))
        d2 = tmp_path / "000001_io500" / "work"
        d2.mkdir(parents=True)
        io5 = run_io500(IO500Config(workdir="/scratch/ws500"), testbed, 1, 10)
        (d2 / "io500_result.txt").write_text(render_io500_output(io5))

        out = scan_workspace(tmp_path)
        kinds = sorted(type(k).__name__ for k in out)
        assert kinds == ["IO500Knowledge", "Knowledge"]

    def test_extractor_requires_path_or_workspace(self):
        with pytest.raises(ExtractionError):
            KnowledgeExtractor().extract()

    def test_scan_not_a_directory(self, tmp_path):
        with pytest.raises(ExtractionError):
            scan_workspace(tmp_path / "missing")

    def test_registry_names(self):
        assert default_registry().names() == ["ior", "io500", "hacc-io", "mdtest", "darshan"]

    def test_duplicate_registration_rejected(self):
        reg = default_registry()
        from repro.core.extraction.base import ExtractorSpec

        with pytest.raises(ExtractionError):
            reg.register(ExtractorSpec(name="ior", marker_files=("x",), extract=lambda d: []))
