"""Tests for Phase-IV analysis: charts, viewer, comparison, IO500 viewer."""

import pytest

from repro.core.explorer import (
    BoxSeries,
    ChartSpec,
    ComparisonView,
    IO500Viewer,
    KnowledgeViewer,
    Series,
    export_image,
    overview_boxplot,
    render_ascii,
    render_svg,
)
from repro.core.knowledge import (
    IO500Knowledge,
    IO500Testcase,
    Knowledge,
    KnowledgeResult,
    KnowledgeSummary,
)
from repro.util.errors import AnalysisError
from repro.util.stats import boxplot_stats


def make_knowledge(kid=1, bws=(2850.0, 1251.0, 2840.0), api="MPIIO", tasks=80, params=None):
    results = [
        KnowledgeResult(iteration=i, bandwidth_mib=bw, iops=bw / 2, latency_s=0.01,
                        wrrd_time_s=1.0, total_time_s=1.2)
        for i, bw in enumerate(bws)
    ]
    summary = KnowledgeSummary(
        operation="write", api=api, bw_max=max(bws), bw_min=min(bws),
        bw_mean=sum(bws) / len(bws), bw_stddev=1.0,
        ops_max=max(bws) / 2, ops_min=min(bws) / 2, ops_mean=sum(bws) / len(bws) / 2,
        ops_stddev=0.5, iterations=len(bws), results=results,
    )
    return Knowledge(
        benchmark="ior", command=f"ior run {kid}", api=api, num_tasks=tasks,
        num_nodes=tasks // 20 or 1, parameters=params or {"xfersize": "2m"},
        summaries=[summary], knowledge_id=kid,
    )


class TestChartSpec:
    def test_series_length_mismatch(self):
        with pytest.raises(AnalysisError):
            Series(name="s", x=(1, 2), y=(1.0,))

    def test_unknown_kind(self):
        with pytest.raises(AnalysisError):
            ChartSpec(kind="pie", title="t")

    def test_validate_empty(self):
        with pytest.raises(AnalysisError):
            ChartSpec(kind="line", title="t").validate()
        with pytest.raises(AnalysisError):
            ChartSpec(kind="boxplot", title="t").validate()


class TestRenderers:
    def spec(self, kind="line"):
        return ChartSpec(
            kind=kind, title="Throughput", x_label="iteration", y_label="MiB/s",
            series=[
                Series("write", (1, 2, 3), (2850.0, 1251.0, 2840.0)),
                Series("read", (1, 2, 3), (3200.0, 3190.0, 3210.0)),
            ],
        )

    def test_ascii_line(self):
        out = render_ascii(self.spec())
        assert "Throughput" in out
        assert "legend: * write  o read" in out

    def test_ascii_bar(self):
        assert "Throughput" in render_ascii(self.spec("bar"))

    def test_ascii_boxplot(self):
        spec = ChartSpec(
            kind="boxplot", title="box", y_label="MiB/s",
            boxes=[BoxSeries("k1", boxplot_stats([1.0, 2.0, 3.0, 100.0]))],
        )
        out = render_ascii(spec)
        assert "k1" in out and "o" in out  # outlier marker

    def test_svg_line_valid_and_complete(self):
        svg = render_svg(self.spec())
        assert svg.startswith("<svg") and svg.endswith("</svg>")
        assert "polyline" in svg
        assert "write" in svg and "read" in svg

    def test_svg_bar(self):
        assert "<rect" in render_svg(self.spec("bar"))

    def test_svg_boxplot(self):
        spec = ChartSpec(
            kind="boxplot", title="box",
            boxes=[BoxSeries("a", boxplot_stats([1.0, 2.0, 3.0]))],
        )
        svg = render_svg(spec)
        assert "<rect" in svg and "<line" in svg

    def test_svg_escapes_title(self):
        spec = self.spec()
        spec.title = "a < b & c"
        assert "a &lt; b &amp; c" in render_svg(spec)

    def test_export_image(self, tmp_path):
        path = export_image(self.spec(), tmp_path / "chart.svg")
        assert path.exists()
        assert path.read_text().startswith("<svg")

    def test_export_rejects_non_svg(self, tmp_path):
        with pytest.raises(AnalysisError):
            export_image(self.spec(), tmp_path / "chart.png")


class TestViewer:
    def test_render_contains_sections(self):
        text = KnowledgeViewer().render(make_knowledge())
        assert "command" in text
        assert "Summary:" in text
        assert "Details per iteration:" in text
        assert "2850.0000" in text

    def test_iteration_chart_fig5_shape(self):
        # The Fig. 5 chart: throughput per 1-based iteration.
        spec = KnowledgeViewer().iteration_chart(make_knowledge(), "bandwidth_mib")
        assert spec.kind == "line"
        write = spec.series[0]
        assert write.x == (1, 2, 3)
        assert write.y == (2850.0, 1251.0, 2840.0)

    def test_other_metrics_selectable(self):
        spec = KnowledgeViewer().iteration_chart(make_knowledge(), "wrrd_time_s")
        assert "wrRdTime" in spec.y_label

    def test_unknown_metric(self):
        with pytest.raises(AnalysisError):
            KnowledgeViewer().iteration_chart(make_knowledge(), "vibes")


class TestComparison:
    def objects(self):
        return [
            make_knowledge(1, bws=(1000.0, 1100.0, 1050.0), params={"xfersize": "1m"}),
            make_knowledge(2, bws=(3000.0, 3100.0, 2900.0), params={"xfersize": "2m"}),
            make_knowledge(3, bws=(2000.0, 2100.0, 1900.0), api="POSIX", params={"xfersize": "2m"}),
        ]

    def test_needs_objects(self):
        with pytest.raises(AnalysisError):
            ComparisonView([])

    def test_chart_axis_selection(self):
        spec = ComparisonView(self.objects()).chart(x_axis="xfersize", y_metric="bw_mean",
                                                    operations=("write",))
        assert spec.series[0].x == ("1m", "2m", "2m")
        assert spec.series[0].y[1] == pytest.approx(3000.0)

    def test_unknown_axis(self):
        with pytest.raises(AnalysisError):
            ComparisonView(self.objects()).chart(x_axis="colour")

    def test_unknown_metric(self):
        with pytest.raises(AnalysisError):
            ComparisonView(self.objects()).chart(y_metric="speed")

    def test_filter_by_api(self):
        view = ComparisonView(self.objects()).filter_by(api="POSIX")
        assert [k.knowledge_id for k in view.objects] == [3]

    def test_filter_by_parameter(self):
        view = ComparisonView(self.objects()).filter_by(xfersize="2m")
        assert [k.knowledge_id for k in view.objects] == [2, 3]

    def test_filter_empty_raises(self):
        with pytest.raises(AnalysisError):
            ComparisonView(self.objects()).filter_by(api="GPFS")

    def test_sort_by(self):
        view = ComparisonView(self.objects()).sort_by("bw_mean", "write")
        assert [k.knowledge_id for k in view.objects] == [2, 3, 1]

    def test_table(self):
        out = ComparisonView(self.objects()).table()
        assert "bw_mean" in out and "MPIIO" in out

    def test_overview_boxplot(self):
        spec = ComparisonView(self.objects()).overview("write")
        assert spec.kind == "boxplot"
        assert [b.name for b in spec.boxes] == ["#1", "#2", "#3"]

    def test_overview_missing_operation(self):
        with pytest.raises(AnalysisError):
            overview_boxplot(self.objects(), "append")


class TestIO500Viewer:
    def runs(self):
        def run(i, easy_w, easy_r):
            return IO500Knowledge(
                score_total=2.0, score_bw=1.0, score_md=4.0, iofh_id=i,
                testcases=[
                    IO500Testcase("ior-easy-write", easy_w, "GiB/s"),
                    IO500Testcase("ior-easy-read", easy_r, "GiB/s"),
                    IO500Testcase("ior-hard-write", easy_w / 10, "GiB/s"),
                    IO500Testcase("ior-hard-read", easy_r / 10, "GiB/s"),
                ],
            )

        return [run(1, 3.0, 3.3), run(2, 2.8, 3.25), run(3, 3.1, 3.35)]

    def test_render(self):
        text = IO500Viewer().render(self.runs()[0])
        assert "score (total)" in text and "ior-easy-write" in text

    def test_score_chart(self):
        spec = IO500Viewer().score_chart(self.runs())
        assert [s.name for s in spec.series] == ["total", "bandwidth", "metadata"]

    def test_testcase_chart(self):
        spec = IO500Viewer().testcase_chart(self.runs(), ("ior-easy-write",))
        assert spec.series[0].y == (3.0, 2.8, 3.1)

    def test_boundary_boxplot(self):
        spec = IO500Viewer().boundary_boxplot(self.runs())
        assert spec.kind == "boxplot"
        assert len(spec.boxes) == 4

    def test_boundary_needs_two_runs(self):
        with pytest.raises(AnalysisError):
            IO500Viewer().boundary_boxplot(self.runs()[:1])

    def test_empty_runs(self):
        with pytest.raises(AnalysisError):
            IO500Viewer().score_chart([])
