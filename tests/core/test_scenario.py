"""Scenario engine: grammar parsing, deterministic expansion, campaign
compilation, and frequency-domain period detection."""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.campaign.launcher import Launcher
from repro.core.campaign.store import CampaignStore
from repro.core.scenario import (
    Choice,
    NonTerminal,
    Range,
    Terminal,
    compile_campaign_spec,
    compile_campaign_toml,
    compile_ior_config,
    detect_from_series,
    detect_periods,
    expand,
    parse_grammar_toml,
    synthesize_throughput,
)
from repro.core.scenario.cli import main as scenario_main
from repro.core.usage.recommend import recommend_for_periods
from repro.util.errors import ScenarioError

GRAMMAR = """
[grammar]
name = "families"
start = "workload"

[rules]
workload = "bursty @3 | interleaved | steady"
bursty = "pattern=bursty period_s={3.0..9.0} duty={0.15..0.45} io"
interleaved = "pattern=interleaved period_s={2.0..6.0} io"
steady = "pattern=steady io"
io = "api=<MPIIO|POSIX:2> blocksize={4m..64m:pow2} transfersize={1m..4m:pow2} sharing=<shared|fpp> segments={1..8}"

[defaults]
nodes = "2"
taskspernode = "4"
iterations = "2"
"""


@pytest.fixture()
def grammar():
    return parse_grammar_toml(GRAMMAR)


class TestGrammarParsing:
    def test_symbol_kinds(self, grammar):
        io = grammar.rule("io")
        kinds = [type(s) for s in io.alternatives[0].symbols]
        assert kinds == [Choice, Range, Range, Choice, Range]

    def test_alternative_weights(self, grammar):
        weights = [a.weight for a in grammar.rule("workload").alternatives]
        assert weights == [3.0, 1.0, 1.0]

    def test_choice_weights_survive_pipes(self, grammar):
        api = grammar.rule("io").alternatives[0].symbols[0]
        assert api.values == ("MPIIO", "POSIX")
        assert api.weights == (1.0, 2.0)

    def test_pow2_range(self, grammar):
        blocksize = grammar.rule("io").alternatives[0].symbols[1]
        assert blocksize.pow2
        assert blocksize.pow2_values() == [
            4 * 1024**2, 8 * 1024**2, 16 * 1024**2, 32 * 1024**2, 64 * 1024**2
        ]

    def test_float_range_bounds(self, grammar):
        period = grammar.rule("bursty").alternatives[0].symbols[1]
        assert isinstance(period, Range)
        assert (period.lo, period.hi, period.integer) == (3.0, 9.0, False)

    def test_defaults_parsed(self, grammar):
        assert grammar.defaults["nodes"] == "2"

    def test_terminal_and_nonterminal(self, grammar):
        bursty = grammar.rule("bursty").alternatives[0].symbols
        assert bursty[0] == Terminal(key="pattern", value="bursty")
        assert bursty[-1] == NonTerminal("io")

    @pytest.mark.parametrize("bad, message", [
        ("[grammar]\nname='g'\nstart='missing'\n[rules]\nr='x=1'", "start symbol"),
        ("[grammar]\nname='g'\nstart='r'\n[rules]\nr='nope'", "undefined"),
        ("[grammar]\nname='g'\nstart='r'\n[rules]\nr='x={5..1}'", "empty range"),
        ("[grammar]\nname='g'\nstart='r'\n[rules]\nr='x={1.5..9.5:pow2}'", "pow2"),
        ("[grammar]\nname='g'\nstart='r'\n[rules]\nr='x=<a|b> | '", "empty alternative"),
        ("[grammar]\nname='g'\nstart='r'\n[rules]\nr='x=<a:b>'", "invalid weight"),
        ("[grammar]\nname='g'\nstart='r'\n[rules]\nr='x=<a|b @2'", "unbalanced"),
        ("[grammar]\nname='g'\nstart='r'\n[rules]\nr='@2'", "weight-only"),
        ("[grammar]\nname='g'\nstart='r'", "at least one"),
        ("[grammar]\nname='g'\nstart='r'\n[rules]\nr='x=1'\n[bogus]\ny=1", "unknown"),
    ])
    def test_rejects_malformed(self, bad, message):
        with pytest.raises(ScenarioError, match=message):
            parse_grammar_toml(bad)

    def test_recursion_hits_depth_guard(self):
        text = (
            "[grammar]\nname='g'\nstart='a'\nmax_depth=8\n"
            "[rules]\na='b'\nb='a'"
        )
        grammar = parse_grammar_toml(text)
        with pytest.raises(ScenarioError, match="max_depth"):
            expand(grammar, seed=1, count=1)


class TestDeterministicExpansion:
    @given(seed=st.integers(0, 2**32 - 1), count=st.integers(1, 8))
    @settings(max_examples=30, deadline=None)
    def test_same_seed_byte_identical(self, seed, count):
        grammar = parse_grammar_toml(GRAMMAR)
        first = [d.to_json() for d in expand(grammar, seed, count)]
        second = [d.to_json() for d in expand(grammar, seed, count)]
        assert first == second

    @given(seed=st.integers(0, 2**31))
    @settings(max_examples=20, deadline=None)
    def test_prefix_stability(self, seed):
        grammar = parse_grammar_toml(GRAMMAR)
        short = [d.to_json() for d in expand(grammar, seed, 3)]
        long = [d.to_json() for d in expand(grammar, seed, 9)]
        assert long[:3] == short

    def test_different_seeds_differ(self, grammar):
        a = [d.to_json() for d in expand(grammar, 1, 8)]
        b = [d.to_json() for d in expand(grammar, 2, 8)]
        assert a != b

    def test_weighted_family_distribution(self, grammar):
        patterns = [d.params["pattern"] for d in expand(grammar, 11, 200)]
        bursty = patterns.count("bursty")
        # weight 3 of 5 total -> expect ~120 of 200; generous band
        assert 80 < bursty < 160

    def test_range_draws_stay_in_bounds(self, grammar):
        for d in expand(grammar, 5, 50):
            assert 1 <= int(d.params["segments"]) <= 8
            assert int(d.params["blocksize"]) in {
                4 * 1024**2, 8 * 1024**2, 16 * 1024**2, 32 * 1024**2, 64 * 1024**2
            }
            if d.params["pattern"] == "bursty":
                assert 3.0 <= float(d.params["period_s"]) <= 9.0

    def test_defaults_ride_along_and_trace_recorded(self, grammar):
        derivation = expand(grammar, 3, 1)[0]
        assert derivation.params["nodes"] == "2"
        assert derivation.trace[0].startswith("workload[")

    def test_count_validated(self, grammar):
        with pytest.raises(ScenarioError, match="count"):
            expand(grammar, 1, 0)


class TestCampaignCompilation:
    def test_compiles_to_ior(self, grammar):
        config = compile_ior_config(expand(grammar, 7, 1)[0])
        command = config.to_command()
        assert command.startswith("ior ") and "," not in command

    def test_block_rounded_to_transfer_multiple(self, grammar):
        for d in expand(grammar, 13, 20):
            config = compile_ior_config(d)
            assert config.block_size % config.transfer_size == 0

    def test_round_trips_through_campaign_parser(self, grammar):
        derivations = expand(grammar, 7, 4)
        spec = compile_campaign_spec(grammar, derivations)
        assert spec.name == "scenario-families-s7"
        assert spec.benchmark == "ior"
        assert spec.fixed["scenario_grammar"] == "families"
        assert len(spec.parameters["command"].split(",")) == len(
            {compile_ior_config(d).to_command() for d in derivations}
        )

    def test_rejects_non_uniform_geometry(self, grammar):
        derivations = expand(grammar, 7, 2)
        bumped = derivations[1].params | {"nodes": "8"}
        derivations[1] = type(derivations[1])(
            grammar=derivations[1].grammar, seed=7, index=1,
            params=bumped, trace=derivations[1].trace,
        )
        with pytest.raises(ScenarioError, match="geometry"):
            compile_campaign_toml(grammar, derivations)

    def test_rejects_empty_batch(self, grammar):
        with pytest.raises(ScenarioError, match="empty"):
            compile_campaign_toml(grammar, [])

    def test_end_to_end_campaign_run(self, grammar, tmp_path):
        derivations = expand(grammar, 7, 3)
        spec = compile_campaign_spec(grammar, derivations)
        with CampaignStore(str(tmp_path / "campaigns.db")) as store:
            campaign_id = store.submit(spec, str(tmp_path / "knowledge.db"))
            counts = Launcher(
                store, campaign_id, workspace=str(tmp_path / "ws"), workers=2, seed=7
            ).run()
        assert counts["FAILED"] == 0
        assert counts["DONE"] >= len(derivations)


class TestPeriodDetection:
    def test_recovers_planted_square_wave(self):
        interval, period = 0.25, 5.0
        t = np.arange(300) * interval
        values = np.where(np.mod(t, period) / period < 0.3, 400.0, 20.0)
        detections = detect_periods(values, interval)
        assert detections
        best = detections[0]
        assert best.period_s == pytest.approx(period, rel=0.1)
        assert best.confidence > 0.6

    def test_recovery_across_grammar_families(self, grammar):
        for d in expand(grammar, 21, 8):
            values, planted = synthesize_throughput(d, windows=256, interval_s=0.25)
            detections = detect_periods(values, 0.25)
            if planted is not None:
                assert detections, f"missed planted period in {d.params}"
                assert detections[0].period_s == pytest.approx(planted, rel=0.12)
                assert detections[0].confidence > 0.5
            else:
                top = max((x.confidence for x in detections), default=0.0)
                assert top < 0.5, f"steady trace scored {top}"

    def test_aperiodic_noise_scores_low(self):
        rng = np.random.default_rng(3)
        detections = detect_periods(rng.normal(100, 15, 400), 0.25)
        assert max((d.confidence for d in detections), default=0.0) < 0.3

    def test_constant_and_short_series_detect_nothing(self):
        assert detect_periods(np.full(64, 42.0), 0.25) == []
        assert detect_periods([1.0, 2.0, 3.0], 0.25) == []

    def test_nan_tolerated(self):
        t = np.arange(128) * 0.5
        values = np.where(np.mod(t, 8.0) < 2.0, 300.0, 10.0)
        values[10] = np.nan
        detections = detect_periods(values, 0.5)
        assert detections and detections[0].period_s == pytest.approx(8.0, rel=0.15)

    def test_detect_from_series_fills_gaps(self):
        interval, period = 0.25, 4.0
        series = []
        for i in range(240):
            t = i * interval
            if np.mod(t, period) < 1.2:  # only busy windows reported
                series.append((t, 350.0))
        detections = detect_from_series(series, interval)
        assert detections and detections[0].period_s == pytest.approx(period, rel=0.1)

    def test_validation(self):
        with pytest.raises(ScenarioError):
            detect_periods([1.0] * 64, 0.0)
        with pytest.raises(ScenarioError):
            detect_periods([1.0] * 64, 1.0, min_cycles=1)

    def test_periods_map_to_recommendations(self):
        t = np.arange(400) * 0.1
        values = np.where(np.mod(t, 4.0) / 4.0 < 0.25, 500.0, 10.0)
        detections = detect_periods(values, 0.1)
        recommendations = recommend_for_periods(detections)
        assert recommendations
        assert recommendations[0].action == "burst-absorb"
        sub_second = detect_periods(
            np.where(np.mod(np.arange(200) * 0.05, 0.5) < 0.15, 300.0, 5.0), 0.05
        )
        actions = {r.action for r in recommend_for_periods(sub_second)}
        assert "collective-buffering" in actions

    def test_low_confidence_filtered_from_recommendations(self):
        rng = np.random.default_rng(5)
        detections = detect_periods(rng.normal(100, 10, 256), 0.25)
        assert recommend_for_periods(detections, min_confidence=0.5) == []


class TestScenarioCLI:
    @pytest.fixture()
    def grammar_file(self, tmp_path):
        path = tmp_path / "grammar.toml"
        path.write_text(GRAMMAR)
        return str(path)

    def test_expand_prints_stable_json(self, grammar_file, capsys):
        assert scenario_main(["--grammar", grammar_file, "--expand", "3", "--seed", "5"]) == 0
        first = capsys.readouterr().out
        assert scenario_main(["--grammar", grammar_file, "--expand", "3", "--seed", "5"]) == 0
        assert capsys.readouterr().out == first
        assert len(first.strip().splitlines()) == 3

    def test_compile_writes_campaign_toml(self, grammar_file, tmp_path, capsys):
        out = tmp_path / "sweep.toml"
        assert scenario_main(
            ["--grammar", grammar_file, "--compile", "3", "--out", str(out)]
        ) == 0
        text = out.read_text()
        assert "[campaign]" in text and "scenario-families" in text

    def test_synthesize_then_diagnose(self, grammar_file, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        # seed chosen so derivation 0 is periodic (weight-3 bursty family)
        assert scenario_main(
            ["--grammar", grammar_file, "--synthesize", "0", "--seed", "0",
             "--out", str(trace)]
        ) == 0
        payload = json.loads(trace.read_text())
        assert payload["planted_period_s"] is not None
        capsys.readouterr()
        assert scenario_main(["--diagnose", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "periodic phase(s) detected" in out
        assert "recommendation(s):" in out

    def test_diagnose_aperiodic_reports_nothing(self, tmp_path, capsys):
        trace = tmp_path / "flat.json"
        rng = np.random.default_rng(1)
        trace.write_text(json.dumps(
            {"interval_s": 0.25, "values": list(rng.normal(100, 5, 128))}
        ))
        assert scenario_main(["--diagnose", str(trace)]) == 0
        assert "no periodic I/O detected" in capsys.readouterr().out

    def test_run_drains_campaign(self, grammar_file, tmp_path, capsys):
        assert scenario_main(
            ["--grammar", grammar_file, "--run", "2", "--seed", "7",
             "--store", str(tmp_path / "c.db"), "--db", str(tmp_path / "k.db"),
             "--workspace", str(tmp_path / "ws"),
             "--metrics-json", str(tmp_path / "m.json")]
        ) == 0
        out = capsys.readouterr().out
        assert "drained" in out and "FAILED" not in out
        metrics = json.loads((tmp_path / "m.json").read_text())
        assert "scenario.expansions_total" in metrics["counters"]

    def test_grammar_required_for_expand(self, capsys):
        assert scenario_main(["--expand", "3"]) == 2
        assert "--grammar" in capsys.readouterr().err

    def test_bad_grammar_file_is_an_error(self, tmp_path, capsys):
        assert scenario_main(
            ["--grammar", str(tmp_path / "missing.toml"), "--expand", "1"]
        ) == 1
        assert "error" in capsys.readouterr().err
