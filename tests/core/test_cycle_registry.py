"""Integration tests for the full knowledge cycle and the module registry."""

import pytest

from repro.core.cycle import KnowledgeCycle
from repro.core.knowledge import Knowledge
from repro.core.persistence import KnowledgeDatabase
from repro.core.registry import ModuleRegistry, UseCaseModule, default_module_registry
from repro.core.usage.anomaly import IterationAnomaly
from repro.iostack.stack import Testbed
from repro.pfs import Fault
from repro.util.errors import UsageError

CYCLE_XML = """
<jube>
  <benchmark name="cycle-test" outpath="ignored">
    <parameterset name="pattern">
      <parameter name="transfersize">1m,2m</parameter>
      <parameter name="command">ior -a mpiio -b 4m -t $transfersize -s 4 -F -e -i 4 -o /scratch/ct/test -k</parameter>
      <parameter name="nodes">2</parameter>
      <parameter name="taskspernode">10</parameter>
    </parameterset>
    <step name="run" work="ior">
      <use>pattern</use>
    </step>
  </benchmark>
</jube>
"""


class TestModuleRegistry:
    def test_register_run_unregister(self):
        reg = ModuleRegistry()
        reg.register(UseCaseModule("count", "counts knowledge", lambda ks: len(ks)))
        assert reg.run("count", [Knowledge(benchmark="ior")]) == 1
        reg.unregister("count")
        with pytest.raises(UsageError):
            reg.get("count")

    def test_duplicate_rejected(self):
        reg = ModuleRegistry()
        module = UseCaseModule("m", "", lambda ks: None)
        reg.register(module)
        with pytest.raises(UsageError, match="already registered"):
            reg.register(module)
        # A same-named module is rejected too, not just the same object.
        with pytest.raises(UsageError):
            reg.register(UseCaseModule("m", "other", lambda ks: 1))

    def test_unregister_missing(self):
        reg = ModuleRegistry()
        with pytest.raises(UsageError, match="no use-case module 'ghost'"):
            reg.unregister("ghost")

    def test_get_missing_lists_available(self):
        reg = ModuleRegistry()
        reg.register(UseCaseModule("present", "", lambda ks: None))
        with pytest.raises(UsageError, match=r"\['present'\]"):
            reg.get("absent")

    def test_run_missing(self):
        with pytest.raises(UsageError):
            ModuleRegistry().run("nope", [])

    def test_default_registry_modules(self):
        assert default_module_registry().names() == ["anomaly-detection", "recommendation"]

    def test_run_all(self):
        reg = default_module_registry()
        out = reg.run_all([])
        assert set(out) == {"anomaly-detection", "recommendation"}


class TestKnowledgeCycle:
    def test_full_revolution(self, tmp_path):
        testbed = Testbed.fuchs_csc(seed=101)
        with KnowledgeDatabase(":memory:") as db:
            cycle = KnowledgeCycle(testbed, db, workspace=tmp_path)
            result = cycle.run_cycle(CYCLE_XML)
            # Phase II: two workpackages -> two knowledge objects.
            assert len(result.knowledge) == 2
            # Phase III: both persisted.
            assert result.knowledge_ids == [1, 2]
            assert db.table_count("performances") == 2
            assert db.table_count("results") == 2 * 2 * 4  # objs x ops x iters
            # Phase IV: report covers both runs and the comparison.
            assert result.analysis_report.count("benchmark    : ior") == 2
            assert "Comparison:" in result.analysis_report
            # Phase V: the recommendation module fired.
            assert result.usage_results["recommendation"] is not None

    def test_anomaly_detected_through_cycle(self, tmp_path):
        # End-to-end Fig. 5: inject the fault, run the whole cycle, and
        # the usage phase must flag iteration 2.
        testbed = Testbed.fuchs_csc(seed=102)
        testbed.fs.faults.add(
            Fault(name="it2", factor=0.42,
                  when={"benchmark": "ior", "iteration": 1, "op": "write"})
        )
        with KnowledgeDatabase(":memory:") as db:
            cycle = KnowledgeCycle(testbed, db, workspace=tmp_path)
            result = cycle.run_cycle(CYCLE_XML)
            anomalies = result.usage_results["anomaly-detection"]
            assert anomalies, "fault was not detected by the cycle"
            assert all(isinstance(a, IterationAnomaly) for a in anomalies)
            assert {a.iteration for a in anomalies} == {2}

    def test_second_revolution_grows_knowledge(self, tmp_path):
        # Fig. 2: the cycle is iterative; re-running it accumulates.
        testbed = Testbed.fuchs_csc(seed=103)
        with KnowledgeDatabase(":memory:") as db:
            cycle = KnowledgeCycle(testbed, db, workspace=tmp_path)
            cycle.run_cycle(CYCLE_XML)
            first = db.table_count("performances")
            cycle.run_cycle(CYCLE_XML)
            assert db.table_count("performances") == 2 * first

    def test_regenerated_config_drives_next_cycle(self, tmp_path):
        # §V-E1 end-to-end: knowledge -> generated JUBE config -> new run.
        from repro.core.usage import generate_jube_config

        testbed = Testbed.fuchs_csc(seed=104)
        with KnowledgeDatabase(":memory:") as db:
            cycle = KnowledgeCycle(testbed, db, workspace=tmp_path)
            result = cycle.run_cycle(CYCLE_XML)
            xml = generate_jube_config(
                result.knowledge[0], sweep={"transfersize": ["4m"]},
                nodes=1, tasks_per_node=4,
            )
            second = cycle.run_cycle(xml)
            assert len(second.knowledge) == 1
            assert second.knowledge[0].parameters["xfersize_bytes"] == 4 * 1024**2
