"""Launcher fleets: cross-process compare-and-set claims, lease
stealing, placement routing, elastic pools, heartbeat-through-backoff,
the supervised fleet coordinator, and the SIGKILL exactly-once soak."""

import json
import sqlite3

import pytest

from repro.core.campaign import CampaignSpec, CampaignStore, Launcher
from repro.core.campaign.cli import main as campaign_main
from repro.core.campaign.fleet import (
    ElasticBounds,
    ElasticController,
    LauncherFleet,
    render_fleet_view,
)
from repro.core.campaign.launcher import _HeartbeatObserver
from repro.core.campaign.store import RESTARTING, RUNNING, SCHEMA_VERSION
from repro.core.metrics import MetricsRegistry, render_metrics_report
from repro.core.resilience import RetryPolicy
from repro.core.service.chaos import WorkerKiller
from repro.util.errors import (
    CampaignError,
    ConfigurationError,
    LeaseLostError,
    PersistenceError,
)


def noop_spec(jobs, *, duration_ms=0, name="fleet-noop", max_attempts=3):
    return CampaignSpec(
        name=name,
        benchmark="noop",
        parameters={"idx": ",".join(str(i) for i in range(jobs))},
        fixed={"duration_ms": str(duration_ms)},
        max_attempts=max_attempts,
    )


def submit_noop(tmp_path, jobs, **spec_kwargs):
    store = CampaignStore(tmp_path / "campaigns.db")
    cid = store.submit(noop_spec(jobs, **spec_kwargs), str(tmp_path / "knowledge.db"))
    return store, cid


def knowledge_tokens(tmp_path):
    """Every idempotency token persisted to the noop knowledge backend."""
    conn = sqlite3.connect(str(tmp_path / "knowledge.db"))
    try:
        return [
            json.loads(row[0]).get("campaign_job")
            for row in conn.execute(
                "SELECT parameters_json FROM performances"
            ).fetchall()
        ]
    finally:
        conn.close()


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now


# ----------------------------------------------------------------------
# the store's fleet primitives
# ----------------------------------------------------------------------
class TestFleetStore:
    def test_cross_connection_claims_are_disjoint(self, tmp_path):
        # Two launcher *processes* are two connections to one WAL file;
        # the CAS claim must hand every job to exactly one of them.
        store_a, cid = submit_noop(tmp_path, 6)
        store_b = CampaignStore(tmp_path / "campaigns.db")
        claims = {"a": [], "b": []}
        while True:
            job_a = store_a.acquire(cid, "launcher-a", 0.0, 60.0)
            job_b = store_b.acquire(cid, "launcher-b", 0.0, 60.0)
            if job_a is None and job_b is None:
                break
            if job_a is not None:
                claims["a"].append(job_a.job_id)
            if job_b is not None:
                claims["b"].append(job_b.job_id)
        assert not set(claims["a"]) & set(claims["b"])
        assert len(claims["a"]) + len(claims["b"]) == 6
        assert all(j.state == RUNNING for j in store_b.jobs(cid))
        store_b.close()
        store_a.close()

    def test_steal_order_longest_expired_then_lowest_id(self, tmp_path):
        metrics = MetricsRegistry()
        store = CampaignStore(tmp_path / "campaigns.db", metrics=metrics)
        cid = store.submit(noop_spec(3), str(tmp_path / "knowledge.db"))
        first = store.acquire(cid, "victim", 0.0, 10.0)  # expires at 10
        second = store.acquire(cid, "victim", 0.0, 5.0)  # expires at 5
        third = store.acquire(cid, "victim", 0.0, 5.0)  # expires at 5, higher id
        order = [store.steal(cid, "thief", 20.0).job_id for _ in range(3)]
        assert order == [second.job_id, third.job_id, first.job_id]
        stolen = store.job(second.job_id)
        assert stolen.state == RESTARTING
        assert stolen.lease_owner == "thief"
        assert "stolen by thief from victim" in stolen.error
        assert store.steal(cid, "thief", 20.0) is None  # nothing left
        steals = sum(
            row["value"]
            for row in metrics.snapshot()["counters"]["campaign.steals_total"][
                "series"
            ]
        )
        assert steals == 3
        store.close()

    def test_live_lease_is_not_stealable(self, tmp_path):
        store, cid = submit_noop(tmp_path, 1)
        store.acquire(cid, "victim", 0.0, 100.0)
        assert store.steal(cid, "thief", 50.0) is None
        store.close()

    def test_heartbeat_racing_the_steal_invalidates_the_claim(self, tmp_path):
        # The victim was slow, not dead: a heartbeat that lands between
        # the thief's candidate scan and its CAS claim changes the
        # guarded lease columns, so the claim must miss and the victim
        # must keep the job.
        store, cid = submit_noop(tmp_path, 1)
        job = store.acquire(cid, "victim", 0.0, 1.0)

        def hook(row, old, new, when):
            if new == RESTARTING and when == "pre":
                store.on_transition = None  # fire once
                store.heartbeat(job.job_id, 5.0, 10.0, owner="victim")

        store.on_transition = hook
        assert store.steal(cid, "thief", 2.0) is None
        survivor = store.job(job.job_id)
        assert survivor.state == RUNNING
        assert survivor.lease_owner == "victim"
        assert survivor.lease_expires_at == 15.0
        store.close()

    def test_victim_guarded_writes_fail_after_steal(self, tmp_path):
        store, cid = submit_noop(tmp_path, 1)
        job = store.acquire(cid, "victim", 0.0, 1.0)
        assert store.steal(cid, "thief", 2.0).job_id == job.job_id
        with pytest.raises(LeaseLostError):
            store.heartbeat(job.job_id, 2.0, 1.0, owner="victim")
        with pytest.raises(LeaseLostError):
            store.complete(job.job_id, [1], owner="victim")
        with pytest.raises(LeaseLostError):
            store.fail(job.job_id, "boom", retryable=True, owner="victim")
        # the thief's resolution path still works
        requeued = store.requeue(job.job_id)
        assert requeued.state == "READY" and requeued.lease_owner is None
        assert store.acquire(cid, "thief", 3.0, 1.0).attempts == 2
        store.close()

    def test_placement_routes_jobs_to_partition_launchers(self, tmp_path):
        store = CampaignStore(tmp_path / "campaigns.db")
        spec = CampaignSpec(
            name="placed",
            benchmark="noop",
            parameters={"part": "A,B"},
            fixed={"duration_ms": "0"},
            placement="part",
        )
        cid = store.submit(spec, str(tmp_path / "knowledge.db"))
        by_placement = {j.placement: j for j in store.jobs(cid)}
        assert set(by_placement) == {"A", "B"}
        # a partition-A launcher only sees A (and unplaced) jobs
        job_a = store.acquire(cid, "la-w0", 0.0, 60.0, partition="A")
        assert job_a.placement == "A"
        assert store.acquire(cid, "la-w0", 0.0, 60.0, partition="A") is None
        # a partition-less launcher acquires anything left
        job_b = store.acquire(cid, "any-w0", 0.0, 60.0)
        assert job_b.placement == "B"
        store.close()

    def test_placement_key_must_name_a_parameter(self):
        with pytest.raises(CampaignError, match="placement key"):
            CampaignSpec(
                name="bad", benchmark="noop",
                parameters={"idx": "0"}, placement="nope",
            )

    def test_unplaced_jobs_feed_every_partition(self, tmp_path):
        store, cid = submit_noop(tmp_path, 2)
        assert store.acquire(cid, "la-w0", 0.0, 60.0, partition="A") is not None
        assert store.acquire(cid, "lb-w0", 0.0, 60.0, partition="B") is not None
        store.close()

    def test_placements_lists_only_active_values(self, tmp_path):
        store = CampaignStore(tmp_path / "campaigns.db")
        spec = CampaignSpec(
            name="placed", benchmark="noop",
            parameters={"part": "A,B"},
            fixed={"duration_ms": "0"}, placement="part",
        )
        cid = store.submit(spec, str(tmp_path / "knowledge.db"))
        assert store.placements(cid) == ["A", "B"]
        job_a = store.acquire(cid, "w0", 0.0, 60.0, partition="A")
        store.complete(job_a.job_id, [], owner="w0")
        assert store.placements(cid) == ["B"]  # terminal jobs drop out
        store.close()

    def test_v1_store_migrates_in_place(self, tmp_path):
        # A store written before the placement column existed must open,
        # gain the column, and keep its jobs acquirable by anyone.
        path = tmp_path / "old.db"
        conn = sqlite3.connect(str(path))
        conn.executescript(
            """
            CREATE TABLE campaign_meta (key TEXT PRIMARY KEY, value TEXT NOT NULL);
            CREATE TABLE campaigns (
                id INTEGER PRIMARY KEY, name TEXT NOT NULL,
                benchmark TEXT NOT NULL, backend_url TEXT NOT NULL,
                spec_json TEXT NOT NULL, cancelled INTEGER NOT NULL DEFAULT 0
            );
            CREATE TABLE campaign_jobs (
                id INTEGER PRIMARY KEY,
                campaign_id INTEGER NOT NULL REFERENCES campaigns(id),
                name TEXT NOT NULL, kind TEXT NOT NULL DEFAULT 'benchmark',
                state TEXT NOT NULL DEFAULT 'CREATED',
                params_json TEXT NOT NULL, token TEXT NOT NULL UNIQUE,
                attempts INTEGER NOT NULL DEFAULT 0,
                max_attempts INTEGER NOT NULL DEFAULT 3,
                lease_owner TEXT, lease_expires_at REAL,
                knowledge_ids_json TEXT, result_text TEXT, error TEXT,
                UNIQUE (campaign_id, name)
            );
            INSERT INTO campaign_meta VALUES ('schema_version', '1');
            INSERT INTO campaigns VALUES (1, 'old', 'noop', 'k.db', '{}', 0);
            INSERT INTO campaign_jobs
                (id, campaign_id, name, state, params_json, token)
                VALUES (1, 1, 'run-0000', 'READY', '{"duration_ms": "0"}',
                        'campaign-1/run-0000');
            """
        )
        conn.commit()
        conn.close()
        with CampaignStore(path) as store:
            assert store.job(1).placement is None
            assert store.acquire(1, "w0", 0.0, 60.0, partition="A").job_id == 1
        conn = sqlite3.connect(str(path))
        version = conn.execute(
            "SELECT value FROM campaign_meta WHERE key = 'schema_version'"
        ).fetchone()[0]
        conn.close()
        assert int(version) == SCHEMA_VERSION == 2

    def test_future_schema_version_rejected(self, tmp_path):
        path = tmp_path / "future.db"
        CampaignStore(path).close()
        conn = sqlite3.connect(str(path))
        conn.execute("UPDATE campaign_meta SET value = '99' WHERE key = 'schema_version'")
        conn.commit()
        conn.close()
        with pytest.raises(PersistenceError, match="schema version"):
            CampaignStore(path)

    def test_expired_scans_use_a_covering_index(self, tmp_path):
        # The reclaim/steal scans must be index searches on
        # (campaign_id, state[, lease_expires_at]), never a table sweep.
        store, cid = submit_noop(tmp_path, 2)
        for query in (
            "SELECT id FROM campaign_jobs WHERE campaign_id = 1 AND state = 'RUNNING' "
            "AND lease_expires_at IS NOT NULL AND lease_expires_at < 5.0 "
            "ORDER BY lease_expires_at, id",
            "SELECT id FROM campaign_jobs WHERE campaign_id = 1 AND state = 'RUNNING' "
            "AND (lease_expires_at IS NULL OR lease_expires_at < 5.0) ORDER BY id",
        ):
            plan = " ".join(
                row["detail"]
                for row in store._conn.execute("EXPLAIN QUERY PLAN " + query)
            )
            assert "INDEX idx_campaign_jobs_" in plan, plan
            assert "SCAN campaign_jobs" not in plan, plan
        store.close()

    def test_batched_reclaim_only_touches_expired(self, tmp_path):
        store, cid = submit_noop(tmp_path, 4)
        expired = store.acquire(cid, "dead", 0.0, 1.0)
        for _ in range(3):
            store.acquire(cid, "live", 0.0, 100.0)
        reclaimed = store.reclaim(cid, now=50.0)
        assert [j.job_id for j in reclaimed] == [expired.job_id]
        assert store.counts(cid)[RUNNING] == 3
        store.close()

    def test_launcher_scoreboard_upsert_and_validation(self, tmp_path):
        store, cid = submit_noop(tmp_path, 1)
        store.report_launcher(
            cid, "fleet-l0", pid=123, state="running", jobs_done=2,
            pool_active=1, pool_max=2, started_at=100.0,
        )
        store.report_launcher(cid, "fleet-l0", jobs_done=5, steals=1)
        (row,) = store.launcher_rows(cid)
        assert row["jobs_done"] == 5 and row["steals"] == 1
        assert row["pid"] == 123  # untouched fields survive the upsert
        with pytest.raises(CampaignError, match="unknown launcher status field"):
            store.report_launcher(cid, "fleet-l0", throughput=9.0)
        store.close()

    def test_watch_view_renders_from_the_store_alone(self, tmp_path):
        store, cid = submit_noop(tmp_path, 4)
        done = store.acquire(cid, "fleet-l0-w0", 0.0, 60.0)
        store.complete(done.job_id, [], owner="fleet-l0-w0")
        store.report_launcher(
            cid, "fleet-l0", pid=321, state="running", placement="A",
            jobs_done=1, steals=2, pool_active=1, pool_max=2, started_at=0.0,
        )
        view = render_fleet_view(store, cid, now=10.0)
        assert "1/4 terminal" in view and "queue depth 3" in view
        assert "fleet-l0" in view and "A" in view
        assert "0.1/s" in view  # 1 job / 10 s
        store.close()

    def test_job_ids_in_state_rejects_unknown_state(self, tmp_path):
        store, cid = submit_noop(tmp_path, 1)
        with pytest.raises(CampaignError, match="unknown job state"):
            store.job_ids_in_state(cid, "LIMBO")
        store.close()


# ----------------------------------------------------------------------
# elastic pool sizing
# ----------------------------------------------------------------------
class TestElasticPolicy:
    def test_bounds_validation(self):
        with pytest.raises(ConfigurationError, match="min_workers"):
            ElasticBounds(min_workers=0)
        with pytest.raises(ConfigurationError, match="max_workers"):
            ElasticBounds(min_workers=4, max_workers=2)
        with pytest.raises(ConfigurationError, match="depth_per_worker"):
            ElasticBounds(depth_per_worker=0)

    def test_allowed_is_a_pure_clamp_of_queue_depth(self):
        metrics = MetricsRegistry()
        controller = ElasticController(
            ElasticBounds(min_workers=1, max_workers=4, depth_per_worker=2),
            metrics=metrics,
        )
        for depth, expected in [(0, 1), (1, 1), (2, 1), (4, 2), (8, 4), (100, 4)]:
            assert controller.allowed(depth) == expected, depth
        assert controller.last_allowed == 4
        gauge = metrics.snapshot()["gauges"]["fleet.pool_allowed"]["series"]
        assert gauge[0]["value"] == 4.0

    def test_launcher_parks_workers_above_the_allowed_size(self, tmp_path):
        class OneWorkerOnly:
            def allowed(self, queue_depth):
                return 1

        store, cid = submit_noop(tmp_path, 4)
        owners = []

        def hook(row, old, new, when):
            if old == "READY" and new == RUNNING and when == "post":
                owners.append(row.lease_owner)

        store.on_transition = hook
        launcher = Launcher(
            store, cid, workspace=tmp_path / "ws", workers=3, seed=7,
            name="el", elastic=OneWorkerOnly(), lease_s=60.0,
        )
        counts = launcher.run()
        assert counts["DONE"] == 4
        assert set(owners) == {"el-w0"}  # workers 1 and 2 stayed parked
        store.close()


# ----------------------------------------------------------------------
# heartbeat through retry backoff (the stolen-while-retrying regression)
# ----------------------------------------------------------------------
class TestHeartbeatThroughBackoff:
    def _observer(self, tmp_path, lease_s=4.0):
        store, cid = submit_noop(tmp_path, 1)
        clock = FakeClock()
        sleeps = []

        def probing_sleep(delay_s):
            clock.now += delay_s
            sleeps.append(delay_s)
            # the regression: at no instant during a long backoff may
            # the job be stealable
            assert store.steal(cid, "thief", clock.now) is None

        job = store.acquire(cid, "L-w0", clock.now, lease_s)
        launcher = Launcher(
            store, cid, workspace=tmp_path / "ws", name="L",
            lease_s=lease_s, clock=clock, sleep=probing_sleep,
        )
        heart = _HeartbeatObserver(launcher, job.job_id, "L-w0")
        return store, cid, clock, sleeps, job, heart

    def test_long_backoff_is_sliced_into_lease_refreshing_chunks(self, tmp_path):
        # A 20 s retry backoff against a 4 s lease: without slicing the
        # lease expires 4 s in and a peer steals the healthy job.
        store, cid, clock, sleeps, job, heart = self._observer(tmp_path)
        heart.guarded_sleep(20.0)
        assert sleeps == [1.0] * 20  # lease_s / 4 slices
        refreshed = store.job(job.job_id)
        assert refreshed.state == RUNNING and refreshed.lease_owner == "L-w0"
        assert refreshed.lease_expires_at == 24.0  # final beat at t=20
        store.close()

    def test_short_backoff_is_one_slice(self, tmp_path):
        store, cid, clock, sleeps, job, heart = self._observer(tmp_path)
        heart.guarded_sleep(0.5)
        assert sleeps == [0.5]
        assert store.job(job.job_id).lease_expires_at == 4.5
        store.close()

    def test_steal_mid_backoff_aborts_the_sleep(self, tmp_path):
        store, cid = submit_noop(tmp_path, 1)
        clock = FakeClock()
        job = store.acquire(cid, "L-w0", clock.now, 4.0)
        calls = []

        def stealing_sleep(delay_s):
            clock.now += delay_s
            calls.append(delay_s)
            if len(calls) == 3:  # a peer decides the launcher is dead
                assert store.steal(cid, "thief", clock.now + 100.0) is not None

        launcher = Launcher(
            store, cid, workspace=tmp_path / "ws", name="L",
            lease_s=4.0, clock=clock, sleep=stealing_sleep,
        )
        heart = _HeartbeatObserver(launcher, job.job_id, "L-w0")
        with pytest.raises(LeaseLostError):
            heart.guarded_sleep(20.0)
        assert len(calls) == 3  # the next beat aborted the backoff
        assert store.job(job.job_id).lease_owner == "thief"
        store.close()

    def test_pipeline_retry_backoff_keeps_the_lease(self, tmp_path):
        # End-to-end: an ior job whose generation phase always fails
        # transiently, retried under an 8 s backoff with a 4 s lease.
        # Every backoff sleep probes that the job is never stealable.
        from repro.iostack.stack import Testbed
        from repro.pfs.faults import Fault

        store = CampaignStore(tmp_path / "campaigns.db")
        spec = CampaignSpec(
            name="retrying", benchmark="ior",
            parameters={"transfersize": "1m"},
            fixed={"command": "ior -a mpiio -b 4m -t $transfersize -s 2 -F "
                             "-i 1 -o /scratch/c/t -k"},
            max_attempts=2,
        )
        cid = store.submit(spec, str(tmp_path / "knowledge.db"))
        clock = FakeClock()
        probes = []

        def probing_sleep(delay_s):
            clock.now += delay_s
            probes.append(delay_s)
            assert store.steal(cid, "thief", clock.now) is None

        def broken_testbed(job_seed):
            testbed = Testbed.fuchs_csc(seed=job_seed)
            testbed.fs.faults.add(
                Fault(name="always", fail_probability=1.0,
                      error_kind="benchmark", when={"benchmark": "ior"},
                      transient=True)
            )
            return testbed

        launcher = Launcher(
            store, cid, workspace=tmp_path / "ws", workers=1, seed=7,
            name="L", lease_s=4.0, clock=clock, sleep=probing_sleep,
            retry_policy=RetryPolicy(max_attempts=2, base_delay_s=8.0, seed=7),
            testbed_factory=broken_testbed,
        )
        counts = launcher.run()
        assert counts["FAILED"] == 1  # budget exhausted, never stolen
        # the retry backoff (> lease_s) really was sliced sub-lease
        assert probes and max(probes) <= 1.0
        store.close()


# ----------------------------------------------------------------------
# the fleet coordinator
# ----------------------------------------------------------------------
class TestLauncherFleet:
    def test_size_validation(self, tmp_path):
        store, cid = submit_noop(tmp_path, 1)
        with pytest.raises(CampaignError, match="fleet size"):
            LauncherFleet(store, cid, size=0, workspace=tmp_path / "ws")
        store.close()

    def test_uncovered_placement_refuses_to_start(self, tmp_path):
        # A placement no launcher serves would stall the drain loop
        # forever; the coordinator must fail before the first spawn.
        store = CampaignStore(tmp_path / "campaigns.db")
        spec = CampaignSpec(
            name="placed", benchmark="noop",
            parameters={"part": "A,B"},
            fixed={"duration_ms": "0"}, placement="part",
        )
        cid = store.submit(spec, str(tmp_path / "knowledge.db"))
        fleet = LauncherFleet(
            store, cid, size=1, workspace=tmp_path / "ws", partitions=["A"],
        )
        with pytest.raises(CampaignError, match="no launcher serves"):
            fleet.run()
        assert fleet.uncovered_placements == ["B"]
        assert store.counts(cid)["READY"] == 2  # nothing was touched
        # A fleet smaller than its partition list deals only the head
        # round-robin — the undealt tail is just as uncovered.
        undersized = LauncherFleet(
            store, cid, size=1, workspace=tmp_path / "ws",
            partitions=["A", "B"],
        )
        with pytest.raises(CampaignError, match="no launcher serves"):
            undersized.run()
        assert undersized.uncovered_placements == ["B"]
        store.close()

    @pytest.mark.timeout(120)
    def test_fleet_drains_with_live_watch_and_scoreboard(self, tmp_path):
        metrics = MetricsRegistry()
        store = CampaignStore(tmp_path / "campaigns.db", metrics=metrics)
        cid = store.submit(
            noop_spec(8, duration_ms=20), str(tmp_path / "knowledge.db")
        )
        frames = []
        fleet = LauncherFleet(
            store, cid, size=2, workspace=tmp_path / "ws",
            workers_per_launcher=1, lease_s=5.0, poll_s=0.01,
            supervise_interval_s=0.02, metrics=metrics,
            watch=frames.append, watch_interval_s=0.0,
        )
        counts = fleet.run()
        assert counts["DONE"] == 8 and counts["FAILED"] == 0
        tokens = knowledge_tokens(tmp_path)
        assert len(tokens) == len(set(tokens)) == 8
        rows = {r["launcher"]: r for r in store.launcher_rows(cid)}
        assert set(rows) == {"fleet-l0", "fleet-l1"}
        assert sum(int(r["jobs_done"]) for r in rows.values()) == 8
        assert frames and "campaign 1:" in frames[0]
        report = render_metrics_report(metrics.snapshot())
        assert "launcher(s) live" in report
        store.close()

    @pytest.mark.timeout(180)
    def test_sigkill_matrix_zero_lost_zero_duplicated(self, tmp_path):
        # The acceptance property in miniature: launchers SIGKILLed on
        # a deterministic cadence mid-drain; every job must end DONE
        # with exactly one knowledge row carrying its token.
        metrics = MetricsRegistry()
        store, cid = submit_noop(tmp_path, 30, duration_ms=40, max_attempts=6)
        fleet = LauncherFleet(
            store, cid, size=3, workspace=tmp_path / "ws",
            workers_per_launcher=1, lease_s=0.5, poll_s=0.01,
            supervise_interval_s=0.05, metrics=metrics,
            crash_loop_threshold=100,
        )
        fleet.killer = WorkerKiller(
            fleet, every_frames=15, metrics=metrics,
            metric_name="fleet.chaos.faults_total",
        )
        counts = fleet.run()
        assert counts["DONE"] == 30 and counts["FAILED"] == 0
        tokens = knowledge_tokens(tmp_path)
        assert len(tokens) == len(set(tokens)) == 30  # exactly once
        assert fleet.killer.kills >= 1
        assert fleet.respawns >= 1
        snapshot = metrics.snapshot()
        assert "fleet.chaos.faults_total" in snapshot["counters"]
        assert "fleet.respawns_total" in snapshot["counters"]
        store.close()

    @pytest.mark.timeout(120)
    def test_crash_loop_tombstones_the_slot_and_surfaces(self, tmp_path):
        # A launcher that exits non-zero on every spawn (its knowledge
        # backend path is unusable) must be tombstoned after the
        # threshold, and a fleet with no live launcher must raise.
        blocker = tmp_path / "blocker"
        blocker.write_text("not a directory", encoding="utf-8")
        store = CampaignStore(tmp_path / "campaigns.db")
        cid = store.submit(noop_spec(2), str(blocker / "k.db"))
        fleet = LauncherFleet(
            store, cid, size=1, workspace=tmp_path / "ws",
            supervise_interval_s=0.01, crash_loop_threshold=2,
            respawn_policy=RetryPolicy(max_attempts=5, base_delay_s=0.0, seed=1),
        )
        with pytest.raises(CampaignError, match="retired or crash-looping"):
            fleet.run()
        assert fleet.crash_loops == 1
        assert fleet.workers[0].supervision.crash_looped
        assert fleet.workers[0].process is None
        store.close()

    def test_worker_killer_routes_metric_and_round_robins(self):
        class FakeProcess:
            def __init__(self):
                self.kills = 0

            def kill(self):
                self.kills += 1

            def poll(self):
                return None

        class FakeSlot:
            def __init__(self):
                self.process = FakeProcess()

            @property
            def alive(self):
                return True

        class FakeFleet:
            workers = [FakeSlot(), FakeSlot()]

        metrics = MetricsRegistry()
        fleet = FakeFleet()
        killer = WorkerKiller(
            fleet, every_frames=2, metrics=metrics,
            metric_name="fleet.chaos.faults_total",
        )
        killer.on_frame(1)
        assert killer.kills == 0
        killer.on_frame(2)
        killer.on_frame(4)
        assert killer.kills == 2
        assert [s.process.kills for s in fleet.workers] == [1, 1]
        counters = metrics.snapshot()["counters"]
        assert "fleet.chaos.faults_total" in counters
        assert "service.chaos.faults_total" not in counters


# ----------------------------------------------------------------------
# the CLIs
# ----------------------------------------------------------------------
NOOP_TOML = """
[campaign]
name = "noop-fleet"
benchmark = "noop"

[parameters]
idx = "0,1,2,3,4,5"

[fixed]
duration_ms = "10"
"""


class TestFleetCLI:
    def _submit(self, tmp_path, capsys):
        toml_file = tmp_path / "noop.toml"
        toml_file.write_text(NOOP_TOML, encoding="utf-8")
        store_file = str(tmp_path / "campaigns.db")
        assert campaign_main(
            [store_file, "--submit", str(toml_file),
             "--db", str(tmp_path / "knowledge.db")]
        ) == 0
        capsys.readouterr()
        return store_file

    @pytest.mark.timeout(120)
    def test_run_fleet_with_watch(self, tmp_path, capsys):
        store_file = self._submit(tmp_path, capsys)
        metrics_file = tmp_path / "m.json"
        assert campaign_main(
            [store_file, "--run", "1", "--fleet", "2", "--watch",
             "--workers", "1", "--lease", "5",
             "--workspace", str(tmp_path / "ws"),
             "--metrics-json", str(metrics_file)]
        ) == 0
        out = capsys.readouterr().out
        assert "drained by 2 launcher(s)" in out and "6 DONE" in out
        assert "queue depth" in out  # at least one watch frame rendered
        snapshot = json.loads(metrics_file.read_text(encoding="utf-8"))
        assert "fleet.launchers" in snapshot["gauges"]

    @pytest.mark.timeout(120)
    def test_resume_fleet_reclaims_a_dead_launcher_first(self, tmp_path, capsys):
        store_file = self._submit(tmp_path, capsys)
        # a "dead launcher" left one job RUNNING under an eternal lease
        with CampaignStore(store_file) as store:
            assert store.acquire(1, "dead-w0", 0.0, 10_000_000.0) is not None
        assert campaign_main(
            [store_file, "--resume", "1", "--fleet", "1", "--workers", "2",
             "--lease", "5", "--workspace", str(tmp_path / "ws")]
        ) == 0
        assert "6 DONE" in capsys.readouterr().out
        tokens = knowledge_tokens(tmp_path)
        assert len(tokens) == len(set(tokens)) == 6

    def test_bad_fleet_arguments(self, tmp_path):
        store_file = str(tmp_path / "campaigns.db")
        assert campaign_main([store_file, "--run", "1", "--fleet", "0"]) == 2
        assert campaign_main([store_file, "--status", "--fleet", "2"]) == 2

    @pytest.mark.timeout(300)
    def test_bench_campaign_cli_smoke(self, tmp_path, capsys):
        from repro.bench.cli import main as bench_main

        out = tmp_path / "BENCH_campaign.json"
        assert bench_main(
            ["campaign", "--jobs", "4", "--duration-ms", "10",
             "--steals", "6", "--lease", "5", "--out", str(out),
             "--store", str(tmp_path / "scratch")]
        ) == 0
        printed = capsys.readouterr().out
        assert "drain speedup" in printed and "steal latency" in printed
        report = json.loads(out.read_text(encoding="utf-8"))
        assert report["schema"] == "repro.bench/v1"
        assert report["bench"] == "campaign"
        assert set(report["drain"]) == {"launchers_1", "launchers_2", "launchers_4"}
        assert report["correctness"] == {"tokens_unique": True, "all_done": True}
        assert report["steal"]["p99_us"] >= report["steal"]["p50_us"] > 0


# ----------------------------------------------------------------------
# the CI fleet soak (pytest face of the 10k-job acceptance run)
# ----------------------------------------------------------------------
@pytest.mark.stress
@pytest.mark.timeout(600)
def test_fleet_soak_under_scheduled_sigkills(tmp_path, fault_seed):
    """A wider SIGKILL soak: 200 jobs, 4 launchers, kills on a seeded
    cadence — zero lost, zero duplicated, every token exactly once.
    (CI's fleet-soak job runs the full 10k-job version through the
    repro-campaign CLI; this keeps the property in the pytest matrix.)"""
    metrics = MetricsRegistry()
    store, cid = submit_noop(tmp_path, 200, duration_ms=5, max_attempts=8)
    fleet = LauncherFleet(
        store, cid, size=4, workspace=tmp_path / "ws",
        workers_per_launcher=2, lease_s=1.0, poll_s=0.01,
        seed=fault_seed, supervise_interval_s=0.05,
        crash_loop_threshold=1000, metrics=metrics,
    )
    fleet.killer = WorkerKiller(
        fleet, every_frames=25, metrics=metrics,
        metric_name="fleet.chaos.faults_total",
    )
    counts = fleet.run()
    assert counts["DONE"] == 200, counts
    assert counts["FAILED"] == 0
    tokens = knowledge_tokens(tmp_path)
    assert len(tokens) == len(set(tokens)) == 200
    assert fleet.killer.kills >= 1 and fleet.respawns >= 1
    store.close()
