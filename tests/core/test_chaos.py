"""Deterministic wire-level chaos: seeded fault schedules, corruption
survival, and kill-and-heal soaks with exactly-once tokens.

The reproducibility contract mirrors ``repro.pfs.faults``: for a given
seed and traffic pattern the proxy's injected-fault schedule
(:attr:`ChaosProxy.injected`) is byte-for-byte identical across runs,
because every draw is keyed positionally by
``(seed, "chaos", kind, connection, direction, frame)``.
"""

import threading
import time

import pytest

from repro.core.metrics import MetricsRegistry, render_metrics_report
from repro.core.resilience import CircuitBreaker
from repro.core.service.chaos import (
    ChaosPolicy,
    WorkerKiller,
    parse_chaos_spec,
)
from repro.core.service.client import ServiceClient
from repro.core.service.server import KnowledgeServer
from repro.core.service.transport import TcpTransport
from repro.util.errors import (
    ConfigurationError,
    DeadlineError,
    ServiceError,
)

from tests.core.test_supervisor import make_knowledge

#: Seeded fault mix used by the reproducibility tests: heavy enough that
#: every fault kind fires, light enough that the retry loops converge.
_MIX = dict(disconnect=0.05, truncate=0.05, corrupt=0.15, delay=0.15,
            delay_ms=1.0, refuse=0.03)


def _chaos_client(host, port, **kwargs):
    """A client whose endpoint breaker re-probes fast: chaos tests spend
    their time injecting faults, not sitting out quarantine windows."""
    transport = TcpTransport(
        host, port,
        breaker=CircuitBreaker(failure_threshold=3, reset_timeout_s=0.1,
                               name=f"chaos-{host}:{port}"),
        **kwargs,
    )
    return ServiceClient(transport)


def _insist(fn, *, deadline_s=60.0, pause_s=0.02):
    """Retry ``fn`` through injected faults until the deadline.

    The client only auto-retries *transient* transport errors; a chaos
    corruption surfaces as a non-retryable ``bad-frame``/protocol error
    by design, so chaos callers need an application-level loop.
    """
    deadline = time.monotonic() + deadline_s
    last = None
    while time.monotonic() < deadline:
        try:
            return fn()
        except (ServiceError, DeadlineError, OSError) as exc:
            last = exc
            time.sleep(pause_s)
    raise AssertionError(f"operation never succeeded under chaos: {last!r}")


# ----------------------------------------------------------------------
# policy + spec parsing
# ----------------------------------------------------------------------
class TestChaosPolicy:
    def test_spec_round_trip(self):
        policy = parse_chaos_spec(
            "seed=7, corrupt=0.01, disconnect=0.002, kill_every=200"
        )
        assert policy == ChaosPolicy(
            seed=7, corrupt=0.01, disconnect=0.002, kill_every=200
        )
        assert policy.any_wire_faults
        assert not ChaosPolicy(seed=7, kill_every=10).any_wire_faults

    def test_empty_spec_is_the_default_policy(self):
        assert parse_chaos_spec("") == ChaosPolicy()

    @pytest.mark.parametrize("spec", [
        "corrupt=maybe",          # unparseable value
        "unknown_knob=1",         # unknown key
        "corrupt",                # missing '='
        "corrupt=1.5",            # probability out of range
        "kill_every=-1",          # negative cadence
        "delay_ms=-2",            # negative delay
    ])
    def test_bad_specs_raise_configuration_errors(self, spec):
        with pytest.raises(ConfigurationError):
            parse_chaos_spec(spec)

    def test_draws_are_positionally_keyed(self):
        p = ChaosPolicy(seed=9, corrupt=0.5)
        a = p._draw("corrupt", 0, "c2s", 3).random()
        b = p._draw("corrupt", 0, "c2s", 3).random()
        assert a == b  # same key -> same draw, regardless of call order
        assert p._draw("corrupt", 0, "c2s", 4).random() != a


# ----------------------------------------------------------------------
# seeded schedule reproducibility (the acceptance criterion)
# ----------------------------------------------------------------------
class TestSeededSchedule:
    def _drive(self, tmp_path, chaos_proxy, run_tag, seed, fault_seed):
        """One full seeded chaos run; returns the injected schedule."""
        server = KnowledgeServer(
            tmp_path / f"store-{run_tag}", shards=2, worker_processes=2,
            supervise=False,
        )
        server.start()
        try:
            # Seed rows over the clean path so the chaos traffic below is
            # a fixed, deterministic op sequence.
            with ServiceClient.open(
                f"knowledge+tcp://{server.host}:{server.port}/"
            ) as direct:
                direct.save_many([make_knowledge(m) for m in range(6)])

            policy = ChaosPolicy(seed=seed ^ fault_seed, **_MIX)
            proxy = chaos_proxy(server.host, server.port, policy)
            for _ in range(2):  # identical op sequence every run
                with _chaos_client(proxy.host, proxy.port,
                                   timeout_s=10.0) as client:
                    _insist(client.ping)
                    assert _insist(client.count) == 6
                    assert len(_insist(client.list_ids)) == 6
                    loaded = _insist(lambda: client.load_all("ior"))
                    assert len(loaded) == 6
            return list(proxy.injected)
        finally:
            server.close()

    def test_same_seed_same_schedule_different_seed_different(
        self, tmp_path, chaos_proxy, fault_seed
    ):
        first = self._drive(tmp_path, chaos_proxy, "a", 1, fault_seed)
        second = self._drive(tmp_path, chaos_proxy, "b", 1, fault_seed)
        other = self._drive(tmp_path, chaos_proxy, "c", 2, fault_seed)
        assert first, "fault mix injected nothing; probabilities too low"
        assert first == second  # byte-for-byte reproducible
        assert first != other
        kinds = {kind for kind, *_ in first}
        assert "corrupt" in kinds or "truncate" in kinds


# ----------------------------------------------------------------------
# kill-and-heal soak: exactly-once tokens through supervised respawn
# ----------------------------------------------------------------------
def _soak(tmp_path, chaos_proxy, fault_seed, *, threads, saves_per_thread,
          kill_every, extra_faults=None):
    """Concurrent saves through a killing proxy; asserts exactly-once."""
    metrics = MetricsRegistry()
    # The killer's cadence intentionally outpaces any sane flap budget —
    # raise the crash-loop threshold so injected kills exercise respawn,
    # not demotion (demotion has its own test in test_supervisor.py).
    server = KnowledgeServer(
        tmp_path / "store", shards=4, worker_processes=2,
        metrics=metrics, supervisor_poll_s=0.05, request_timeout_s=15.0,
        crash_loop_threshold=10_000,
    )
    server.start()
    proxy = None
    try:
        policy = ChaosPolicy(
            seed=fault_seed, kill_every=kill_every, **(extra_faults or {})
        )
        killer = WorkerKiller(
            server, every_frames=policy.kill_every, metrics=metrics
        )
        proxy = chaos_proxy(server.host, server.port, policy,
                            metrics=metrics, killer=killer)

        def persist_once(client, token, marker):
            """Idempotent save: a blind retry after an ambiguous fault
            could duplicate the row, so re-check the token first."""
            def attempt():
                existing = client.find_ids_by_parameter("token", token)
                if existing:
                    return existing[0]
                obj = make_knowledge(marker)
                obj.parameters["token"] = token
                return client.save(obj)
            return _insist(attempt, deadline_s=90.0)

        errors = []

        def run_thread(tid):
            try:
                with _chaos_client(proxy.host, proxy.port,
                                   timeout_s=10.0) as client:
                    for i in range(saves_per_thread):
                        persist_once(client, f"t{tid}-{i}",
                                     tid * saves_per_thread + i)
            except BaseException as exc:  # noqa: BLE001 - reraise in main
                errors.append(exc)

        workers = [
            threading.Thread(target=run_thread, args=(tid,))
            for tid in range(threads)
        ]
        for t in workers:
            t.start()
        for t in workers:
            t.join(timeout=180.0)
        assert not any(t.is_alive() for t in workers), "soak thread hung"
        assert not errors, f"soak thread failed: {errors[0]!r}"

        # exactly-once: every token present exactly once, nothing lost
        with _chaos_client(proxy.host, proxy.port, timeout_s=10.0) as client:
            expected = threads * saves_per_thread
            assert _insist(client.count, deadline_s=90.0) == expected
            for tid in range(threads):
                for i in range(saves_per_thread):
                    ids = _insist(
                        lambda tid=tid, i=i: client.find_ids_by_parameter(
                            "token", f"t{tid}-{i}"
                        ),
                        deadline_s=90.0,
                    )
                    assert len(ids) == 1, f"token t{tid}-{i}: {ids}"

        assert killer.kills >= 1, "kill cadence never fired; lower kill_every"
        snapshot = metrics.snapshot()
        respawns = sum(
            row["value"]
            for row in snapshot["counters"][
                "service.supervisor.respawns_total"
            ]["series"]
        )
        assert respawns >= 1
        report = render_metrics_report(snapshot)
        assert "chaos faults" in report
        assert "worker-kill" in report
    finally:
        server.close()


class TestKillAndHeal:
    def test_soak_small(self, tmp_path, chaos_proxy, fault_seed):
        _soak(tmp_path, chaos_proxy, fault_seed,
              threads=4, saves_per_thread=8, kill_every=30)

    @pytest.mark.stress
    @pytest.mark.timeout(600)
    def test_soak_chaos_16_threads(self, tmp_path, chaos_proxy, fault_seed):
        """CI chaos-soak: 16 writers, scheduled kills plus frame
        corruption; zero lost/duplicated rows, respawns_total >= 1."""
        _soak(tmp_path, chaos_proxy, fault_seed,
              threads=16, saves_per_thread=8, kill_every=120,
              extra_faults=dict(corrupt=0.01))
