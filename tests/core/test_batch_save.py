"""Batched ``save_many``: one ``executemany`` per table instead of one
``INSERT`` round-trip per row, with exact parity against the per-row
path and a clean fallback for degraded resilient backends."""

import math

import pytest

from repro.core.knowledge import (
    FilesystemInfo,
    Knowledge,
    KnowledgeResult,
    KnowledgeSummary,
)
from repro.core.persistence.backend import ResilientBackend
from repro.core.persistence.database import KnowledgeDatabase
from repro.core.persistence.repository import KnowledgeRepository
from repro.core.persistence.scan import ScanQuery
from repro.core.resilience import CircuitBreaker, RetryPolicy


def make_knowledge(i, *, results_per_summary=2):
    results = [
        KnowledgeResult(
            iteration=j, bandwidth_mib=100.0 + i % 17 + j, iops=10.0, latency_s=0.1,
            open_time_s=0.01, wrrd_time_s=0.5, close_time_s=0.02, total_time_s=0.6,
        )
        for j in range(results_per_summary)
    ]
    summary = KnowledgeSummary(
        operation="write", api="MPIIO", bw_max=110.0 + i % 17, bw_min=90.0,
        bw_mean=100.0 + i % 17, bw_stddev=5.0, ops_max=12.0, ops_min=8.0,
        ops_mean=10.0, ops_stddev=1.0, iterations=results_per_summary,
        results=results,
    )
    k = Knowledge(
        benchmark="ior", command=f"ior -b {i % 31}m", api="MPIIO", test_file="/t",
        file_per_proc=False, num_nodes=2, num_tasks=8, tasks_per_node=4,
        start_time=float(i), end_time=float(i) + 1.0, parameters={"i": str(i)},
    )
    k.summaries.append(summary)
    if i % 2 == 0:
        k.filesystem = FilesystemInfo(
            fs_type="lustre", entry_type="dir", entry_id="x", metadata_node="m",
            stripe_pattern="raid0", chunk_size="1m", num_targets=4,
            raid_scheme="raid6", storage_pool="p",
        )
    if i % 3 == 0:
        k.system = {"hostname": f"n{i}", "system_name": "sys",
                    "processor_model": "x", "architecture": "x86_64",
                    "processor_cores": 64, "processor_mhz": 2000.0,
                    "cache_size_bytes": 1024, "memory_bytes": 1 << 30}
    return k


class CountingBackend:
    """Delegating backend that counts statement round-trips."""

    def __init__(self, inner, degraded=False):
        self.inner = inner
        self.execute_calls = 0
        self.executemany_calls = 0
        self.degraded = degraded

    def execute(self, sql, params=()):
        self.execute_calls += 1
        return self.inner.execute(sql, params)

    def executemany(self, sql, seq_of_params):
        self.executemany_calls += 1
        return self.inner.executemany(sql, seq_of_params)

    def commit(self):
        self.inner.commit()

    def rollback(self):
        self.inner.rollback()

    def close(self):
        self.inner.close()

    def transaction(self):
        return self.inner.transaction()

    def table_count(self, table):
        return self.inner.table_count(table)


class TestBatchedSaveMany:
    def test_parity_with_per_row_save(self):
        with KnowledgeDatabase(":memory:") as db_row, KnowledgeDatabase(":memory:") as db_batch:
            repo_row, repo_batch = KnowledgeRepository(db_row), KnowledgeRepository(db_batch)
            ids_row = [repo_row.save(make_knowledge(i)) for i in range(40)]
            batch = [make_knowledge(i) for i in range(40)]
            ids_batch = repo_batch.save_many(batch)
            assert ids_row == ids_batch
            assert [k.knowledge_id for k in batch] == ids_batch
            for i in ids_row:
                a, b = repo_row.load(i), repo_batch.load(i)
                assert a.command == b.command
                assert len(a.summaries) == len(b.summaries)
                assert [r.bandwidth_mib for r in a.summaries[0].results] == [
                    r.bandwidth_mib for r in b.summaries[0].results
                ]
                assert (a.filesystem is None) == (b.filesystem is None)
                assert (a.system is None) == (b.system is None)
            # the pre-aggregated table must match to the float
            rows_a = db_row.execute(
                "SELECT * FROM agg_summaries ORDER BY metric").fetchall()
            rows_b = db_batch.execute(
                "SELECT * FROM agg_summaries ORDER BY metric").fetchall()
            assert len(rows_a) == len(rows_b) > 0
            for x, y in zip(rows_a, rows_b):
                for column in x.keys():
                    if isinstance(x[column], float):
                        assert math.isclose(x[column], y[column], rel_tol=1e-9)
                    else:
                        assert x[column] == y[column]

    def test_scan_sees_batched_rows(self):
        with KnowledgeDatabase(":memory:") as db:
            repo = KnowledgeRepository(db)
            repo.save_many([make_knowledge(i) for i in range(25)])
            result = repo.scan(ScanQuery(metric="bw_mean", operation="write"))
            assert result.single()["count"] == 25

    def test_ten_thousand_rows_bounded_round_trips(self):
        """The 10k-row regression: row count must not drive statement count."""
        n = 10_000
        with KnowledgeDatabase(":memory:") as db:
            counting = CountingBackend(db)
            repo = KnowledgeRepository(counting)
            ids = repo.save_many(
                [make_knowledge(i, results_per_summary=1) for i in range(n)]
            )
            assert len(ids) == n and ids[0] == 1 and ids[-1] == n
            # id probes + sqlite_master checks, not one INSERT per row
            assert counting.execute_calls < 10, counting.execute_calls
            # performances, summaries, results, filesystems, systems, agg
            assert counting.executemany_calls <= 6, counting.executemany_calls
            assert db.table_count("performances") == n
            assert db.table_count("results") == n

    def test_empty_batch(self):
        with KnowledgeDatabase(":memory:") as db:
            assert KnowledgeRepository(db).save_many([]) == []

    def test_ids_not_reused_after_delete(self):
        with KnowledgeDatabase(":memory:") as db:
            repo = KnowledgeRepository(db)
            first = repo.save_many([make_knowledge(i) for i in range(5)])
            repo.delete(first[-1])
            second = repo.save_many([make_knowledge(10), make_knowledge(11)])
            assert second[0] > first[-1]  # AUTOINCREMENT promise kept
            single = repo.save(make_knowledge(12))
            assert single == second[-1] + 1  # implicit path continues cleanly

    def test_mid_batch_failure_rolls_everything_back(self):
        with KnowledgeDatabase(":memory:") as db:
            repo = KnowledgeRepository(db)
            bad = make_knowledge(1)
            bad.summaries[0] = None  # poison one object mid-batch
            with pytest.raises(AttributeError):
                repo.save_many([make_knowledge(0), bad, make_knowledge(2)])
            assert db.table_count("performances") == 0
            assert db.table_count("agg_summaries") == 0

    @pytest.mark.stress
    @pytest.mark.timeout(600)
    def test_hundred_thousand_rows_end_to_end(self, tmp_path):
        """Fleet-scale ingest: 100k objects through save_many in chunks
        against a file-backed store, with ``scan()`` agreeing with the
        reference Python fold to the float."""
        from repro.bench.scan_bench import fold_scan, scan_results_match

        n, chunk = 100_000, 10_000
        with KnowledgeDatabase(tmp_path / "bulk.db") as db:
            repo = KnowledgeRepository(db)
            ids = []
            for start in range(0, n, chunk):
                ids.extend(
                    repo.save_many(
                        [
                            make_knowledge(i, results_per_summary=1)
                            for i in range(start, start + chunk)
                        ]
                    )
                )
            assert len(ids) == n and ids[0] == 1 and ids[-1] == n
            assert db.table_count("performances") == n
            assert db.table_count("agg_summaries") > 0
            query = ScanQuery(
                metric="bw_mean", operation="write", group_by=("benchmark",)
            )
            assert scan_results_match(
                repo.scan(query), fold_scan(query, repo.load_all())
            )

    def test_degraded_backend_falls_back_to_per_row(self):
        with KnowledgeDatabase(":memory:") as db:
            counting = CountingBackend(db, degraded=True)
            repo = KnowledgeRepository(counting)
            ids = repo.save_many([make_knowledge(i) for i in range(6)])
            assert ids == list(range(1, 7))
            # per-row path: one performances INSERT per object at least
            assert counting.execute_calls >= 6


class TestResilientExecutemanyRowids:
    def _resilient(self, db):
        return ResilientBackend(
            db,
            retry_policy=RetryPolicy(max_attempts=1, base_delay_s=0.0),
            breaker=CircuitBreaker(failure_threshold=1, reset_timeout_s=60.0),
            sleep=lambda _: None,
        )

    def test_batch_insert_invalidates_prediction_cache(self):
        with KnowledgeDatabase(":memory:") as db:
            backend = self._resilient(db)
            cur = backend.execute(
                "INSERT INTO performances (benchmark) VALUES (?)", ("ior",)
            )
            assert cur.lastrowid == 1  # prediction cache now primed at 2
            backend.executemany(
                "INSERT INTO performances (benchmark) VALUES (?)",
                [("ior",), ("ior",), ("ior",)],
            )
            # trip the breaker so the next INSERT is buffered + predicted
            backend.breaker.record_failure()
            buffered = backend.execute(
                "INSERT INTO performances (benchmark) VALUES (?)", ("ior",)
            )
            # stale cache would predict 2; the live table says 5
            assert buffered.lastrowid == 5
            backend.flush()
            row = db.execute(
                "SELECT MAX(id) AS m FROM performances").fetchone()
            assert int(row["m"]) == 5
