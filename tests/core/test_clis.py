"""Tests for the repro-extract / repro-explore / repro-ior CLIs."""

import pytest

from repro.benchmarks_io.ior import parse_command, render_ior_output, run_ior
from repro.core.explorer.cli import main as explore_main
from repro.core.extraction.cli import main as extract_main
from repro.core.persistence import KnowledgeDatabase, KnowledgeRepository
from repro.iostack.stack import Testbed


@pytest.fixture()
def run_dir(tmp_path):
    tb = Testbed.fuchs_csc(seed=71)
    cfg = parse_command("ior -a mpiio -b 4m -t 2m -s 4 -F -i 3 -o /scratch/cli/t -k")
    res = run_ior(cfg, tb, num_nodes=2, tasks_per_node=10)
    d = tmp_path / "000000_run" / "work"
    d.mkdir(parents=True)
    (d / "ior_output.txt").write_text(render_ior_output(res))
    return tmp_path


class TestExtractCLI:
    def test_extract_path(self, run_dir, capsys):
        assert extract_main([str(run_dir)]) == 0
        out = capsys.readouterr().out
        assert "extracted 1 knowledge object(s)" in out
        assert "ior knowledge: 20 tasks" in out

    def test_extract_to_db_json_csv(self, run_dir, tmp_path, capsys):
        db = tmp_path / "k.db"
        js = tmp_path / "k.json"
        cs = tmp_path / "k.csv"
        rc = extract_main(
            [str(run_dir), "--db", str(db), "--json", str(js), "--csv", str(cs), "--quiet"]
        )
        assert rc == 0
        assert db.exists() and js.exists() and cs.exists()
        with KnowledgeDatabase(db) as kdb:
            assert KnowledgeRepository(kdb).list_ids() == [1]

    def test_workspace_mode(self, run_dir, capsys):
        assert extract_main(["--workspace", str(run_dir)]) == 0

    def test_no_path_no_workspace(self, capsys):
        assert extract_main([]) == 1
        assert "error:" in capsys.readouterr().err

    def test_empty_directory(self, tmp_path, capsys):
        assert extract_main([str(tmp_path)]) == 1


class TestExploreCLI:
    @pytest.fixture()
    def db_path(self, run_dir, tmp_path):
        db = tmp_path / "k.db"
        extract_main([str(run_dir), "--db", str(db), "--quiet"])
        return db

    def test_list(self, db_path, capsys):
        assert explore_main([str(db_path), "--list"]) == 0
        assert "1 knowledge object(s): [1]" in capsys.readouterr().out

    def test_view_with_chart(self, db_path, tmp_path, capsys):
        svg = tmp_path / "c.svg"
        assert explore_main([str(db_path), "--view", "1", "--chart", str(svg)]) == 0
        out = capsys.readouterr().out
        assert "Summary:" in out
        assert svg.exists()

    def test_view_missing(self, db_path, capsys):
        assert explore_main([str(db_path), "--view", "42"]) == 1

    def test_compare_single_db(self, db_path, capsys):
        assert explore_main([str(db_path), "--compare", "1"]) == 0
        assert "bw_mean" in capsys.readouterr().out

    def test_chart_without_view(self, db_path, tmp_path, capsys):
        assert explore_main([str(db_path), "--chart", str(tmp_path / "x.svg")]) == 2


class TestIORCLI:
    def test_runs_and_prints(self, capsys):
        from repro.benchmarks_io.ior.cli import main as ior_main

        rc = ior_main(["-a", "posix", "-b", "2m", "-t", "1m", "-i", "1",
                       "-o", "/scratch/cli2/t", "-w", "-N", "8"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Max Write:" in out


class TestIO500CLI:
    def test_runs_and_prints(self, capsys):
        from repro.benchmarks_io.io500.runner import main as io500_main

        rc = io500_main(["-N", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "[SCORE ]" in out


class TestCycleCLI:
    def test_default_demo(self, tmp_path, capsys):
        from repro.core.cycle import main as cycle_main

        rc = cycle_main(["--workspace", str(tmp_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "revolution 1/1" in out
        assert "[recommendation]" in out

    def test_custom_config_and_db(self, tmp_path, capsys):
        from repro.core.cycle import main as cycle_main
        from repro.core.persistence import KnowledgeDatabase, KnowledgeRepository

        xml = tmp_path / "cfg.xml"
        xml.write_text("""
        <jube><benchmark name="c" outpath="x">
          <parameterset name="p">
            <parameter name="command">ior -a posix -b 2m -t 1m -i 1 -o /scratch/cc/t -w -k</parameter>
            <parameter name="nodes">1</parameter>
            <parameter name="taskspernode">4</parameter>
          </parameterset>
          <step name="run" work="ior"><use>p</use></step>
        </benchmark></jube>
        """)
        db = tmp_path / "c.db"
        rc = cycle_main(["--config", str(xml), "--workspace", str(tmp_path / "ws"),
                         "--db", str(db), "--repeat", "2"])
        assert rc == 0
        assert "revolution 2/2" in capsys.readouterr().out
        with KnowledgeDatabase(db) as kdb:
            assert len(KnowledgeRepository(kdb).list_ids()) == 2

    def test_missing_config(self, tmp_path, capsys):
        from repro.core.cycle import main as cycle_main

        assert cycle_main(["--config", str(tmp_path / "nope.xml")]) == 1

    def test_bad_repeat(self, capsys):
        from repro.core.cycle import main as cycle_main

        assert cycle_main(["--repeat", "0"]) == 2

    def test_modules_selection(self, tmp_path, capsys):
        from repro.core.cycle import main as cycle_main

        rc = cycle_main(
            ["--workspace", str(tmp_path), "--modules", "anomaly-detection"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "[anomaly-detection]" in out
        assert "[recommendation]" not in out

    def test_modules_unknown_lists_available(self, tmp_path, capsys):
        from repro.core.cycle import main as cycle_main

        rc = cycle_main(["--workspace", str(tmp_path), "--modules", "nope,also-nope"])
        assert rc == 2
        err = capsys.readouterr().err
        assert "unknown use-case module(s)" in err
        assert "anomaly-detection" in err and "recommendation" in err

    def test_modules_empty_rejected(self, tmp_path, capsys):
        from repro.core.cycle import main as cycle_main

        assert cycle_main(["--workspace", str(tmp_path), "--modules", " , "]) == 2
        assert "at least one module name" in capsys.readouterr().err

    def test_timings_flag(self, tmp_path, capsys):
        from repro.core.cycle import main as cycle_main

        assert cycle_main(["--workspace", str(tmp_path), "--timings"]) == 0
        out = capsys.readouterr().out
        for phase in ("generation", "extraction", "persistence", "analysis", "usage"):
            assert f"[timing] {phase}:" in out


class TestExploreDiff:
    def test_diff_two_runs(self, tmp_path, capsys):
        from repro.benchmarks_io.ior import parse_command, render_ior_output, run_ior
        from repro.core.extraction.cli import main as extract_main
        from repro.core.explorer.cli import main as explore_main
        from repro.iostack.stack import Testbed

        tb = Testbed.fuchs_csc(seed=72)
        for i, xfer in enumerate(("1m", "2m")):
            d = tmp_path / f"00000{i}_run" / "work"
            d.mkdir(parents=True)
            res = run_ior(
                parse_command(f"ior -a mpiio -b 4m -t {xfer} -s 4 -F -i 2 -o /scratch/df/t{i} -k"),
                tb, 1, 8, run_id=i,
            )
            (d / "ior_output.txt").write_text(render_ior_output(res))
        db = tmp_path / "k.db"
        extract_main([str(tmp_path), "--db", str(db), "--quiet"])
        capsys.readouterr()
        assert explore_main([str(db), "--diff", "1", "2"]) == 0
        out = capsys.readouterr().out
        assert "Configuration changes:" in out
        assert "xfersize" in out
        assert "write.bw_mean" in out
