"""Tests for heatmaps, the bounding-box chart, JSON/CSV transfer."""

import pytest

from repro.core.explorer import (
    bounding_box_chart,
    dxt_activity_heatmap,
    knowledge_heatmap,
    render_ascii,
    render_svg,
)
from repro.core.knowledge import (
    IO500Knowledge,
    IO500Testcase,
    Knowledge,
    KnowledgeResult,
    KnowledgeSummary,
)
from repro.core.persistence import (
    export_csv,
    export_json,
    import_json,
    knowledge_from_dict,
    knowledge_to_dict,
)
from repro.core.usage import build_bounding_box
from repro.util.errors import AnalysisError, PersistenceError


def make_knowledge(xfer="1m", nodes=1, bw=1000.0, kid=None):
    results = [KnowledgeResult(iteration=0, bandwidth_mib=bw, iops=bw / 2)]
    summary = KnowledgeSummary(
        operation="write", api="POSIX", bw_max=bw, bw_min=bw, bw_mean=bw,
        bw_stddev=0.0, ops_max=bw / 2, ops_min=bw / 2, ops_mean=bw / 2,
        ops_stddev=0.0, iterations=1, results=results,
    )
    return Knowledge(
        benchmark="ior", command=f"ior -t {xfer}", api="POSIX",
        num_nodes=nodes, num_tasks=nodes * 20,
        parameters={"xfersize": xfer}, summaries=[summary], knowledge_id=kid,
    )


class TestKnowledgeHeatmap:
    def grid(self):
        out = []
        for xfer, base in (("1m", 1000.0), ("2m", 2000.0)):
            for nodes in (1, 2, 4):
                out.append(make_knowledge(xfer, nodes, base * nodes**0.5))
        return out

    def test_pivot(self):
        spec = knowledge_heatmap(self.grid(), x_axis="xfersize", y_axis="num_nodes")
        assert spec.kind == "heatmap"
        hm = spec.heatmap
        assert hm.x_labels == ("1m", "2m")
        assert hm.y_labels == ("1", "2", "4")
        # cell (y=1, x=1m) = 1000
        assert hm.values[0][0] == pytest.approx(1000.0)
        assert hm.values[2][1] == pytest.approx(4000.0)

    def test_renders_both_ways(self):
        spec = knowledge_heatmap(self.grid(), "xfersize", "num_nodes")
        assert "1m" in render_ascii(spec)
        svg = render_svg(spec)
        assert svg.count("<rect") > 6  # one per cell + background

    def test_duplicates_averaged(self):
        objs = [make_knowledge(bw=100.0), make_knowledge(bw=300.0)]
        spec = knowledge_heatmap(objs, "xfersize", "num_nodes")
        assert spec.heatmap.values[0][0] == pytest.approx(200.0)

    def test_missing_combination_rejected(self):
        objs = [make_knowledge("1m", 1), make_knowledge("2m", 2)]
        with pytest.raises(AnalysisError):
            knowledge_heatmap(objs, "xfersize", "num_nodes")

    def test_unknown_axis(self):
        with pytest.raises(AnalysisError):
            knowledge_heatmap([make_knowledge()], "colour", "num_nodes")


class TestDXTHeatmap:
    def test_from_instrumented_run(self):
        from repro.benchmarks_io.ior import IORConfig, run_ior
        from repro.darshan import DarshanProfiler, DarshanReport
        from repro.iostack.stack import Testbed
        from repro.util.units import MIB

        tb = Testbed.fuchs_csc(seed=31)
        prof = DarshanProfiler(enable_dxt=True)
        cfg = IORConfig(api="POSIX", block_size=4 * MIB, transfer_size=1 * MIB,
                        segment_count=2, iterations=1, test_file="/scratch/hx/t",
                        file_per_proc=True, keep_file=True, read_file=False)
        res = run_ior(cfg, tb, 1, 4, tracer=prof)
        report = DarshanReport(prof.finalize("ior", 4, 0, res.end_offset_s))
        spec = dxt_activity_heatmap(report, nbins=8)
        assert len(spec.heatmap.y_labels) == 4  # one row per rank
        total_mib = sum(spec.heatmap.flat())
        assert total_mib == pytest.approx(4 * 8, rel=0.01)  # 4 ranks x 8 MiB

    def test_requires_dxt(self):
        import numpy as np

        from repro.darshan import DarshanProfiler, DarshanReport

        prof = DarshanProfiler(enable_dxt=False)
        prof.record_batch("POSIX", "write", 0, "/f", 0, 1024, np.ones(2), 0.0)
        report = DarshanReport(prof.finalize("x", 1, 0, 1))
        with pytest.raises(AnalysisError):
            dxt_activity_heatmap(report)


class TestBoundingBoxChart:
    def runs(self):
        def run(easy_w):
            return IO500Knowledge(
                score_total=1, score_bw=1, score_md=1,
                testcases=[
                    IO500Testcase("ior-easy-write", easy_w, "GiB/s"),
                    IO500Testcase("ior-easy-read", 3.2, "GiB/s"),
                    IO500Testcase("ior-hard-write", 0.04, "GiB/s"),
                    IO500Testcase("ior-hard-read", 0.05, "GiB/s"),
                ],
            )

        return [run(2.9), run(3.1), run(3.0)]

    def test_chart_without_observation(self):
        box = build_bounding_box(self.runs())
        spec = bounding_box_chart(box)
        assert spec.kind == "boxplot"
        assert len(spec.boxes) == 4
        assert all(not b.stats.outliers for b in spec.boxes)

    def test_anomalous_observation_marked(self):
        box = build_bounding_box(self.runs())
        broken = self.runs()[0]
        broken.testcase("ior-easy-read").options  # touch
        broken.testcases[1] = IO500Testcase("ior-easy-read", 1.0, "GiB/s")
        spec = bounding_box_chart(box, broken)
        read_box = next(b for b in spec.boxes if b.name == "ior-easy-read")
        assert read_box.stats.outliers == (1.0,)
        assert "ANOMALOUS" in spec.title
        assert "ior-easy-read" in spec.title
        # renders in both backends
        assert "ior-easy-read" in render_ascii(spec)
        assert "<svg" in render_svg(spec)


class TestJSONTransfer:
    def test_round_trip(self, tmp_path):
        original = make_knowledge(kid=7)
        path = export_json([original], tmp_path / "share.json")
        loaded = import_json(path)
        assert len(loaded) == 1
        k = loaded[0]
        assert k.command == original.command
        assert k.summary("write").bw_mean == 1000.0
        assert k.parameters == original.parameters

    def test_io500_round_trip(self, tmp_path):
        run = IO500Knowledge(
            score_total=2.0, score_bw=1.0, score_md=4.0,
            testcases=[IO500Testcase("find", 300.0, "kIOPS", options={"n": "500"})],
        )
        loaded = import_json(export_json([run], tmp_path / "io5.json"))
        assert loaded[0].score_total == 2.0
        assert loaded[0].testcase("find").options == {"n": "500"}

    def test_manual_entry_validation(self):
        with pytest.raises(PersistenceError):
            knowledge_from_dict({"type": "other"})
        with pytest.raises(PersistenceError):
            knowledge_from_dict({"type": "knowledge"})  # no benchmark
        with pytest.raises(PersistenceError):
            knowledge_from_dict(
                {"type": "knowledge", "benchmark": "ior",
                 "summaries": [{"operation": "write"}]}  # missing stats
            )

    def test_manual_entry_minimal(self):
        k = knowledge_from_dict({"type": "knowledge", "benchmark": "custom-app"})
        assert k.benchmark == "custom-app"
        assert k.summaries == []

    def test_dict_round_trip_property(self):
        original = make_knowledge(kid=3)
        assert knowledge_from_dict(knowledge_to_dict(original)).command == original.command

    def test_import_missing_file(self, tmp_path):
        with pytest.raises(PersistenceError):
            import_json(tmp_path / "nope.json")

    def test_import_wrong_format(self, tmp_path):
        p = tmp_path / "x.json"
        p.write_text('{"format": "other"}')
        with pytest.raises(PersistenceError):
            import_json(p)

    def test_import_invalid_json(self, tmp_path):
        p = tmp_path / "bad.json"
        p.write_text("{not json")
        with pytest.raises(PersistenceError):
            import_json(p)


class TestCSVExport:
    def test_rows_and_header(self, tmp_path):
        objs = [make_knowledge(kid=1), make_knowledge(kid=2, bw=2000.0)]
        text = export_csv(objs, tmp_path / "out.csv")
        lines = text.strip().splitlines()
        assert lines[0].startswith("knowledge_id,benchmark,api")
        assert len(lines) == 3  # header + 2 summary rows
        assert "2000.0" in lines[2]
        assert (tmp_path / "out.csv").exists()

    def test_no_path(self):
        assert export_csv([make_knowledge()]).count("\n") >= 2
