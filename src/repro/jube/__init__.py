"""JUBE-like benchmarking environment: parameters, steps, workpackages, analysers."""

from repro.jube.analyser import Analyser, Pattern, ResultTable
from repro.jube.benchmark import JubeBenchmark, Step, StepContext, Workpackage
from repro.jube.parameters import Parameter, ParameterSet, expand_parameter_space, substitute
from repro.jube.steps import DEFAULT_WORK_REGISTRY
from repro.jube.xmlconfig import load_benchmark, load_benchmark_file

__all__ = [
    "Parameter",
    "ParameterSet",
    "expand_parameter_space",
    "substitute",
    "JubeBenchmark",
    "Step",
    "StepContext",
    "Workpackage",
    "Analyser",
    "Pattern",
    "ResultTable",
    "load_benchmark",
    "load_benchmark_file",
    "DEFAULT_WORK_REGISTRY",
]
