"""JUBE XML configuration loading.

JUBE benchmarks are defined in XML; this loader understands the subset
the paper's workflow needs — ``<parameterset>``/``<parameter>``,
``<step>`` with ``<use>`` and dependencies, and ``<analyser>`` with
typed ``<pattern>`` elements.  Step work is resolved from a registry of
named Python callables, replacing the ``<do>`` shell commands of real
JUBE (there is no shell on the simulated cluster).
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from pathlib import Path
from typing import Callable, Mapping

from repro.jube.analyser import Analyser, Pattern
from repro.jube.benchmark import JubeBenchmark, Step, StepContext
from repro.jube.parameters import Parameter, ParameterSet
from repro.util.errors import JubeError

__all__ = ["load_benchmark", "load_benchmark_file"]


def load_benchmark(
    xml_text: str,
    work_registry: Mapping[str, Callable[[StepContext], None]],
    outpath: str | Path | None = None,
    shared: Mapping[str, object] | None = None,
) -> tuple[JubeBenchmark, list[Analyser]]:
    """Build a benchmark and its analysers from JUBE XML text.

    Args:
        xml_text: the ``<jube><benchmark>...</benchmark></jube>`` document.
        work_registry: maps each step's ``work`` attribute to a callable.
        outpath: overrides the benchmark's ``outpath`` attribute.
        shared: benchmark-wide shared objects (e.g. the Testbed).
    """
    try:
        root = ET.fromstring(xml_text)
    except ET.ParseError as exc:
        raise JubeError(f"invalid JUBE XML: {exc}") from exc
    bench_el = root.find("benchmark") if root.tag == "jube" else root
    if bench_el is None or bench_el.tag != "benchmark":
        raise JubeError("expected a <benchmark> element under <jube>")
    name = bench_el.get("name")
    if not name:
        raise JubeError("<benchmark> needs a name attribute")
    out = Path(outpath) if outpath is not None else Path(bench_el.get("outpath", "bench_run"))

    parameter_sets = []
    for ps_el in bench_el.findall("parameterset"):
        ps_name = ps_el.get("name")
        if not ps_name:
            raise JubeError("<parameterset> needs a name attribute")
        params = []
        for p_el in ps_el.findall("parameter"):
            p_name = p_el.get("name")
            if not p_name:
                raise JubeError(f"<parameter> in set {ps_name!r} needs a name")
            sep = p_el.get("separator", ",")
            params.append(Parameter.from_text(p_name, (p_el.text or "").strip(), sep))
        parameter_sets.append(ParameterSet(name=ps_name, parameters=tuple(params)))

    steps = []
    for s_el in bench_el.findall("step"):
        s_name = s_el.get("name")
        if not s_name:
            raise JubeError("<step> needs a name attribute")
        work_name = s_el.get("work")
        if not work_name:
            raise JubeError(f"step {s_name!r} needs a work attribute")
        if work_name not in work_registry:
            raise JubeError(
                f"step {s_name!r}: no work callable {work_name!r} registered; "
                f"available: {sorted(work_registry)}"
            )
        uses = tuple((u.text or "").strip() for u in s_el.findall("use"))
        depends = tuple(d for d in (s_el.get("depend", "")).split(",") if d)
        steps.append(
            Step(name=s_name, work=work_registry[work_name], use=uses, depends=depends)
        )

    benchmark = JubeBenchmark(
        name=name, outpath=out, parameter_sets=parameter_sets, steps=steps, shared=shared
    )

    analysers = []
    for a_el in bench_el.findall("analyser"):
        a_name = a_el.get("name") or "analyse"
        a_step = a_el.get("step")
        if not a_step:
            raise JubeError(f"analyser {a_name!r} needs a step attribute")
        files = [(f.text or "").strip() for f in a_el.findall("file")]
        patterns = [
            Pattern(
                name=p.get("name", ""),
                regex=(p.text or "").strip(),
                dtype=p.get("type", "float"),
            )
            for p in a_el.findall("pattern")
        ]
        analysers.append(Analyser(name=a_name, step=a_step, files=files, patterns=patterns))
    return benchmark, analysers


def load_benchmark_file(
    path: str | Path,
    work_registry: Mapping[str, Callable[[StepContext], None]],
    outpath: str | Path | None = None,
    shared: Mapping[str, object] | None = None,
) -> tuple[JubeBenchmark, list[Analyser]]:
    """Load a benchmark definition from an XML file."""
    p = Path(path)
    if not p.exists():
        raise JubeError(f"JUBE config not found: {p}")
    return load_benchmark(p.read_text(encoding="utf-8"), work_registry, outpath, shared)
