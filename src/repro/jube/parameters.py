"""JUBE parameter sets and parameter-space expansion.

JUBE's core idea (§V-A: "we define a set of I/O patterns as JUBE
parameters in the JUBE configuration file"): a parameter may carry a
comma-separated value list, the benchmark expands the cartesian product
of all lists, and ``$name`` / ``${name}`` references are substituted
into templates such as the IOR command line.
"""

from __future__ import annotations

import itertools
import re
from dataclasses import dataclass

from repro.util.errors import JubeError

__all__ = ["Parameter", "ParameterSet", "expand_parameter_space", "substitute"]

_NAME_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")


@dataclass(frozen=True, slots=True)
class Parameter:
    """One JUBE parameter: a name and its expansion values."""

    name: str
    values: tuple[str, ...]

    def __post_init__(self) -> None:
        if not _NAME_RE.match(self.name):
            raise JubeError(f"invalid parameter name {self.name!r}")
        if not self.values:
            raise JubeError(f"parameter {self.name!r} has no values")

    @classmethod
    def from_text(cls, name: str, text: str, separator: str = ",") -> "Parameter":
        """Build from JUBE's comma-separated value text."""
        values = tuple(v.strip() for v in text.split(separator))
        return cls(name=name, values=values)

    @property
    def is_template(self) -> bool:
        """Whether this parameter expands into multiple workpackages."""
        return len(self.values) > 1


@dataclass(frozen=True, slots=True)
class ParameterSet:
    """A named group of parameters."""

    name: str
    parameters: tuple[Parameter, ...]

    def __post_init__(self) -> None:
        names = [p.name for p in self.parameters]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise JubeError(f"duplicate parameters in set {self.name!r}: {dupes}")

    def parameter(self, name: str) -> Parameter:
        """Look up one parameter."""
        for p in self.parameters:
            if p.name == name:
                return p
        raise JubeError(f"no parameter {name!r} in set {self.name!r}")


def expand_parameter_space(sets: list[ParameterSet]) -> list[dict[str, str]]:
    """Cartesian-product expansion over all used parameter sets.

    Later sets override earlier ones on name collision (JUBE's
    "last definition wins" rule), and every combination becomes one
    workpackage's parameter dict.
    """
    merged: dict[str, Parameter] = {}
    for pset in sets:
        for p in pset.parameters:
            merged[p.name] = p
    if not merged:
        return [{}]
    names = list(merged)
    value_lists = [merged[n].values for n in names]
    return [dict(zip(names, combo)) for combo in itertools.product(*value_lists)]


_SUBST_RE = re.compile(r"\$\{(?P<braced>[A-Za-z_][A-Za-z0-9_]*)\}|\$(?P<plain>[A-Za-z_][A-Za-z0-9_]*)")


def substitute(template: str, params: dict[str, str], strict: bool = True) -> str:
    """Replace ``$name``/``${name}`` references with parameter values."""

    def repl(m: re.Match[str]) -> str:
        name = m.group("braced") or m.group("plain")
        if name in params:
            return str(params[name])
        if strict:
            raise JubeError(f"undefined parameter ${name} in template {template!r}")
        return m.group(0)

    return _SUBST_RE.sub(repl, template)
