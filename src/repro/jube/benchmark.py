"""JUBE benchmark execution: steps, workpackages and run directories.

A benchmark owns parameter sets and steps; running it expands the
parameter space and executes every step once per parameter combination
in its own *workpackage* directory (``<outpath>/<run>/NNNNNN_<step>/work``),
exactly the directory layout the paper's knowledge extractor scans when
no explicit output path is given (§V-B).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Mapping, Sequence

from repro.jube.parameters import ParameterSet, expand_parameter_space
from repro.util.errors import JubeError

__all__ = ["StepContext", "Step", "Workpackage", "JubeBenchmark", "JUBE_WORKDIR_NAME"]

JUBE_WORKDIR_NAME = "work"


@dataclass(slots=True)
class StepContext:
    """What a step's work callable sees when it runs."""

    params: dict[str, str]
    workdir: Path
    dependencies: dict[str, Path]  # step name -> that step's workdir
    shared: dict[str, object]  # benchmark-wide shared state (e.g. the Testbed)

    def write_file(self, name: str, content: str) -> Path:
        """Write an output file into the workpackage directory."""
        path = self.workdir / name
        path.write_text(content, encoding="utf-8")
        return path

    def dependency_file(self, step: str, name: str) -> Path:
        """Path of a file a dependency step produced."""
        try:
            base = self.dependencies[step]
        except KeyError:
            raise JubeError(f"step has no dependency {step!r}") from None
        path = base / name
        if not path.exists():
            raise JubeError(f"dependency file {path} does not exist")
        return path


#: A step's work: receives the context, writes outputs, returns nothing.
WorkFn = Callable[[StepContext], None]


@dataclass(frozen=True, slots=True)
class Step:
    """One step of a benchmark."""

    name: str
    work: WorkFn
    use: tuple[str, ...] = ()  # parameter set names
    depends: tuple[str, ...] = ()  # earlier step names


@dataclass(slots=True)
class Workpackage:
    """One (step x parameter combination) execution."""

    wp_id: int
    step: str
    params: dict[str, str]
    workdir: Path
    done: bool = False

    @property
    def dirname(self) -> str:
        """JUBE-style directory name ``NNNNNN_<step>``."""
        return f"{self.wp_id:06d}_{self.step}"


class JubeBenchmark:
    """A runnable JUBE benchmark definition."""

    def __init__(
        self,
        name: str,
        outpath: str | Path,
        parameter_sets: Sequence[ParameterSet] = (),
        steps: Sequence[Step] = (),
        shared: Mapping[str, object] | None = None,
    ) -> None:
        self.name = name
        self.outpath = Path(outpath)
        self.parameter_sets = {p.name: p for p in parameter_sets}
        if len(self.parameter_sets) != len(parameter_sets):
            raise JubeError("duplicate parameter set names")
        self.steps: dict[str, Step] = {}
        for step in steps:
            self.add_step(step)
        self.shared: dict[str, object] = dict(shared or {})
        self.workpackages: list[Workpackage] = []
        self._run_dir: Path | None = None

    def add_parameter_set(self, pset: ParameterSet) -> None:
        """Register a parameter set."""
        if pset.name in self.parameter_sets:
            raise JubeError(f"parameter set {pset.name!r} already defined")
        self.parameter_sets[pset.name] = pset

    def add_step(self, step: Step) -> None:
        """Register a step; dependencies must already be registered."""
        if step.name in self.steps:
            raise JubeError(f"step {step.name!r} already defined")
        for dep in step.depends:
            if dep not in self.steps:
                raise JubeError(
                    f"step {step.name!r} depends on unknown/later step {dep!r}"
                )
        self.steps[step.name] = step

    @property
    def run_dir(self) -> Path:
        """The directory of the last (or current) run."""
        if self._run_dir is None:
            raise JubeError("benchmark has not been run yet")
        return self._run_dir

    def _next_run_id(self) -> int:
        if not self.outpath.exists():
            return 0
        existing = [int(p.name) for p in self.outpath.iterdir() if p.name.isdigit()]
        return max(existing, default=-1) + 1

    def run(self) -> list[Workpackage]:
        """Expand the parameter space and execute all steps in order.

        Steps execute in registration order; within a step, one
        workpackage per parameter combination.  A workpackage of a
        dependent step is wired to the dependency workpackage with the
        same parameter combination.
        """
        run_id = self._next_run_id()
        self._run_dir = self.outpath / f"{run_id:06d}"
        self._run_dir.mkdir(parents=True, exist_ok=True)
        self.workpackages = []
        wp_counter = 0
        # step name -> {param-combo-key -> workdir}
        finished: dict[str, dict[str, Path]] = {}
        for step in self.steps.values():
            try:
                used = [self.parameter_sets[n] for n in step.use]
            except KeyError as exc:
                raise JubeError(f"step {step.name!r} uses unknown parameter set {exc}") from None
            combos = expand_parameter_space(used)
            finished[step.name] = {}
            for params in combos:
                wp = Workpackage(
                    wp_id=wp_counter,
                    step=step.name,
                    params=params,
                    workdir=self._run_dir / f"{wp_counter:06d}_{step.name}" / JUBE_WORKDIR_NAME,
                )
                wp_counter += 1
                wp.workdir.mkdir(parents=True, exist_ok=True)
                (wp.workdir.parent / "parameters.json").write_text(
                    json.dumps(params, indent=2, sort_keys=True), encoding="utf-8"
                )
                deps = {}
                for dep in step.depends:
                    key = _combo_key(params, dep_combos := finished[dep])
                    deps[dep] = dep_combos[key]
                ctx = StepContext(
                    params=dict(params),
                    workdir=wp.workdir,
                    dependencies=deps,
                    shared=self.shared,
                )
                step.work(ctx)
                wp.done = True
                finished[step.name][_combo_key(params, None)] = wp.workdir
                self.workpackages.append(wp)
        return self.workpackages


def _combo_key(params: dict[str, str], available: dict[str, Path] | None) -> str:
    """Key matching a dependent workpackage to its dependency.

    Uses the full sorted parameter combination; if the dependency step
    expanded over fewer parameters, fall back to the single workpackage
    when unambiguous.
    """
    key = json.dumps(params, sort_keys=True)
    if available is None or key in available:
        return key
    if len(available) == 1:
        return next(iter(available))
    raise JubeError(
        "cannot match workpackage to dependency: parameter combination "
        f"{key} not found among {len(available)} dependency workpackages"
    )
