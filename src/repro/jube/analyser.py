"""JUBE analyser: pattern-based result extraction and result tables.

After the steps ran, a JUBE analyser scans named output files in every
workpackage with typed regex patterns and builds result tables keyed by
the workpackage parameters — the mechanism the paper's workflow uses to
hook the knowledge extractor into the JUBE run (§V-B).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Sequence

from repro.jube.benchmark import JubeBenchmark, Workpackage
from repro.util.errors import JubeError
from repro.util.tables import render_table

__all__ = ["Pattern", "Analyser", "ResultTable"]

_TYPES = {"int": int, "float": float, "string": str}


@dataclass(frozen=True, slots=True)
class Pattern:
    """One typed extraction pattern."""

    name: str
    regex: str
    dtype: str = "float"

    def __post_init__(self) -> None:
        if self.dtype not in _TYPES:
            raise JubeError(f"pattern type must be one of {sorted(_TYPES)}, got {self.dtype!r}")
        try:
            compiled = re.compile(self.regex)
        except re.error as exc:
            raise JubeError(f"invalid pattern regex {self.regex!r}: {exc}") from exc
        if compiled.groups < 1:
            raise JubeError(f"pattern {self.name!r} needs one capture group")

    def extract(self, text: str) -> object | None:
        """Last match in the text, converted to the pattern type."""
        matches = re.findall(self.regex, text)
        if not matches:
            return None
        value = matches[-1]
        if isinstance(value, tuple):
            value = value[0]
        return _TYPES[self.dtype](value)


@dataclass(slots=True)
class ResultTable:
    """Extraction results: one row per analysed workpackage."""

    columns: list[str]
    rows: list[dict[str, object]]

    def render(self) -> str:
        """Monospace table of all rows."""
        return render_table(
            self.columns,
            [[row.get(c) for c in self.columns] for row in self.rows],
        )

    def column(self, name: str) -> list[object]:
        """All values of one column."""
        if name not in self.columns:
            raise JubeError(f"no column {name!r}; available: {self.columns}")
        return [row.get(name) for row in self.rows]


class Analyser:
    """Applies patterns to step output files of a finished benchmark."""

    def __init__(self, name: str, step: str, files: Sequence[str], patterns: Sequence[Pattern]) -> None:
        if not files:
            raise JubeError("analyser needs at least one file name")
        if not patterns:
            raise JubeError("analyser needs at least one pattern")
        names = [p.name for p in patterns]
        if len(set(names)) != len(names):
            raise JubeError("duplicate pattern names")
        self.name = name
        self.step = step
        self.files = list(files)
        self.patterns = list(patterns)

    def analyse(self, benchmark: JubeBenchmark) -> ResultTable:
        """Scan the matching workpackages and build the result table."""
        wps = [wp for wp in benchmark.workpackages if wp.step == self.step]
        if not wps:
            raise JubeError(
                f"no workpackages for step {self.step!r}; did the benchmark run?"
            )
        param_names = sorted({k for wp in wps for k in wp.params})
        columns = param_names + [p.name for p in self.patterns]
        rows = []
        for wp in wps:
            row: dict[str, object] = dict(wp.params)
            text = self._read_files(wp)
            for pattern in self.patterns:
                row[pattern.name] = pattern.extract(text)
            rows.append(row)
        return ResultTable(columns=columns, rows=rows)

    def _read_files(self, wp: Workpackage) -> str:
        chunks = []
        for name in self.files:
            path = wp.workdir / name
            if path.exists():
                chunks.append(path.read_text(encoding="utf-8"))
        if not chunks:
            raise JubeError(
                f"none of {self.files} exist in workpackage {wp.dirname}"
            )
        return "\n".join(chunks)
