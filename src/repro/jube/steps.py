"""Prebuilt JUBE step work callables for the knowledge generation phase.

These are the ``<do>`` bodies of the paper's JUBE configuration: run a
benchmark on the shared simulated testbed and leave its output files in
the workpackage directory, where the knowledge extractor later finds
them.  Every step writes the benchmark's native output format plus the
system/file-system side files (``cpuinfo.txt``, ``meminfo.txt``,
``beegfs_entryinfo.txt``) the extractor consumes.

The shared dict must contain the :class:`~repro.iostack.stack.Testbed`
under the key ``"testbed"``.
"""

from __future__ import annotations

from repro.benchmarks_io.hacc_io import HaccIOConfig, run_hacc_io
from repro.benchmarks_io.io500 import IO500Config, render_io500_output, run_io500
from repro.benchmarks_io.ior import parse_command, render_ior_output, run_ior
from repro.benchmarks_io.mdtest import HARD_WRITE_BYTES, MdtestConfig, render_mdtest_output, run_mdtest
from repro.cluster.procfs import ProcFS
from repro.darshan import DarshanProfiler, default_log_name, write_log
from repro.iostack.stack import Testbed
from repro.jube.benchmark import StepContext
from repro.jube.parameters import substitute
from repro.util.errors import JubeError

__all__ = [
    "ior_step",
    "mdtest_step",
    "io500_step",
    "hacc_step",
    "ior_darshan_step",
    "DEFAULT_WORK_REGISTRY",
    "IOR_OUTPUT_FILE",
    "IO500_OUTPUT_FILE",
    "ENTRYINFO_FILE",
    "CPUINFO_FILE",
    "MEMINFO_FILE",
    "COMMAND_FILE",
]

IOR_OUTPUT_FILE = "ior_output.txt"
IO500_OUTPUT_FILE = "io500_result.txt"
HACC_OUTPUT_FILE = "hacc_output.txt"
ENTRYINFO_FILE = "beegfs_entryinfo.txt"
CPUINFO_FILE = "cpuinfo.txt"
MEMINFO_FILE = "meminfo.txt"
COMMAND_FILE = "command.txt"


def _testbed(ctx: StepContext) -> Testbed:
    testbed = ctx.shared.get("testbed")
    if not isinstance(testbed, Testbed):
        raise JubeError("shared['testbed'] must be a Testbed instance")
    return testbed


def _next_run_id(ctx: StepContext) -> int:
    run_id = int(ctx.shared.get("_run_counter", 0))  # type: ignore[arg-type]
    ctx.shared["_run_counter"] = run_id + 1
    return run_id


def _geometry(ctx: StepContext) -> tuple[int, int]:
    nodes = int(ctx.params.get("nodes", 4))
    tpn = int(ctx.params.get("taskspernode", 20))
    return nodes, tpn


def _write_fs_info(ctx: StepContext, testbed: Testbed, path: str) -> None:
    """Capture the file-system settings in the testbed's fs dialect."""
    if testbed.fs.namespace.exists(path):
        for name, text in testbed.fs_info_capture(path).items():
            ctx.write_file(name, text)


def _write_system_files(ctx: StepContext, testbed: Testbed) -> None:
    proc = ProcFS(testbed.cluster.nodes[0].spec)
    ctx.write_file(CPUINFO_FILE, proc.read("/proc/cpuinfo"))
    ctx.write_file(MEMINFO_FILE, proc.read("/proc/meminfo"))


def ior_step(ctx: StepContext) -> None:
    """Run IOR from the ``command`` parameter (with ``$param`` expansion)."""
    testbed = _testbed(ctx)
    template = ctx.params.get("command")
    if not template:
        raise JubeError("ior step needs a 'command' parameter")
    command = substitute(template, ctx.params, strict=False)
    config = parse_command(command)
    nodes, tpn = _geometry(ctx)
    result = run_ior(
        config, testbed, num_nodes=nodes, tasks_per_node=tpn, run_id=_next_run_id(ctx)
    )
    ctx.write_file(COMMAND_FILE, command + "\n")
    ctx.write_file(IOR_OUTPUT_FILE, render_ior_output(result))
    _write_fs_info(ctx, testbed, config.file_for_rank(0))
    _write_system_files(ctx, testbed)


def io500_step(ctx: StepContext) -> None:
    """Run the IO500 suite and store its result summary and ini file."""
    testbed = _testbed(ctx)
    run_id = _next_run_id(ctx)
    config = IO500Config(
        workdir=ctx.params.get("workdir", f"/scratch/io500/run{run_id}"),
    )
    nodes, tpn = _geometry(ctx)
    result = run_io500(config, testbed, num_nodes=nodes, tasks_per_node=tpn, run_id=run_id)
    ctx.write_file(IO500_OUTPUT_FILE, render_io500_output(result))
    ctx.write_file("io500.ini", config.to_ini())
    _write_system_files(ctx, testbed)


def hacc_step(ctx: StepContext) -> None:
    """Run HACC-IO with mode/particle parameters."""
    testbed = _testbed(ctx)
    run_id = _next_run_id(ctx)
    config = HaccIOConfig(
        num_particles=int(ctx.params.get("particles", 1_000_000)),
        api=ctx.params.get("api", "MPIIO"),
        mode=ctx.params.get("mode", "single-shared-file"),
        out_file=ctx.params.get("out_file", f"/scratch/hacc/run{run_id}/checkpoint"),
    )
    nodes, tpn = _geometry(ctx)
    jobctx = testbed.start_job("hacc-io", nodes, tpn)
    try:
        result = run_hacc_io(config, jobctx, run_id=run_id)
    finally:
        testbed.finish_job(jobctx)
    lines = [f"HACC-IO mode={config.mode} api={config.api} particles={config.num_particles}"]
    for phase in result.results:
        lines.append(
            f"{phase.operation} bandwidth: {phase.bandwidth_mib:.2f} MiB/s "
            f"time: {phase.time_s:.4f} s bytes: {phase.data_moved_bytes}"
        )
    ctx.write_file(HACC_OUTPUT_FILE, "\n".join(lines) + "\n")
    _write_system_files(ctx, testbed)


def mdtest_step(ctx: StepContext) -> None:
    """Run standalone mdtest with item/mode parameters."""
    testbed = _testbed(ctx)
    run_id = _next_run_id(ctx)
    variant = ctx.params.get("variant", "easy")
    if variant not in ("easy", "hard"):
        raise JubeError(f"mdtest variant must be 'easy' or 'hard', got {variant!r}")
    config = MdtestConfig(
        num_items=int(ctx.params.get("items", 200)),
        base_dir=ctx.params.get("base_dir", f"/scratch/mdtest/run{run_id}"),
        unique_dir_per_task=(variant == "easy"),
        write_bytes=0 if variant == "easy" else HARD_WRITE_BYTES,
        read_bytes=0 if variant == "easy" else HARD_WRITE_BYTES,
    )
    nodes, tpn = _geometry(ctx)
    jobctx = testbed.start_job("mdtest", nodes, tpn)
    try:
        result = run_mdtest(config, jobctx, run_id=run_id)
    finally:
        testbed.finish_job(jobctx)
    ctx.write_file("mdtest_output.txt", render_mdtest_output(result))
    _write_system_files(ctx, testbed)


def ior_darshan_step(ctx: StepContext) -> None:
    """Run IOR under the Darshan profiler; store output and .darshan log."""
    testbed = _testbed(ctx)
    template = ctx.params.get("command")
    if not template:
        raise JubeError("ior darshan step needs a 'command' parameter")
    command = substitute(template, ctx.params, strict=False)
    config = parse_command(command)
    nodes, tpn = _geometry(ctx)
    run_id = _next_run_id(ctx)
    profiler = DarshanProfiler(enable_dxt=ctx.params.get("dxt", "0") == "1")
    result = run_ior(
        config, testbed, num_nodes=nodes, tasks_per_node=tpn, run_id=run_id, tracer=profiler
    )
    log = profiler.finalize(
        exe="ior",
        nprocs=result.num_tasks,
        start_offset_s=result.start_offset_s,
        end_offset_s=result.end_offset_s,
        jobid=run_id,
    )
    write_log(log, ctx.workdir / default_log_name("user", "ior", run_id))
    ctx.write_file(COMMAND_FILE, command + "\n")
    ctx.write_file(IOR_OUTPUT_FILE, render_ior_output(result))
    _write_fs_info(ctx, testbed, config.file_for_rank(0))
    _write_system_files(ctx, testbed)


#: Registry for :func:`repro.jube.xmlconfig.load_benchmark`.
DEFAULT_WORK_REGISTRY = {
    "ior": ior_step,
    "io500": io500_step,
    "hacc": hacc_step,
    "mdtest": mdtest_step,
    "ior-darshan": ior_darshan_step,
}
