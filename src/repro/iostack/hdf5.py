"""HDF5-like high-level library layer.

Top of the paper's Fig. 1 stack: a self-describing container library
built on MPI-IO.  The simulator models what costs performance in real
parallel HDF5 — per-call library overhead, superblock/metadata writes
at file open and close, and a dataset-chunking efficiency factor when
the application transfer size is not aligned to the HDF5 chunk size.
"""

from __future__ import annotations

import numpy as np

from repro.iostack.mpiio import MPIIOFile, MPIIOLayer
from repro.iostack.tracing import NullTracer, TraceEvent, Tracer
from repro.mpi.hints import MPIIOHints
from repro.pfs.beegfs import BeeGFS
from repro.pfs.perfmodel import PhaseContext
from repro.util.errors import IOStackError
from repro.util.units import KIB

__all__ = ["HDF5_OVERHEAD_S", "HDF5File", "HDF5Layer"]

HDF5_OVERHEAD_S = 8.0e-6

#: Library metadata written at file creation (superblock, root group).
_HEADER_BYTES = 2 * KIB

_MODULE = "HDF5"


class HDF5File:
    """An open HDF5 file with one contiguous dataset per benchmark."""

    def __init__(self, layer: "HDF5Layer", mpiio_file: MPIIOFile, rank: int) -> None:
        self.layer = layer
        self.mpiio = mpiio_file
        self.rank = rank
        self.path = mpiio_file.path

    def _chunk_efficiency(self, nbytes: int) -> float:
        """Extra cost of unaligned dataset access.

        Transfers at least as large as the HDF5 chunk size are free of
        re-chunking cost; smaller transfers read-modify-write partial
        chunks, degrading towards the configured floor.
        """
        chunk = self.layer.chunk_bytes
        if nbytes >= chunk:
            return 1.0
        floor = self.layer.chunk_floor
        return floor + (1.0 - floor) * (nbytes / chunk)

    def write_at(
        self, offset: int, nbytes: int, ctx: PhaseContext, now: float, collective: bool = False
    ) -> float:
        """``H5Dwrite`` of one application block."""
        dt = self.mpiio.write_at(offset, nbytes, ctx, now, collective)
        dt = dt / self._chunk_efficiency(nbytes) + HDF5_OVERHEAD_S
        self.layer.tracer.record(
            TraceEvent(_MODULE, "write", self.rank, self.path, offset, nbytes, now, now + dt)
        )
        return dt

    def read_at(
        self, offset: int, nbytes: int, ctx: PhaseContext, now: float, collective: bool = False
    ) -> float:
        """``H5Dread`` of one application block."""
        dt = self.mpiio.read_at(offset, nbytes, ctx, now, collective)
        dt = dt / self._chunk_efficiency(nbytes) + HDF5_OVERHEAD_S
        self.layer.tracer.record(
            TraceEvent(_MODULE, "read", self.rank, self.path, offset, nbytes, now, now + dt)
        )
        return dt

    def io_many(
        self,
        op: str,
        nbytes: int,
        n_ops: int,
        ctx: PhaseContext,
        now: float,
        collective: bool = False,
    ) -> np.ndarray:
        """Vectorized batch of dataset accesses."""
        durations = self.mpiio.io_many(op, nbytes, n_ops, ctx, now, collective)
        durations = durations / self._chunk_efficiency(nbytes) + HDF5_OVERHEAD_S
        self.layer.tracer.record_batch(
            _MODULE, op, self.rank, self.path, 0, nbytes, durations, now
        )
        return durations

    def flush(self, now: float) -> float:
        """``H5Fflush``: push dirty data down the stack."""
        return self.mpiio.sync(now) + HDF5_OVERHEAD_S

    def close(self, now: float, ctx: PhaseContext) -> float:
        """``H5Fclose``: flush library metadata, then close below."""
        dt = 0.0
        if ctx.access == "write":
            dt += self.mpiio.write_at(0, _HEADER_BYTES, ctx, now)
        dt += self.mpiio.close(now + dt) + HDF5_OVERHEAD_S
        self.layer.tracer.record(
            TraceEvent(_MODULE, "close", self.rank, self.path, 0, 0, now, now + dt)
        )
        return dt


class HDF5Layer:
    """Factory for HDF5 files atop an MPI-IO layer."""

    api_name = "HDF5"

    def __init__(
        self,
        fs: BeeGFS,
        tracer: Tracer | None = None,
        hints: MPIIOHints | None = None,
        chunk_bytes: int = 1024 * KIB,
        chunk_floor: float = 0.82,
    ) -> None:
        if chunk_bytes <= 0:
            raise IOStackError("HDF5 chunk size must be positive")
        if not 0 < chunk_floor <= 1:
            raise IOStackError("chunk_floor must be in (0, 1]")
        self.tracer = tracer or NullTracer()
        self.mpiio_layer = MPIIOLayer(fs, self.tracer, hints)
        self.chunk_bytes = chunk_bytes
        self.chunk_floor = chunk_floor

    def open(
        self,
        path: str,
        rank: int,
        ctx: PhaseContext,
        now: float,
        create: bool,
        shared_file: bool,
    ) -> tuple[HDF5File, float]:
        """``H5Fopen``/``H5Fcreate`` (always through MPI-IO)."""
        mf, dt = self.mpiio_layer.open(path, rank, ctx, now, create, shared_file)
        if create and ctx.access == "write":
            dt += mf.write_at(0, _HEADER_BYTES, ctx, now + dt)
        dt += HDF5_OVERHEAD_S
        self.tracer.record(TraceEvent(_MODULE, "open", rank, path, 0, 0, now, now + dt))
        return HDF5File(self, mf, rank), dt
