"""POSIX layer of the I/O stack.

The bottom software layer of the paper's Fig. 1 stack: everything above
(MPI-IO, HDF5) ultimately issues POSIX open/read/write/fsync/close
against the parallel file system client.  Each call returns its
simulated duration; a small constant models the syscall/VFS overhead on
top of the file-system cost.
"""

from __future__ import annotations

import numpy as np

from repro.iostack.tracing import NullTracer, TraceEvent, Tracer
from repro.pfs.beegfs import BeeGFS
from repro.pfs.file import FileEntry
from repro.pfs.layout import StripeLayout
from repro.pfs.perfmodel import PhaseContext
from repro.util.errors import IOStackError

__all__ = ["POSIX_SYSCALL_OVERHEAD_S", "PosixFile", "PosixLayer"]

POSIX_SYSCALL_OVERHEAD_S = 2.0e-6

_MODULE = "POSIX"


class PosixFile:
    """An open POSIX file descriptor on the simulated PFS."""

    def __init__(self, layer: "PosixLayer", path: str, entry: FileEntry, rank: int) -> None:
        self.layer = layer
        self.path = path
        self.entry = entry
        self.rank = rank
        self.offset = 0  # sequential position for append-style access
        self.closed = False

    def _check_open(self) -> None:
        if self.closed:
            raise IOStackError(f"I/O on closed file {self.path!r}")

    def write(self, nbytes: int, ctx: PhaseContext, now: float, offset: int | None = None) -> float:
        """Write ``nbytes`` at ``offset`` (or the current position)."""
        self._check_open()
        off = self.offset if offset is None else offset
        dt = self.layer.fs.write(self.entry, off, nbytes, ctx) + POSIX_SYSCALL_OVERHEAD_S
        if offset is None:
            self.offset += nbytes
        self.layer.tracer.record(
            TraceEvent(_MODULE, "write", self.rank, self.path, off, nbytes, now, now + dt)
        )
        return dt

    def read(self, nbytes: int, ctx: PhaseContext, now: float, offset: int | None = None) -> float:
        """Read ``nbytes`` at ``offset`` (or the current position)."""
        self._check_open()
        off = self.offset if offset is None else offset
        dt = self.layer.fs.read(self.entry, off, nbytes, ctx) + POSIX_SYSCALL_OVERHEAD_S
        if offset is None:
            self.offset += nbytes
        self.layer.tracer.record(
            TraceEvent(_MODULE, "read", self.rank, self.path, off, nbytes, now, now + dt)
        )
        return dt

    def io_many(
        self, op: str, nbytes: int, n_ops: int, ctx: PhaseContext, now: float
    ) -> np.ndarray:
        """Vectorized batch of identical sequential transfers.

        Returns per-op durations; advances the file position past the
        whole batch.  This is the fast path for the rank loops of IOR,
        HACC-IO and the IO500 data phases.
        """
        self._check_open()
        if op not in ("read", "write"):
            raise IOStackError(f"io_many op must be 'read' or 'write', got {op!r}")
        if (op == "write") != (ctx.access == "write"):
            raise IOStackError(f"{op} issued under a {ctx.access}-phase context")
        offset0 = self.offset
        durations = self.layer.fs.io_many(
            self.entry, nbytes, n_ops, ctx, rank=self.rank, offset=offset0
        )
        durations = durations + POSIX_SYSCALL_OVERHEAD_S
        self.offset += n_ops * nbytes
        self.layer.tracer.record_batch(
            _MODULE, op, self.rank, self.path, offset0, nbytes, durations, now
        )
        return durations

    def fsync(self, now: float) -> float:
        """Flush dirty data."""
        self._check_open()
        dt = self.layer.fs.fsync(self.entry)
        self.layer.tracer.record(
            TraceEvent(_MODULE, "fsync", self.rank, self.path, 0, 0, now, now + dt)
        )
        return dt

    def seek(self, offset: int) -> None:
        """Reposition the sequential pointer (no simulated cost)."""
        if offset < 0:
            raise IOStackError(f"cannot seek to negative offset {offset}")
        self.offset = offset

    def close(self, now: float) -> float:
        """Close the descriptor."""
        self._check_open()
        self.closed = True
        dt = POSIX_SYSCALL_OVERHEAD_S
        self.layer.tracer.record(
            TraceEvent(_MODULE, "close", self.rank, self.path, 0, 0, now, now + dt)
        )
        return dt


class PosixLayer:
    """Factory for POSIX files on one file system, with tracing."""

    api_name = "POSIX"

    def __init__(self, fs: BeeGFS, tracer: Tracer | None = None) -> None:
        self.fs = fs
        self.tracer = tracer or NullTracer()

    def create(
        self,
        path: str,
        rank: int,
        ctx: PhaseContext,
        now: float,
        layout: StripeLayout | None = None,
        shared_dir: bool = False,
    ) -> tuple[PosixFile, float]:
        """``open(O_CREAT|O_WRONLY)``: create a file for writing."""
        entry, dt = self.fs.create(path, ctx, layout=layout, shared_dir=shared_dir)
        dt += POSIX_SYSCALL_OVERHEAD_S
        self.tracer.record(TraceEvent(_MODULE, "create", rank, path, 0, 0, now, now + dt))
        return PosixFile(self, path, entry, rank), dt

    def open(self, path: str, rank: int, ctx: PhaseContext, now: float) -> tuple[PosixFile, float]:
        """``open(O_RDONLY)`` / open an existing file."""
        entry, dt = self.fs.open(path, ctx)
        dt += POSIX_SYSCALL_OVERHEAD_S
        self.tracer.record(TraceEvent(_MODULE, "open", rank, path, 0, 0, now, now + dt))
        return PosixFile(self, path, entry, rank), dt

    def open_shared(
        self,
        path: str,
        rank: int,
        ctx: PhaseContext,
        now: float,
        layout: StripeLayout | None = None,
    ) -> tuple[PosixFile, float]:
        """Open-or-create used by N-to-1 workloads (rank 0 creates)."""
        if self.fs.namespace.exists(path):
            return self.open(path, rank, ctx, now)
        return self.create(path, rank, ctx, now, layout=layout)

    def stat(self, path: str, rank: int, ctx: PhaseContext, now: float, shared_dir: bool = False) -> float:
        """Stat a path."""
        dt = self.fs.stat(path, ctx, shared_dir) + POSIX_SYSCALL_OVERHEAD_S
        self.tracer.record(TraceEvent(_MODULE, "stat", rank, path, 0, 0, now, now + dt))
        return dt

    def unlink(self, path: str, rank: int, ctx: PhaseContext, now: float, shared_dir: bool = False) -> float:
        """Remove a file."""
        dt = self.fs.unlink(path, ctx, shared_dir) + POSIX_SYSCALL_OVERHEAD_S
        self.tracer.record(TraceEvent(_MODULE, "unlink", rank, path, 0, 0, now, now + dt))
        return dt

    def mkdir(self, path: str, rank: int, ctx: PhaseContext, now: float) -> float:
        """Create one directory."""
        _, dt = self.fs.mkdir(path, ctx)
        dt += POSIX_SYSCALL_OVERHEAD_S
        self.tracer.record(TraceEvent(_MODULE, "mkdir", rank, path, 0, 0, now, now + dt))
        return dt
