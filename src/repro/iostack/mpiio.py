"""MPI-IO layer of the I/O stack.

Sits on the POSIX layer, as in the paper's Fig. 1 ("these libraries ...
are built atop MPI-IO, where MPI-IO in turn uses POSIX").  Adds the
MPI-IO semantics the benchmarks exercise: shared file handles across a
communicator, independent vs. collective data operations, and ROMIO
hints that switch collective buffering on or off.  Collective
operations run under a context with ``collective=True`` so the
performance model applies the aggregation efficiency instead of the
shared-file lock penalty, plus the two-phase exchange latency.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.iostack.posix import PosixFile, PosixLayer
from repro.iostack.tracing import NullTracer, TraceEvent, Tracer
from repro.mpi.hints import MPIIOHints
from repro.pfs.beegfs import BeeGFS
from repro.pfs.layout import StripeLayout
from repro.pfs.perfmodel import PhaseContext
from repro.util.errors import IOStackError

__all__ = ["MPIIO_OVERHEAD_S", "MPIIOFile", "MPIIOLayer"]

MPIIO_OVERHEAD_S = 5.0e-6

_MODULE = "MPIIO"


class MPIIOFile:
    """An ``MPI_File`` handle (per-rank view in the simulator)."""

    def __init__(
        self,
        layer: "MPIIOLayer",
        posix_file: PosixFile,
        rank: int,
        shared_file: bool,
    ) -> None:
        self.layer = layer
        self.posix = posix_file
        self.rank = rank
        self.shared_file = shared_file
        self.path = posix_file.path

    def _ctx(self, ctx: PhaseContext, collective: bool) -> PhaseContext:
        wants = collective and self.layer.hints.collective_enabled(ctx.access, self.shared_file)
        if ctx.collective == wants and ctx.shared_file == self.shared_file:
            return ctx
        return replace(ctx, collective=wants, shared_file=self.shared_file)

    def write_at(
        self, offset: int, nbytes: int, ctx: PhaseContext, now: float, collective: bool = False
    ) -> float:
        """``MPI_File_write_at(_all)``."""
        eff = self._ctx(ctx, collective)
        dt = self.posix.write(nbytes, eff, now, offset=offset) + MPIIO_OVERHEAD_S
        op = "write_all" if eff.collective else "write"
        self.layer.tracer.record(
            TraceEvent(_MODULE, op, self.rank, self.path, offset, nbytes, now, now + dt)
        )
        return dt

    def read_at(
        self, offset: int, nbytes: int, ctx: PhaseContext, now: float, collective: bool = False
    ) -> float:
        """``MPI_File_read_at(_all)``."""
        eff = self._ctx(ctx, collective)
        dt = self.posix.read(nbytes, eff, now, offset=offset) + MPIIO_OVERHEAD_S
        op = "read_all" if eff.collective else "read"
        self.layer.tracer.record(
            TraceEvent(_MODULE, op, self.rank, self.path, offset, nbytes, now, now + dt)
        )
        return dt

    def io_many(
        self,
        op: str,
        nbytes: int,
        n_ops: int,
        ctx: PhaseContext,
        now: float,
        collective: bool = False,
    ) -> np.ndarray:
        """Vectorized batch of identical transfers at the MPI-IO level."""
        eff = self._ctx(ctx, collective)
        durations = self.posix.io_many(op, nbytes, n_ops, eff, now) + MPIIO_OVERHEAD_S
        suffix = "_all" if eff.collective else ""
        self.layer.tracer.record_batch(
            _MODULE, op + suffix, self.rank, self.path, 0, nbytes, durations, now
        )
        return durations

    def sync(self, now: float) -> float:
        """``MPI_File_sync``."""
        dt = self.posix.fsync(now) + MPIIO_OVERHEAD_S
        self.layer.tracer.record(
            TraceEvent(_MODULE, "sync", self.rank, self.path, 0, 0, now, now + dt)
        )
        return dt

    def close(self, now: float) -> float:
        """``MPI_File_close``."""
        dt = self.posix.close(now) + MPIIO_OVERHEAD_S
        self.layer.tracer.record(
            TraceEvent(_MODULE, "close", self.rank, self.path, 0, 0, now, now + dt)
        )
        return dt


class MPIIOLayer:
    """Factory for MPI-IO file handles, configured with ROMIO hints."""

    api_name = "MPIIO"

    def __init__(
        self,
        fs: BeeGFS,
        tracer: Tracer | None = None,
        hints: MPIIOHints | None = None,
    ) -> None:
        self.tracer = tracer or NullTracer()
        self.posix_layer = PosixLayer(fs, self.tracer)
        self.hints = hints or MPIIOHints()

    def open(
        self,
        path: str,
        rank: int,
        ctx: PhaseContext,
        now: float,
        create: bool,
        shared_file: bool,
        layout: StripeLayout | None = None,
    ) -> tuple[MPIIOFile, float]:
        """``MPI_File_open``; with ``create`` for write phases.

        For a shared file only rank 0 pays the create; other ranks pay
        an open of the now-existing file — matching MPI-IO semantics
        where the open is collective.
        """
        if layout is None and self.hints.striping_unit > 0:
            fs = self.posix_layer.fs
            default = fs.default_layout()
            layout = StripeLayout(
                chunk_size=self.hints.striping_unit,
                target_ids=default.target_ids,
                pattern=default.pattern,
            )
        if create:
            # Open-or-create for both modes: a shared file is created by
            # the first rank only, and a rewrite of an existing
            # file-per-process file opens it in place (IOR without -k
            # removal, repetition > 1).
            pf, dt = self.posix_layer.open_shared(path, rank, ctx, now, layout=layout)
        else:
            pf, dt = self.posix_layer.open(path, rank, ctx, now)
        dt += MPIIO_OVERHEAD_S
        self.tracer.record(TraceEvent(_MODULE, "open", rank, path, 0, 0, now, now + dt))
        return MPIIOFile(self, pf, rank, shared_file), dt

    def delete(self, path: str, rank: int, ctx: PhaseContext, now: float) -> float:
        """``MPI_File_delete``."""
        if ctx.access != "write":
            raise IOStackError("MPI_File_delete requires a write-phase context")
        return self.posix_layer.unlink(path, rank, ctx, now) + MPIIO_OVERHEAD_S
