"""Instrumentation hooks for the I/O stack.

Every layer reports its operations to a :class:`Tracer`.  The Darshan
substrate plugs in here to build counter records and DXT segment
traces; the default :class:`NullTracer` makes instrumentation free when
profiling is off (exactly how Darshan is an opt-in link-time wrapper on
real systems).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["TraceEvent", "Tracer", "NullTracer", "RecordingTracer", "TeeTracer"]


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One observed I/O operation (or a batch of identical ones)."""

    module: str  # 'POSIX' | 'MPIIO' | 'HDF5'
    op: str  # 'open' | 'create' | 'read' | 'write' | 'fsync' | 'close' | 'stat' | ...
    rank: int
    path: str
    offset: int
    length: int
    start: float
    end: float
    count: int = 1

    @property
    def duration(self) -> float:
        """Wall time covered by the event."""
        return self.end - self.start


class Tracer:
    """Base tracer: receives events; subclasses accumulate them."""

    def record(self, event: TraceEvent) -> None:
        """Record a single event.  Default: drop it."""

    def record_batch(
        self,
        module: str,
        op: str,
        rank: int,
        path: str,
        offset0: int,
        nbytes: int,
        durations: np.ndarray,
        t0: float,
    ) -> None:
        """Record ``len(durations)`` identical back-to-back ops.

        The default implementation expands the batch into per-op events
        with sequential offsets (what DXT needs); counter-oriented
        tracers override this with a vectorized update.
        """
        t = t0
        off = offset0
        for d in np.asarray(durations, dtype=float):
            self.record(
                TraceEvent(
                    module=module,
                    op=op,
                    rank=rank,
                    path=path,
                    offset=off,
                    length=nbytes,
                    start=t,
                    end=t + float(d),
                )
            )
            t += float(d)
            off += nbytes


class NullTracer(Tracer):
    """Tracer that drops everything (profiling disabled)."""

    def record(self, event: TraceEvent) -> None:
        """Drop the event."""

    def record_batch(self, *args: object, **kwargs: object) -> None:
        """Drop the batch."""


class RecordingTracer(Tracer):
    """Tracer that keeps every event in a list (tests, DXT explorer)."""

    def __init__(self) -> None:
        self.events: list[TraceEvent] = []

    def record(self, event: TraceEvent) -> None:
        """Append the event to the in-memory list."""
        self.events.append(event)

    def by_module(self, module: str) -> list[TraceEvent]:
        """Events of one stack layer."""
        return [e for e in self.events if e.module == module]

    def total_bytes(self, op: str) -> int:
        """Total bytes moved by all events of one op type."""
        return sum(e.length * e.count for e in self.events if e.op == op)


class TeeTracer(Tracer):
    """Fans every event out to several tracers.

    Lets a job be profiled by Darshan and watched by the online monitor
    at the same time, mirroring how real systems stack instrumentation.
    """

    def __init__(self, *tracers: Tracer) -> None:
        self.tracers = list(tracers)

    def record(self, event: TraceEvent) -> None:
        """Forward the event to every attached tracer."""
        for t in self.tracers:
            t.record(event)

    def record_batch(self, *args: object, **kwargs: object) -> None:
        """Forward the batch to every attached tracer."""
        for t in self.tracers:
            t.record_batch(*args, **kwargs)
