"""Layered I/O stack (POSIX / MPI-IO / HDF5) over the simulated PFS."""

from repro.iostack.hdf5 import HDF5File, HDF5Layer
from repro.iostack.mpiio import MPIIOFile, MPIIOLayer
from repro.iostack.posix import PosixFile, PosixLayer
from repro.iostack.stack import APIS, IOJobContext, Testbed
from repro.iostack.tracing import NullTracer, RecordingTracer, TeeTracer, TraceEvent, Tracer

__all__ = [
    "PosixLayer",
    "PosixFile",
    "MPIIOLayer",
    "MPIIOFile",
    "HDF5Layer",
    "HDF5File",
    "Testbed",
    "IOJobContext",
    "APIS",
    "Tracer",
    "NullTracer",
    "TeeTracer",
    "RecordingTracer",
    "TraceEvent",
]
