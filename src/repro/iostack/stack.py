"""Testbed assembly: cluster + file system + jobs + layered I/O.

A :class:`Testbed` is the simulated equivalent of "FUCHS-CSC with its
BeeGFS scratch system": it owns the cluster, the Slurm-like resource
manager and the file system.  Benchmarks ask it for an
:class:`IOJobContext` (an exclusive allocation with a communicator and
an instrumented I/O stack), run their rank loops against it, and hand
it back.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.cluster.machine import Cluster, ClusterSpec, make_cluster
from repro.cluster.slurm import Job, JobRequest, SlurmManager
from repro.cluster.sysinfo import SystemInfo, collect_system_info
from repro.iostack.hdf5 import HDF5Layer
from repro.iostack.mpiio import MPIIOLayer
from repro.iostack.posix import PosixLayer
from repro.iostack.tracing import NullTracer, TeeTracer, Tracer
from repro.mpi.comm import Communicator
from repro.mpi.hints import MPIIOHints
from repro.pfs.beegfs import BeeGFS, BeeGFSSpec
from repro.pfs.perfmodel import PerfModelParams, PhaseContext
from repro.util.errors import ConfigurationError

__all__ = ["IOJobContext", "Testbed", "APIS"]

APIS = ("POSIX", "MPIIO", "HDF5")


@dataclass(slots=True)
class IOJobContext:
    """An exclusive allocation plus the I/O machinery a benchmark needs."""

    testbed: "Testbed"
    job: Job
    comm: Communicator
    tracer: Tracer

    @property
    def fs(self) -> BeeGFS:
        """The file system visible to the job."""
        return self.testbed.fs

    @property
    def num_nodes(self) -> int:
        """Nodes in the allocation."""
        return self.job.allocation.num_nodes  # type: ignore[union-attr]

    @property
    def tasks_per_node(self) -> int:
        """MPI tasks per node."""
        return self.job.allocation.tasks_per_node  # type: ignore[union-attr]

    def node_factors(self) -> tuple[float, ...]:
        """Health factors of the allocated compute nodes."""
        alloc = self.job.allocation
        assert alloc is not None
        return tuple(
            self.testbed.cluster.node(i).performance_factor for i in alloc.node_indices
        )

    def phase_ctx(
        self,
        access: str,
        shared_file: bool = False,
        collective: bool = False,
        fsync: bool = False,
        random_access: bool = False,
        tags: Mapping[str, object] | None = None,
        active_procs: int | None = None,
    ) -> PhaseContext:
        """Build the performance-model context for one I/O phase."""
        return PhaseContext(
            active_procs=active_procs or self.comm.size,
            procs_per_node=self.tasks_per_node,
            node_factors=self.node_factors(),
            access=access,
            collective=collective,
            shared_file=shared_file,
            fsync=fsync,
            random_access=random_access,
            tags=dict(tags or {}),
        )

    def layer(self, api: str, hints: MPIIOHints | None = None) -> PosixLayer | MPIIOLayer | HDF5Layer:
        """Instantiate the requested stack layer with this job's tracer."""
        name = api.upper()
        if name == "POSIX":
            return PosixLayer(self.fs, self.tracer)
        if name == "MPIIO":
            return MPIIOLayer(self.fs, self.tracer, hints)
        if name == "HDF5":
            return HDF5Layer(self.fs, self.tracer, hints)
        raise ConfigurationError(f"unknown I/O API {api!r}; known: {APIS}")


class Testbed:
    """A complete simulated system: cluster, scheduler and file system."""

    __test__ = False  # not a pytest test class despite the name

    def __init__(
        self,
        cluster: Cluster | ClusterSpec | str = "fuchs-csc",
        fs_spec: BeeGFSSpec | None = None,
        perf_params: PerfModelParams | None = None,
        seed: int = 42,
        fs_flavor: str = "beegfs",
    ) -> None:
        if fs_flavor not in ("beegfs", "lustre", "gpfs"):
            raise ConfigurationError(
                f"unknown fs flavor {fs_flavor!r}; known: beegfs, lustre, gpfs"
            )
        self.cluster = cluster if isinstance(cluster, Cluster) else make_cluster(cluster)
        self.slurm = SlurmManager(self.cluster)
        self.fs = BeeGFS(
            spec=fs_spec,
            interconnect=self.cluster.interconnect,
            params=perf_params,
            faults=None,
            root_seed=seed,
        )
        self.fs_flavor = fs_flavor
        self.seed = seed
        #: Default tracer attached to every job (e.g. a metrics bridge);
        #: combined with any per-job tracer via a TeeTracer.
        self.tracer: Tracer | None = None

    @classmethod
    def fuchs_csc(cls, seed: int = 42) -> "Testbed":
        """The paper's evaluation system (§V-E)."""
        return cls("fuchs-csc", seed=seed)

    def fs_info_capture(self, path: str) -> dict[str, str]:
        """Administrative file-system output for ``path``, by flavor.

        Returns {capture filename: text} in the dialect of the
        configured flavor — what a generation step stores alongside the
        benchmark output for the extractor (BeeGFS ``getentryinfo``,
        Lustre ``lfs getstripe``, or GPFS ``mmlsattr``+``mmlsfs``).
        """
        if self.fs_flavor == "lustre":
            from repro.pfs.lustre import LustreView

            return {"lustre_getstripe.txt": LustreView(self.fs).getstripe(path)}
        if self.fs_flavor == "gpfs":
            from repro.pfs.gpfs import GPFSView

            view = GPFSView(self.fs)
            return {
                "gpfs_mmlsattr.txt": view.mmlsattr(path),
                "gpfs_mmlsfs.txt": view.mmlsfs(),
            }
        return {"beegfs_entryinfo.txt": self.fs.getentryinfo(path)}

    def system_info(self) -> SystemInfo:
        """System information of the first node, via the /proc round trip."""
        return collect_system_info(self.cluster)

    def start_job(
        self,
        name: str,
        num_nodes: int,
        tasks_per_node: int,
        tracer: Tracer | None = None,
    ) -> IOJobContext:
        """Submit an exclusive job and wrap it into an I/O context.

        The job's tracer is the per-job ``tracer`` combined with the
        testbed-wide default (:attr:`tracer`): both see every event
        when both are set.
        """
        job = self.slurm.submit(
            JobRequest(name=name, num_nodes=num_nodes, tasks_per_node=tasks_per_node)
        )
        assert job.allocation is not None
        comm = Communicator(
            job.allocation,
            fabric_latency_s=self.cluster.interconnect.spec.latency_s,
        )
        if tracer is not None and self.tracer is not None:
            combined: Tracer = TeeTracer(tracer, self.tracer)
        else:
            combined = tracer or self.tracer or NullTracer()
        return IOJobContext(testbed=self, job=job, comm=comm, tracer=combined)

    def finish_job(self, ctx: IOJobContext, failed: bool = False) -> float:
        """Complete the job; returns its simulated wall time."""
        elapsed = ctx.comm.max_time()
        self.slurm.complete(ctx.job, elapsed, failed=failed)
        return elapsed
