"""Simulated MPI communicator with per-rank virtual clocks.

Benchmarks in this repository are bulk-synchronous: every rank does the
same amount of work between barriers.  The simulator therefore executes
rank loops sequentially in ordinary Python while keeping one *virtual
clock per rank*; a barrier synchronises all clocks to the maximum (plus
the collective's own cost).  Aggregate bandwidth over a phase is then
``total bytes / (t_end - t_start)`` exactly as IOR computes it.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.slurm import Allocation
from repro.mpi.collective import barrier_cost_s
from repro.util.errors import ConfigurationError, MPIError

__all__ = ["Communicator"]


class Communicator:
    """MPI_COMM_WORLD of one simulated job."""

    def __init__(self, allocation: Allocation, fabric_latency_s: float = 1.5e-6) -> None:
        if fabric_latency_s < 0:
            raise ConfigurationError("fabric latency must be >= 0")
        self.allocation = allocation
        self.fabric_latency_s = fabric_latency_s
        self._clocks = np.zeros(allocation.total_tasks, dtype=float)

    @property
    def size(self) -> int:
        """Number of ranks in the communicator."""
        return self.allocation.total_tasks

    def ranks(self) -> range:
        """Iterate rank ids ``0..size-1``."""
        return range(self.size)

    def node_of(self, rank: int) -> int:
        """Cluster node index hosting ``rank``."""
        return self.allocation.rank_to_node(rank)

    def now(self, rank: int) -> float:
        """Current virtual time of one rank."""
        self._check_rank(rank)
        return float(self._clocks[rank])

    def max_time(self) -> float:
        """Latest virtual time across all ranks."""
        return float(self._clocks.max())

    def advance(self, rank: int, seconds: float) -> None:
        """Advance one rank's clock by a non-negative duration."""
        self._check_rank(rank)
        if seconds < 0:
            raise MPIError(f"cannot advance rank {rank} by negative time {seconds}")
        self._clocks[rank] += seconds

    def advance_all(self, seconds_per_rank: np.ndarray) -> None:
        """Advance every rank's clock at once (vectorized phases)."""
        arr = np.asarray(seconds_per_rank, dtype=float)
        if arr.shape != self._clocks.shape:
            raise MPIError(
                f"expected {self._clocks.shape[0]} per-rank durations, got shape {arr.shape}"
            )
        if (arr < 0).any():
            raise MPIError("cannot advance clocks by negative time")
        self._clocks += arr

    def barrier(self) -> float:
        """Synchronise all ranks; returns the post-barrier common time."""
        t = self.max_time() + barrier_cost_s(self.size, self.fabric_latency_s)
        self._clocks[:] = t
        return t

    def set_all(self, t: float) -> None:
        """Force every rank's clock to an absolute time (phase start)."""
        if t < 0:
            raise MPIError("virtual time cannot be negative")
        self._clocks[:] = t

    def elapsed_since(self, t0: float) -> float:
        """Wall time between ``t0`` and the slowest rank's current time."""
        return self.max_time() - t0

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.size:
            raise MPIError(f"rank {rank} out of range 0..{self.size - 1}")
