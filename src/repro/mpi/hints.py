"""MPI-IO hints.

Hints are the main tunable the paper's recommendation/optimization use
case manipulates (ROMIO collective-buffering controls, aggregator
counts, buffer sizes).  They are modelled as a typed record with the
standard ROMIO key names for round-tripping through knowledge objects.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.errors import ConfigurationError

__all__ = ["MPIIOHints"]

_TRISTATE = ("enable", "disable", "automatic")


@dataclass(frozen=True, slots=True)
class MPIIOHints:
    """ROMIO-style hint set controlling collective buffering."""

    romio_cb_write: str = "automatic"
    romio_cb_read: str = "automatic"
    cb_nodes: int = 0  # 0 = one aggregator per node (ROMIO default)
    cb_buffer_size: int = 16 * 1024 * 1024
    striping_unit: int = 0  # 0 = leave file-system default

    def __post_init__(self) -> None:
        for key in ("romio_cb_write", "romio_cb_read"):
            if getattr(self, key) not in _TRISTATE:
                raise ConfigurationError(
                    f"{key} must be one of {_TRISTATE}, got {getattr(self, key)!r}"
                )
        if self.cb_nodes < 0:
            raise ConfigurationError("cb_nodes must be >= 0")
        if self.cb_buffer_size <= 0:
            raise ConfigurationError("cb_buffer_size must be positive")
        if self.striping_unit < 0:
            raise ConfigurationError("striping_unit must be >= 0")

    def collective_enabled(self, access: str, shared_file: bool) -> bool:
        """Whether collective buffering is in effect for this access.

        ``automatic`` follows ROMIO's heuristic: aggregate when many
        ranks share one file (interleaved accesses), stay independent
        for file-per-process.
        """
        value = self.romio_cb_write if access == "write" else self.romio_cb_read
        if value == "enable":
            return True
        if value == "disable":
            return False
        return shared_file

    def aggregators(self, num_nodes: int) -> int:
        """Number of aggregator ranks for a job on ``num_nodes`` nodes."""
        if num_nodes <= 0:
            raise ConfigurationError(f"num_nodes must be >= 1, got {num_nodes}")
        return self.cb_nodes if self.cb_nodes > 0 else num_nodes

    def as_dict(self) -> dict[str, object]:
        """Hint set as an info-object style dict (for persistence)."""
        return {
            "romio_cb_write": self.romio_cb_write,
            "romio_cb_read": self.romio_cb_read,
            "cb_nodes": self.cb_nodes,
            "cb_buffer_size": self.cb_buffer_size,
            "striping_unit": self.striping_unit,
        }
