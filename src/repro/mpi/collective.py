"""Cost functions for MPI collective operations.

The simulator charges collectives with the classic log-tree LogP-style
model: ``ceil(log2(p))`` rounds of fabric latency plus a bandwidth term
for payload-carrying collectives.  These costs matter for the barrier
synchronisation between benchmark phases and for the data exchange of
two-phase (collective-buffered) MPI-IO.
"""

from __future__ import annotations

import math

from repro.util.errors import ConfigurationError

__all__ = [
    "barrier_cost_s",
    "bcast_cost_s",
    "gather_cost_s",
    "exchange_cost_s",
]


def _check(nprocs: int, latency_s: float) -> None:
    if nprocs <= 0:
        raise ConfigurationError(f"nprocs must be >= 1, got {nprocs}")
    if latency_s < 0:
        raise ConfigurationError("latency must be >= 0")


def barrier_cost_s(nprocs: int, latency_s: float) -> float:
    """Dissemination-barrier cost: ``ceil(log2 p)`` latency rounds."""
    _check(nprocs, latency_s)
    if nprocs == 1:
        return 0.0
    return math.ceil(math.log2(nprocs)) * latency_s


def bcast_cost_s(nprocs: int, nbytes: int, latency_s: float, bandwidth_bps: float) -> float:
    """Binomial-tree broadcast cost for ``nbytes`` to ``nprocs`` ranks."""
    _check(nprocs, latency_s)
    if nbytes < 0 or bandwidth_bps <= 0:
        raise ConfigurationError("nbytes must be >= 0 and bandwidth positive")
    if nprocs == 1:
        return 0.0
    rounds = math.ceil(math.log2(nprocs))
    return rounds * (latency_s + nbytes / bandwidth_bps)


def gather_cost_s(nprocs: int, nbytes_each: int, latency_s: float, bandwidth_bps: float) -> float:
    """Binomial gather of ``nbytes_each`` from every rank to the root."""
    _check(nprocs, latency_s)
    if nbytes_each < 0 or bandwidth_bps <= 0:
        raise ConfigurationError("nbytes_each must be >= 0 and bandwidth positive")
    if nprocs == 1:
        return 0.0
    rounds = math.ceil(math.log2(nprocs))
    # The root ultimately receives (p-1) * nbytes_each over the rounds.
    return rounds * latency_s + (nprocs - 1) * nbytes_each / bandwidth_bps


def exchange_cost_s(
    nprocs: int,
    naggregators: int,
    nbytes_total: int,
    latency_s: float,
    bandwidth_bps: float,
) -> float:
    """Two-phase I/O shuffle: all ranks redistribute data to aggregators.

    Collective buffering first exchanges the payload so that each of
    ``naggregators`` ranks holds a contiguous piece.  The exchange is
    bandwidth-bound on the aggregators' NICs; latency accumulates over
    the pairwise rounds.
    """
    _check(nprocs, latency_s)
    if naggregators <= 0:
        raise ConfigurationError(f"naggregators must be >= 1, got {naggregators}")
    if nbytes_total < 0 or bandwidth_bps <= 0:
        raise ConfigurationError("nbytes_total must be >= 0 and bandwidth positive")
    if nprocs == 1 or nbytes_total == 0:
        return 0.0
    per_aggregator = nbytes_total / naggregators
    rounds = math.ceil(math.log2(nprocs))
    return rounds * latency_s + per_aggregator / bandwidth_bps
