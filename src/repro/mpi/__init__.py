"""Simulated MPI runtime: communicators, collective costs, MPI-IO hints."""

from repro.mpi.collective import barrier_cost_s, bcast_cost_s, exchange_cost_s, gather_cost_s
from repro.mpi.comm import Communicator
from repro.mpi.hints import MPIIOHints

__all__ = [
    "Communicator",
    "MPIIOHints",
    "barrier_cost_s",
    "bcast_cost_s",
    "gather_cost_s",
    "exchange_cost_s",
]
