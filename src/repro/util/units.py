"""Byte-size and rate parsing/formatting helpers.

IOR-style command lines express sizes as ``4m``, ``2m``, ``1g``,
``47008`` etc.  The knowledge extractor and the benchmark CLIs share a
single parser so that a size round-trips identically everywhere in the
cycle.  Binary (IEC) units are used throughout, matching IOR and IO500
conventions (``1m == 1 MiB == 1048576 bytes``).
"""

from __future__ import annotations

import math
import re

from repro.util.errors import UnitParseError

__all__ = [
    "KIB",
    "MIB",
    "GIB",
    "TIB",
    "parse_size",
    "format_size",
    "format_bandwidth",
    "parse_duration",
    "format_duration",
    "to_mib",
    "to_gib",
]

KIB = 1024
MIB = 1024**2
GIB = 1024**3
TIB = 1024**4

_SUFFIXES = {
    "": 1,
    "b": 1,
    "k": KIB,
    "kb": KIB,
    "kib": KIB,
    "m": MIB,
    "mb": MIB,
    "mib": MIB,
    "g": GIB,
    "gb": GIB,
    "gib": GIB,
    "t": TIB,
    "tb": TIB,
    "tib": TIB,
}

_SIZE_RE = re.compile(r"^\s*([0-9]*\.?[0-9]+)\s*([a-zA-Z]*)\s*$")


def parse_size(text: str | int | float) -> int:
    """Parse an IOR-style size expression into bytes.

    Accepts plain integers, floats with unit suffixes, and the
    case-insensitive suffixes ``b/k/m/g/t`` with optional ``b``/``ib``
    (all binary).  ``parse_size("4m") == 4 * 2**20``.

    Raises:
        UnitParseError: if the expression cannot be interpreted.
    """
    if isinstance(text, bool):  # bool is an int subclass; reject it.
        raise UnitParseError(f"not a size: {text!r}")
    if isinstance(text, (int, float)):
        if text < 0 or (isinstance(text, float) and not math.isfinite(text)):
            raise UnitParseError(f"not a size: {text!r}")
        return int(text)
    m = _SIZE_RE.match(text)
    if not m:
        raise UnitParseError(f"cannot parse size expression {text!r}")
    value, suffix = m.group(1), m.group(2).lower()
    if suffix not in _SUFFIXES:
        raise UnitParseError(f"unknown size suffix {suffix!r} in {text!r}")
    return int(float(value) * _SUFFIXES[suffix])


def format_size(nbytes: int | float, precision: int = 2) -> str:
    """Render a byte count with the largest exact-enough IEC unit.

    ``format_size(4 * MIB) == '4 MiB'`` and small residues keep
    ``precision`` decimal places.
    """
    nbytes = float(nbytes)
    if nbytes < 0:
        return "-" + format_size(-nbytes, precision)
    for unit, name in ((TIB, "TiB"), (GIB, "GiB"), (MIB, "MiB"), (KIB, "KiB")):
        if nbytes >= unit:
            value = nbytes / unit
            if value == int(value):
                return f"{int(value)} {name}"
            return f"{value:.{precision}f} {name}"
    if nbytes == int(nbytes):
        return f"{int(nbytes)} bytes"
    return f"{nbytes:.{precision}f} bytes"


def format_bandwidth(bytes_per_second: float, precision: int = 2) -> str:
    """Render a bandwidth as ``'<x> MiB/s'`` (IOR reports in MiB/s)."""
    return f"{bytes_per_second / MIB:.{precision}f} MiB/s"


def to_mib(nbytes: int | float) -> float:
    """Convert bytes to MiB as a float."""
    return float(nbytes) / MIB


def to_gib(nbytes: int | float) -> float:
    """Convert bytes to GiB as a float."""
    return float(nbytes) / GIB


_DURATION_RE = re.compile(r"^\s*([0-9]*\.?[0-9]+)\s*(us|ms|s|m|h|)\s*$")

_DURATION_SUFFIXES = {
    "": 1.0,
    "us": 1e-6,
    "ms": 1e-3,
    "s": 1.0,
    "m": 60.0,
    "h": 3600.0,
}


def parse_duration(text: str | int | float) -> float:
    """Parse a duration expression (``'250ms'``, ``'2m'``, ``10``) to seconds."""
    if isinstance(text, bool):
        raise UnitParseError(f"not a duration: {text!r}")
    if isinstance(text, (int, float)):
        if text < 0 or (isinstance(text, float) and not math.isfinite(text)):
            raise UnitParseError(f"not a duration: {text!r}")
        return float(text)
    m = _DURATION_RE.match(text)
    if not m:
        raise UnitParseError(f"cannot parse duration expression {text!r}")
    return float(m.group(1)) * _DURATION_SUFFIXES[m.group(2)]


def format_duration(seconds: float, precision: int = 4) -> str:
    """Render a duration in seconds the way IOR prints timings."""
    return f"{seconds:.{precision}f}"
