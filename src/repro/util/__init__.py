"""Shared utilities: units, statistics, deterministic RNG streams, tables."""

from repro.util.errors import ReproError
from repro.util.stats import BoxplotStats, Summary, boxplot_stats, geomean, summarize
from repro.util.units import (
    GIB,
    KIB,
    MIB,
    TIB,
    format_bandwidth,
    format_size,
    parse_size,
    to_gib,
    to_mib,
)

__all__ = [
    "ReproError",
    "Summary",
    "summarize",
    "geomean",
    "BoxplotStats",
    "boxplot_stats",
    "KIB",
    "MIB",
    "GIB",
    "TIB",
    "parse_size",
    "format_size",
    "format_bandwidth",
    "to_mib",
    "to_gib",
]
