"""Exception hierarchy shared by every ``repro`` subpackage.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything coming out of the knowledge cycle with a single handler
while still discriminating by phase/substrate when they need to.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "UnitParseError",
    "ClusterError",
    "AllocationError",
    "FileSystemError",
    "FileNotFoundInPFSError",
    "FileExistsInPFSError",
    "NotADirectoryInPFSError",
    "DirectoryNotEmptyError",
    "MPIError",
    "IOStackError",
    "BenchmarkError",
    "ExtractionError",
    "PersistenceError",
    "PipelineError",
    "DeadlineError",
    "ServiceError",
    "ServiceOverloadError",
    "ServiceTransportError",
    "WireProtocolError",
    "AnalysisError",
    "UsageError",
    "JubeError",
    "DarshanError",
    "CampaignError",
    "LeaseLostError",
    "ScenarioError",
]


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """An invalid or inconsistent configuration was supplied."""


class UnitParseError(ConfigurationError):
    """A size/count/time string could not be parsed (e.g. ``'4x'``)."""


class ClusterError(ReproError):
    """Errors raised by the cluster model or resource manager."""


class AllocationError(ClusterError):
    """A job allocation request could not be satisfied."""


class FileSystemError(ReproError):
    """Errors raised by the simulated parallel file system."""


class FileNotFoundInPFSError(FileSystemError):
    """Path lookup failed inside the simulated PFS namespace."""


class FileExistsInPFSError(FileSystemError):
    """Exclusive create hit an existing entry."""


class NotADirectoryInPFSError(FileSystemError):
    """A path component that must be a directory is a regular file."""


class DirectoryNotEmptyError(FileSystemError):
    """``rmdir`` was attempted on a non-empty directory."""


class MPIError(ReproError):
    """Errors raised by the simulated MPI runtime."""


class IOStackError(ReproError):
    """Errors raised by the layered I/O stack (POSIX/MPI-IO/HDF5)."""


class BenchmarkError(ReproError):
    """Errors raised by a benchmark implementation (IOR, IO500, ...)."""


class ExtractionError(ReproError):
    """Phase II: output/log parsing failed."""


class PersistenceError(ReproError):
    """Phase III: database operation failed."""


class PipelineError(ReproError):
    """The phase-pipeline engine was misconfigured or misused."""


class DeadlineError(ReproError):
    """A phase or operation exceeded its wall-time budget.

    Deadline overruns are *not* transient: retrying the same work under
    the same budget would overrun again, so the default retry predicate
    never retries them.
    """

    transient = False


class ServiceError(ReproError):
    """The knowledge service was misconfigured or misused."""


class ServiceOverloadError(ServiceError):
    """The knowledge service shed a request under admission control.

    Overload is transient by definition — the queue drains as workers
    catch up — so the default retry predicate retries it, and the
    service client backs off with deterministic jitter before trying
    again.
    """

    transient = True


class ServiceTransportError(ServiceError):
    """A remote service call failed in the transport layer.

    Connection refused/reset, a short read, a timed-out socket or a
    quarantined endpoint — the request may never have reached the
    server.  Connect-phase faults are always safe to retry; a fault
    *after* a mutating request was written is ambiguous (the server may
    have committed before the connection died), so the client marks
    those non-transient and surfaces them instead of risking a
    double-apply.
    """

    transient = True

    def __init__(self, message: str, *, retryable: bool = True) -> None:
        super().__init__(message)
        self.transient = retryable


class WorkerStartupError(ServiceTransportError):
    """A shard-group worker failed (or hung past) its startup handshake.

    Raised when a freshly spawned worker process does not answer
    ``hello`` on every channel within the startup deadline.  Transient
    by definition: the supervisor kills the half-born process and
    respawns it under its restart budget, so a retry against the same
    shard group may well succeed.
    """


class WireProtocolError(ServiceError):
    """A ``repro.wire`` frame violated the protocol.

    Bad magic, an unsupported version, an oversized frame or a body
    that is not valid JSON.  Never transient: resending the same bytes
    would fail the same way.
    """

    transient = False


class AnalysisError(ReproError):
    """Phase IV: knowledge explorer operation failed."""


class UsageError(ReproError):
    """Phase V: usage-module operation failed."""


class JubeError(ReproError):
    """Errors raised by the JUBE-like benchmarking environment."""


class DarshanError(ReproError):
    """Errors raised by the Darshan-like profiler or log reader."""


class CampaignError(ReproError):
    """The campaign orchestrator was misconfigured or misused.

    Raised for invalid campaign specs, illegal job state transitions,
    and operations on unknown campaigns/jobs — operator errors, never
    transient, so the retry predicate leaves them alone.
    """


class LeaseLostError(CampaignError):
    """A launcher touched a job whose lease it no longer holds.

    Raised by owner-guarded heartbeats/completions when the job was
    stolen by another launcher (the lease expired and a competing
    launcher claimed it).  The loser must *abandon* the job silently —
    the thief owns its retry budget now — so this is never retried and
    never recorded as a job failure.
    """

    transient = False


class ScenarioError(ReproError):
    """The scenario engine was misconfigured or misused.

    Raised for unparsable workload grammars, non-terminating or
    contradictory productions, and derivations that cannot be compiled
    into a runnable configuration — authoring errors, never transient.
    """

    transient = False
