"""Plain-text table rendering for reports and the knowledge viewer.

The paper's knowledge explorer presents summaries as well-organised
tables; we render them as monospace text so every report is usable from
a terminal and in the benchmark harness output.
"""

from __future__ import annotations

from typing import Any, Sequence

__all__ = ["render_table", "render_kv"]


def _cell(value: Any, float_fmt: str) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return format(value, float_fmt)
    if value is None:
        return "-"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    float_fmt: str = ".2f",
    indent: str = "",
) -> str:
    """Render rows under headers as an aligned monospace table.

    Numeric columns are right-aligned, text columns left-aligned; column
    type is inferred from the first non-``None`` value in each column.
    """
    str_rows = [[_cell(v, float_fmt) for v in row] for row in rows]
    ncols = len(headers)
    for i, row in enumerate(str_rows):
        if len(row) != ncols:
            raise ValueError(f"row {i} has {len(row)} cells, expected {ncols}")
    widths = [len(h) for h in headers]
    for row in str_rows:
        for c, cell in enumerate(row):
            widths[c] = max(widths[c], len(cell))
    numeric = []
    for c in range(ncols):
        col_vals = [row[c] for row in rows if row[c] is not None]
        numeric.append(bool(col_vals) and all(isinstance(v, (int, float)) and not isinstance(v, bool) for v in col_vals))

    def fmt_row(cells: Sequence[str]) -> str:
        parts = []
        for c, cell in enumerate(cells):
            parts.append(cell.rjust(widths[c]) if numeric[c] else cell.ljust(widths[c]))
        return indent + "  ".join(parts).rstrip()

    lines = [fmt_row(list(headers)), indent + "  ".join("-" * w for w in widths)]
    lines.extend(fmt_row(row) for row in str_rows)
    return "\n".join(lines)


def render_kv(pairs: dict[str, Any] | Sequence[tuple[str, Any]], indent: str = "") -> str:
    """Render key/value pairs one per line, keys aligned (viewer detail panes)."""
    items = list(pairs.items()) if isinstance(pairs, dict) else list(pairs)
    if not items:
        return ""
    width = max(len(str(k)) for k, _ in items)
    return "\n".join(f"{indent}{str(k).ljust(width)} : {_cell(v, '.4f')}" for k, v in items)
