"""Summary statistics shared by benchmarks, the extractor and the explorer.

IOR summarises each operation over its iterations with max/min/mean and
standard deviation; IO500 scores with geometric means; the knowledge
explorer overlays boxplots.  All of those reductions live here so that
the number printed by a benchmark is bit-identical to the number the
extractor recomputes and the explorer displays.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "Summary",
    "summarize",
    "geomean",
    "BoxplotStats",
    "boxplot_stats",
    "iqr_outliers",
    "zscores",
]


@dataclass(frozen=True, slots=True)
class Summary:
    """Max/min/mean/stddev over a series, as IOR reports per operation."""

    count: int
    maximum: float
    minimum: float
    mean: float
    stddev: float

    def as_dict(self) -> dict[str, float]:
        """Return the summary as a plain dict (for persistence/JSON)."""
        return {
            "count": self.count,
            "max": self.maximum,
            "min": self.minimum,
            "mean": self.mean,
            "stddev": self.stddev,
        }


def summarize(values: Sequence[float] | np.ndarray) -> Summary:
    """Summarise a non-empty series with IOR's max/min/mean/stddev.

    IOR uses the population standard deviation (divide by N), which we
    match exactly so extractor round-trips are lossless.
    """
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("cannot summarize an empty series")
    return Summary(
        count=int(arr.size),
        maximum=float(arr.max()),
        minimum=float(arr.min()),
        mean=float(arr.mean()),
        stddev=float(arr.std(ddof=0)),
    )


def geomean(values: Iterable[float]) -> float:
    """Geometric mean, as used by IO500 scoring.

    Values must be strictly positive; IO500 treats a zero phase result
    as an invalid run, so we raise rather than return 0.
    """
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("cannot take the geometric mean of an empty series")
    if (arr <= 0).any():
        raise ValueError("geometric mean requires strictly positive values")
    return float(np.exp(np.log(arr).mean()))


@dataclass(frozen=True, slots=True)
class BoxplotStats:
    """Five-number summary plus whiskers/outliers for explorer boxplots."""

    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float
    whisker_low: float
    whisker_high: float
    outliers: tuple[float, ...]

    @property
    def iqr(self) -> float:
        """Interquartile range ``q3 - q1``."""
        return self.q3 - self.q1


def boxplot_stats(values: Sequence[float] | np.ndarray, whis: float = 1.5) -> BoxplotStats:
    """Compute Tukey boxplot statistics for a non-empty series."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("cannot compute boxplot stats of an empty series")
    q1, med, q3 = np.percentile(arr, [25, 50, 75])
    iqr = q3 - q1
    lo_fence = q1 - whis * iqr
    hi_fence = q3 + whis * iqr
    inliers = arr[(arr >= lo_fence) & (arr <= hi_fence)]
    outliers = arr[(arr < lo_fence) | (arr > hi_fence)]
    # Whiskers extend to the most extreme in-fence data points.
    whisker_low = float(inliers.min()) if inliers.size else float(med)
    whisker_high = float(inliers.max()) if inliers.size else float(med)
    return BoxplotStats(
        minimum=float(arr.min()),
        q1=float(q1),
        median=float(med),
        q3=float(q3),
        maximum=float(arr.max()),
        whisker_low=whisker_low,
        whisker_high=whisker_high,
        outliers=tuple(float(v) for v in np.sort(outliers)),
    )


def iqr_outliers(values: Sequence[float] | np.ndarray, whis: float = 1.5) -> list[int]:
    """Indices of values outside the Tukey fences (anomaly candidates)."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return []
    q1, q3 = np.percentile(arr, [25, 75])
    iqr = q3 - q1
    mask = (arr < q1 - whis * iqr) | (arr > q3 + whis * iqr)
    return [int(i) for i in np.nonzero(mask)[0]]


def zscores(values: Sequence[float] | np.ndarray) -> np.ndarray:
    """Standard scores of a series; all-zero when the series is constant."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return arr
    std = arr.std(ddof=0)
    if std == 0 or not math.isfinite(std):
        return np.zeros_like(arr)
    return (arr - arr.mean()) / std
