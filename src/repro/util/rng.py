"""Deterministic random-stream derivation.

Every stochastic element of the simulator (run-to-run noise, fault
windows, mdtest timing jitter) draws from a stream derived from a
*root seed* plus a structured key such as ``("ior", run_id, iteration,
"write")``.  Identical keys always yield identical streams, which makes
every experiment in EXPERIMENTS.md bit-reproducible while keeping
independent components statistically uncorrelated.
"""

from __future__ import annotations

import hashlib
from typing import Iterable

import numpy as np

__all__ = ["derive_seed", "stream", "lognormal_factor"]


def derive_seed(root_seed: int, *key: object) -> int:
    """Derive a 63-bit child seed from ``root_seed`` and a structured key.

    The key parts are rendered with ``repr`` and hashed with SHA-256, so
    any hashable/representable objects (strings, ints, tuples) can be
    used and the derivation is stable across processes and Python
    versions.
    """
    h = hashlib.sha256()
    h.update(str(int(root_seed)).encode())
    for part in key:
        h.update(b"\x1f")
        h.update(repr(part).encode())
    return int.from_bytes(h.digest()[:8], "big") >> 1


def stream(root_seed: int, *key: object) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``(root_seed, *key)``."""
    return np.random.default_rng(derive_seed(root_seed, *key))


def lognormal_factor(
    rng: np.random.Generator, sigma: float, size: int | None = None
) -> np.ndarray | float:
    """Draw multiplicative noise factors with unit median.

    A lognormal with ``mu = 0`` has median 1.0, so multiplying a cost by
    this factor perturbs it symmetrically in log-space — the standard
    model for I/O timing variation.  ``sigma == 0`` returns exactly 1.
    """
    if sigma < 0:
        raise ValueError(f"sigma must be >= 0, got {sigma}")
    if sigma == 0:
        return 1.0 if size is None else np.ones(size)
    return rng.lognormal(mean=0.0, sigma=sigma, size=size)


def choice_without_replacement(
    rng: np.random.Generator, items: Iterable[object], k: int
) -> list[object]:
    """Pick ``k`` distinct items deterministically from ``rng``."""
    pool = list(items)
    if k > len(pool):
        raise ValueError(f"cannot choose {k} from {len(pool)} items")
    idx = rng.choice(len(pool), size=k, replace=False)
    return [pool[i] for i in idx]
