"""``repro-campaign`` — submit, run, resume and inspect campaigns.

The operator console for the campaign orchestrator::

    repro-campaign campaigns.db --submit sweep.toml --db knowledge.db
    repro-campaign campaigns.db --run 1 --workers 4
    repro-campaign campaigns.db --status
    repro-campaign campaigns.db --resume 1            # after a crash
    repro-campaign campaigns.db --cancel 1
    repro-campaign campaigns.db --run 1 --metrics-json m.json

The first positional argument is the campaign store (a SQLite file
holding the job DAG); ``--db`` at submit time records the knowledge
backend URL (a path, ``sqlite://`` URL, ``knowledge+service://`` URL,
or a ``knowledge+tcp://`` URL naming a running ``repro-serve --listen``
server) with the campaign, so ``--run``/``--resume`` need no further
configuration.  ``--resume`` differs from ``--run`` in one way only:
RUNNING jobs left behind by a dead launcher are reclaimed immediately
instead of waiting for their lease to expire.

Fleet mode (``--run ID --fleet N``) drains the campaign with N
*competing launcher processes* instead of one in-process launcher:
each steals expired leases from dead peers, optionally serves one
cluster partition (``--partitions``), and sizes its thread pool
elastically (``--min-workers``).  ``--watch`` renders a live status
view (per-launcher throughput, stolen leases, queue depth) from the
store's launcher scoreboard.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.core.campaign.fleet import LauncherFleet
from repro.core.campaign.launcher import Launcher
from repro.core.campaign.spec import load_campaign_file
from repro.core.campaign.store import JOB_STATES, CampaignStore
from repro.core.metrics import MetricsRegistry
from repro.core.resilience import CircuitBreaker, RetryPolicy
from repro.core.service.chaos import WorkerKiller
from repro.util.errors import ReproError

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The repro-campaign argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-campaign",
        description="Run resumable benchmark campaigns over the knowledge cycle.",
    )
    parser.add_argument("store", help="campaign store (SQLite file path)")
    actions = parser.add_mutually_exclusive_group(required=True)
    actions.add_argument(
        "--submit", metavar="TOML", help="expand a campaign file into the job DAG"
    )
    actions.add_argument(
        "--status", action="store_true", help="print per-state job counts"
    )
    actions.add_argument(
        "--run", type=int, metavar="ID", help="drain campaign ID to completion"
    )
    actions.add_argument(
        "--resume", type=int, metavar="ID",
        help="like --run, but reclaim a dead launcher's RUNNING jobs first",
    )
    actions.add_argument(
        "--cancel", type=int, metavar="ID", help="cancel campaign ID's queued jobs"
    )
    parser.add_argument(
        "--db", default=":memory:",
        help="knowledge backend URL recorded at --submit time "
             "(path, sqlite://, knowledge+service:// or knowledge+tcp:// URL)",
    )
    parser.add_argument(
        "--max-attempts", type=int, default=None, metavar="N",
        help="override the campaign file's per-job retry budget",
    )
    parser.add_argument("--workers", type=int, default=2, help="launcher worker threads")
    parser.add_argument("--seed", type=int, default=42, help="campaign testbed seed")
    parser.add_argument(
        "--workspace", default="campaign_run", help="JUBE workspace directory"
    )
    parser.add_argument(
        "--retries", type=int, default=2,
        help="per-phase retries on transient errors (default: 2)",
    )
    parser.add_argument(
        "--fleet", type=int, default=None, metavar="N",
        help="drain with N competing launcher processes instead of one "
             "in-process launcher (with --run/--resume)",
    )
    parser.add_argument(
        "--watch", action="store_true",
        help="with --fleet: print a live per-launcher status view",
    )
    parser.add_argument(
        "--partitions", default=None, metavar="A,B,...",
        help="with --fleet: cluster partitions assigned round-robin to "
             "launchers (jobs route by their placement key)",
    )
    parser.add_argument(
        "--min-workers", type=int, default=None, metavar="N",
        help="with --fleet: enable elastic pools between N and --workers "
             "threads per launcher",
    )
    parser.add_argument(
        "--lease", type=float, default=60.0, metavar="SECONDS",
        help="job lease duration; expired leases are stolen by peers "
             "(default: 60)",
    )
    parser.add_argument(
        "--chaos-kill-every", type=int, default=None, metavar="TICKS",
        help="with --fleet: SIGKILL a launcher every TICKS supervision "
             "passes (deterministic soak fault injection)",
    )
    parser.add_argument(
        "--metrics-json", default=None, metavar="PATH",
        help="write the campaign metrics snapshot to PATH on exit",
    )
    return parser


def _print_status(store: CampaignStore) -> None:
    campaigns = store.campaigns()
    if not campaigns:
        print("no campaigns submitted")
        return
    for row in campaigns:
        counts = store.counts(int(row["id"]))
        summary = ", ".join(f"{counts[s]} {s}" for s in JOB_STATES if counts[s])
        flag = " (cancelled)" if row["cancelled"] else ""
        print(
            f"campaign {row['id']}: {row['name']} [{row['benchmark']}] "
            f"-> {row['backend_url']}{flag}"
        )
        print(f"  jobs: {summary or 'none'}")
        for job in store.jobs(int(row["id"])):
            lease = f" lease={job.lease_owner}" if job.lease_owner else ""
            error = f" error={job.error}" if job.error else ""
            ids = f" ids={list(job.knowledge_ids)}" if job.knowledge_ids else ""
            print(
                f"    {job.name:<10} {job.state:<10} "
                f"attempts={job.attempts}/{job.max_attempts}{lease}{ids}{error}"
            )


def main(argv: Sequence[str] | None = None) -> int:
    """Console entry point."""
    args = build_parser().parse_args(list(sys.argv[1:] if argv is None else argv))
    if args.workers < 1:
        print("error: --workers must be >= 1", file=sys.stderr)
        return 2
    if args.retries < 0:
        print("error: --retries must be >= 0", file=sys.stderr)
        return 2
    if args.fleet is not None:
        if args.fleet < 1:
            print("error: --fleet must be >= 1", file=sys.stderr)
            return 2
        if args.run is None and args.resume is None:
            print("error: --fleet requires --run or --resume", file=sys.stderr)
            return 2
    metrics = MetricsRegistry() if args.metrics_json else None
    exit_code = 0
    try:
        with CampaignStore(args.store, metrics=metrics) as store:
            if args.submit:
                spec = load_campaign_file(args.submit)
                if args.max_attempts is not None:
                    spec.max_attempts = args.max_attempts
                campaign_id = store.submit(spec, args.db)
                counts = store.counts(campaign_id)
                total = sum(counts.values())
                print(
                    f"submitted campaign {campaign_id} ({spec.name}): "
                    f"{total} job(s), {counts['READY']} ready"
                )
            elif args.status:
                _print_status(store)
            elif args.cancel is not None:
                cancelled = store.cancel(args.cancel)
                print(f"cancelled {cancelled} queued job(s) of campaign {args.cancel}")
            elif args.fleet is not None:
                campaign_id = args.run if args.run is not None else args.resume
                if args.resume is not None:
                    # Forced recovery must happen before any launcher is
                    # live (it reclaims *all* RUNNING jobs); the fleet's
                    # own launchers then resolve and re-run them.
                    store.reclaim(campaign_id, 0.0, force=True)
                fleet = LauncherFleet(
                    store,
                    campaign_id,
                    size=args.fleet,
                    workspace=args.workspace,
                    workers_per_launcher=args.workers,
                    min_workers=args.min_workers,
                    seed=args.seed,
                    lease_s=args.lease,
                    retries=args.retries,
                    partitions=(
                        [p for p in args.partitions.split(",") if p]
                        if args.partitions
                        else None
                    ),
                    metrics=metrics,
                    watch=print if args.watch else None,
                )
                if args.chaos_kill_every is not None:
                    fleet.killer = WorkerKiller(
                        fleet,
                        every_frames=args.chaos_kill_every,
                        metrics=metrics,
                        metric_name="fleet.chaos.faults_total",
                    )
                counts = fleet.run()
                summary = ", ".join(
                    f"{counts[s]} {s}" for s in JOB_STATES if counts[s]
                )
                print(
                    f"campaign {campaign_id} drained by {args.fleet} "
                    f"launcher(s): {summary} "
                    f"({fleet.respawns} respawn(s), {fleet.crash_loops} "
                    f"crash-loop(s))"
                )
                if counts["FAILED"]:
                    exit_code = 1
            else:
                campaign_id = args.run if args.run is not None else args.resume
                retry_policy = (
                    RetryPolicy(
                        max_attempts=args.retries + 1,
                        base_delay_s=0.05,
                        seed=args.seed,
                    )
                    if args.retries > 0
                    else None
                )
                launcher = Launcher(
                    store,
                    campaign_id,
                    workspace=args.workspace,
                    workers=args.workers,
                    seed=args.seed,
                    metrics=metrics,
                    retry_policy=retry_policy,
                    breaker=CircuitBreaker(metrics=metrics, name="campaign"),
                    lease_s=args.lease,
                )
                counts = launcher.run(resume=args.resume is not None)
                summary = ", ".join(
                    f"{counts[s]} {s}" for s in JOB_STATES if counts[s]
                )
                print(f"campaign {campaign_id} drained: {summary}")
                if counts["FAILED"]:
                    exit_code = 1
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        exit_code = 1
    finally:
        # Same parity rule as repro-cycle/repro-serve: the snapshot is
        # written even when the run failed or crashed mid-campaign.
        if args.metrics_json and metrics is not None:
            try:
                metrics.write_json(args.metrics_json)
            except OSError as exc:
                print(f"error: cannot write {args.metrics_json}: {exc}",
                      file=sys.stderr)
                return 1
    return exit_code


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
