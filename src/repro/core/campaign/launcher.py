"""The campaign launcher: a bounded worker pool draining the job DAG.

Workers repeatedly lease the lowest-id READY job from the
:class:`~repro.core.campaign.store.CampaignStore` and execute it
through the existing :class:`~repro.core.pipeline.PhasePipeline`
(generation → extraction → a campaign-specific persist phase), with
the same admission-control discipline as the knowledge service: the
pool is bounded, a tripped :class:`~repro.core.resilience.
CircuitBreaker` pauses acquisition instead of hammering a failing
backend, and every transient failure retries under a deterministic
:class:`~repro.core.resilience.RetryPolicy`.

Exactly-once across two databases
---------------------------------
The campaign store and the knowledge backend cannot share one
transaction, so a crash between "knowledge committed" and "job marked
DONE" would naively re-run the job and duplicate its rows.  Instead
every knowledge object a job persists is tagged with the job's unique
idempotency token (``parameters["campaign_job"]``) and the expected
row count (``parameters["campaign_total"]``), all in one backend
transaction.  When a crashed launcher's RUNNING jobs are reclaimed,
:meth:`Launcher.resolve` consults the knowledge backend:

* token absent → the persist never committed → requeue (zero lost);
* token present and complete → *adopt*: mark the job DONE with the
  ids the dead launcher already persisted (zero duplicated);
* token present but short of ``campaign_total`` (a partial multi-shard
  service commit) → delete the partial rows and requeue.

A job whose extraction legitimately yields no taggable knowledge
persists a single *marker* row instead, so adoption can always tell
"committed with nothing to report" from "never committed".
"""

from __future__ import annotations

import os
import threading
import time
from pathlib import Path
from typing import TYPE_CHECKING, Callable

from repro.core.campaign.store import RESTARTING, CampaignStore, JobRow
from repro.core.campaign.spec import job_jube_xml
from repro.core.cycle import ExtractionPhase, GenerationPhase
from repro.core.explorer.comparison import ComparisonView
from repro.core.knowledge import IO500Knowledge, Knowledge
from repro.core.persistence.backend import ResilientBackend
from repro.core.persistence.database import KnowledgeDatabase
from repro.core.persistence.io500_repo import IO500Repository
from repro.core.persistence.repository import KnowledgeRepository
from repro.core.pipeline import (
    CycleContext,
    FailurePolicy,
    PhaseObserver,
    PhasePipeline,
    PhaseRegistry,
)
from repro.core.resilience import CircuitBreaker, RetryPolicy
from repro.core.service.client import ServiceClient, is_service_url, is_tcp_url
from repro.iostack.stack import Testbed
from repro.util.errors import (
    CampaignError,
    LeaseLostError,
    PersistenceError,
    ReproError,
)
from repro.util.rng import derive_seed

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.core.metrics import MetricsRegistry

__all__ = ["TOKEN_PARAMETER", "Launcher", "open_sink"]

#: Knowledge-parameter key carrying the job's idempotency token.
TOKEN_PARAMETER = "campaign_job"
#: Knowledge-parameter key carrying the job's expected row count.
TOTAL_PARAMETER = "campaign_total"
#: Knowledge-parameter key marking a synthetic zero-result row.
MARKER_PARAMETER = "campaign_marker"


# ----------------------------------------------------------------------
# knowledge sinks: one write/lookup discipline per backend flavour
# ----------------------------------------------------------------------
class _DatabaseSink:
    """Direct SQLite knowledge backend shared by all launcher workers.

    One connection (``check_same_thread=False``) serialised by a lock —
    the same single-writer discipline the service applies per shard.
    A job's rows (benchmark knowledge and any IO500 rows) land in one
    transaction, which is what makes token lookup a reliable witness.
    """

    def __init__(self, target: str, *, metrics: "MetricsRegistry | None" = None) -> None:
        self._db = KnowledgeDatabase(target, metrics=metrics, check_same_thread=False)
        self._backend = ResilientBackend(self._db, metrics=metrics)
        self.repository = KnowledgeRepository(self._backend)
        self._io500 = IO500Repository(self._backend)
        self._lock = threading.Lock()

    def save_tagged(
        self, objects: list[Knowledge], io500: list[IO500Knowledge]
    ) -> list[int]:
        with self._lock, self._backend.transaction():
            ids = [self.repository.save(k) for k in objects]
            for k in io500:
                self._io500.save(k)
            return ids

    def find_ids_by_token(self, token: str) -> list[int]:
        with self._lock:
            return self.repository.find_ids_by_parameter(TOKEN_PARAMETER, token)

    def fetch_many(self, ids: list[int]) -> list[Knowledge]:
        with self._lock:
            return self.repository.fetch_many(ids)

    def delete(self, knowledge_id: int) -> None:
        with self._lock:
            self.repository.delete(knowledge_id)

    def close(self) -> None:
        self._backend.flush()
        self._db.close()


class _ServiceSink:
    """``knowledge+service://`` or ``knowledge+tcp://`` backend.

    Both are thread-safe: the embedded service serialises through its
    queue, and the TCP client pools connections per request.  A remote
    URL lets a campaign drain against a ``repro-serve --listen`` server
    in another process — launcher and store no longer share a fate.
    """

    def __init__(self, url: str, *, metrics: "MetricsRegistry | None" = None) -> None:
        self._client = ServiceClient.open(url, metrics=metrics)

    def save_tagged(
        self, objects: list[Knowledge], io500: list[IO500Knowledge]
    ) -> list[int]:
        if io500:
            raise CampaignError(
                "the knowledge service cannot persist IO500 knowledge; "
                "use a direct database backend URL for io500 campaigns"
            )
        return self._client.save_many(objects)

    def find_ids_by_token(self, token: str) -> list[int]:
        return self._client.find_ids_by_parameter(TOKEN_PARAMETER, token)

    def fetch_many(self, ids: list[int]) -> list[Knowledge]:
        return self._client.fetch_many(ids)

    def delete(self, knowledge_id: int) -> None:
        self._client.delete(knowledge_id)

    def close(self) -> None:
        self._client.close()


def open_sink(backend_url: str, *, metrics: "MetricsRegistry | None" = None):
    """Open the campaign knowledge sink matching a backend URL."""
    if is_service_url(backend_url) or is_tcp_url(backend_url):
        return _ServiceSink(backend_url, metrics=metrics)
    return _DatabaseSink(backend_url, metrics=metrics)


# ----------------------------------------------------------------------
# the campaign-specific persist phase
# ----------------------------------------------------------------------
class _TagAndPersistPhase:
    """Phase III variant: tag every row with the job token, save atomically."""

    name = "campaign-persist"

    def __init__(self, sink, token: str, benchmark: str) -> None:
        self.sink = sink
        self.token = token
        self.benchmark = benchmark

    def run(self, context: CycleContext) -> int:
        objects = [k for k in context.extracted if isinstance(k, Knowledge)]
        io500 = [k for k in context.extracted if isinstance(k, IO500Knowledge)]
        marker = not objects
        if marker:
            # A zero-result (or IO500-only) job still needs a durable
            # witness row, or resume could not tell it from a job whose
            # persist never committed.
            objects = [
                Knowledge(
                    benchmark=self.benchmark,
                    command="campaign-marker",
                    parameters={MARKER_PARAMETER: True},
                )
            ]
        for k in objects:
            k.parameters[TOKEN_PARAMETER] = self.token
            k.parameters[TOTAL_PARAMETER] = len(objects)
        ids = self.sink.save_tagged(objects, io500)
        context.result.knowledge_ids = [] if marker else list(ids)
        return len(ids)


class _HeartbeatObserver(PhaseObserver):
    """Extends the job lease on every phase boundary, retry, and sleep.

    Beats are owner-guarded: if the job was stolen by another launcher
    (the lease expired while this one was alive-but-slow past the
    grace the slicing below provides), the beat raises
    :class:`LeaseLostError` and the worker abandons the job.

    :meth:`guarded_sleep` is handed to the pipeline as its backoff
    sleep: a retry delay longer than a fraction of the lease is sliced
    into lease-refreshing chunks, so a healthy job mid-backoff keeps
    beating and cannot be stolen just for retrying slowly.
    """

    def __init__(self, launcher: "Launcher", job_id: int, owner: str) -> None:
        self.launcher = launcher
        self.job_id = job_id
        self.owner = owner

    def _beat(self) -> None:
        self.launcher.store.heartbeat(
            self.job_id, self.launcher.clock(), self.launcher.lease_s,
            owner=self.owner,
        )

    def guarded_sleep(self, delay_s: float) -> None:
        step = max(self.launcher.lease_s / 4.0, 1e-9)
        remaining = float(delay_s)
        while remaining > 0:
            chunk = min(step, remaining)
            self.launcher.sleep(chunk)
            remaining -= chunk
            self._beat()

    def on_phase_start(self, phase, context) -> None:
        self._beat()

    def on_phase_retry(self, phase, context, attempt, error, delay_s) -> None:
        self._beat()

    def on_phase_finish(self, phase, context, duration_s, artifacts) -> None:
        self._beat()


# ----------------------------------------------------------------------
# the launcher
# ----------------------------------------------------------------------
class Launcher:
    """Drains one campaign's READY jobs through a bounded worker pool.

    ``run(resume=True)`` is the crash-recovery entry point: RUNNING
    jobs left behind by a dead launcher are reclaimed unconditionally
    (the operator asserts no other launcher is alive), then resolved to
    adoption or a requeue before any new work starts.  Without
    ``resume``, only jobs whose lease already expired are reclaimed —
    safe when another launcher might still be heartbeating.

    ``clock`` and ``sleep`` are injectable so tests drive lease expiry
    and backoff in zero wall time.

    Fleet mode (PR 10): several ``Launcher`` *processes* may drain the
    same campaign concurrently.  Each gets a distinct ``name`` (the
    lease-owner prefix), optionally a cluster ``partition`` (only
    matching-placement jobs are acquired), steals expired leases from
    dead peers when no READY work is left, and — when an elastic
    controller is attached — parks surplus worker threads while the
    queue is shallow.  Progress is reported to the store's launcher
    scoreboard so ``--watch`` can render the fleet live.
    """

    def __init__(
        self,
        store: CampaignStore,
        campaign_id: int,
        *,
        workspace: str | Path,
        workers: int = 2,
        seed: int = 42,
        metrics: "MetricsRegistry | None" = None,
        retry_policy: RetryPolicy | None = None,
        breaker: CircuitBreaker | None = None,
        lease_s: float = 60.0,
        poll_s: float = 0.01,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
        testbed_factory: Callable[[int], Testbed] | None = None,
        name: str | None = None,
        partition: str | None = None,
        elastic: "object | None" = None,
        report_status: bool = False,
    ) -> None:
        if workers < 1:
            raise CampaignError(f"workers must be >= 1, got {workers}")
        self.store = store
        self.campaign_id = campaign_id
        self.workspace = Path(workspace)
        self.workers = workers
        self.seed = seed
        self.metrics = metrics
        self.retry_policy = retry_policy
        self.breaker = breaker
        self.lease_s = lease_s
        self.poll_s = poll_s
        self.clock = clock
        self.sleep = sleep
        self.testbed_factory = testbed_factory or (
            lambda job_seed: Testbed.fuchs_csc(seed=job_seed)
        )
        self.name = name or f"launcher-{id(self):x}"
        self.partition = partition
        #: Duck-typed elastic controller: ``allowed(queue_depth) -> int``
        #: (see :class:`repro.core.campaign.fleet.ElasticController`).
        self.elastic = elastic
        self.report_status = report_status
        self._allowed = workers  # elastic pool limit (worker 0 updates)
        self._stop = threading.Event()
        self._crash_lock = threading.Lock()
        self._crashes: list[BaseException] = []
        self._stats_lock = threading.Lock()
        self._stats = {"jobs_done": 0, "jobs_failed": 0, "steals": 0, "leases_lost": 0}
        self._sink = None

    # ------------------------------------------------------------------
    # exactly-once resolution of reclaimed jobs
    # ------------------------------------------------------------------
    def resolve(self, job: JobRow) -> str:
        """Resolve one RESTARTING job against the knowledge backend.

        Returns ``"adopted"``, ``"requeued"``, ``"cleaned"`` (partial
        rows deleted, then requeued), or ``"lost"`` when a competing
        launcher resolved the same job first — two launchers recovering
        concurrently partition the RESTARTING set through the store's
        compare-and-set transitions, and the loser simply moves on.
        """
        ids = self._sink.find_ids_by_token(job.token)
        try:
            if not ids:
                self.store.requeue(job.job_id)
                return "requeued"
            objects = self._sink.fetch_many(ids)
            total = max(
                int(o.parameters.get(TOTAL_PARAMETER, len(ids))) for o in objects
            )
            if len(ids) < total:
                # Partial multi-shard commit from the crashed attempt —
                # remove it entirely, then run the job again from scratch.
                for knowledge_id in ids:
                    try:
                        self._sink.delete(knowledge_id)
                    except PersistenceError:
                        pass  # a competing resolver already removed it
                self.store.requeue(job.job_id)
                return "cleaned"
            real = [
                o.knowledge_id
                for o in objects
                if not o.parameters.get(MARKER_PARAMETER)
            ]
            self.store.complete(job.job_id, [i for i in real if i is not None])
            return "adopted"
        except CampaignError:
            # The job left RESTARTING under our feet — another launcher
            # won the resolution race and owns the outcome now.
            return "lost"

    def _reclaim_and_resolve(self, *, force: bool) -> None:
        for job in self.store.reclaim(self.campaign_id, self.clock(), force=force):
            self.resolve(job)

    # ------------------------------------------------------------------
    # job execution
    # ------------------------------------------------------------------
    def _execute_benchmark(self, job: JobRow, owner: str) -> None:
        campaign = self.store.campaign(job.campaign_id)
        if str(campaign["benchmark"]) == "noop":
            self._execute_noop(job, owner)
            return
        job_seed = derive_seed(self.seed, "campaign-job", job.token, job.attempts)
        testbed = self.testbed_factory(job_seed)
        workspace = self.workspace / f"job-{job.job_id}-attempt-{job.attempts}"
        registry = PhaseRegistry(
            [
                GenerationPhase(),
                ExtractionPhase(),
                _TagAndPersistPhase(self._sink, job.token, str(campaign["benchmark"])),
            ]
        )
        context = CycleContext(
            testbed=testbed,
            workspace=workspace,
            backend=None,  # type: ignore[arg-type] - persist goes through the sink
            repository=None,  # type: ignore[arg-type]
            io500_repository=None,  # type: ignore[arg-type]
            modules=None,  # type: ignore[arg-type]
            viewer=None,  # type: ignore[arg-type]
            io500_viewer=None,  # type: ignore[arg-type]
            jube_xml=job_jube_xml(str(campaign["name"]), str(campaign["benchmark"]), job.params),
        )
        heart = _HeartbeatObserver(self, job.job_id, owner)
        pipeline = PhasePipeline(
            registry,
            observers=[heart],
            default_policy=FailurePolicy(retry=self.retry_policy, on_exhausted="abort"),
            sleep=heart.guarded_sleep,
        )
        result = pipeline.run(context)
        self.store.complete(job.job_id, result.knowledge_ids, owner=owner)

    def _execute_noop(self, job: JobRow, owner: str) -> None:
        """Hold real wall-clock time, then persist one tagged witness row.

        The fleet's unit of benchmark/soak work: ``duration_ms`` models
        a cluster-side run the launcher merely *waits on* (the Balsam
        situation), so N launchers overlap their waits and drain N
        times faster even on a single-core host.  The lease is
        refreshed in sub-lease slices during the hold, and the persist
        carries the same idempotency token discipline as a real job.
        """
        duration_s = float(job.params.get("duration_ms", 0.0)) / 1000.0
        deadline = self.clock() + duration_s
        while not self._stop.is_set():
            remaining = deadline - self.clock()
            if remaining <= 0:
                break
            self.sleep(min(remaining, max(self.lease_s / 4.0, 1e-9)))
            self.store.heartbeat(job.job_id, self.clock(), self.lease_s, owner=owner)
        row = Knowledge(
            benchmark="noop",
            command="noop",
            parameters={
                "duration_ms": job.params.get("duration_ms", 0.0),
                TOKEN_PARAMETER: job.token,
                TOTAL_PARAMETER: 1,
            },
        )
        ids = self._sink.save_tagged([row], [])
        self.store.complete(job.job_id, ids, owner=owner)

    def _execute_report(self, job: JobRow, owner: str) -> None:
        ids = self.store.dependency_knowledge_ids(job.job_id)
        self.store.heartbeat(job.job_id, self.clock(), self.lease_s, owner=owner)
        objects = self._sink.fetch_many(ids) if ids else []
        text = (
            ComparisonView(objects).table()
            if objects
            else "(no knowledge rows to compare)"
        )
        self.store.complete(job.job_id, [], result_text=text, owner=owner)

    def _execute(self, job: JobRow, owner: str) -> None:
        started = time.perf_counter()
        try:
            if job.kind == "report":
                self._execute_report(job, owner)
            else:
                self._execute_benchmark(job, owner)
        except LeaseLostError:
            # The job was stolen mid-run: the thief owns it now, so
            # abandon silently — recording a failure would spend the
            # thief's retry budget, and the store already refuses every
            # further write under our expired lease.
            self._note("leases_lost")
            if self.metrics is not None:
                self.metrics.counter(
                    "fleet.leases_lost_total",
                    "jobs abandoned after losing the lease to a thief",
                ).inc()
            return
        except ReproError as exc:
            if self.breaker is not None:
                self.breaker.record_failure()
            try:
                self.store.fail(
                    job.job_id, repr(exc),
                    retryable=bool(getattr(exc, "transient", False)), owner=owner,
                )
            except LeaseLostError:
                self._note("leases_lost")
                return
            self._note("jobs_failed")
            return
        if self.breaker is not None:
            self.breaker.record_success()
        self._note("jobs_done")
        if self.metrics is not None:
            self.metrics.histogram(
                "campaign.job_seconds", "job execution wall time",
                wallclock=True, kind=job.kind,
            ).observe(time.perf_counter() - started)

    # ------------------------------------------------------------------
    # the worker loop
    # ------------------------------------------------------------------
    def _note(self, key: str) -> None:
        with self._stats_lock:
            self._stats[key] += 1

    def _report_status(self, state: str, *, started_at: float | None = None) -> None:
        """Upsert this launcher's scoreboard row (best-effort)."""
        if not self.report_status:
            return
        with self._stats_lock:
            stats = dict(self._stats)
        fields: dict[str, object] = {
            "pid": os.getpid(),
            "placement": self.partition,
            "state": state,
            "pool_active": self._allowed,
            "pool_max": self.workers,
            "updated_at": time.time(),
            **stats,
        }
        if started_at is not None:
            fields["started_at"] = started_at
        try:
            self.store.report_launcher(self.campaign_id, self.name, **fields)
        except ReproError:
            pass  # the scoreboard must never take a launcher down

    def stop(self) -> None:
        """Ask every worker to finish its current job and exit."""
        self._stop.set()

    def _worker_loop(self, index: int) -> None:
        owner = f"{self.name}-w{index}"
        try:
            while not self._stop.is_set():
                if self.elastic is not None:
                    if index == 0:
                        # Worker 0 re-sizes the pool from the queue
                        # depth: a deterministic function, so every
                        # launcher in the fleet converges on the same
                        # size for the same backlog.
                        self._allowed = int(
                            self.elastic.allowed(
                                self.store.ready_count(self.campaign_id)
                            )
                        )
                    if index >= self._allowed:
                        # Parked: the queue is too shallow to feed this
                        # worker.  Keep polling — depth can grow again.
                        if self.store.active_count(self.campaign_id) == 0:
                            return
                        self.sleep(self.poll_s)
                        continue
                self.store.mark_ready(self.campaign_id)
                job = self.store.acquire(
                    self.campaign_id, owner, self.clock(), self.lease_s,
                    partition=self.partition,
                )
                if job is None:
                    # No READY work: try stealing an expired lease from
                    # a dead (or stalled) peer before going idle.
                    stolen = self.store.steal(
                        self.campaign_id, owner, self.clock()
                    )
                    if stolen is not None:
                        self._note("steals")
                        self.resolve(stolen)
                        self._report_status("running")
                        continue
                    # A thief killed mid-resolution leaves its stolen
                    # job parked in RESTARTING with no lease to expire;
                    # resolving those while idle keeps the fleet live
                    # without waiting for a launcher restart.
                    for job_id in self.store.job_ids_in_state(
                        self.campaign_id, RESTARTING, limit=4
                    ):
                        self.resolve(self.store.job(job_id))
                    if self.store.active_count(self.campaign_id) == 0:
                        return
                    self.sleep(self.poll_s)
                    continue
                if self.breaker is not None and not self.breaker.allow():
                    # Hand the job back untouched (no retry budget
                    # spent) and back off while the breaker cools down.
                    self.store.release(job.job_id)
                    self.sleep(self.poll_s)
                    continue
                self._execute(job, owner)
                self._report_status("running")
        except BaseException as exc:  # noqa: BLE001 - surfaced from run()
            # A non-ReproError escaping a worker is a launcher crash
            # (tests inject these at state-transition checkpoints).
            # Stop the pool and let run() re-raise it.
            with self._crash_lock:
                self._crashes.append(exc)
            self._stop.set()

    def run(self, *, resume: bool = False) -> dict[str, int]:
        """Drain the campaign; returns the final per-state counts.

        Propagates the first worker crash (after stopping the pool),
        leaving the store checkpointed exactly at the crash point —
        a subsequent ``run(resume=True)`` completes the campaign with
        zero lost and zero duplicated knowledge rows.
        """
        self._stop.clear()
        self._crashes.clear()
        self._sink = open_sink(
            str(self.store.campaign(self.campaign_id)["backend_url"]),
            metrics=self.metrics,
        )
        try:
            # Recover first: reclaim dead-launcher RUNNING jobs and any
            # job that crashed mid-requeue (stuck RESTARTING), resolving
            # each to adoption or a clean requeue before new work starts.
            self._reclaim_and_resolve(force=resume)
            for job in self.store.jobs(self.campaign_id):
                if job.state == RESTARTING:
                    self.resolve(job)
            self.store.mark_ready(self.campaign_id)
            if self.elastic is not None:
                # Size the pool before any worker runs: otherwise a
                # surplus worker could claim a job in the window before
                # worker 0's first resize.
                self._allowed = int(
                    self.elastic.allowed(self.store.ready_count(self.campaign_id))
                )
            self._report_status("running", started_at=time.time())
            threads = [
                threading.Thread(
                    target=self._worker_loop, args=(i,), name=f"campaign-worker-{i}",
                    daemon=True,
                )
                for i in range(self.workers)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            if self._crashes:
                self._report_status("crashed")
                raise self._crashes[0]
            self._report_status("done")
            return self.store.counts(self.campaign_id)
        finally:
            self._sink.close()
            self._sink = None
