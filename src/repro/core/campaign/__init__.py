"""Campaign orchestrator: persistent job DAG + launcher worker pool.

The paper's workflow is *automated* knowledge generation: JUBE drives
parameterized benchmark campaigns whose results feed the knowledge
cycle.  A single ``repro-cycle`` invocation is one foreground
revolution; this subsystem is what lets an operator declare "sweep IOR
over these 24 transfer-size/node-count combinations, then compare" and
walk away:

* :mod:`~repro.core.campaign.spec` — a campaign TOML is expanded into
  one job per parameter combination (``jube.parameters`` cartesian
  expansion) plus a report job that depends on every sweep run.
* :mod:`~repro.core.campaign.store` — jobs persist in SQLite with a
  ``CREATED → READY → RUNNING → DONE | FAILED | RESTARTING`` state
  machine, dependency edges forming a DAG, retry budgets, and a
  lease/heartbeat column so a crashed launcher's RUNNING jobs are
  reclaimed deterministically.
* :mod:`~repro.core.campaign.launcher` — a bounded worker pool drains
  READY jobs, executes each through the existing
  :class:`~repro.core.pipeline.PhasePipeline`, persists knowledge
  through any backend URL (including ``knowledge+service://``), and
  checkpoints after every state transition so ``--resume`` picks up a
  killed campaign mid-sweep with zero lost or duplicated runs.
* :mod:`~repro.core.campaign.fleet` — N competing launcher *processes*
  drain one store concurrently: supervised spawning, lease stealing
  with deterministic tie-breaking, elastic per-launcher pools and
  placement-aware acquisition (``--fleet N --watch``).
* :mod:`~repro.core.campaign.cli` — the ``repro-campaign`` operator
  console (``--submit`` / ``--status`` / ``--run`` / ``--resume`` /
  ``--cancel`` / ``--fleet`` / ``--metrics-json``).
"""

from repro.core.campaign.fleet import (
    ElasticBounds,
    ElasticController,
    LauncherFleet,
    render_fleet_view,
)
from repro.core.campaign.launcher import Launcher
from repro.core.campaign.spec import CampaignSpec, JobSpec, job_jube_xml, parse_campaign_toml
from repro.core.campaign.store import (
    JOB_STATES,
    CampaignStore,
    JobRow,
)

__all__ = [
    "CampaignSpec",
    "JobSpec",
    "parse_campaign_toml",
    "job_jube_xml",
    "CampaignStore",
    "JobRow",
    "JOB_STATES",
    "Launcher",
    "LauncherFleet",
    "ElasticBounds",
    "ElasticController",
    "render_fleet_view",
]
