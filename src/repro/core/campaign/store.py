"""The persistent campaign job store: a SQLite-backed job DAG.

Balsam-style orchestration (persistent job database + launcher +
state machine) adapted to the knowledge cycle.  Each job row carries:

* a benchmark spec (work name + fully-expanded parameter dict),
* a state machine ``CREATED → READY → RUNNING → DONE | FAILED |
  RESTARTING`` (``RESTARTING`` is the transit state between a failed /
  reclaimed attempt and its requeue),
* dependency edges forming a DAG (the report job waits on every sweep
  run; a permanently failed dependency cascades),
* a retry budget (``attempts`` / ``max_attempts``; the launcher wires
  its :class:`~repro.core.resilience.RetryPolicy` backoff to requeues),
* a lease (``lease_owner`` / ``lease_expires_at``) heartbeaten by the
  launcher so a crashed launcher's RUNNING jobs are reclaimed
  *deterministically* — reclamation is a pure function of the clock
  value passed in, never of wall time observed inside the store,
* an optional ``placement`` key routing the job to the launcher that
  declared the matching cluster partition (honored at :meth:`acquire`),
* an idempotency ``token`` stamped into every knowledge row the job
  persists, which is what makes crash-resume exactly-once: a reclaimed
  job whose token is already present in the knowledge backend is
  *adopted* (marked DONE with the existing ids) instead of re-run.

Every state transition commits immediately — the store *is* the
checkpoint, so a launcher killed between any two transitions resumes
from exactly the committed state.  All transitions are validated
against the state machine and counted in the ``campaign.*`` metrics
family when a :class:`~repro.core.metrics.MetricsRegistry` is attached.

Fleet-safe by construction
--------------------------
Since PR 10 *many launcher processes* drain one store concurrently:
file-backed stores open in WAL mode with a generous busy timeout, and
every state transition is a compare-and-set ``UPDATE … WHERE state =
<observed>`` (plus any extra lease guards) so two launchers can never
commit conflicting transitions — the loser of a race sees zero updated
rows and either retries the next candidate (:meth:`acquire`,
:meth:`steal`) or learns its lease is gone
(:class:`~repro.util.errors.LeaseLostError`).  Lease reclaim and
stealing scan only ``(campaign_id, state, lease_expires_at)`` through a
covering index, so finding expired work is O(expired), not a
full-table sweep at 10k+ jobs.
"""

from __future__ import annotations

import json
import sqlite3
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Sequence

from repro.core.campaign.spec import CampaignSpec
from repro.util.errors import CampaignError, LeaseLostError, PersistenceError

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.core.metrics import MetricsRegistry

__all__ = [
    "JOB_STATES",
    "ALLOWED_TRANSITIONS",
    "SCHEMA_VERSION",
    "JobRow",
    "CampaignStore",
]

#: Bump on incompatible campaign-table layout changes.  v2 added the
#: ``placement`` column (v1 stores are migrated in place on open).
SCHEMA_VERSION = 2

CREATED = "CREATED"
READY = "READY"
RUNNING = "RUNNING"
DONE = "DONE"
FAILED = "FAILED"
RESTARTING = "RESTARTING"

JOB_STATES = (CREATED, READY, RUNNING, DONE, FAILED, RESTARTING)

#: The job state machine.  DONE and FAILED are terminal.
ALLOWED_TRANSITIONS: dict[str, tuple[str, ...]] = {
    CREATED: (READY, FAILED),
    READY: (RUNNING, FAILED),
    RUNNING: (DONE, FAILED, RESTARTING),
    RESTARTING: (READY, DONE, FAILED),
    DONE: (),
    FAILED: (),
}

_DDL = """
CREATE TABLE IF NOT EXISTS campaign_meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS campaigns (
    id          INTEGER PRIMARY KEY,
    name        TEXT NOT NULL,
    benchmark   TEXT NOT NULL,
    backend_url TEXT NOT NULL,
    spec_json   TEXT NOT NULL,
    cancelled   INTEGER NOT NULL DEFAULT 0
);
CREATE TABLE IF NOT EXISTS campaign_jobs (
    id                 INTEGER PRIMARY KEY,
    campaign_id        INTEGER NOT NULL REFERENCES campaigns(id) ON DELETE CASCADE,
    name               TEXT NOT NULL,
    kind               TEXT NOT NULL DEFAULT 'benchmark',
    state              TEXT NOT NULL DEFAULT 'CREATED',
    params_json        TEXT NOT NULL,
    token              TEXT NOT NULL UNIQUE,
    attempts           INTEGER NOT NULL DEFAULT 0,
    max_attempts       INTEGER NOT NULL DEFAULT 3,
    lease_owner        TEXT,
    lease_expires_at   REAL,
    placement          TEXT,
    knowledge_ids_json TEXT,
    result_text        TEXT,
    error              TEXT
,
    UNIQUE (campaign_id, name)
);
CREATE TABLE IF NOT EXISTS campaign_job_deps (
    job_id     INTEGER NOT NULL REFERENCES campaign_jobs(id) ON DELETE CASCADE,
    depends_on INTEGER NOT NULL REFERENCES campaign_jobs(id) ON DELETE CASCADE,
    PRIMARY KEY (job_id, depends_on)
);
CREATE TABLE IF NOT EXISTS campaign_launchers (
    campaign_id INTEGER NOT NULL REFERENCES campaigns(id) ON DELETE CASCADE,
    launcher    TEXT NOT NULL,
    pid         INTEGER,
    placement   TEXT,
    state       TEXT NOT NULL DEFAULT 'running',
    jobs_done   INTEGER NOT NULL DEFAULT 0,
    jobs_failed INTEGER NOT NULL DEFAULT 0,
    steals      INTEGER NOT NULL DEFAULT 0,
    leases_lost INTEGER NOT NULL DEFAULT 0,
    pool_active INTEGER NOT NULL DEFAULT 0,
    pool_max    INTEGER NOT NULL DEFAULT 0,
    started_at  REAL,
    updated_at  REAL,
    PRIMARY KEY (campaign_id, launcher)
);
CREATE INDEX IF NOT EXISTS idx_campaign_jobs_state
    ON campaign_jobs (campaign_id, state);
CREATE INDEX IF NOT EXISTS idx_campaign_jobs_lease
    ON campaign_jobs (campaign_id, state, lease_expires_at);
"""

#: Fields :meth:`CampaignStore.report_launcher` may upsert.
_LAUNCHER_FIELDS = frozenset(
    {
        "pid", "placement", "state", "jobs_done", "jobs_failed",
        "steals", "leases_lost", "pool_active", "pool_max",
        "started_at", "updated_at",
    }
)


class _Expr:
    """A raw SQL right-hand side for one transition assignment.

    Used where the new value must be computed *inside* the UPDATE
    (``attempts = attempts + 1``) so a compare-and-set claim can never
    write a stale counter read from before the race was won.
    """

    __slots__ = ("sql",)

    def __init__(self, sql: str) -> None:
        self.sql = sql


@dataclass(frozen=True, slots=True)
class JobRow:
    """A point-in-time snapshot of one job row."""

    job_id: int
    campaign_id: int
    name: str
    kind: str
    state: str
    params: dict[str, str]
    token: str
    attempts: int
    max_attempts: int
    lease_owner: str | None
    lease_expires_at: float | None
    placement: str | None
    knowledge_ids: tuple[int, ...]
    result_text: str | None
    error: str | None


#: Transition hook: ``(job, old_state, new_state, when)`` with ``when``
#: in ``("pre", "post")`` — fired before and after the commit.  Tests
#: raise from it to crash the launcher on either side of a checkpoint.
TransitionHook = Callable[[JobRow, str, str, str], None]


class CampaignStore:
    """Durable campaign/job DAG in one SQLite file.

    One connection per process, shared across launcher workers; an
    internal re-entrant lock serialises same-process access, WAL mode
    plus compare-and-set transitions serialise *cross-process* access,
    and each state transition commits before it returns, which is the
    crash-safety contract ``--resume`` and the launcher fleet rely on.
    """

    def __init__(
        self,
        target: str | Path,
        *,
        metrics: "MetricsRegistry | None" = None,
        on_transition: TransitionHook | None = None,
    ) -> None:
        self.target = str(target)
        self.metrics = metrics
        self.on_transition = on_transition
        self._lock = threading.RLock()
        if self.target != ":memory:":
            try:
                Path(self.target).parent.mkdir(parents=True, exist_ok=True)
            except OSError as exc:
                raise PersistenceError(
                    f"cannot create campaign store directory for {target!r}: {exc}"
                ) from exc
        try:
            self._conn = sqlite3.connect(self.target, check_same_thread=False)
            self._conn.row_factory = sqlite3.Row
            self._conn.execute("PRAGMA foreign_keys = ON")
            # Competing launcher processes share one store: wait out a
            # busy writer instead of failing, and use WAL so readers
            # never block the single writer.  synchronous=NORMAL in WAL
            # keeps every commit consistent across process crashes
            # (SIGKILL included) — exactly the durability the state
            # machine needs — without an fsync per transition.
            self._conn.execute("PRAGMA busy_timeout = 30000")
            if self.target != ":memory:":
                self._conn.execute("PRAGMA journal_mode = WAL")
                self._conn.execute("PRAGMA synchronous = NORMAL")
            self._conn.executescript(_DDL)
            self._check_schema_version()
            self._conn.commit()
        except sqlite3.Error as exc:
            raise PersistenceError(
                f"cannot open campaign store {target!r}: {exc}"
            ) from exc
        self._closed = False

    def _check_schema_version(self) -> None:
        row = self._conn.execute(
            "SELECT value FROM campaign_meta WHERE key = 'schema_version'"
        ).fetchone()
        if row is None:
            self._conn.execute(
                "INSERT INTO campaign_meta (key, value) VALUES ('schema_version', ?)",
                (str(SCHEMA_VERSION),),
            )
        elif int(row["value"]) == 1:
            # v1 -> v2: the placement column is new; existing jobs are
            # unplaced, which every launcher may acquire — the exact
            # semantics those campaigns had before the upgrade.
            self._conn.execute(
                "ALTER TABLE campaign_jobs ADD COLUMN placement TEXT"
            )
            self._conn.execute(
                "UPDATE campaign_meta SET value = ? WHERE key = 'schema_version'",
                (str(SCHEMA_VERSION),),
            )
        elif int(row["value"]) != SCHEMA_VERSION:
            raise PersistenceError(
                f"campaign store {self.target!r} has schema version {row['value']}; "
                f"this build understands {SCHEMA_VERSION}"
            )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Close the store connection; safe to call more than once."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._conn.close()

    def __enter__(self) -> "CampaignStore":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise PersistenceError(f"campaign store {self.target!r} is closed")

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit(self, spec: CampaignSpec, backend_url: str) -> int:
        """Persist a campaign and its expanded job DAG; returns its id.

        Jobs land in CREATED, then the ready sweep promotes every job
        with no unfinished dependencies to READY — all in one
        transaction, so a campaign is never visible half-submitted.
        """
        jobs = spec.expand()
        with self._lock:
            self._check_open()
            try:
                cur = self._conn.execute(
                    "INSERT INTO campaigns (name, benchmark, backend_url, spec_json) "
                    "VALUES (?, ?, ?, ?)",
                    (spec.name, spec.benchmark, backend_url, spec.to_json()),
                )
                campaign_id = int(cur.lastrowid)
                next_id = int(
                    self._conn.execute(
                        "SELECT COALESCE(MAX(id), 0) + 1 FROM campaign_jobs"
                    ).fetchone()[0]
                )
                name_to_id = {job.name: next_id + i for i, job in enumerate(jobs)}
                self._conn.executemany(
                    "INSERT INTO campaign_jobs "
                    "(id, campaign_id, name, kind, state, params_json, token, "
                    " max_attempts, placement) "
                    "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
                    [
                        (
                            name_to_id[job.name],
                            campaign_id,
                            job.name,
                            job.kind,
                            CREATED,
                            json.dumps(job.params, sort_keys=True),
                            f"campaign-{campaign_id}/{job.name}",
                            spec.max_attempts,
                            job.placement,
                        )
                        for job in jobs
                    ],
                )
                self._conn.executemany(
                    "INSERT INTO campaign_job_deps (job_id, depends_on) VALUES (?, ?)",
                    [
                        (name_to_id[job.name], name_to_id[dep])
                        for job in jobs
                        for dep in job.depends
                    ],
                )
                self._conn.commit()
            except sqlite3.Error as exc:
                self._conn.rollback()
                raise PersistenceError(f"cannot submit campaign: {exc}") from exc
            self.mark_ready(campaign_id)
            return campaign_id

    # ------------------------------------------------------------------
    # row access
    # ------------------------------------------------------------------
    def _row(self, job_id: int) -> sqlite3.Row:
        row = self._conn.execute(
            "SELECT * FROM campaign_jobs WHERE id = ?", (job_id,)
        ).fetchone()
        if row is None:
            raise CampaignError(f"no campaign job with id {job_id}")
        return row

    @staticmethod
    def _to_jobrow(row: sqlite3.Row) -> JobRow:
        ids = row["knowledge_ids_json"]
        return JobRow(
            job_id=int(row["id"]),
            campaign_id=int(row["campaign_id"]),
            name=row["name"],
            kind=row["kind"],
            state=row["state"],
            params=json.loads(row["params_json"]),
            token=row["token"],
            attempts=int(row["attempts"]),
            max_attempts=int(row["max_attempts"]),
            lease_owner=row["lease_owner"],
            lease_expires_at=row["lease_expires_at"],
            placement=row["placement"],
            knowledge_ids=tuple(json.loads(ids)) if ids else (),
            result_text=row["result_text"],
            error=row["error"],
        )

    def job(self, job_id: int) -> JobRow:
        """Snapshot one job row."""
        with self._lock:
            self._check_open()
            return self._to_jobrow(self._row(job_id))

    def jobs(self, campaign_id: int) -> list[JobRow]:
        """Snapshot every job of one campaign, in id order."""
        with self._lock:
            self._check_open()
            rows = self._conn.execute(
                "SELECT * FROM campaign_jobs WHERE campaign_id = ? ORDER BY id",
                (campaign_id,),
            ).fetchall()
            return [self._to_jobrow(r) for r in rows]

    def campaign(self, campaign_id: int) -> dict[str, object]:
        """The campaign row (name, benchmark, backend URL, spec JSON)."""
        with self._lock:
            self._check_open()
            row = self._conn.execute(
                "SELECT * FROM campaigns WHERE id = ?", (campaign_id,)
            ).fetchone()
            if row is None:
                raise CampaignError(f"no campaign with id {campaign_id}")
            return dict(row)

    def campaigns(self) -> list[dict[str, object]]:
        """Every campaign row, in id order."""
        with self._lock:
            self._check_open()
            rows = self._conn.execute("SELECT * FROM campaigns ORDER BY id").fetchall()
            return [dict(r) for r in rows]

    def counts(self, campaign_id: int) -> dict[str, int]:
        """Exact per-state job counts (every state, zero-filled)."""
        with self._lock:
            self._check_open()
            out = {state: 0 for state in JOB_STATES}
            for row in self._conn.execute(
                "SELECT state, COUNT(*) AS n FROM campaign_jobs "
                "WHERE campaign_id = ? GROUP BY state",
                (campaign_id,),
            ).fetchall():
                out[row["state"]] = int(row["n"])
            return out

    def active_count(self, campaign_id: int) -> int:
        """Jobs not yet in a terminal state."""
        counts = self.counts(campaign_id)
        return sum(n for state, n in counts.items() if state not in (DONE, FAILED))

    def placements(self, campaign_id: int) -> list[str]:
        """Distinct placement values among the campaign's active jobs.

        The fleet coordinator checks these against its partition list:
        a placement no launcher serves would stall those jobs forever.
        """
        with self._lock:
            self._check_open()
            rows = self._conn.execute(
                "SELECT DISTINCT placement FROM campaign_jobs "
                "WHERE campaign_id = ? AND placement IS NOT NULL "
                "AND state NOT IN (?, ?) ORDER BY placement",
                (campaign_id, DONE, FAILED),
            ).fetchall()
            return [str(r["placement"]) for r in rows]

    def ready_count(self, campaign_id: int) -> int:
        """Queue depth: READY jobs waiting for a worker."""
        with self._lock:
            self._check_open()
            return int(
                self._conn.execute(
                    "SELECT COUNT(*) FROM campaign_jobs "
                    "WHERE campaign_id = ? AND state = ?",
                    (campaign_id, READY),
                ).fetchone()[0]
            )

    def job_ids_in_state(
        self, campaign_id: int, state: str, *, limit: int = 16
    ) -> list[int]:
        """Lowest job ids currently in one state (via the state index)."""
        if state not in JOB_STATES:
            raise CampaignError(f"unknown job state {state!r}")
        with self._lock:
            self._check_open()
            rows = self._conn.execute(
                "SELECT id FROM campaign_jobs WHERE campaign_id = ? AND state = ? "
                "ORDER BY id LIMIT ?",
                (campaign_id, state, limit),
            ).fetchall()
            return [int(r["id"]) for r in rows]

    def dependency_knowledge_ids(self, job_id: int) -> list[int]:
        """Knowledge ids persisted by a job's (DONE) dependencies."""
        with self._lock:
            self._check_open()
            rows = self._conn.execute(
                "SELECT j.knowledge_ids_json AS ids FROM campaign_job_deps d "
                "JOIN campaign_jobs j ON j.id = d.depends_on "
                "WHERE d.job_id = ? ORDER BY j.id",
                (job_id,),
            ).fetchall()
            out: list[int] = []
            for row in rows:
                if row["ids"]:
                    out.extend(json.loads(row["ids"]))
            return out

    # ------------------------------------------------------------------
    # the state machine
    # ------------------------------------------------------------------
    def _transition(
        self,
        job_id: int,
        new_state: str,
        *,
        sets: dict[str, object] | None = None,
        guard: dict[str, object] | None = None,
        stale_ok: bool = False,
    ) -> JobRow | None:
        """Apply one validated, compare-and-set state transition.

        The UPDATE is guarded by the *observed* old state (plus any
        extra ``guard`` columns, compared null-safely with ``IS``), so
        a competing launcher process that committed first makes this
        attempt a no-op: with ``stale_ok`` the caller gets ``None`` and
        moves on to its next candidate, otherwise the race is surfaced
        as :class:`CampaignError` — or :class:`LeaseLostError` when the
        guard involved the lease owner, because losing that guard means
        the job was stolen.

        The ``pre`` hook fires before anything is written (a crash
        there leaves the old state committed); the ``post`` hook fires
        after the commit (a crash there leaves the new state durable) —
        together they let tests kill the launcher on either side of
        every checkpoint.
        """
        with self._lock:
            self._check_open()
            row = self._row(job_id)
            old = row["state"]
            if new_state not in ALLOWED_TRANSITIONS[old]:
                if stale_ok:
                    return None
                if guard and "lease_owner" in guard:
                    # The caller held a lease on this job but the state
                    # machine has moved past it — the job was stolen and
                    # already resolved, so this is a lost lease, not an
                    # orchestration bug.
                    raise LeaseLostError(
                        f"job {row['name']!r}: lease lost before "
                        f"{old} -> {new_state} (job moved on)"
                    )
                raise CampaignError(
                    f"job {row['name']!r}: illegal transition {old} -> {new_state}"
                )
            snapshot = self._to_jobrow(row)
            if self.on_transition is not None:
                self.on_transition(snapshot, old, new_state, "pre")
            assignments: dict[str, object] = {"state": new_state}
            assignments.update(sets or {})
            columns, params = [], []
            for key, value in assignments.items():
                if isinstance(value, _Expr):
                    columns.append(f"{key} = {value.sql}")
                else:
                    columns.append(f"{key} = ?")
                    params.append(value)
            conditions, cond_params = ["id = ?", "state = ?"], [job_id, old]
            for key, value in (guard or {}).items():
                conditions.append(f"{key} IS ?")  # null-safe equality
                cond_params.append(value)
            try:
                cur = self._conn.execute(
                    f"UPDATE campaign_jobs SET {', '.join(columns)} "
                    f"WHERE {' AND '.join(conditions)}",
                    (*params, *cond_params),
                )
                if cur.rowcount == 0:
                    self._conn.rollback()
                    if stale_ok:
                        return None
                    current = self._row(job_id)["state"]
                    exc_type = (
                        LeaseLostError
                        if guard and "lease_owner" in guard
                        else CampaignError
                    )
                    raise exc_type(
                        f"job {row['name']!r}: lost the {old} -> {new_state} "
                        f"transition race (job is now {current})"
                    )
                self._conn.commit()
            except sqlite3.Error as exc:
                self._conn.rollback()
                raise PersistenceError(
                    f"cannot persist transition {old} -> {new_state}: {exc}"
                ) from exc
            updated = self._to_jobrow(self._row(job_id))
            self._count_transition(old, new_state)
            self._update_state_gauges(snapshot.campaign_id)
            if self.on_transition is not None:
                self.on_transition(updated, old, new_state, "post")
            return updated

    def _transition_or_raise(
        self,
        job_id: int,
        new_state: str,
        *,
        sets: dict[str, object] | None = None,
        guard: dict[str, object] | None = None,
    ) -> JobRow:
        """:meth:`_transition` for callers that must not observe None."""
        job = self._transition(job_id, new_state, sets=sets, guard=guard)
        assert job is not None  # stale_ok=False always returns or raises
        return job

    def _deps_blocked_sql(self, blocked_state: str, comparator: str) -> str:
        """EXISTS clause over a job's dependencies (batch mark_ready)."""
        return (
            "EXISTS (SELECT 1 FROM campaign_job_deps d "
            "JOIN campaign_jobs p ON p.id = d.depends_on "
            f"WHERE d.job_id = campaign_jobs.id AND p.state {comparator} "
            f"'{blocked_state}')"
        )

    def mark_ready(self, campaign_id: int) -> int:
        """Promote CREATED jobs whose dependencies are all DONE to READY.

        A permanently FAILED dependency cascades: the dependent job is
        failed too (``error='dependency failed'``) so the DAG always
        drains.  Sweeps until a fixpoint; returns how many jobs moved.

        With no transition hook attached the sweep is *set-based*: one
        UPDATE fails every CREATED job with a FAILED dependency, one
        promotes every CREATED job with no non-DONE dependency — O(2)
        statements per sweep instead of O(jobs), which is what keeps a
        10k-job submit and the launcher's per-iteration ready sweep
        cheap.  With a hook attached the per-row path preserves the
        exact pre/post checkpoint semantics tests crash into.
        """
        moved = 0
        with self._lock:
            self._check_open()
            while True:
                if self.on_transition is None:
                    progressed = self._mark_ready_batch(campaign_id)
                else:
                    progressed = self._mark_ready_rows(campaign_id)
                moved += progressed
                if not progressed:
                    return moved

    def _mark_ready_batch(self, campaign_id: int) -> int:
        """One set-based ready sweep; returns how many jobs moved."""
        try:
            cascaded = self._conn.execute(
                "UPDATE campaign_jobs SET state = ?, error = 'dependency failed' "
                "WHERE campaign_id = ? AND state = ? AND "
                + self._deps_blocked_sql(FAILED, "="),
                (FAILED, campaign_id, CREATED),
            ).rowcount
            promoted = self._conn.execute(
                "UPDATE campaign_jobs SET state = ? "
                "WHERE campaign_id = ? AND state = ? AND NOT "
                + self._deps_blocked_sql(DONE, "!="),
                (READY, campaign_id, CREATED),
            ).rowcount
            self._conn.commit()
        except sqlite3.Error as exc:
            self._conn.rollback()
            raise PersistenceError(f"cannot sweep ready jobs: {exc}") from exc
        if self.metrics is not None:
            if cascaded:
                self.metrics.counter(
                    "campaign.transitions_total", "job state transitions",
                    **{"from": CREATED, "to": FAILED},
                ).inc(cascaded)
            if promoted:
                self.metrics.counter(
                    "campaign.transitions_total", "job state transitions",
                    **{"from": CREATED, "to": READY},
                ).inc(promoted)
            if cascaded or promoted:
                self._update_state_gauges(campaign_id)
        return cascaded + promoted

    def _mark_ready_rows(self, campaign_id: int) -> int:
        """One per-row ready sweep (hook-visible transitions)."""
        progressed = 0
        rows = self._conn.execute(
            "SELECT id FROM campaign_jobs WHERE campaign_id = ? AND state = ?",
            (campaign_id, CREATED),
        ).fetchall()
        for row in rows:
            job_id = int(row["id"])
            dep_states = [
                r["state"]
                for r in self._conn.execute(
                    "SELECT p.state AS state FROM campaign_job_deps d "
                    "JOIN campaign_jobs p ON p.id = d.depends_on "
                    "WHERE d.job_id = ?",
                    (job_id,),
                ).fetchall()
            ]
            if any(s == FAILED for s in dep_states):
                if self._transition(
                    job_id, FAILED, sets={"error": "dependency failed"},
                    stale_ok=True,
                ):
                    progressed += 1
            elif all(s == DONE for s in dep_states):
                if self._transition(job_id, READY, stale_ok=True):
                    progressed += 1
        return progressed

    def acquire(
        self,
        campaign_id: int,
        owner: str,
        now: float,
        lease_s: float,
        *,
        partition: str | None = None,
    ) -> JobRow | None:
        """Lease the lowest-id READY job: READY → RUNNING.

        Returns ``None`` when no job is ready.  A launcher that
        declares a ``partition`` acquires unplaced jobs plus the jobs
        placed on that partition; a launcher with no partition (the
        single-launcher default) acquires anything, so placement only
        constrains fleets that opted into it.  The claim itself is a
        compare-and-set UPDATE — when several launcher processes race
        for the same job exactly one wins and the others move to the
        next candidate.

        The attempt counter increments *inside* the claim — every
        RUNNING stint spends one unit of the retry budget, including
        stints that end in a crash, so a crash-looping job is bounded
        by ``max_attempts`` like any other failure mode.
        """
        with self._lock:
            self._check_open()
            where = "campaign_id = ? AND state = ?"
            params: list[object] = [campaign_id, READY]
            if partition is not None:
                where += " AND (placement IS NULL OR placement = ?)"
                params.append(partition)
            rows = self._conn.execute(
                f"SELECT id FROM campaign_jobs WHERE {where} ORDER BY id LIMIT 16",
                params,
            ).fetchall()
            for row in rows:
                claimed = self._transition(
                    int(row["id"]),
                    RUNNING,
                    sets={
                        "lease_owner": owner,
                        "lease_expires_at": now + lease_s,
                        "attempts": _Expr("attempts + 1"),
                    },
                    stale_ok=True,
                )
                if claimed is not None:
                    return claimed
            return None

    def steal(self, campaign_id: int, owner: str, now: float) -> JobRow | None:
        """Claim one expired-lease RUNNING job: RUNNING → RESTARTING.

        Work stealing for launcher fleets: the longest-expired job (ties
        broken by lowest id — deterministic, so competing stealers scan
        candidates in the same order and the compare-and-set claim picks
        exactly one winner) moves to RESTARTING with the thief recorded,
        ready for the thief to :meth:`~repro.core.campaign.launcher.
        Launcher.resolve` against the knowledge backend.  The claim is
        guarded on the *observed* lease columns, so a heartbeat racing
        the steal (the owner was slow, not dead) invalidates the claim
        and the victim keeps its job.  Returns ``None`` when nothing is
        stealable.  Scans through the ``(campaign_id, state,
        lease_expires_at)`` covering index: O(expired), not O(jobs).
        """
        with self._lock:
            self._check_open()
            rows = self._conn.execute(
                "SELECT id, lease_owner, lease_expires_at FROM campaign_jobs "
                "WHERE campaign_id = ? AND state = ? "
                "AND lease_expires_at IS NOT NULL AND lease_expires_at < ? "
                "ORDER BY lease_expires_at, id LIMIT 16",
                (campaign_id, RUNNING, now),
            ).fetchall()
            for row in rows:
                victim = row["lease_owner"]
                claimed = self._transition(
                    int(row["id"]),
                    RESTARTING,
                    sets={
                        "error": f"lease stolen by {owner} from {victim}",
                        # Record the thief: the victim's owner-guarded
                        # heartbeat/complete now fails with
                        # LeaseLostError instead of silently resurrecting
                        # a lease it lost.
                        "lease_owner": owner,
                    },
                    guard={
                        "lease_owner": victim,
                        "lease_expires_at": row["lease_expires_at"],
                    },
                    stale_ok=True,
                )
                if claimed is not None:
                    if self.metrics is not None:
                        self.metrics.counter(
                            "campaign.steals_total",
                            "expired leases stolen by competing launchers",
                        ).inc()
                    return claimed
            return None

    def heartbeat(
        self, job_id: int, now: float, lease_s: float, *, owner: str | None = None
    ) -> None:
        """Extend a RUNNING job's lease (no state transition, committed).

        With ``owner`` the extension is guarded on the lease owner: a
        launcher whose job was stolen gets :class:`LeaseLostError`
        instead of silently re-animating a lease it no longer holds —
        the abandon signal the fleet's exactly-once story rests on.
        """
        with self._lock:
            self._check_open()
            conditions, params = (
                ["id = ?", "state = ?"],
                [now + lease_s, job_id, RUNNING],
            )
            if owner is not None:
                conditions.append("lease_owner IS ?")
                params.append(owner)
            cur = self._conn.execute(
                "UPDATE campaign_jobs SET lease_expires_at = ? "
                f"WHERE {' AND '.join(conditions)}",
                params,
            )
            self._conn.commit()
            if cur.rowcount == 0:
                row = self._row(job_id)
                if row["state"] != RUNNING:
                    raise (LeaseLostError if owner is not None else CampaignError)(
                        f"job {row['name']!r}: cannot heartbeat in state {row['state']}"
                    )
                raise LeaseLostError(
                    f"job {row['name']!r}: lease now held by "
                    f"{row['lease_owner']!r}, not {owner!r}"
                )

    def complete(
        self,
        job_id: int,
        knowledge_ids: Sequence[int],
        *,
        result_text: str | None = None,
        owner: str | None = None,
    ) -> JobRow:
        """RUNNING/RESTARTING → DONE, recording the persisted knowledge ids.

        The RESTARTING path is *adoption*: a reclaimed job whose
        idempotency token was found in the knowledge backend is marked
        DONE with the rows the crashed attempt already persisted.  With
        ``owner`` the completion is lease-guarded: if the job was stolen
        mid-run the loser gets :class:`LeaseLostError` and must abandon.
        """
        job = self._transition_or_raise(
            job_id,
            DONE,
            sets={
                "knowledge_ids_json": json.dumps(sorted(int(i) for i in knowledge_ids)),
                "result_text": result_text,
                "lease_owner": None,
                "lease_expires_at": None,
                "error": None,
            },
            guard={"lease_owner": owner} if owner is not None else None,
        )
        self.mark_ready(job.campaign_id)
        return job

    def fail(
        self, job_id: int, error: str, *, retryable: bool, owner: str | None = None
    ) -> JobRow:
        """Record a failed execution: requeue within budget, else FAILED.

        A retryable failure with budget left goes RUNNING → RESTARTING
        → READY (two committed checkpoints, so a crash between them
        resumes correctly); a permanent failure or an exhausted budget
        goes to FAILED and cascades through :meth:`mark_ready`.  The
        optional ``owner`` guard mirrors :meth:`complete`.
        """
        guard = {"lease_owner": owner} if owner is not None else None
        with self._lock:
            job = self._to_jobrow(self._row(job_id))
            if retryable and job.attempts < job.max_attempts:
                self._transition_or_raise(
                    job_id, RESTARTING, sets={"error": error}, guard=guard
                )
                return self.requeue(job_id)
            failed = self._transition_or_raise(
                job_id,
                FAILED,
                sets={"error": error, "lease_owner": None, "lease_expires_at": None},
                guard=guard,
            )
            self.mark_ready(job.campaign_id)
            return failed

    def requeue(self, job_id: int) -> JobRow:
        """RESTARTING → READY (lease cleared), ready for another attempt."""
        return self._transition_or_raise(
            job_id, READY, sets={"lease_owner": None, "lease_expires_at": None}
        )

    def release(self, job_id: int) -> JobRow:
        """Give an acquired job back untouched (RUNNING → READY).

        The launcher releases a job it acquired but never started —
        e.g. when the circuit breaker rejects the slot — so the attempt
        counter is handed back too: a release spends no retry budget.
        """
        with self._lock:
            self._transition_or_raise(job_id, RESTARTING, sets={"error": "released"})
            return self._transition_or_raise(
                job_id,
                READY,
                sets={
                    "lease_owner": None,
                    "lease_expires_at": None,
                    "attempts": _Expr("MAX(0, attempts - 1)"),
                    "error": None,
                },
            )

    def reclaim(self, campaign_id: int, now: float, *, force: bool = False) -> list[JobRow]:
        """Move crashed-launcher RUNNING jobs to RESTARTING.

        A job is reclaimed when its lease expired at ``now`` (or
        unconditionally with ``force=True`` — the ``--resume`` path,
        where the operator asserts the previous launcher is dead).
        Deterministic: depends only on the committed lease columns and
        the ``now`` value passed in.  The launcher then resolves each
        reclaimed job to adoption (token found in the knowledge
        backend) or a requeue.

        The expired scan is pushed into SQL against the covering
        ``(campaign_id, state, lease_expires_at)`` index — O(expired),
        not a full RUNNING sweep — and each reclamation is a
        compare-and-set, so two launchers reclaiming concurrently
        partition the expired set instead of colliding.
        """
        with self._lock:
            self._check_open()
            if force:
                rows = self._conn.execute(
                    "SELECT id FROM campaign_jobs "
                    "WHERE campaign_id = ? AND state = ? ORDER BY id",
                    (campaign_id, RUNNING),
                ).fetchall()
            else:
                rows = self._conn.execute(
                    "SELECT id FROM campaign_jobs "
                    "WHERE campaign_id = ? AND state = ? "
                    "AND (lease_expires_at IS NULL OR lease_expires_at < ?) "
                    "ORDER BY id",
                    (campaign_id, RUNNING, now),
                ).fetchall()
            reclaimed = []
            for row in rows:
                job = self._transition(
                    int(row["id"]), RESTARTING, sets={"error": "lease expired"},
                    stale_ok=True,
                )
                if job is None:
                    continue  # a competing launcher reclaimed it first
                reclaimed.append(job)
                if self.metrics is not None:
                    self.metrics.counter(
                        "campaign.reclaims_total",
                        "RUNNING jobs reclaimed from dead launchers",
                    ).inc()
            return reclaimed

    def cancel(self, campaign_id: int) -> int:
        """Fail every non-terminal, non-RUNNING job (``error='cancelled'``).

        RUNNING jobs are left to finish (or be reclaimed); the campaign
        row is flagged so launchers stop acquiring from it.  Returns
        how many jobs were cancelled.
        """
        with self._lock:
            self._check_open()
            self.campaign(campaign_id)  # existence check
            self._conn.execute(
                "UPDATE campaigns SET cancelled = 1 WHERE id = ?", (campaign_id,)
            )
            self._conn.commit()
            cancelled = 0
            for row in self._conn.execute(
                "SELECT id, state FROM campaign_jobs WHERE campaign_id = ? "
                "AND state IN (?, ?, ?) ORDER BY id",
                (campaign_id, CREATED, READY, RESTARTING),
            ).fetchall():
                if self._transition(
                    int(row["id"]),
                    FAILED,
                    sets={"error": "cancelled", "lease_owner": None,
                          "lease_expires_at": None},
                    stale_ok=True,
                ):
                    cancelled += 1
            return cancelled

    def is_cancelled(self, campaign_id: int) -> bool:
        """Whether the campaign was cancelled."""
        return bool(self.campaign(campaign_id)["cancelled"])

    # ------------------------------------------------------------------
    # launcher status (the fleet's shared scoreboard)
    # ------------------------------------------------------------------
    def report_launcher(
        self, campaign_id: int, launcher: str, **fields: object
    ) -> None:
        """Upsert one launcher's status row (the ``--watch`` feed).

        Launcher processes periodically write their own throughput /
        steal / pool-size numbers here, so the fleet coordinator (and
        ``repro-campaign --status``) can render a live per-launcher
        view from the store alone — no extra channel between processes.
        """
        unknown = sorted(set(fields) - _LAUNCHER_FIELDS)
        if unknown:
            raise CampaignError(
                f"unknown launcher status field(s) {unknown}; "
                f"known: {sorted(_LAUNCHER_FIELDS)}"
            )
        with self._lock:
            self._check_open()
            names = list(fields)
            try:
                self._conn.execute(
                    "INSERT INTO campaign_launchers (campaign_id, launcher"
                    + "".join(f", {n}" for n in names)
                    + ") VALUES (?, ?"
                    + ", ?" * len(names)
                    + ") ON CONFLICT (campaign_id, launcher) DO UPDATE SET "
                    + ", ".join(f"{n} = excluded.{n}" for n in names),
                    (campaign_id, launcher, *[fields[n] for n in names]),
                )
                self._conn.commit()
            except sqlite3.Error as exc:
                self._conn.rollback()
                raise PersistenceError(
                    f"cannot record launcher status: {exc}"
                ) from exc

    def launcher_rows(self, campaign_id: int) -> list[dict[str, object]]:
        """Every launcher status row of one campaign, by launcher name."""
        with self._lock:
            self._check_open()
            rows = self._conn.execute(
                "SELECT * FROM campaign_launchers WHERE campaign_id = ? "
                "ORDER BY launcher",
                (campaign_id,),
            ).fetchall()
            return [dict(r) for r in rows]

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------
    def _count_transition(self, old: str, new: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(
                "campaign.transitions_total", "job state transitions",
                **{"from": old, "to": new},
            ).inc()

    def _update_state_gauges(self, campaign_id: int) -> None:
        if self.metrics is not None:
            for state, n in self.counts(campaign_id).items():
                self.metrics.gauge(
                    "campaign.jobs", "jobs by state (READY is the queue depth)",
                    state=state,
                ).set(n)
