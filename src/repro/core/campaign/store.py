"""The persistent campaign job store: a SQLite-backed job DAG.

Balsam-style orchestration (persistent job database + launcher +
state machine) adapted to the knowledge cycle.  Each job row carries:

* a benchmark spec (work name + fully-expanded parameter dict),
* a state machine ``CREATED → READY → RUNNING → DONE | FAILED |
  RESTARTING`` (``RESTARTING`` is the transit state between a failed /
  reclaimed attempt and its requeue),
* dependency edges forming a DAG (the report job waits on every sweep
  run; a permanently failed dependency cascades),
* a retry budget (``attempts`` / ``max_attempts``; the launcher wires
  its :class:`~repro.core.resilience.RetryPolicy` backoff to requeues),
* a lease (``lease_owner`` / ``lease_expires_at``) heartbeaten by the
  launcher so a crashed launcher's RUNNING jobs are reclaimed
  *deterministically* — reclamation is a pure function of the clock
  value passed in, never of wall time observed inside the store,
* an idempotency ``token`` stamped into every knowledge row the job
  persists, which is what makes crash-resume exactly-once: a reclaimed
  job whose token is already present in the knowledge backend is
  *adopted* (marked DONE with the existing ids) instead of re-run.

Every state transition commits immediately — the store *is* the
checkpoint, so a launcher killed between any two transitions resumes
from exactly the committed state.  All transitions are validated
against the state machine and counted in the ``campaign.*`` metrics
family when a :class:`~repro.core.metrics.MetricsRegistry` is attached.
"""

from __future__ import annotations

import json
import sqlite3
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Sequence

from repro.core.campaign.spec import CampaignSpec, JobSpec
from repro.util.errors import CampaignError, PersistenceError

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.core.metrics import MetricsRegistry

__all__ = [
    "JOB_STATES",
    "ALLOWED_TRANSITIONS",
    "SCHEMA_VERSION",
    "JobRow",
    "CampaignStore",
]

#: Bump on incompatible campaign-table layout changes.
SCHEMA_VERSION = 1

CREATED = "CREATED"
READY = "READY"
RUNNING = "RUNNING"
DONE = "DONE"
FAILED = "FAILED"
RESTARTING = "RESTARTING"

JOB_STATES = (CREATED, READY, RUNNING, DONE, FAILED, RESTARTING)

#: The job state machine.  DONE and FAILED are terminal.
ALLOWED_TRANSITIONS: dict[str, tuple[str, ...]] = {
    CREATED: (READY, FAILED),
    READY: (RUNNING, FAILED),
    RUNNING: (DONE, FAILED, RESTARTING),
    RESTARTING: (READY, DONE, FAILED),
    DONE: (),
    FAILED: (),
}

_DDL = """
CREATE TABLE IF NOT EXISTS campaign_meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS campaigns (
    id          INTEGER PRIMARY KEY,
    name        TEXT NOT NULL,
    benchmark   TEXT NOT NULL,
    backend_url TEXT NOT NULL,
    spec_json   TEXT NOT NULL,
    cancelled   INTEGER NOT NULL DEFAULT 0
);
CREATE TABLE IF NOT EXISTS campaign_jobs (
    id                 INTEGER PRIMARY KEY,
    campaign_id        INTEGER NOT NULL REFERENCES campaigns(id) ON DELETE CASCADE,
    name               TEXT NOT NULL,
    kind               TEXT NOT NULL DEFAULT 'benchmark',
    state              TEXT NOT NULL DEFAULT 'CREATED',
    params_json        TEXT NOT NULL,
    token              TEXT NOT NULL UNIQUE,
    attempts           INTEGER NOT NULL DEFAULT 0,
    max_attempts       INTEGER NOT NULL DEFAULT 3,
    lease_owner        TEXT,
    lease_expires_at   REAL,
    knowledge_ids_json TEXT,
    result_text        TEXT,
    error              TEXT,
    UNIQUE (campaign_id, name)
);
CREATE TABLE IF NOT EXISTS campaign_job_deps (
    job_id     INTEGER NOT NULL REFERENCES campaign_jobs(id) ON DELETE CASCADE,
    depends_on INTEGER NOT NULL REFERENCES campaign_jobs(id) ON DELETE CASCADE,
    PRIMARY KEY (job_id, depends_on)
);
CREATE INDEX IF NOT EXISTS idx_campaign_jobs_state
    ON campaign_jobs (campaign_id, state);
"""


@dataclass(frozen=True, slots=True)
class JobRow:
    """A point-in-time snapshot of one job row."""

    job_id: int
    campaign_id: int
    name: str
    kind: str
    state: str
    params: dict[str, str]
    token: str
    attempts: int
    max_attempts: int
    lease_owner: str | None
    lease_expires_at: float | None
    knowledge_ids: tuple[int, ...]
    result_text: str | None
    error: str | None


#: Transition hook: ``(job, old_state, new_state, when)`` with ``when``
#: in ``("pre", "post")`` — fired before and after the commit.  Tests
#: raise from it to crash the launcher on either side of a checkpoint.
TransitionHook = Callable[[JobRow, str, str, str], None]


class CampaignStore:
    """Durable campaign/job DAG in one SQLite file.

    One connection is shared across launcher workers; an internal
    re-entrant lock serialises every access (SQLite's single-writer
    discipline), and each state transition commits before it returns,
    which is the crash-safety contract ``--resume`` relies on.
    """

    def __init__(
        self,
        target: str | Path,
        *,
        metrics: "MetricsRegistry | None" = None,
        on_transition: TransitionHook | None = None,
    ) -> None:
        self.target = str(target)
        self.metrics = metrics
        self.on_transition = on_transition
        self._lock = threading.RLock()
        if self.target != ":memory:":
            try:
                Path(self.target).parent.mkdir(parents=True, exist_ok=True)
            except OSError as exc:
                raise PersistenceError(
                    f"cannot create campaign store directory for {target!r}: {exc}"
                ) from exc
        try:
            self._conn = sqlite3.connect(self.target, check_same_thread=False)
            self._conn.row_factory = sqlite3.Row
            self._conn.execute("PRAGMA foreign_keys = ON")
            self._conn.executescript(_DDL)
            self._check_schema_version()
            self._conn.commit()
        except sqlite3.Error as exc:
            raise PersistenceError(
                f"cannot open campaign store {target!r}: {exc}"
            ) from exc
        self._closed = False

    def _check_schema_version(self) -> None:
        row = self._conn.execute(
            "SELECT value FROM campaign_meta WHERE key = 'schema_version'"
        ).fetchone()
        if row is None:
            self._conn.execute(
                "INSERT INTO campaign_meta (key, value) VALUES ('schema_version', ?)",
                (str(SCHEMA_VERSION),),
            )
        elif int(row["value"]) != SCHEMA_VERSION:
            raise PersistenceError(
                f"campaign store {self.target!r} has schema version {row['value']}; "
                f"this build understands {SCHEMA_VERSION}"
            )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Close the store connection; safe to call more than once."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._conn.close()

    def __enter__(self) -> "CampaignStore":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise PersistenceError(f"campaign store {self.target!r} is closed")

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit(self, spec: CampaignSpec, backend_url: str) -> int:
        """Persist a campaign and its expanded job DAG; returns its id.

        Jobs land in CREATED, then the ready sweep promotes every job
        with no unfinished dependencies to READY — all in one
        transaction, so a campaign is never visible half-submitted.
        """
        jobs = spec.expand()
        with self._lock:
            self._check_open()
            try:
                cur = self._conn.execute(
                    "INSERT INTO campaigns (name, benchmark, backend_url, spec_json) "
                    "VALUES (?, ?, ?, ?)",
                    (spec.name, spec.benchmark, backend_url, spec.to_json()),
                )
                campaign_id = int(cur.lastrowid)
                name_to_id: dict[str, int] = {}
                for job in jobs:
                    cur = self._conn.execute(
                        "INSERT INTO campaign_jobs "
                        "(campaign_id, name, kind, state, params_json, token, max_attempts) "
                        "VALUES (?, ?, ?, ?, ?, ?, ?)",
                        (
                            campaign_id,
                            job.name,
                            job.kind,
                            CREATED,
                            json.dumps(job.params, sort_keys=True),
                            f"campaign-{campaign_id}/{job.name}",
                            spec.max_attempts,
                        ),
                    )
                    name_to_id[job.name] = int(cur.lastrowid)
                self._conn.executemany(
                    "INSERT INTO campaign_job_deps (job_id, depends_on) VALUES (?, ?)",
                    [
                        (name_to_id[job.name], name_to_id[dep])
                        for job in jobs
                        for dep in job.depends
                    ],
                )
                self._conn.commit()
            except sqlite3.Error as exc:
                self._conn.rollback()
                raise PersistenceError(f"cannot submit campaign: {exc}") from exc
            self.mark_ready(campaign_id)
            return campaign_id

    # ------------------------------------------------------------------
    # row access
    # ------------------------------------------------------------------
    def _row(self, job_id: int) -> sqlite3.Row:
        row = self._conn.execute(
            "SELECT * FROM campaign_jobs WHERE id = ?", (job_id,)
        ).fetchone()
        if row is None:
            raise CampaignError(f"no campaign job with id {job_id}")
        return row

    @staticmethod
    def _to_jobrow(row: sqlite3.Row) -> JobRow:
        ids = row["knowledge_ids_json"]
        return JobRow(
            job_id=int(row["id"]),
            campaign_id=int(row["campaign_id"]),
            name=row["name"],
            kind=row["kind"],
            state=row["state"],
            params=json.loads(row["params_json"]),
            token=row["token"],
            attempts=int(row["attempts"]),
            max_attempts=int(row["max_attempts"]),
            lease_owner=row["lease_owner"],
            lease_expires_at=row["lease_expires_at"],
            knowledge_ids=tuple(json.loads(ids)) if ids else (),
            result_text=row["result_text"],
            error=row["error"],
        )

    def job(self, job_id: int) -> JobRow:
        """Snapshot one job row."""
        with self._lock:
            self._check_open()
            return self._to_jobrow(self._row(job_id))

    def jobs(self, campaign_id: int) -> list[JobRow]:
        """Snapshot every job of one campaign, in id order."""
        with self._lock:
            self._check_open()
            rows = self._conn.execute(
                "SELECT * FROM campaign_jobs WHERE campaign_id = ? ORDER BY id",
                (campaign_id,),
            ).fetchall()
            return [self._to_jobrow(r) for r in rows]

    def campaign(self, campaign_id: int) -> dict[str, object]:
        """The campaign row (name, benchmark, backend URL, spec JSON)."""
        with self._lock:
            self._check_open()
            row = self._conn.execute(
                "SELECT * FROM campaigns WHERE id = ?", (campaign_id,)
            ).fetchone()
            if row is None:
                raise CampaignError(f"no campaign with id {campaign_id}")
            return dict(row)

    def campaigns(self) -> list[dict[str, object]]:
        """Every campaign row, in id order."""
        with self._lock:
            self._check_open()
            rows = self._conn.execute("SELECT * FROM campaigns ORDER BY id").fetchall()
            return [dict(r) for r in rows]

    def counts(self, campaign_id: int) -> dict[str, int]:
        """Exact per-state job counts (every state, zero-filled)."""
        with self._lock:
            self._check_open()
            out = {state: 0 for state in JOB_STATES}
            for row in self._conn.execute(
                "SELECT state, COUNT(*) AS n FROM campaign_jobs "
                "WHERE campaign_id = ? GROUP BY state",
                (campaign_id,),
            ).fetchall():
                out[row["state"]] = int(row["n"])
            return out

    def active_count(self, campaign_id: int) -> int:
        """Jobs not yet in a terminal state."""
        counts = self.counts(campaign_id)
        return sum(n for state, n in counts.items() if state not in (DONE, FAILED))

    def dependency_knowledge_ids(self, job_id: int) -> list[int]:
        """Knowledge ids persisted by a job's (DONE) dependencies."""
        with self._lock:
            self._check_open()
            rows = self._conn.execute(
                "SELECT j.knowledge_ids_json AS ids FROM campaign_job_deps d "
                "JOIN campaign_jobs j ON j.id = d.depends_on "
                "WHERE d.job_id = ? ORDER BY j.id",
                (job_id,),
            ).fetchall()
            out: list[int] = []
            for row in rows:
                if row["ids"]:
                    out.extend(json.loads(row["ids"]))
            return out

    # ------------------------------------------------------------------
    # the state machine
    # ------------------------------------------------------------------
    def _transition(
        self,
        job_id: int,
        new_state: str,
        *,
        sets: dict[str, object] | None = None,
    ) -> JobRow:
        """Apply one validated state transition and commit it.

        The ``pre`` hook fires before anything is written (a crash
        there leaves the old state committed); the ``post`` hook fires
        after the commit (a crash there leaves the new state durable) —
        together they let tests kill the launcher on either side of
        every checkpoint.
        """
        with self._lock:
            self._check_open()
            row = self._row(job_id)
            old = row["state"]
            if new_state not in ALLOWED_TRANSITIONS[old]:
                raise CampaignError(
                    f"job {row['name']!r}: illegal transition {old} -> {new_state}"
                )
            snapshot = self._to_jobrow(row)
            if self.on_transition is not None:
                self.on_transition(snapshot, old, new_state, "pre")
            assignments = {"state": new_state}
            assignments.update(sets or {})
            columns = ", ".join(f"{k} = ?" for k in assignments)
            try:
                self._conn.execute(
                    f"UPDATE campaign_jobs SET {columns} WHERE id = ?",
                    (*assignments.values(), job_id),
                )
                self._conn.commit()
            except sqlite3.Error as exc:
                self._conn.rollback()
                raise PersistenceError(
                    f"cannot persist transition {old} -> {new_state}: {exc}"
                ) from exc
            updated = self._to_jobrow(self._row(job_id))
            self._count_transition(old, new_state)
            self._update_state_gauges(snapshot.campaign_id)
            if self.on_transition is not None:
                self.on_transition(updated, old, new_state, "post")
            return updated

    def mark_ready(self, campaign_id: int) -> int:
        """Promote CREATED jobs whose dependencies are all DONE to READY.

        A permanently FAILED dependency cascades: the dependent job is
        failed too (``error='dependency failed'``) so the DAG always
        drains.  Sweeps until a fixpoint; returns how many jobs moved.
        """
        moved = 0
        with self._lock:
            self._check_open()
            while True:
                progressed = False
                rows = self._conn.execute(
                    "SELECT id FROM campaign_jobs WHERE campaign_id = ? AND state = ?",
                    (campaign_id, CREATED),
                ).fetchall()
                for row in rows:
                    job_id = int(row["id"])
                    dep_states = [
                        r["state"]
                        for r in self._conn.execute(
                            "SELECT p.state AS state FROM campaign_job_deps d "
                            "JOIN campaign_jobs p ON p.id = d.depends_on "
                            "WHERE d.job_id = ?",
                            (job_id,),
                        ).fetchall()
                    ]
                    if any(s == FAILED for s in dep_states):
                        self._transition(
                            job_id, FAILED, sets={"error": "dependency failed"}
                        )
                        progressed = True
                        moved += 1
                    elif all(s == DONE for s in dep_states):
                        self._transition(job_id, READY)
                        progressed = True
                        moved += 1
                if not progressed:
                    return moved

    def acquire(
        self, campaign_id: int, owner: str, now: float, lease_s: float
    ) -> JobRow | None:
        """Lease the lowest-id READY job: READY → RUNNING.

        Returns ``None`` when no job is ready.  The attempt counter
        increments here — every RUNNING stint spends one unit of the
        retry budget, including stints that end in a crash, so a
        crash-looping job is bounded by ``max_attempts`` like any other
        failure mode.
        """
        with self._lock:
            self._check_open()
            row = self._conn.execute(
                "SELECT id FROM campaign_jobs WHERE campaign_id = ? AND state = ? "
                "ORDER BY id LIMIT 1",
                (campaign_id, READY),
            ).fetchone()
            if row is None:
                return None
            job = self._to_jobrow(self._row(int(row["id"])))
            return self._transition(
                job.job_id,
                RUNNING,
                sets={
                    "lease_owner": owner,
                    "lease_expires_at": now + lease_s,
                    "attempts": job.attempts + 1,
                },
            )

    def heartbeat(self, job_id: int, now: float, lease_s: float) -> None:
        """Extend a RUNNING job's lease (no state transition, committed)."""
        with self._lock:
            self._check_open()
            row = self._row(job_id)
            if row["state"] != RUNNING:
                raise CampaignError(
                    f"job {row['name']!r}: cannot heartbeat in state {row['state']}"
                )
            self._conn.execute(
                "UPDATE campaign_jobs SET lease_expires_at = ? WHERE id = ?",
                (now + lease_s, job_id),
            )
            self._conn.commit()

    def complete(
        self,
        job_id: int,
        knowledge_ids: Sequence[int],
        *,
        result_text: str | None = None,
    ) -> JobRow:
        """RUNNING/RESTARTING → DONE, recording the persisted knowledge ids.

        The RESTARTING path is *adoption*: a reclaimed job whose
        idempotency token was found in the knowledge backend is marked
        DONE with the rows the crashed attempt already persisted.
        """
        job = self._transition(
            job_id,
            DONE,
            sets={
                "knowledge_ids_json": json.dumps(sorted(int(i) for i in knowledge_ids)),
                "result_text": result_text,
                "lease_owner": None,
                "lease_expires_at": None,
                "error": None,
            },
        )
        self.mark_ready(job.campaign_id)
        return job

    def fail(self, job_id: int, error: str, *, retryable: bool) -> JobRow:
        """Record a failed execution: requeue within budget, else FAILED.

        A retryable failure with budget left goes RUNNING → RESTARTING
        → READY (two committed checkpoints, so a crash between them
        resumes correctly); a permanent failure or an exhausted budget
        goes to FAILED and cascades through :meth:`mark_ready`.
        """
        with self._lock:
            job = self._to_jobrow(self._row(job_id))
            if retryable and job.attempts < job.max_attempts:
                self._transition(job_id, RESTARTING, sets={"error": error})
                return self.requeue(job_id)
            failed = self._transition(
                job_id,
                FAILED,
                sets={"error": error, "lease_owner": None, "lease_expires_at": None},
            )
            self.mark_ready(job.campaign_id)
            return failed

    def requeue(self, job_id: int) -> JobRow:
        """RESTARTING → READY (lease cleared), ready for another attempt."""
        return self._transition(
            job_id, READY, sets={"lease_owner": None, "lease_expires_at": None}
        )

    def release(self, job_id: int) -> JobRow:
        """Give an acquired job back untouched (RUNNING → READY).

        The launcher releases a job it acquired but never started —
        e.g. when the circuit breaker rejects the slot — so the attempt
        counter is handed back too: a release spends no retry budget.
        """
        with self._lock:
            job = self._to_jobrow(self._row(job_id))
            self._transition(job_id, RESTARTING, sets={"error": "released"})
            return self._transition(
                job_id,
                READY,
                sets={
                    "lease_owner": None,
                    "lease_expires_at": None,
                    "attempts": max(0, job.attempts - 1),
                    "error": None,
                },
            )

    def reclaim(self, campaign_id: int, now: float, *, force: bool = False) -> list[JobRow]:
        """Move crashed-launcher RUNNING jobs to RESTARTING.

        A job is reclaimed when its lease expired at ``now`` (or
        unconditionally with ``force=True`` — the ``--resume`` path,
        where the operator asserts the previous launcher is dead).
        Deterministic: depends only on the committed lease columns and
        the ``now`` value passed in.  The launcher then resolves each
        reclaimed job to adoption (token found in the knowledge
        backend) or a requeue.
        """
        with self._lock:
            self._check_open()
            rows = self._conn.execute(
                "SELECT id, lease_expires_at FROM campaign_jobs "
                "WHERE campaign_id = ? AND state = ? ORDER BY id",
                (campaign_id, RUNNING),
            ).fetchall()
            reclaimed = []
            for row in rows:
                expires = row["lease_expires_at"]
                if force or expires is None or expires < now:
                    reclaimed.append(
                        self._transition(
                            int(row["id"]), RESTARTING, sets={"error": "lease expired"}
                        )
                    )
                    if self.metrics is not None:
                        self.metrics.counter(
                            "campaign.reclaims_total",
                            "RUNNING jobs reclaimed from dead launchers",
                        ).inc()
            return reclaimed

    def cancel(self, campaign_id: int) -> int:
        """Fail every non-terminal, non-RUNNING job (``error='cancelled'``).

        RUNNING jobs are left to finish (or be reclaimed); the campaign
        row is flagged so launchers stop acquiring from it.  Returns
        how many jobs were cancelled.
        """
        with self._lock:
            self._check_open()
            self.campaign(campaign_id)  # existence check
            self._conn.execute(
                "UPDATE campaigns SET cancelled = 1 WHERE id = ?", (campaign_id,)
            )
            self._conn.commit()
            cancelled = 0
            for row in self._conn.execute(
                "SELECT id, state FROM campaign_jobs WHERE campaign_id = ? "
                "AND state IN (?, ?, ?) ORDER BY id",
                (campaign_id, CREATED, READY, RESTARTING),
            ).fetchall():
                self._transition(
                    int(row["id"]),
                    FAILED,
                    sets={"error": "cancelled", "lease_owner": None,
                          "lease_expires_at": None},
                )
                cancelled += 1
            return cancelled

    def is_cancelled(self, campaign_id: int) -> bool:
        """Whether the campaign was cancelled."""
        return bool(self.campaign(campaign_id)["cancelled"])

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------
    def _count_transition(self, old: str, new: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(
                "campaign.transitions_total", "job state transitions",
                **{"from": old, "to": new},
            ).inc()

    def _update_state_gauges(self, campaign_id: int) -> None:
        if self.metrics is not None:
            for state, n in self.counts(campaign_id).items():
                self.metrics.gauge(
                    "campaign.jobs", "jobs by state (READY is the queue depth)",
                    state=state,
                ).set(n)
