"""Launcher fleets: N competing launcher processes, one campaign store.

The distributed execution layer over the campaign orchestrator
(ROADMAP item 4, after Balsam's multi-node launcher model):

* :mod:`~repro.core.campaign.fleet.coordinator` — spawn/supervise the
  launcher processes (crash-loop machinery shared with the knowledge
  server's :class:`~repro.core.service.server.WorkerSupervisor`).
* :mod:`~repro.core.campaign.fleet.worker` — the per-process entry
  point (``python -m repro.core.campaign.fleet.worker``).
* :mod:`~repro.core.campaign.fleet.elastic` — queue-depth-driven
  worker-pool sizing within each launcher.
* :mod:`~repro.core.campaign.fleet.watch` — the ``--watch`` status
  view, rendered from the store's launcher scoreboard.

Correctness rests on the store, not the coordinator: compare-and-set
state transitions, lease stealing with deterministic tie-breaking, and
idempotency-token resolution make a SIGKILL anywhere in the fleet at
worst a retried job — never a lost or duplicated one.
"""

from repro.core.campaign.fleet.coordinator import LauncherFleet, LauncherSlot
from repro.core.campaign.fleet.elastic import ElasticBounds, ElasticController
from repro.core.campaign.fleet.watch import render_fleet_view

__all__ = [
    "LauncherFleet",
    "LauncherSlot",
    "ElasticBounds",
    "ElasticController",
    "render_fleet_view",
]
