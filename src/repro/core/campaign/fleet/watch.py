"""Live fleet status rendering for ``repro-campaign --fleet --watch``.

Everything rendered here comes from the campaign store alone — the
per-state job counts plus the launcher scoreboard rows each launcher
upserts as it works (:meth:`~repro.core.campaign.store.CampaignStore.
report_launcher`).  No side channel between coordinator and launchers
exists, so the view is exactly as consistent as the store itself and
works identically for a fleet on one host or launchers started by hand
on several.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING

from repro.core.campaign.store import JOB_STATES

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.core.campaign.store import CampaignStore

__all__ = ["render_fleet_view"]


def _throughput(row: dict[str, object], now: float) -> str:
    done = int(row.get("jobs_done") or 0)
    started = row.get("started_at")
    if started is None:
        return "-"
    elapsed = max(float(now) - float(started), 1e-9)
    return f"{done / elapsed:.1f}/s"


def render_fleet_view(
    store: "CampaignStore", campaign_id: int, *, now: float | None = None
) -> str:
    """One status frame: queue depth, per-state counts, per-launcher rows."""
    now = time.time() if now is None else now
    counts = store.counts(campaign_id)
    total = sum(counts.values())
    done = counts["DONE"] + counts["FAILED"]
    lines = [
        f"campaign {campaign_id}: {done}/{total} terminal "
        f"(queue depth {counts['READY']})",
        "  " + "  ".join(f"{s}={counts[s]}" for s in JOB_STATES if counts[s]),
        f"  {'launcher':<12} {'state':<8} {'pid':>7} {'part':<8} "
        f"{'done':>6} {'fail':>5} {'steal':>5} {'lost':>4} {'pool':>5} {'rate':>8}",
    ]
    for row in store.launcher_rows(campaign_id):
        pool = f"{row.get('pool_active') or 0}/{row.get('pool_max') or 0}"
        lines.append(
            f"  {str(row['launcher']):<12} {str(row.get('state') or '?'):<8} "
            f"{str(row.get('pid') or '-'):>7} {str(row.get('placement') or '-'):<8} "
            f"{int(row.get('jobs_done') or 0):>6} "
            f"{int(row.get('jobs_failed') or 0):>5} "
            f"{int(row.get('steals') or 0):>5} "
            f"{int(row.get('leases_lost') or 0):>4} "
            f"{pool:>5} {_throughput(row, now):>8}"
        )
    return "\n".join(lines)
