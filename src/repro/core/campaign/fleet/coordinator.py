"""The launcher-fleet coordinator: N competing launchers, supervised.

:class:`LauncherFleet` is the process-level face of fleet mode.  It
spawns ``size`` launcher worker processes (``python -m
repro.core.campaign.fleet.worker``) against one campaign store and
supervises them with the same mechanism the knowledge server applies
to its shard-group workers (:class:`~repro.core.supervise.
SupervisedSlot`, PR 7): a launcher that dies with a non-zero exit is
respawned under an exponential-backoff budget, and one that keeps
dying inside a sliding window is tombstoned as crash-looping instead
of burning the host.

The coordinator itself never executes jobs and holds no lease — all
work coordination happens *through the store* (acquire/steal
compare-and-set claims, the idempotency-token resolve protocol), so a
SIGKILLed coordinator loses nothing: restarting the fleet resumes the
campaign exactly where the store says it is.

Fault injection plugs in through the same duck-typed surface the
server's chaos harness uses: :attr:`LauncherFleet.workers` exposes
``.process``/``.alive`` slots, so the chaos
:class:`~repro.core.service.chaos.WorkerKiller` can SIGKILL launchers
round-robin on a deterministic cadence — the SIGKILL matrix the
exactly-once acceptance test drives.
"""

from __future__ import annotations

import subprocess
import sys
import time
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Sequence

from repro.core.campaign.store import CampaignStore
from repro.core.campaign.fleet.watch import render_fleet_view
from repro.core.resilience import RetryPolicy
from repro.core.supervise import SupervisedSlot
from repro.util.errors import CampaignError

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.core.metrics import MetricsRegistry

__all__ = ["LauncherSlot", "LauncherFleet"]


class LauncherSlot:
    """One supervised launcher process (chaos-killer compatible).

    ``process is None`` marks a tombstone (crash-looped) or a launcher
    that finished cleanly; ``alive`` is the liveness probe both the
    supervisor and the chaos :class:`WorkerKiller` consult.
    """

    def __init__(self, index: int, name: str, partition: str | None) -> None:
        self.index = index
        self.name = name
        self.partition = partition
        self.process: subprocess.Popen | None = None
        self.supervision = SupervisedSlot()
        self.done = False  # exited 0: the campaign looked drained to it

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.poll() is None


class LauncherFleet:
    """Spawn, supervise, and drain-wait N launcher processes."""

    def __init__(
        self,
        store: CampaignStore,
        campaign_id: int,
        *,
        size: int,
        workspace: str | Path,
        workers_per_launcher: int = 2,
        min_workers: int | None = None,
        seed: int = 42,
        lease_s: float = 5.0,
        poll_s: float = 0.05,
        retries: int = 2,
        partitions: Sequence[str] | None = None,
        metrics: "MetricsRegistry | None" = None,
        respawn_policy: RetryPolicy | None = None,
        crash_loop_threshold: int = 5,
        crash_loop_window_s: float = 30.0,
        supervise_interval_s: float = 0.1,
        watch: Callable[[str], None] | None = None,
        watch_interval_s: float = 1.0,
        killer: "object | None" = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if size < 1:
            raise CampaignError(f"fleet size must be >= 1, got {size}")
        if partitions is not None and len(partitions) == 0:
            partitions = None
        self.store = store
        self.campaign_id = campaign_id
        self.size = size
        self.workspace = Path(workspace)
        self.workers_per_launcher = workers_per_launcher
        self.min_workers = min_workers
        self.seed = seed
        self.lease_s = lease_s
        self.poll_s = poll_s
        self.retries = retries
        self.partitions = list(partitions) if partitions is not None else None
        self.metrics = metrics
        self.respawn_policy = respawn_policy or RetryPolicy(
            max_attempts=6, base_delay_s=0.05, max_delay_s=2.0, seed=seed
        )
        self.crash_loop_threshold = crash_loop_threshold
        self.crash_loop_window_s = crash_loop_window_s
        self.supervise_interval_s = supervise_interval_s
        self.watch = watch
        self.watch_interval_s = watch_interval_s
        #: Duck-typed chaos hook: ``on_frame(total_ticks)`` may SIGKILL
        #: a live launcher (see :class:`WorkerKiller`); ticks are the
        #: fleet's supervision passes, so the kill schedule is a
        #: deterministic function of fleet uptime, not job timing.
        self.killer = killer
        self._clock = clock
        #: Chaos-killer/WorkerKiller-compatible slot list.
        self.workers: list[LauncherSlot] = [
            LauncherSlot(
                i,
                f"fleet-l{i}",
                self.partitions[i % len(self.partitions)]
                if self.partitions is not None
                else None,
            )
            for i in range(size)
        ]
        self.respawns = 0
        self.crash_loops = 0
        #: Placement values no launcher serves (filled in by run()).
        self.uncovered_placements: list[str] = []

    def _check_placement_coverage(self) -> None:
        """Refuse to start when placed jobs have no serving launcher.

        A partitioned fleet only acquires matching (or unplaced) jobs,
        so a placement value outside the partition list would stall
        those jobs — and the drain loop with them — forever.  Failing
        before the first spawn costs nothing: the store is untouched
        and the operator reruns with a corrected ``--partitions``.
        """
        if self.partitions is None:
            return  # unpartitioned launchers acquire any placement
        # Partitions are dealt to launchers round-robin, so a fleet
        # smaller than the partition list leaves the tail unserved —
        # coverage is what the *slots* got, not what was asked for.
        covered = {slot.partition for slot in self.workers}
        self.uncovered_placements = [
            p for p in self.store.placements(self.campaign_id)
            if p not in covered
        ]
        if self.uncovered_placements:
            raise CampaignError(
                f"campaign {self.campaign_id} has active jobs placed on "
                f"{', '.join(self.uncovered_placements)} but no launcher "
                f"serves those partitions (fleet covers "
                f"{', '.join(sorted(p for p in covered if p))}); grow the "
                "fleet or fix --partitions and rerun"
            )

    # ------------------------------------------------------------------
    # process management
    # ------------------------------------------------------------------
    def _spawn(self, slot: LauncherSlot) -> None:
        argv = [
            sys.executable, "-m", "repro.core.campaign.fleet.worker",
            "--store", self.store.target,
            "--campaign", str(self.campaign_id),
            "--name", slot.name,
            "--workspace", str(self.workspace / slot.name),
            "--workers", str(self.workers_per_launcher),
            "--seed", str(self.seed + slot.index),
            "--lease", str(self.lease_s),
            "--poll", str(self.poll_s),
            "--retries", str(self.retries),
        ]
        if self.min_workers is not None:
            argv += ["--min-workers", str(self.min_workers)]
        if slot.partition is not None:
            argv += ["--partition", slot.partition]
        slot.process = subprocess.Popen(argv)

    def _gauge_alive(self) -> None:
        if self.metrics is not None:
            self.metrics.gauge(
                "fleet.launchers", "live launcher processes"
            ).set(sum(1 for s in self.workers if s.alive))

    def _handle_exit(self, slot: LauncherSlot) -> None:
        returncode = slot.process.returncode
        if returncode == 0:
            # Clean exit: the launcher saw the campaign drained.  Not a
            # crash — retire the slot.
            slot.process = None
            slot.done = True
            return
        now = self._clock()
        if slot.supervision.unhealthy_since is None:
            slot.supervision.unhealthy_since = now
        if now < slot.supervision.next_attempt_at:
            return  # respawn budget: back off between attempts
        if slot.supervision.note_respawn_attempt(
            now,
            window_s=self.crash_loop_window_s,
            threshold=self.crash_loop_threshold,
        ):
            # Crash loop: tombstone the slot; the remaining launchers
            # (and the steal protocol) absorb its share of the work.
            slot.process = None
            slot.supervision.crash_looped = True
            self.crash_loops += 1
            if self.metrics is not None:
                self.metrics.counter(
                    "fleet.crash_loops_total",
                    "launcher slots tombstoned as crash-looping",
                ).inc()
            return
        slot.supervision.attempt += 1
        try:
            self._spawn(slot)
        except OSError:
            delay = self.respawn_policy.delay_s(
                min(slot.supervision.attempt, self.respawn_policy.max_attempts - 1)
                or 1
            )
            slot.supervision.next_attempt_at = self._clock() + delay
            return
        slot.supervision.respawned(self._clock())
        slot.supervision.healed(self._clock())
        self.respawns += 1
        if self.metrics is not None:
            self.metrics.counter(
                "fleet.respawns_total", "launcher processes respawned",
                launcher=slot.name,
            ).inc()

    def tick(self) -> None:
        """One supervision pass over every launcher slot."""
        for slot in self.workers:
            if slot.supervision.crash_looped or slot.done:
                continue
            if slot.process is None:
                continue
            if slot.process.poll() is not None:
                self._handle_exit(slot)
        self._gauge_alive()

    # ------------------------------------------------------------------
    # the drain loop
    # ------------------------------------------------------------------
    def _terminate_all(self, *, timeout_s: float = 5.0) -> None:
        for slot in self.workers:
            if slot.process is not None and slot.process.poll() is None:
                slot.process.terminate()
        deadline = time.monotonic() + timeout_s
        for slot in self.workers:
            if slot.process is None:
                continue
            remaining = max(0.0, deadline - time.monotonic())
            try:
                slot.process.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                slot.process.kill()
                slot.process.wait()

    def run(self) -> dict[str, int]:
        """Drain the campaign with the fleet; returns final counts.

        Returns once every job is terminal (DONE/FAILED).  Launchers
        normally exit 0 on their own when they see the queue empty; any
        straggler is SIGTERMed (finish the in-flight job, then exit).
        Raises :class:`CampaignError` if every launcher slot is
        tombstoned or retired while jobs remain — the fleet cannot make
        progress and the operator must intervene (``--resume``).
        """
        self.workspace.mkdir(parents=True, exist_ok=True)
        self._check_placement_coverage()
        for slot in self.workers:
            self._spawn(slot)
        self._gauge_alive()
        ticks = 0
        last_watch = 0.0
        try:
            while True:
                self.tick()
                ticks += 1
                if self.killer is not None:
                    self.killer.on_frame(ticks)
                if self.watch is not None:
                    now = time.monotonic()
                    if now - last_watch >= self.watch_interval_s:
                        last_watch = now
                        self.watch(
                            render_fleet_view(self.store, self.campaign_id)
                        )
                if self.store.active_count(self.campaign_id) == 0:
                    break
                if not any(
                    slot.alive
                    or (
                        not slot.done
                        and not slot.supervision.crash_looped
                        and slot.process is not None
                    )
                    for slot in self.workers
                ):
                    raise CampaignError(
                        f"campaign {self.campaign_id}: every launcher is "
                        "retired or crash-looping with "
                        f"{self.store.active_count(self.campaign_id)} job(s) "
                        "unfinished; resume manually"
                    )
                time.sleep(self.supervise_interval_s)
        finally:
            self._terminate_all()
            self._gauge_alive()
        return self.store.counts(self.campaign_id)
