"""Fleet launcher worker: ``python -m repro.core.campaign.fleet.worker``.

One competing launcher process.  The :class:`~repro.core.campaign.
fleet.coordinator.LauncherFleet` spawns N of these against one
campaign store; each opens its *own* store connection (SQLite WAL
handles the cross-process locking) and drains the campaign through the
ordinary :class:`~repro.core.campaign.launcher.Launcher` — acquire,
steal, heartbeat, exactly-once resolve — publishing its throughput to
the store's launcher scoreboard for ``--watch``.

Exit code 0 means the campaign is drained (from this launcher's
partition-eligible point of view); any crash propagates as a non-zero
exit and the coordinator respawns under its crash-loop budget.
SIGTERM requests a graceful stop: finish the in-flight job, then exit.
The coordinator SIGKILLs stragglers — and the chaos
:class:`~repro.core.service.chaos.WorkerKiller` SIGKILLs mid-job on
purpose — both of which the lease/steal/token protocol must absorb
with zero lost and zero duplicated jobs.
"""

from __future__ import annotations

import argparse
import signal
import sys

from repro.core.campaign.fleet.elastic import ElasticBounds, ElasticController
from repro.core.campaign.launcher import Launcher
from repro.core.campaign.store import CampaignStore
from repro.core.metrics import MetricsRegistry
from repro.core.resilience import CircuitBreaker, RetryPolicy
from repro.util.errors import ReproError

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The fleet worker argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-campaign-worker",
        description="one launcher process of a campaign fleet",
    )
    parser.add_argument("--store", required=True, help="campaign store SQLite path")
    parser.add_argument("--campaign", required=True, type=int, help="campaign id")
    parser.add_argument("--name", required=True, help="launcher name (lease-owner prefix)")
    parser.add_argument("--workspace", required=True, help="JUBE workspace directory")
    parser.add_argument("--workers", type=int, default=2, help="max worker threads")
    parser.add_argument(
        "--min-workers", type=int, default=None, metavar="N",
        help="enable elastic sizing between N and --workers threads",
    )
    parser.add_argument("--seed", type=int, default=42, help="campaign testbed seed")
    parser.add_argument("--lease", type=float, default=60.0, help="job lease seconds")
    parser.add_argument("--poll", type=float, default=0.01, help="idle poll seconds")
    parser.add_argument(
        "--partition", default=None,
        help="cluster partition this launcher serves (placement routing)",
    )
    parser.add_argument(
        "--retries", type=int, default=2,
        help="per-phase retries on transient errors",
    )
    parser.add_argument(
        "--metrics-json", default=None, metavar="PATH",
        help="write this launcher's metrics snapshot to PATH on exit",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point for one fleet launcher process."""
    options = build_parser().parse_args(argv)
    metrics = MetricsRegistry()
    elastic = None
    if options.min_workers is not None:
        elastic = ElasticController(
            ElasticBounds(
                min_workers=options.min_workers, max_workers=options.workers
            ),
            metrics=metrics,
        )
    retry_policy = (
        RetryPolicy(
            max_attempts=options.retries + 1, base_delay_s=0.05, seed=options.seed
        )
        if options.retries > 0
        else None
    )
    exit_code = 0
    try:
        with CampaignStore(options.store, metrics=metrics) as store:
            launcher = Launcher(
                store,
                options.campaign,
                workspace=options.workspace,
                workers=options.workers,
                seed=options.seed,
                metrics=metrics,
                retry_policy=retry_policy,
                breaker=CircuitBreaker(metrics=metrics, name=options.name),
                lease_s=options.lease,
                poll_s=options.poll,
                name=options.name,
                partition=options.partition,
                elastic=elastic,
                report_status=True,
            )
            # Graceful stop: finish the in-flight job, then exit.  The
            # handler only flips an event, so it is async-signal safe.
            signal.signal(signal.SIGTERM, lambda signum, frame: launcher.stop())
            signal.signal(signal.SIGINT, signal.SIG_IGN)
            counts = launcher.run(resume=False)
            print(
                f"{options.name}: campaign {options.campaign} drained "
                f"({counts['DONE']} DONE, {counts['FAILED']} FAILED)"
            )
    except ReproError as exc:
        print(f"{options.name}: error: {exc}", file=sys.stderr)
        exit_code = 1
    finally:
        if options.metrics_json:
            try:
                metrics.write_json(options.metrics_json)
            except OSError as exc:  # pragma: no cover - disk-full paths
                print(
                    f"{options.name}: cannot write {options.metrics_json}: {exc}",
                    file=sys.stderr,
                )
                exit_code = exit_code or 1
    return exit_code


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
