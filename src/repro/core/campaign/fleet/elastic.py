"""Elastic worker-pool sizing for fleet launchers.

Each launcher in a fleet carries a bounded pool of worker threads; the
right pool size depends on the backlog, which changes as the campaign
drains.  :class:`ElasticController` turns the live queue depth (READY
jobs, the ``campaign.jobs{state=READY}`` gauge) into an allowed pool
size between the configured bounds — a *pure* function of its inputs,
so every launcher in the fleet converges on the same size for the same
backlog and tests can table-drive the policy without running anything.

The policy is deliberately simple: one worker per READY job (scaled by
``depth_per_worker`` when jobs are short), clamped to
``[min_workers, max_workers]``.  Workers above the allowed size *park*
(poll without acquiring) instead of exiting, so a queue that deepens
again — retries, stolen leases being requeued, late DAG fan-out — is
picked up without respawning threads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.util.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.core.metrics import MetricsRegistry

__all__ = ["ElasticBounds", "ElasticController"]


@dataclass(frozen=True, slots=True)
class ElasticBounds:
    """The pool-size envelope one launcher may scale within."""

    min_workers: int = 1
    max_workers: int = 4
    #: READY jobs needed to justify one more worker beyond the minimum.
    depth_per_worker: int = 1

    def __post_init__(self) -> None:
        if self.min_workers < 1:
            raise ConfigurationError(
                f"min_workers must be >= 1, got {self.min_workers}"
            )
        if self.max_workers < self.min_workers:
            raise ConfigurationError(
                f"max_workers ({self.max_workers}) must be >= "
                f"min_workers ({self.min_workers})"
            )
        if self.depth_per_worker < 1:
            raise ConfigurationError(
                f"depth_per_worker must be >= 1, got {self.depth_per_worker}"
            )


class ElasticController:
    """Maps queue depth to an allowed pool size (deterministically)."""

    def __init__(
        self,
        bounds: ElasticBounds,
        *,
        metrics: "MetricsRegistry | None" = None,
    ) -> None:
        self.bounds = bounds
        self.metrics = metrics
        self.last_allowed = bounds.min_workers

    def allowed(self, queue_depth: int) -> int:
        """Pool size justified by ``queue_depth`` READY jobs."""
        depth = max(0, int(queue_depth))
        target = depth // self.bounds.depth_per_worker
        allowed = max(self.bounds.min_workers, min(self.bounds.max_workers, target))
        self.last_allowed = allowed
        if self.metrics is not None:
            self.metrics.gauge(
                "fleet.pool_allowed",
                "worker threads the elastic policy currently allows",
            ).set(allowed)
        return allowed
