"""Campaign specifications: TOML in, expanded job DAG out.

A campaign file declares one benchmark sweep the way the paper's JUBE
configuration would (§V-A) — sweep parameters carry comma-separated
value lists and the cartesian product becomes the workpackage set::

    [campaign]
    name = "ior-xfersweep"
    benchmark = "ior"          # a jube.steps work-registry name
    max_attempts = 3

    [parameters]               # swept: comma lists, cartesian product
    transfersize = "1m,2m,4m"
    nodes = "2,4"

    [fixed]                    # applied to every job, never expanded
    command = "ior -a mpiio -b 4m -t $transfersize -s 8 -F -e -i 3 -o /scratch/c/test -k"

    [report]                   # optional comparison job over the sweep
    x_axis = "transfersize"
    metric = "bw_mean"

:func:`CampaignSpec.expand` reuses the JUBE parameter machinery
(:func:`~repro.jube.parameters.expand_parameter_space`), so value-list
semantics are identical to what ``repro-cycle`` would run; each
combination becomes one benchmark :class:`JobSpec` and the report job
(when a ``[report]`` table is present) depends on all of them —
the smallest interesting DAG.

TOML parsing uses :mod:`tomllib` when available (Python >= 3.11) and
falls back to a small built-in subset parser (tables, string / integer
/ float / boolean values) on 3.10, keeping the container's baked-in
toolchain sufficient.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from xml.sax.saxutils import escape

from repro.jube.parameters import Parameter, ParameterSet, expand_parameter_space
from repro.util.errors import CampaignError

try:  # Python >= 3.11
    import tomllib as _toml
except ImportError:  # pragma: no cover - exercised only on 3.10
    _toml = None

__all__ = [
    "JobSpec",
    "CampaignSpec",
    "parse_campaign_toml",
    "load_campaign_file",
    "job_jube_xml",
]

#: Benchmark work names the generation phase understands (jube.steps),
#: plus ``noop``: a synthetic job that holds real wall-clock time
#: (``duration_ms`` parameter) without touching the testbed — the unit
#: of work fleet benchmarks and soaks drain by the tens of thousands.
KNOWN_BENCHMARKS = ("ior", "mdtest", "io500", "hacc", "ior-darshan", "noop")

_KEY_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_-]*$")


def _parse_toml_subset(text: str) -> dict[str, dict[str, object]]:
    """Minimal TOML-table parser for platforms without :mod:`tomllib`.

    Understands ``[table]`` headers, ``key = "string"`` / integer /
    float / ``true`` / ``false`` assignments and ``#`` comments — the
    exact subset campaign files use.
    """
    tables: dict[str, dict[str, object]] = {}
    current: dict[str, object] | None = None
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if line.startswith("[") and line.endswith("]"):
            name = line[1:-1].strip()
            if not _KEY_RE.match(name):
                raise CampaignError(f"line {lineno}: invalid table name {name!r}")
            current = tables.setdefault(name, {})
            continue
        key, sep, value = line.partition("=")
        key = key.strip()
        value = value.strip()
        if not sep or not _KEY_RE.match(key):
            raise CampaignError(f"line {lineno}: cannot parse {raw!r}")
        if current is None:
            raise CampaignError(f"line {lineno}: assignment before any [table]")
        if value.startswith('"') and value.endswith('"') and len(value) >= 2:
            current[key] = value[1:-1]
        elif value in ("true", "false"):
            current[key] = value == "true"
        else:
            try:
                current[key] = int(value)
            except ValueError:
                try:
                    current[key] = float(value)
                except ValueError:
                    raise CampaignError(
                        f"line {lineno}: unsupported value {value!r} "
                        "(quote strings, or use int/float/bool)"
                    ) from None
    return tables


@dataclass(frozen=True, slots=True)
class JobSpec:
    """One node of the campaign DAG, before persistence.

    ``kind`` is ``"benchmark"`` (run one parameter combination through
    the pipeline) or ``"report"`` (compare the knowledge its
    dependencies produced).  ``params`` holds the fully-merged,
    single-valued parameter dict for benchmark jobs and the report
    options (``x_axis`` / ``metric``) for report jobs.  ``placement``
    optionally names the cluster partition that must run the job
    (``None`` = any launcher may take it).
    """

    name: str
    kind: str
    params: dict[str, str]
    depends: tuple[str, ...] = ()
    placement: str | None = None


@dataclass(slots=True)
class CampaignSpec:
    """A parsed campaign definition."""

    name: str
    benchmark: str
    parameters: dict[str, str] = field(default_factory=dict)  # swept (comma lists)
    fixed: dict[str, str] = field(default_factory=dict)
    report: dict[str, str] | None = None
    max_attempts: int = 3
    #: Name of the (swept or fixed) parameter whose per-job value
    #: becomes the job's cluster-partition placement key.  A fleet
    #: launcher started with ``--partition`` only acquires jobs whose
    #: placement matches (or is unset); ``None`` disables placement.
    placement: str | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise CampaignError("campaign needs a non-empty name")
        if self.benchmark not in KNOWN_BENCHMARKS:
            raise CampaignError(
                f"unknown benchmark {self.benchmark!r}; known: {list(KNOWN_BENCHMARKS)}"
            )
        if self.max_attempts < 1:
            raise CampaignError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.placement is not None and not (
            self.placement in self.parameters or self.placement in self.fixed
        ):
            raise CampaignError(
                f"placement key {self.placement!r} names no swept or fixed parameter"
            )

    def expand(self) -> list[JobSpec]:
        """The campaign's job DAG: one job per combination, plus report.

        Sweep parameters expand with JUBE's cartesian-product rule;
        fixed parameters are merged into every combination unexpanded
        (a fixed IOR command may legitimately contain commas).  Job
        names are stable (``run-0000`` …) so resubmitting the same
        campaign file yields the same DAG.
        """
        sweep = ParameterSet(
            name="sweep",
            parameters=tuple(
                Parameter.from_text(k, v) for k, v in self.parameters.items()
            ),
        )
        combos = expand_parameter_space([sweep])
        jobs = []
        for i, combo in enumerate(combos):
            params = dict(self.fixed)
            params.update(combo)
            placement = (
                str(params[self.placement]) if self.placement is not None else None
            )
            jobs.append(
                JobSpec(
                    name=f"run-{i:04d}",
                    kind="benchmark",
                    params=params,
                    placement=placement,
                )
            )
        if self.report is not None:
            jobs.append(
                JobSpec(
                    name="report",
                    kind="report",
                    params={str(k): str(v) for k, v in self.report.items()},
                    depends=tuple(j.name for j in jobs),
                )
            )
        return jobs

    def to_json(self) -> str:
        """Stable JSON form stored with the campaign row (provenance)."""
        return json.dumps(
            {
                "name": self.name,
                "benchmark": self.benchmark,
                "parameters": self.parameters,
                "fixed": self.fixed,
                "report": self.report,
                "max_attempts": self.max_attempts,
                "placement": self.placement,
            },
            sort_keys=True,
        )


def parse_campaign_toml(text: str) -> CampaignSpec:
    """Parse campaign TOML text into a :class:`CampaignSpec`."""
    if _toml is not None:
        try:
            tables = _toml.loads(text)
        except _toml.TOMLDecodeError as exc:
            raise CampaignError(f"invalid campaign TOML: {exc}") from exc
    else:  # pragma: no cover - 3.10 fallback
        tables = _parse_toml_subset(text)
    campaign = tables.get("campaign")
    if not isinstance(campaign, dict):
        raise CampaignError("campaign file needs a [campaign] table")
    unknown = sorted(set(tables) - {"campaign", "parameters", "fixed", "report"})
    if unknown:
        raise CampaignError(
            f"unknown campaign table(s) {unknown}; "
            "known: [campaign], [parameters], [fixed], [report]"
        )
    name = str(campaign.get("name", ""))
    benchmark = str(campaign.get("benchmark", "ior"))
    max_attempts = campaign.get("max_attempts", 3)
    if not isinstance(max_attempts, int) or isinstance(max_attempts, bool):
        raise CampaignError(f"max_attempts must be an integer, got {max_attempts!r}")
    placement = campaign.get("placement")
    if placement is not None and not isinstance(placement, str):
        raise CampaignError(f"placement must be a parameter name, got {placement!r}")
    parameters = {str(k): str(v) for k, v in tables.get("parameters", {}).items()}
    if not parameters:
        raise CampaignError("campaign needs at least one [parameters] entry to sweep")
    fixed = {str(k): str(v) for k, v in tables.get("fixed", {}).items()}
    report = tables.get("report")
    if report is not None:
        report = {str(k): str(v) for k, v in report.items()}
    return CampaignSpec(
        name=name,
        benchmark=benchmark,
        parameters=parameters,
        fixed=fixed,
        report=report,
        max_attempts=max_attempts,
        placement=placement,
    )


def load_campaign_file(path: str) -> CampaignSpec:
    """Load and parse a campaign TOML file."""
    try:
        with open(path, encoding="utf-8") as fh:
            text = fh.read()
    except OSError as exc:
        raise CampaignError(f"cannot read campaign file {path!r}: {exc}") from exc
    return parse_campaign_toml(text)


def job_jube_xml(campaign_name: str, benchmark: str, params: dict[str, str]) -> str:
    """The single-workpackage JUBE XML that executes one benchmark job.

    Every parameter is single-valued (the sweep was expanded at submit
    time), so the generation phase runs exactly one workpackage — the
    launcher's unit of retry and exactly-once accounting.
    """
    lines = [
        "<jube>",
        f'  <benchmark name="{escape(campaign_name, {chr(34): "&quot;"})}" outpath="bench_run">',
        '    <parameterset name="job">',
    ]
    for key, value in sorted(params.items()):
        lines.append(
            f'      <parameter name="{escape(key, {chr(34): "&quot;"})}" separator=";">'
            f"{escape(str(value))}</parameter>"
        )
    lines += [
        "    </parameterset>",
        f'    <step name="run" work="{escape(benchmark, {chr(34): "&quot;"})}">',
        "      <use>job</use>",
        "    </step>",
        "  </benchmark>",
        "</jube>",
    ]
    return "\n".join(lines)
