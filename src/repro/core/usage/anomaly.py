"""Anomaly detection (usage example II of the paper, §V-E2).

Two detectors match the paper's two demonstrations:

* :class:`IterationAnomalyDetector` finds iterations of one run whose
  throughput collapses relative to the others (the Fig. 5 case: five
  iterations near 2850 MiB/s and one at 1251 MiB/s), corroborating the
  finding with the other per-iteration metrics (ops, wrRdTime) so
  "measurement errors can be excluded".
* :class:`RunComparisonDetector` flags whole runs whose summary falls
  outside the distribution of comparable runs in the knowledge base.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.knowledge import Knowledge, KnowledgeSummary
from repro.util.errors import UsageError
from repro.util.stats import iqr_outliers, zscores

__all__ = ["IterationAnomaly", "IterationAnomalyDetector", "RunComparisonDetector"]


@dataclass(frozen=True, slots=True)
class IterationAnomaly:
    """One flagged iteration."""

    operation: str
    iteration: int  # 1-based, as the paper reports ("iteration 2")
    bandwidth_mib: float
    healthy_mean_mib: float
    severity: float  # healthy mean / anomalous value
    corroborated_by: tuple[str, ...] = field(default=())

    @property
    def description(self) -> str:
        """Human-readable finding."""
        extra = f"; corroborated by {', '.join(self.corroborated_by)}" if self.corroborated_by else ""
        return (
            f"{self.operation} iteration {self.iteration}: {self.bandwidth_mib:.0f} MiB/s "
            f"vs healthy mean {self.healthy_mean_mib:.0f} MiB/s "
            f"({self.severity:.1f}x slower){extra}"
        )


class IterationAnomalyDetector:
    """Flags per-iteration throughput collapses within one run."""

    #: Metrics whose co-movement corroborates a throughput anomaly.
    CORROBORATING_METRICS = ("iops", "wrrd_time_s", "total_time_s")

    def __init__(self, whis: float = 1.5, min_severity: float = 1.3) -> None:
        if whis <= 0:
            raise UsageError("whis must be positive")
        if min_severity <= 1.0:
            raise UsageError("min_severity must exceed 1.0")
        self.whis = whis
        self.min_severity = min_severity

    def detect(self, knowledge: Knowledge) -> list[IterationAnomaly]:
        """Scan every operation's iteration series for collapses."""
        anomalies: list[IterationAnomaly] = []
        for summary in knowledge.summaries:
            anomalies.extend(self._detect_operation(summary))
        return anomalies

    def _detect_operation(self, summary: KnowledgeSummary) -> list[IterationAnomaly]:
        rows = sorted(summary.results, key=lambda r: r.iteration)
        if len(rows) < 3:
            return []  # cannot establish a healthy baseline
        bw = np.array([r.bandwidth_mib for r in rows])
        flagged = set(iqr_outliers(bw, whis=self.whis))
        anomalies = []
        for idx in sorted(flagged):
            healthy = np.delete(bw, idx)
            healthy_mean = float(healthy.mean())
            value = float(bw[idx])
            if value >= healthy_mean:
                continue  # unusually *fast* iterations are not failures
            severity = healthy_mean / max(value, 1e-12)
            if severity < self.min_severity:
                continue
            corroborating = self._corroborate(rows, idx)
            anomalies.append(
                IterationAnomaly(
                    operation=summary.operation,
                    iteration=rows[idx].iteration + 1,
                    bandwidth_mib=value,
                    healthy_mean_mib=healthy_mean,
                    severity=severity,
                    corroborated_by=corroborating,
                )
            )
        return anomalies

    def _corroborate(self, rows: list, idx: int) -> tuple[str, ...]:
        """Which other metrics moved with the throughput collapse."""
        supporting = []
        for metric in self.CORROBORATING_METRICS:
            values = np.array([r.metric(metric) for r in rows])
            if np.allclose(values, values[0]):
                continue
            z = zscores(values)
            # ops drop with bandwidth; times rise with it.
            expected_sign = -1.0 if metric == "iops" else 1.0
            if z[idx] * expected_sign > 1.0:
                supporting.append(metric)
        return tuple(supporting)


class RunComparisonDetector:
    """Flags whole runs that fall outside comparable runs' distribution."""

    def __init__(self, threshold_z: float = 2.0) -> None:
        if threshold_z <= 0:
            raise UsageError("threshold_z must be positive")
        self.threshold_z = threshold_z

    def detect(
        self, runs: list[Knowledge], operation: str = "write"
    ) -> list[tuple[Knowledge, float]]:
        """Return (run, z-score) pairs of anomalously slow runs."""
        if len(runs) < 3:
            raise UsageError("need at least three comparable runs")
        means = np.array([k.summary(operation).bw_mean for k in runs])
        z = zscores(means)
        return [
            (run, float(score))
            for run, score in zip(runs, z)
            if score < -self.threshold_z
        ]
