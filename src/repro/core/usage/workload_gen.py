"""Workload generation from knowledge (usage example I, §V-E1).

"For the generation of new knowledge, our web-based tool provides the
functionality to generate new benchmark setups based on existing
knowledge and can be extended to generate JUBE configuration
additionally.  The user can apply the generated command to re-run the
workflow."  This module regenerates runnable IOR commands from stored
knowledge, applies user modifications, and emits complete JUBE XML
configurations for parameter sweeps.
"""

from __future__ import annotations

from xml.sax.saxutils import escape

from repro.benchmarks_io.ior.cli import parse_command
from repro.benchmarks_io.ior.config import IORConfig
from repro.core.knowledge import Knowledge
from repro.util.errors import UsageError

__all__ = ["config_from_knowledge", "create_configuration", "generate_jube_config"]


def config_from_knowledge(knowledge: Knowledge) -> IORConfig:
    """Reconstruct the IOR configuration a knowledge object came from.

    The stored command line is the source of truth ("the previously
    applied command is selected and then loaded from the corresponding
    configuration in the view", §V-E1).
    """
    if knowledge.benchmark != "ior":
        raise UsageError(
            f"can only regenerate IOR configurations, got benchmark {knowledge.benchmark!r}"
        )
    if not knowledge.command:
        raise UsageError("knowledge object has no stored command line")
    return parse_command(knowledge.command)


def create_configuration(knowledge: Knowledge, **modifications: object) -> str:
    """The explorer's "create configuration" button: load, modify, render.

    Returns the new runnable command line.  ``modifications`` accepts
    any :class:`~repro.benchmarks_io.ior.config.IORConfig` field, e.g.
    ``transfer_size=4 * MIB`` or ``iterations=10``.
    """
    config = config_from_knowledge(knowledge)
    if modifications:
        try:
            config = config.with_(**modifications)
        except TypeError as exc:
            raise UsageError(f"invalid configuration modification: {exc}") from exc
    return config.to_command()


def generate_jube_config(
    knowledge: Knowledge,
    sweep: dict[str, list[str]],
    benchmark_name: str = "generated-from-knowledge",
    nodes: int | None = None,
    tasks_per_node: int | None = None,
) -> str:
    """Emit a JUBE XML configuration sweeping around stored knowledge.

    The base command comes from the knowledge object; each ``sweep``
    entry becomes a JUBE parameter whose ``$name`` reference is patched
    into the command.  Supported sweep names: ``transfersize`` (-t),
    ``blocksize`` (-b), ``segments`` (-s), ``iterations`` (-i).
    """
    config = config_from_knowledge(knowledge)
    flag_by_param = {
        "transfersize": "-t",
        "blocksize": "-b",
        "segments": "-s",
        "iterations": "-i",
    }
    unknown = set(sweep) - set(flag_by_param)
    if unknown:
        raise UsageError(f"unsupported sweep parameters: {sorted(unknown)}")
    if not sweep:
        raise UsageError("sweep must name at least one parameter")

    command = config.to_command()
    tokens = command.split()
    for param, flag in flag_by_param.items():
        if param not in sweep:
            continue
        if flag in tokens:
            tokens[tokens.index(flag) + 1] = f"${param}"
        else:
            tokens.extend([flag, f"${param}"])
    command = " ".join(tokens)

    parameters = [
        f'      <parameter name="{name}">{escape(",".join(values))}</parameter>'
        for name, values in sorted(sweep.items())
    ]
    parameters.append(f'      <parameter name="command">{escape(command)}</parameter>')
    if nodes is not None:
        parameters.append(f'      <parameter name="nodes">{nodes}</parameter>')
    elif knowledge.num_nodes:
        parameters.append(f'      <parameter name="nodes">{knowledge.num_nodes}</parameter>')
    if tasks_per_node is not None:
        parameters.append(
            f'      <parameter name="taskspernode">{tasks_per_node}</parameter>'
        )
    elif knowledge.tasks_per_node:
        parameters.append(
            f'      <parameter name="taskspernode">{knowledge.tasks_per_node}</parameter>'
        )
    body = "\n".join(parameters)
    return f"""<jube>
  <benchmark name="{escape(benchmark_name)}" outpath="bench_run">
    <parameterset name="pattern">
{body}
    </parameterset>
    <step name="run" work="ior">
      <use>pattern</use>
    </step>
  </benchmark>
</jube>
"""
