"""IO500 bounding box (Liem et al., used in the paper's Fig. 6).

The bounding-box idea: the IO500 boundary test cases (ior-easy as the
optimized upper bound, ior-hard as the suboptimal lower bound) span the
realistic performance band of a system.  An application's — or another
run's — result landing outside the band indicates an anomaly (or an
extraordinary optimization).  The paper demonstrates a one-dimensional
simplification over ior-easy/ior-hard read and write, which this module
implements along with the full two-dimensional variant.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.knowledge import IO500Knowledge
from repro.util.errors import UsageError
from repro.util.stats import summarize

__all__ = ["Band", "BoundingBox", "build_bounding_box", "Verdict"]


@dataclass(frozen=True, slots=True)
class Band:
    """Expected range of one test case over the reference runs."""

    testcase: str
    low: float
    high: float
    mean: float

    def contains(self, value: float, tolerance: float = 0.0) -> bool:
        """Whether a value lies within the (tolerance-expanded) band."""
        pad = (self.high - self.low) * tolerance
        return self.low - pad <= value <= self.high + pad


class Verdict:
    """Classification of an observation against the box."""

    WITHIN = "within-expectation"
    BELOW = "below-expectation"
    ABOVE = "above-expectation"


@dataclass(slots=True)
class BoundingBox:
    """Per-test-case expectation bands built from reference runs."""

    bands: dict[str, Band]
    n_reference_runs: int

    def band(self, testcase: str) -> Band:
        """The band of one test case."""
        try:
            return self.bands[testcase]
        except KeyError:
            raise UsageError(
                f"no band for {testcase!r}; available: {sorted(self.bands)}"
            ) from None

    def classify(self, testcase: str, value: float, tolerance: float = 0.05) -> str:
        """Classify one observation against its band."""
        band = self.band(testcase)
        if band.contains(value, tolerance):
            return Verdict.WITHIN
        return Verdict.BELOW if value < band.low else Verdict.ABOVE

    def check_run(
        self, run: IO500Knowledge, tolerance: float = 0.05
    ) -> dict[str, str]:
        """Classify every banded test case of a run; the Fig. 6 check."""
        out = {}
        for name in self.bands:
            out[name] = self.classify(name, run.value(name), tolerance)
        return out

    def anomalies(self, run: IO500Knowledge, tolerance: float = 0.05) -> list[str]:
        """Test cases of a run that fall below expectation."""
        return [
            name
            for name, verdict in self.check_run(run, tolerance).items()
            if verdict == Verdict.BELOW
        ]


#: The paper's one-dimensional demonstration set (§V-E2).
ONE_DIM_TESTCASES = ("ior-easy-write", "ior-easy-read", "ior-hard-write", "ior-hard-read")

#: Liem et al.'s full two-dimensional set (data and metadata).
TWO_DIM_TESTCASES = ONE_DIM_TESTCASES + (
    "mdtest-easy-write",
    "mdtest-easy-stat",
    "mdtest-hard-write",
    "mdtest-hard-stat",
)


def build_bounding_box(
    reference_runs: list[IO500Knowledge],
    testcases: tuple[str, ...] = ONE_DIM_TESTCASES,
) -> BoundingBox:
    """Build expectation bands from healthy reference runs."""
    if len(reference_runs) < 2:
        raise UsageError("bounding box needs at least two reference runs")
    bands = {}
    for name in testcases:
        values = [run.value(name) for run in reference_runs]
        s = summarize(values)
        bands[name] = Band(testcase=name, low=s.minimum, high=s.maximum, mean=s.mean)
    return BoundingBox(bands=bands, n_reference_runs=len(reference_runs))
