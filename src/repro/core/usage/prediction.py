"""I/O performance prediction from knowledge (§IV and §VI).

"The knowledge objects can be used as training data for linear
regression analysis to make I/O performance predictions."  The model
regresses log-bandwidth on log-transformed pattern features (transfer
size, task count, node count, API and access-mode indicators) with
ordinary least squares — multiplicative effects in I/O performance are
near-additive in log space, which is why the log-log form fits the
saturating curves the simulator (and real storage) produce.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.knowledge import Knowledge
from repro.util.errors import UsageError

__all__ = ["FeatureVector", "PerformancePredictor", "cross_validate"]


@dataclass(frozen=True, slots=True)
class FeatureVector:
    """Pattern features of one (potential) run."""

    transfer_size: int
    num_tasks: int
    num_nodes: int
    api: str = "POSIX"
    file_per_proc: bool = True

    def __post_init__(self) -> None:
        if self.transfer_size <= 0 or self.num_tasks <= 0 or self.num_nodes <= 0:
            raise UsageError("features must be positive")


def _features_from_knowledge(k: Knowledge) -> FeatureVector | None:
    transfer = k.parameters.get("xfersize_bytes")
    if transfer is None or k.num_tasks <= 0 or k.num_nodes <= 0:
        return None
    return FeatureVector(
        transfer_size=int(transfer),  # type: ignore[arg-type]
        num_tasks=k.num_tasks,
        num_nodes=k.num_nodes,
        api=k.api or "POSIX",
        file_per_proc=k.file_per_proc,
    )


def _design_row(f: FeatureVector) -> list[float]:
    return [
        1.0,
        np.log(f.transfer_size),
        np.log(f.num_tasks),
        np.log(f.num_nodes),
        1.0 if f.api.upper() == "MPIIO" else 0.0,
        1.0 if f.api.upper() == "HDF5" else 0.0,
        1.0 if f.file_per_proc else 0.0,
    ]


class PerformancePredictor:
    """Least-squares log-log bandwidth model over stored knowledge."""

    N_FEATURES = 7

    def __init__(self, operation: str = "write") -> None:
        self.operation = operation
        self.coef_: np.ndarray | None = None
        self.training_residual_: float | None = None
        self.n_samples_: int = 0

    def fit(self, knowledge_base: list[Knowledge]) -> "PerformancePredictor":
        """Train on every usable knowledge object in the base."""
        rows, targets = [], []
        for k in knowledge_base:
            f = _features_from_knowledge(k)
            if f is None:
                continue
            try:
                bw = k.summary(self.operation).bw_mean
            except Exception:  # noqa: BLE001 - object lacks this operation
                continue
            if bw <= 0:
                continue
            rows.append(_design_row(f))
            targets.append(np.log(bw))
        if len(rows) < self.N_FEATURES:
            raise UsageError(
                f"need at least {self.N_FEATURES} usable knowledge objects to fit, "
                f"got {len(rows)}"
            )
        X = np.asarray(rows)
        y = np.asarray(targets)
        self.coef_, residuals, _rank, _sv = np.linalg.lstsq(X, y, rcond=None)
        predictions = X @ self.coef_
        self.training_residual_ = float(np.sqrt(np.mean((predictions - y) ** 2)))
        self.n_samples_ = len(rows)
        return self

    def predict(self, features: FeatureVector) -> float:
        """Predicted mean bandwidth (MiB/s) for a pattern."""
        if self.coef_ is None:
            raise UsageError("predictor is not fitted")
        return float(np.exp(np.asarray(_design_row(features)) @ self.coef_))

    def predict_interval(self, features: FeatureVector, k_sigma: float = 2.0) -> tuple[float, float]:
        """(lower, upper) expectation band around the prediction.

        Combined with the bounding box, this "provide[s] the user with
        a realistic expectation" (§IV).
        """
        if self.coef_ is None or self.training_residual_ is None:
            raise UsageError("predictor is not fitted")
        center = self.predict(features)
        spread = np.exp(k_sigma * self.training_residual_)
        return center / spread, center * spread

    def relative_error(self, knowledge: Knowledge) -> float:
        """|predicted - actual| / actual on one held-out knowledge object."""
        f = _features_from_knowledge(knowledge)
        if f is None:
            raise UsageError("knowledge object lacks the required features")
        actual = knowledge.summary(self.operation).bw_mean
        return abs(self.predict(f) - actual) / actual


def cross_validate(
    knowledge_base: list[Knowledge], operation: str = "write"
) -> dict[str, float]:
    """Leave-one-out cross-validation of the predictor on a base.

    Returns the mean/median/max relative error over all held-out
    points — the number a user needs before trusting predictions for
    untried configurations (§IV: prediction "accuracy heavily depends
    on the training data sets").
    """
    usable = [
        k
        for k in knowledge_base
        if _features_from_knowledge(k) is not None
        and any(s.operation == operation for s in k.summaries)
    ]
    if len(usable) < PerformancePredictor.N_FEATURES + 1:
        raise UsageError(
            f"cross-validation needs at least {PerformancePredictor.N_FEATURES + 1} "
            f"usable knowledge objects, got {len(usable)}"
        )
    errors = []
    for i, held_out in enumerate(usable):
        training = usable[:i] + usable[i + 1 :]
        model = PerformancePredictor(operation).fit(training)
        errors.append(model.relative_error(held_out))
    arr = np.asarray(errors)
    return {
        "n": len(errors),
        "mean_rel_error": float(arr.mean()),
        "median_rel_error": float(np.median(arr)),
        "max_rel_error": float(arr.max()),
    }
