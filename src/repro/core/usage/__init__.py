"""Phase V: knowledge usage — anomaly detection, bounding box,
workload generation, recommendation, prediction, pattern extraction,
optimization, synthetic workloads, online monitoring and anomaly
context."""

from repro.core.usage.anomaly import (
    IterationAnomaly,
    IterationAnomalyDetector,
    RunComparisonDetector,
)
from repro.core.usage.bounding_box import (
    Band,
    BoundingBox,
    Verdict,
    build_bounding_box,
)
from repro.core.usage.context import AnomalyContext, collect_context
from repro.core.usage.h5tuner import H5TunerConfig, TuningRun, tune
from repro.core.usage.online import OnlineAlert, OnlineMonitor
from repro.core.usage.optimizer import IOOptimizer, TuningSuggestion, validate_suggestion
from repro.core.usage.pattern_extractor import IOPattern, extract_pattern
from repro.core.usage.prediction import FeatureVector, PerformancePredictor, cross_validate
from repro.core.usage.recommend import (
    PeriodicRecommendation,
    Recommendation,
    Recommender,
    recommend_for_periods,
)
from repro.core.usage.synthetic import ior_config_from_pattern
from repro.core.usage.workload_gen import (
    config_from_knowledge,
    create_configuration,
    generate_jube_config,
)

__all__ = [
    "IterationAnomaly",
    "IterationAnomalyDetector",
    "RunComparisonDetector",
    "Band",
    "BoundingBox",
    "Verdict",
    "build_bounding_box",
    "AnomalyContext",
    "collect_context",
    "H5TunerConfig",
    "TuningRun",
    "tune",
    "OnlineAlert",
    "OnlineMonitor",
    "IOOptimizer",
    "TuningSuggestion",
    "validate_suggestion",
    "IOPattern",
    "extract_pattern",
    "ior_config_from_pattern",
    "FeatureVector",
    "PerformancePredictor",
    "cross_validate",
    "PeriodicRecommendation",
    "Recommendation",
    "Recommender",
    "recommend_for_periods",
    "config_from_knowledge",
    "create_configuration",
    "generate_jube_config",
]
