"""H5Tuner-style stack configuration tuning (§II-A4).

H5Tuner "is able to dynamically set the parameters of different levels
of the I/O stack through [the] HDF5 initialization function" and its
autotuning system "execute[s] the [application's I/O] kernel with a
preselected training set of tunable parameters".  This module mirrors
both halves: :class:`H5TunerConfig` bundles one cross-layer setting
(HDF5 chunking, MPI-IO hints, file-system striping), and :func:`tune`
executes an I/O kernel under every candidate configuration on the
testbed and returns the winner with the full training table.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.benchmarks_io.ior.config import IORConfig
from repro.benchmarks_io.ior.runner import run_ior
from repro.iostack.stack import Testbed
from repro.mpi.hints import MPIIOHints
from repro.util.errors import UsageError
from repro.util.units import KIB

__all__ = ["H5TunerConfig", "TuningRun", "tune"]


@dataclass(frozen=True, slots=True)
class H5TunerConfig:
    """One cross-layer tuning configuration (what H5Tuner's XML holds)."""

    name: str
    hdf5_chunk_bytes: int = 1024 * KIB  # HDF5 level: dataset chunk size
    hints: MPIIOHints = field(default_factory=MPIIOHints)  # MPI-IO level
    striping_unit: int = 0  # file-system level (0 = default)

    def __post_init__(self) -> None:
        if not self.name:
            raise UsageError("tuning configuration needs a name")
        if self.hdf5_chunk_bytes <= 0:
            raise UsageError("HDF5 chunk size must be positive")
        if self.striping_unit < 0:
            raise UsageError("striping unit must be >= 0")

    def effective_hints(self) -> MPIIOHints:
        """The MPI-IO hints with the file-system striping folded in.

        H5Tuner pushes file-system settings down through the MPI-IO
        info object, exactly as ROMIO's ``striping_unit`` hint does.
        """
        if self.striping_unit == 0:
            return self.hints
        return MPIIOHints(
            romio_cb_write=self.hints.romio_cb_write,
            romio_cb_read=self.hints.romio_cb_read,
            cb_nodes=self.hints.cb_nodes,
            cb_buffer_size=self.hints.cb_buffer_size,
            striping_unit=self.striping_unit,
        )

    def to_json(self) -> str:
        """Serialize to the tuner's configuration-file format."""
        return json.dumps(
            {
                "name": self.name,
                "hdf5": {"chunk_bytes": self.hdf5_chunk_bytes},
                "mpiio": self.hints.as_dict(),
                "filesystem": {"striping_unit": self.striping_unit},
            },
            indent=2,
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "H5TunerConfig":
        """Deserialize a configuration produced by :meth:`to_json`."""
        try:
            data = json.loads(text)
            return cls(
                name=data["name"],
                hdf5_chunk_bytes=int(data.get("hdf5", {}).get("chunk_bytes", 1024 * KIB)),
                hints=MPIIOHints(**data.get("mpiio", {})),
                striping_unit=int(data.get("filesystem", {}).get("striping_unit", 0)),
            )
        except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
            raise UsageError(f"invalid tuner configuration: {exc}") from exc


@dataclass(frozen=True, slots=True)
class TuningRun:
    """Result of the kernel under one candidate configuration."""

    config: H5TunerConfig
    write_bw_mib: float
    read_bw_mib: float

    @property
    def score(self) -> float:
        """Ranking score (write-weighted, as checkpointing dominates)."""
        return 0.7 * self.write_bw_mib + 0.3 * self.read_bw_mib


def tune(
    testbed: Testbed,
    kernel: IORConfig,
    candidates: list[H5TunerConfig],
    num_nodes: int = 2,
    tasks_per_node: int = 20,
) -> tuple[H5TunerConfig, list[TuningRun]]:
    """Execute the I/O kernel under every candidate; return the winner.

    The kernel must be an HDF5 workload (H5Tuner tunes through the HDF5
    initialization path).  All candidates run with a common run id so
    the comparison is paired (common random numbers).
    """
    if kernel.api != "HDF5":
        raise UsageError(f"H5Tuner tunes HDF5 kernels, got api={kernel.api!r}")
    if not candidates:
        raise UsageError("need at least one candidate configuration")
    names = [c.name for c in candidates]
    if len(set(names)) != len(names):
        raise UsageError(f"duplicate candidate names: {names}")
    runs = []
    for i, candidate in enumerate(candidates):
        tuned_kernel = kernel.with_(
            test_file=f"{kernel.test_file}.{candidate.name}",
            hints=candidate.effective_hints(),
            collective=candidate.effective_hints().collective_enabled(
                "write", kernel.shared_file
            ) and kernel.api != "POSIX",
        )
        result = run_ior(tuned_kernel, testbed, num_nodes, tasks_per_node, run_id=1)
        runs.append(
            TuningRun(
                config=candidate,
                write_bw_mib=result.bandwidth_summary("write").mean,
                read_bw_mib=(
                    result.bandwidth_summary("read").mean if kernel.read_file else 0.0
                ),
            )
        )
    best = max(runs, key=lambda r: r.score)
    return best.config, runs
