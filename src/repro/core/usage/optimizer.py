"""The I/O optimization module (§IV "I/O optimization" use case, §VI).

"To achieve near-optimal use of I/O and storage resources, the I/O
knowledge collected in our workflow can be applied in an offline
fashion as well as an online fashion for I/O optimization."  The
optimizer turns an :class:`~repro.core.usage.pattern_extractor.IOPattern`
into concrete, explained tuning suggestions across the stack layers the
paper's Fig. 1 enumerates: MPI-IO hints (collective buffering,
aggregators), file-system striping, and application-level transfer
sizing.  :func:`validate_suggestion` closes the loop by re-running the
workload with and without the suggested hints on the testbed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.benchmarks_io.ior.config import IORConfig
from repro.benchmarks_io.ior.runner import run_ior
from repro.core.usage.pattern_extractor import IOPattern
from repro.iostack.stack import Testbed
from repro.mpi.hints import MPIIOHints
from repro.util.errors import UsageError
from repro.util.units import KIB, MIB

__all__ = ["TuningSuggestion", "IOOptimizer", "validate_suggestion"]


@dataclass(frozen=True, slots=True)
class TuningSuggestion:
    """One concrete, explained tuning knob."""

    layer: str  # 'mpi-io' | 'filesystem' | 'application'
    parameter: str
    current: str
    suggested: str
    rationale: str

    def __str__(self) -> str:
        return (
            f"[{self.layer}] {self.parameter}: {self.current} -> {self.suggested} "
            f"({self.rationale})"
        )


class IOOptimizer:
    """Rule-based offline optimizer over extracted I/O patterns.

    The rules encode the standard parallel-I/O tuning playbook the
    paper's related work (SCTuner, H5Tuner) automates: collective
    buffering for small shared-file accesses, stripe alignment,
    transfer-size growth, and single-target striping for
    file-per-process floods.
    """

    #: Below this size a transfer is "small" for device efficiency.
    SMALL_TRANSFER = 1 * MIB

    def __init__(self, fs_chunk_size: int = 512 * KIB, num_targets: int = 8) -> None:
        if fs_chunk_size <= 0 or num_targets <= 0:
            raise UsageError("chunk size and target count must be positive")
        self.fs_chunk_size = fs_chunk_size
        self.num_targets = num_targets

    def suggest(self, pattern: IOPattern) -> list[TuningSuggestion]:
        """All applicable suggestions, most impactful first."""
        out: list[TuningSuggestion] = []
        wsize = pattern.representative_write_size

        if pattern.shared_file and wsize and wsize < self.fs_chunk_size:
            out.append(
                TuningSuggestion(
                    layer="mpi-io",
                    parameter="romio_cb_write",
                    current="automatic/disabled",
                    suggested="enable",
                    rationale=(
                        f"{wsize}-byte writes into one shared file serialize on "
                        f"extent locks below the {self.fs_chunk_size}-byte chunk; "
                        "collective buffering re-aggregates them"
                    ),
                )
            )
            out.append(
                TuningSuggestion(
                    layer="mpi-io",
                    parameter="cb_nodes",
                    current="default",
                    suggested=str(max(1, pattern.nprocs // 16)),
                    rationale="one aggregator per ~16 ranks balances exchange and drain",
                )
            )
        if pattern.shared_file and wsize > self.fs_chunk_size and wsize % self.fs_chunk_size != 0:
            # Records larger than (but unaligned with) the chunk cross
            # chunk boundaries; grow the chunk to a 64 KiB-rounded
            # multiple that contains whole records.
            aligned = ((wsize + 65535) // 65536) * 65536
            out.append(
                TuningSuggestion(
                    layer="filesystem",
                    parameter="striping_unit",
                    current=str(self.fs_chunk_size),
                    suggested=str(aligned),
                    rationale="align the stripe chunk to the application record size",
                )
            )
        if wsize and wsize < self.SMALL_TRANSFER and not pattern.shared_file:
            out.append(
                TuningSuggestion(
                    layer="application",
                    parameter="transfer_size",
                    current=str(wsize),
                    suggested=str(self.SMALL_TRANSFER),
                    rationale=(
                        "sub-MiB independent transfers waste device efficiency; "
                        "buffer writes client-side"
                    ),
                )
            )
        if pattern.file_per_process and pattern.nprocs > 4 * self.num_targets:
            out.append(
                TuningSuggestion(
                    layer="filesystem",
                    parameter="stripe_count",
                    current="default (4)",
                    suggested="1",
                    rationale=(
                        f"{pattern.nprocs} per-process files over {self.num_targets} "
                        "targets already cover the pool; single-target stripes cut "
                        "per-file metadata and seek overhead"
                    ),
                )
            )
        if pattern.sequential_fraction < 0.5:
            out.append(
                TuningSuggestion(
                    layer="application",
                    parameter="access order",
                    current=f"{pattern.sequential_fraction:.0%} sequential",
                    suggested="sort/aggregate offsets before issuing I/O",
                    rationale="random access defeats server-side prefetch and write-back",
                )
            )
        return out

    def suggested_hints(self, pattern: IOPattern) -> MPIIOHints:
        """The MPI-IO hint object implementing the suggestions."""
        if pattern.shared_file and (
            0 < pattern.representative_write_size < self.fs_chunk_size
        ):
            return MPIIOHints(
                romio_cb_write="enable",
                romio_cb_read="enable",
                cb_nodes=max(1, pattern.nprocs // 16),
            )
        return MPIIOHints(romio_cb_write="automatic", romio_cb_read="automatic")


def validate_suggestion(
    testbed: Testbed,
    base_config: IORConfig,
    hints: MPIIOHints,
    num_nodes: int = 2,
    tasks_per_node: int = 20,
    run_id: int = 0,
) -> tuple[float, float]:
    """Measure write throughput before/after applying the hints.

    Uses a common run id for both runs (paired noise draws), so the
    returned ``(before, after)`` MiB/s pair isolates the deterministic
    effect of the hints.
    """
    if base_config.api != "MPIIO":
        raise UsageError("hint validation requires an MPI-IO workload")
    before = run_ior(
        base_config.with_(test_file=base_config.test_file + ".before", collective=False),
        testbed, num_nodes, tasks_per_node, run_id=run_id,
    ).bandwidth_summary("write").mean
    tuned = base_config.with_(
        test_file=base_config.test_file + ".after",
        hints=hints,
        collective=hints.collective_enabled("write", base_config.shared_file),
    )
    after = run_ior(tuned, testbed, num_nodes, tasks_per_node, run_id=run_id)
    return before, after.bandwidth_summary("write").mean
