"""Synthetic workload generation from observed patterns (§IV).

"The knowledge obtained from our generic workflow can be used to, e.g.,
generate new benchmark configurations, but also synthetic workload for
simulation and thus drive the simulation or initialize new evaluation
processes."  Given an :class:`~repro.core.usage.pattern_extractor.IOPattern`
(typically extracted from a Darshan log of a real application), this
module emits an IOR configuration that replays the pattern's salient
properties — access size, per-process volume, sharing mode and API —
so the application's I/O can be studied and re-tuned without the
application.
"""

from __future__ import annotations

from repro.benchmarks_io.ior.config import IORConfig
from repro.core.usage.pattern_extractor import IOPattern
from repro.util.errors import UsageError

__all__ = ["ior_config_from_pattern"]


def _round_up(value: int, multiple: int) -> int:
    return ((value + multiple - 1) // multiple) * multiple


def ior_config_from_pattern(
    pattern: IOPattern,
    test_file: str = "/scratch/synthetic/workload",
    api: str = "MPIIO",
    iterations: int = 1,
    max_segments: int = 64,
) -> IORConfig:
    """Build an IOR configuration replaying an observed pattern.

    The transfer size is the pattern's representative write size (reads
    replay at the same granularity, as IOR requires); the block size
    and segment count reproduce the per-process volume; ``-F`` follows
    the sharing mode.  Volumes are rounded up to whole transfers.
    """
    transfer = pattern.representative_write_size or pattern.representative_read_size
    if transfer <= 0:
        raise UsageError("pattern has no data accesses to synthesize from")
    if pattern.nprocs <= 0:
        raise UsageError("pattern needs a positive process count")
    per_proc = max(
        pattern.bytes_written, pattern.bytes_read, transfer * pattern.nprocs
    ) // pattern.nprocs
    per_proc = _round_up(per_proc, transfer)
    # Split the volume into segments of at most max_segments so shared
    # files interleave realistically rather than one giant block each.
    transfers_total = per_proc // transfer
    segments = min(max_segments, transfers_total)
    transfers_per_block = max(1, transfers_total // segments)
    block = transfers_per_block * transfer
    return IORConfig(
        api=api,
        block_size=block,
        transfer_size=transfer,
        segment_count=segments,
        iterations=iterations,
        test_file=test_file,
        file_per_proc=not pattern.shared_file,
        write_file=pattern.bytes_written > 0,
        read_file=pattern.bytes_read > 0,
        fsync=False,
        keep_file=False,
    )
