"""Online-mode monitoring (§III: "our analysis workflow can be used in
both online and offline fashion"; §IV: online I/O optimization).

The :class:`OnlineMonitor` is a stack tracer: attach it to a job and it
ingests I/O events *while the run executes*, folds them into fixed
time intervals, and raises alerts the moment an interval's throughput
collapses against the rolling baseline — the online counterpart of the
offline Fig. 5 analysis.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.iostack.tracing import TraceEvent, Tracer
from repro.util.errors import UsageError

__all__ = ["OnlineAlert", "OnlineMonitor"]


@dataclass(frozen=True, slots=True)
class OnlineAlert:
    """One alert raised during the run."""

    time_s: float
    kind: str  # 'throughput-drop'
    observed_mib_s: float
    baseline_mib_s: float
    message: str


@dataclass(slots=True)
class _Interval:
    index: int
    bytes_moved: float = 0.0


class OnlineMonitor(Tracer):
    """Streaming throughput watchdog over stack trace events."""

    def __init__(
        self,
        interval_s: float = 0.25,
        drop_threshold: float = 0.5,
        warmup_intervals: int = 3,
    ) -> None:
        if interval_s <= 0:
            raise UsageError("interval must be positive")
        if not 0 < drop_threshold < 1:
            raise UsageError("drop_threshold must be in (0, 1)")
        if warmup_intervals < 1:
            raise UsageError("need at least one warmup interval")
        self.interval_s = interval_s
        self.drop_threshold = drop_threshold
        self.warmup_intervals = warmup_intervals
        self._intervals: dict[int, _Interval] = {}
        self._evaluated_upto = -1
        self.alerts: list[OnlineAlert] = []

    # ------------------------------------------------------------------
    # Tracer interface
    # ------------------------------------------------------------------
    def record(self, event: TraceEvent) -> None:
        """Ingest one data-moving event into its time interval."""
        if event.op not in ("read", "write", "read_all", "write_all"):
            return
        self._ingest(event.end, event.length * event.count)
        self._evaluate(event.end)

    def record_batch(
        self, module, op, rank, path, offset0, nbytes, durations, t0
    ) -> None:
        """Vectorized ingest of a batch of identical transfers."""
        if not (op.startswith("read") or op.startswith("write")):
            return
        durations = np.asarray(durations, dtype=float)
        ends = t0 + np.cumsum(durations)
        # Vectorized interval binning for the batch.
        idx = (ends / self.interval_s).astype(int)
        for interval_index in np.unique(idx):
            total = nbytes * int((idx == interval_index).sum())
            self._ingest_index(int(interval_index), total)
        self._evaluate(float(ends[-1]))

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _ingest(self, t: float, nbytes: float) -> None:
        self._ingest_index(int(t / self.interval_s), nbytes)

    def _ingest_index(self, index: int, nbytes: float) -> None:
        interval = self._intervals.get(index)
        if interval is None:
            interval = _Interval(index=index)
            self._intervals[index] = interval
        interval.bytes_moved += nbytes

    def _evaluate(self, now: float) -> None:
        """Check every *completed* interval against the rolling baseline."""
        current = int(now / self.interval_s)
        for index in sorted(i for i in self._intervals if self._evaluated_upto < i < current):
            history = [
                self._intervals[i].bytes_moved
                for i in self._intervals
                if i < index and self._intervals[i].bytes_moved > 0
            ]
            self._evaluated_upto = index
            if len(history) < self.warmup_intervals:
                continue
            baseline = float(np.median(history))
            observed = self._intervals[index].bytes_moved
            if baseline > 0 and observed < self.drop_threshold * baseline:
                mib = 1024**2
                self.alerts.append(
                    OnlineAlert(
                        time_s=index * self.interval_s,
                        kind="throughput-drop",
                        observed_mib_s=observed / self.interval_s / mib,
                        baseline_mib_s=baseline / self.interval_s / mib,
                        message=(
                            f"interval {index}: {observed / self.interval_s / mib:.0f} "
                            f"MiB/s vs baseline {baseline / self.interval_s / mib:.0f} MiB/s"
                        ),
                    )
                )

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    def throughput_series(self) -> list[tuple[float, float]]:
        """(interval start time, MiB/s) pairs for all observed intervals."""
        mib = 1024**2
        return [
            (i * self.interval_s, self._intervals[i].bytes_moved / self.interval_s / mib)
            for i in sorted(self._intervals)
        ]

    def finish(self) -> list[OnlineAlert]:
        """Evaluate any trailing intervals and return all alerts."""
        if self._intervals:
            self._evaluate((max(self._intervals) + 1) * self.interval_s)
        return list(self.alerts)
