"""Online-mode monitoring (§III: "our analysis workflow can be used in
both online and offline fashion"; §IV: online I/O optimization).

The :class:`OnlineMonitor` is a stack tracer: attach it to a job and it
ingests I/O events *while the run executes*, folds them into fixed
time intervals, and raises alerts the moment an interval's throughput
collapses against the rolling baseline — the online counterpart of the
offline Fig. 5 analysis.

With ``detect_periods=True`` the monitor additionally runs the
frequency-domain pipeline of
:mod:`repro.core.scenario.periodic` (DFT + autocorrelation, "Capturing
Periodic I/O Using Frequency Techniques", Tarraf et al.) over the
completed-window series on a sliding cadence, and raises a
``periodic-io`` :class:`OnlineAlert` the first time a period is
detected with enough confidence — while the job is still running, so
the detected period can feed scheduling or buffering decisions
immediately.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.scenario.periodic import detect_periods as _detect_periods
from repro.iostack.tracing import TraceEvent, Tracer
from repro.util.errors import UsageError

__all__ = ["OnlineAlert", "OnlineMonitor"]


@dataclass(frozen=True, slots=True)
class OnlineAlert:
    """One alert raised during the run.

    ``period_s``/``confidence`` are populated for ``periodic-io``
    alerts and ``None`` for ``throughput-drop`` alerts.
    """

    time_s: float
    kind: str  # 'throughput-drop' | 'periodic-io'
    observed_mib_s: float
    baseline_mib_s: float
    message: str
    period_s: float | None = None
    confidence: float | None = None


@dataclass(slots=True)
class _Interval:
    index: int
    bytes_moved: float = 0.0


class OnlineMonitor(Tracer):
    """Streaming throughput watchdog over stack trace events.

    Ingest is order-tolerant by design: events and batches may arrive
    out of order or revisit a window that already received data, and
    the throughput series stays the exact per-window byte sums —
    evaluation only ever moves forward (late data lands in the series
    but cannot re-trigger or rewind an already-evaluated window).
    """

    def __init__(
        self,
        interval_s: float = 0.25,
        drop_threshold: float = 0.5,
        warmup_intervals: int = 3,
        *,
        detect_periods: bool = False,
        detection_min_windows: int = 32,
        detection_stride: int = 16,
        detection_confidence: float = 0.5,
    ) -> None:
        if interval_s <= 0:
            raise UsageError("interval must be positive")
        if not 0 < drop_threshold < 1:
            raise UsageError("drop_threshold must be in (0, 1)")
        if warmup_intervals < 1:
            raise UsageError("need at least one warmup interval")
        if detection_min_windows < 16:
            raise UsageError("period detection needs at least 16 windows")
        if detection_stride < 1:
            raise UsageError("detection stride must be >= 1")
        if not 0 < detection_confidence <= 1:
            raise UsageError("detection confidence must be in (0, 1]")
        self.interval_s = interval_s
        self.drop_threshold = drop_threshold
        self.warmup_intervals = warmup_intervals
        self.detect_periods = detect_periods
        self.detection_min_windows = detection_min_windows
        self.detection_stride = detection_stride
        self.detection_confidence = detection_confidence
        self._intervals: dict[int, _Interval] = {}
        self._evaluated_upto = -1
        self._high_watermark = 0.0
        self._last_detection_windows = 0
        self._alerted_periods: list[float] = []
        self.alerts: list[OnlineAlert] = []

    # ------------------------------------------------------------------
    # Tracer interface
    # ------------------------------------------------------------------
    def record(self, event: TraceEvent) -> None:
        """Ingest one data-moving event into its time interval."""
        if event.op not in ("read", "write", "read_all", "write_all"):
            return
        self._ingest(event.end, event.length * event.count)
        self._evaluate(event.end)

    def record_batch(
        self, module, op, rank, path, offset0, nbytes, durations, t0
    ) -> None:
        """Vectorized ingest of a batch of identical transfers."""
        if not (op.startswith("read") or op.startswith("write")):
            return
        durations = np.asarray(durations, dtype=float)
        if durations.size == 0:
            return  # an empty batch moves no bytes and no clock
        ends = t0 + np.cumsum(durations)
        # Vectorized interval binning for the batch.  floor (not int
        # truncation) keeps pre-epoch timestamps in the right window.
        idx = np.floor(ends / self.interval_s).astype(int)
        for interval_index, count in zip(*np.unique(idx, return_counts=True)):
            self._ingest_index(int(interval_index), nbytes * int(count))
        self._evaluate(float(ends[-1]))

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _ingest(self, t: float, nbytes: float) -> None:
        self._ingest_index(int(np.floor(t / self.interval_s)), nbytes)

    def _ingest_index(self, index: int, nbytes: float) -> None:
        if not np.isfinite(nbytes) or nbytes < 0:
            # A NaN/inf byte count would poison every later baseline
            # and the detector's spectrum; drop it, keep the stream.
            return
        interval = self._intervals.get(index)
        if interval is None:
            interval = _Interval(index=index)
            self._intervals[index] = interval
        interval.bytes_moved += nbytes

    def _evaluate(self, now: float) -> None:
        """Check every *completed* interval against the rolling baseline.

        ``now`` advances a high-watermark: an out-of-order event or
        batch with an earlier timestamp never rewinds evaluation, and
        an already-evaluated interval is never re-alerted, so late or
        duplicated deliveries cannot corrupt the alert stream.
        """
        self._high_watermark = max(self._high_watermark, now)
        current = int(self._high_watermark / self.interval_s)
        for index in sorted(i for i in self._intervals if self._evaluated_upto < i < current):
            history = [
                self._intervals[i].bytes_moved
                for i in self._intervals
                if i < index and self._intervals[i].bytes_moved > 0
            ]
            self._evaluated_upto = index
            if len(history) < self.warmup_intervals:
                continue
            baseline = float(np.median(history))
            observed = self._intervals[index].bytes_moved
            if baseline > 0 and observed < self.drop_threshold * baseline:
                mib = 1024**2
                self.alerts.append(
                    OnlineAlert(
                        time_s=index * self.interval_s,
                        kind="throughput-drop",
                        observed_mib_s=observed / self.interval_s / mib,
                        baseline_mib_s=baseline / self.interval_s / mib,
                        message=(
                            f"interval {index}: {observed / self.interval_s / mib:.0f} "
                            f"MiB/s vs baseline {baseline / self.interval_s / mib:.0f} MiB/s"
                        ),
                    )
                )
        if self.detect_periods:
            self._detect(current)

    def _completed_values(self) -> np.ndarray:
        """Per-window MiB/s over the completed prefix, gaps as zeros."""
        completed = [i for i in self._intervals if i <= self._evaluated_upto]
        if not completed:
            return np.zeros(0)
        lo, hi = min(completed), max(completed)
        values = np.zeros(hi - lo + 1)
        mib = 1024**2
        for i in completed:
            values[i - lo] = self._intervals[i].bytes_moved / self.interval_s / mib
        return values

    def _detect(self, current: int) -> None:
        """Run the frequency pipeline on a sliding cadence."""
        values = self._completed_values()
        n = len(values)
        if n < self.detection_min_windows:
            return
        if n - self._last_detection_windows < self.detection_stride:
            return
        self._last_detection_windows = n
        detections = _detect_periods(
            values, self.interval_s, min_confidence=self.detection_confidence
        )
        for detection in detections:
            if any(
                abs(detection.period_s - p) / p < 0.25 for p in self._alerted_periods
            ):
                continue  # already alerted on (roughly) this period
            self._alerted_periods.append(detection.period_s)
            observed = float(values.mean())
            self.alerts.append(
                OnlineAlert(
                    time_s=self._evaluated_upto * self.interval_s,
                    kind="periodic-io",
                    observed_mib_s=observed,
                    baseline_mib_s=float(np.median(values)),
                    message=(
                        f"periodic I/O phase: {detection.description} "
                        f"over {n} windows"
                    ),
                    period_s=detection.period_s,
                    confidence=detection.confidence,
                )
            )

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    def throughput_series(self) -> list[tuple[float, float]]:
        """(interval start time, MiB/s) pairs for all observed intervals."""
        mib = 1024**2
        return [
            (i * self.interval_s, self._intervals[i].bytes_moved / self.interval_s / mib)
            for i in sorted(self._intervals)
        ]

    def detected_periods(self) -> list[OnlineAlert]:
        """The ``periodic-io`` alerts raised so far."""
        return [a for a in self.alerts if a.kind == "periodic-io"]

    def finish(self) -> list[OnlineAlert]:
        """Evaluate any trailing intervals and return all alerts."""
        if self._intervals:
            self._last_detection_windows = 0  # force one final detection pass
            self._evaluate((max(self._intervals) + 1) * self.interval_s)
        return list(self.alerts)
