"""I/O pattern extraction (the §IV/§VI "I/O pattern extractor" module).

§IV: "the I/O knowledge collected in our workflow can be applied ...
for I/O optimization by using an I/O pattern extractor" — the component
SCTuner builds into HDF5 and the paper plans as an explorer extension.
This implementation distils a Darshan report into the structured
:class:`IOPattern` the optimizer and the synthetic workload generator
consume: representative access sizes, volumes, file sharing, and (when
DXT is available) sequentiality and burst structure.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.darshan.pydarshan import DarshanReport
from repro.util.errors import UsageError

__all__ = ["IOPattern", "extract_pattern"]

#: Representative byte size of each Darshan histogram bin (geometric
#: midpoint, except the open-ended bins).
_BIN_REPRESENTATIVE = {
    "0_100": 64,
    "100_1K": 512,
    "1K_10K": 4 * 1024,
    "10K_100K": 47 * 1024,
    "100K_1M": 512 * 1024,
    "1M_4M": 2 * 1024**2,
    "4M_10M": 6 * 1024**2,
    "10M_100M": 32 * 1024**2,
    "100M_1G": 256 * 1024**2,
    "1G_PLUS": 1024**3,
}


@dataclass(frozen=True, slots=True)
class IOPattern:
    """Structured description of an application's I/O behaviour."""

    nprocs: int
    n_files: int
    shared_file: bool
    representative_write_size: int
    representative_read_size: int
    bytes_written: int
    bytes_read: int
    write_ops: int
    read_ops: int
    sequential_fraction: float  # 1.0 = purely sequential (NaN-free: 1.0 if unknown)
    n_bursts: int
    mean_burst_bytes: float

    @property
    def write_dominant(self) -> bool:
        """Whether the workload moves more write than read bytes."""
        return self.bytes_written >= self.bytes_read

    @property
    def file_per_process(self) -> bool:
        """Heuristic: one file (or more) per process, none shared."""
        return not self.shared_file and self.n_files >= self.nprocs


def _representative_size(histogram: dict[str, int]) -> int:
    """Weighted median representative size from a Darshan histogram."""
    total = sum(histogram.values())
    if total == 0:
        return 0
    acc = 0
    for bin_name, rep in _BIN_REPRESENTATIVE.items():
        acc += histogram.get(bin_name, 0)
        if acc * 2 >= total:
            return rep
    return _BIN_REPRESENTATIVE["1G_PLUS"]  # pragma: no cover


def _sequentiality_and_bursts(
    report: DarshanReport, module: str, burst_gap_s: float = 0.01
) -> tuple[float, int, float]:
    """Sequential fraction and burst structure from DXT segments.

    A transfer is *sequential* when it starts exactly where the same
    rank's previous transfer on the same file ended.  A *burst* is a
    maximal group of operations (across ranks) separated by idle gaps
    longer than ``burst_gap_s``.
    """
    segments = report.dxt_segments(module)
    if not segments:
        return 1.0, 1, float(sum(report.total_bytes(module)))
    sequential = 0
    total = 0
    all_segs = []
    for (_rank, _path), segs in segments.items():
        ordered = sorted(segs, key=lambda s: s.start)
        all_segs.extend(ordered)
        # Write and read streams over the same file are independent
        # cursors (a read-back restarting at offset 0 is sequential).
        prev_end_offset: dict[str, int | None] = {"write": None, "read": None}
        for s in ordered:
            total += 1
            if prev_end_offset[s.op] is None or s.offset == prev_end_offset[s.op]:
                sequential += 1
            prev_end_offset[s.op] = s.offset + s.length
    all_segs.sort(key=lambda s: s.start)
    bursts = 1
    burst_bytes = [all_segs[0].length]
    last_end = all_segs[0].end
    for s in all_segs[1:]:
        if s.start - last_end > burst_gap_s:
            bursts += 1
            burst_bytes.append(0)
        burst_bytes[-1] += s.length
        last_end = max(last_end, s.end)
    return (
        sequential / total if total else 1.0,
        bursts,
        float(np.mean(burst_bytes)),
    )


def extract_pattern(report: DarshanReport, module: str = "POSIX") -> IOPattern:
    """Distil one Darshan report into an :class:`IOPattern`."""
    if module not in report.modules:
        raise UsageError(
            f"module {module!r} not in report; available: {report.modules}"
        )
    per_file = report.per_file(module)
    if not per_file:
        raise UsageError("report contains no file records")
    # A file is shared when records from more than one rank touch it.
    ranks_per_file: dict[str, set[int]] = {}
    for rec in report.records[module]:
        ranks_per_file.setdefault(rec.path, set()).add(rec.rank)
    shared = any(len(ranks) > 1 for ranks in ranks_per_file.values())

    counters = report.counters(module)
    prefix = "H5D" if module == "HDF5" else module
    bytes_read, bytes_written = report.total_bytes(module)
    seq_fraction, n_bursts, mean_burst = _sequentiality_and_bursts(report, module)
    return IOPattern(
        nprocs=report.nprocs,
        n_files=len(per_file),
        shared_file=shared,
        representative_write_size=_representative_size(
            report.size_histogram(module, "WRITE")
        ),
        representative_read_size=_representative_size(
            report.size_histogram(module, "READ")
        ),
        bytes_written=bytes_written,
        bytes_read=bytes_read,
        write_ops=int(counters[f"{prefix}_WRITES"]),
        read_ops=int(counters[f"{prefix}_READS"]),
        sequential_fraction=seq_fraction,
        n_bursts=n_bursts,
        mean_burst_bytes=mean_burst,
    )
