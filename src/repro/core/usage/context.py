"""Anomaly-cause context collection (§IV anomaly detection).

"To identify possible causes, our workflow offers the ability to
extract additional information such as file system information, and
overall system statistics and configuration.  It is planned to collect
further information from workload managers such as Slurm, thus
providing context between anomaly and causes."  This module implements
that plan: given a detected anomaly and the testbed it occurred on, it
joins the Slurm accounting view, node health, storage-target health and
the active fault records into one report a user (or a later root-cause
module) can act on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.core.usage.anomaly import IterationAnomaly
from repro.iostack.stack import Testbed
from repro.util.tables import render_kv, render_table

__all__ = ["AnomalyContext", "collect_context"]


@dataclass(slots=True)
class AnomalyContext:
    """Everything known about the system around one anomaly."""

    anomaly: IterationAnomaly
    job_info: dict[str, object] = field(default_factory=dict)
    degraded_nodes: list[str] = field(default_factory=list)
    degraded_targets: list[tuple[int, str, float]] = field(default_factory=list)
    active_faults: list[dict[str, object]] = field(default_factory=list)
    filesystem: dict[str, object] = field(default_factory=dict)

    @property
    def probable_causes(self) -> list[str]:
        """Ranked plain-language cause hypotheses."""
        causes = []
        for fault in self.active_faults:
            causes.append(f"injected/observed fault {fault['name']!r} (scope {fault['scope']})")
        for tid, server, health in self.degraded_targets:
            causes.append(f"storage target {tid} on {server} degraded to {health:.0%}")
        for node in self.degraded_nodes:
            causes.append(f"compute node {node} degraded")
        if not causes:
            causes.append("no degraded component recorded: suspect external interference")
        return causes

    def render(self) -> str:
        """Human-readable context report."""
        parts = [f"Anomaly: {self.anomaly.description}", ""]
        if self.job_info:
            parts += ["Job (Slurm accounting):", render_kv(self.job_info, indent="  "), ""]
        if self.filesystem:
            parts += ["File system:", render_kv(self.filesystem, indent="  "), ""]
        if self.degraded_targets:
            parts += [
                "Degraded storage targets:",
                render_table(
                    ["target", "server", "health"],
                    [[t, s, h] for t, s, h in self.degraded_targets],
                    indent="  ",
                ),
                "",
            ]
        parts.append("Probable causes:")
        parts += [f"  - {c}" for c in self.probable_causes]
        return "\n".join(parts) + "\n"


def collect_context(
    anomaly: IterationAnomaly,
    testbed: Testbed,
    job_id: int | None = None,
    anomaly_tags: Mapping[str, object] | None = None,
) -> AnomalyContext:
    """Join an anomaly with Slurm, node, storage and fault state."""
    ctx = AnomalyContext(anomaly=anomaly)

    jobs = testbed.slurm.sacct()
    job = None
    if job_id is not None:
        job = next((j for j in jobs if j.job_id == job_id), None)
    elif jobs:
        job = jobs[-1]
    if job is not None and job.allocation is not None:
        ctx.job_info = {
            "job_id": job.job_id,
            "name": job.request.name,
            "state": job.state,
            "nodes": job.allocation.num_nodes,
            "tasks_per_node": job.allocation.tasks_per_node,
            "node_list": ",".join(
                testbed.cluster.node(i).hostname for i in job.allocation.node_indices
            ),
            "elapsed_s": job.elapsed_s,
        }
        ctx.degraded_nodes = [
            testbed.cluster.node(i).hostname
            for i in job.allocation.node_indices
            if testbed.cluster.node(i).performance_factor < 1.0
        ]

    ctx.degraded_targets = [
        (t.target_id, t.server, t.health)
        for t in testbed.fs.pool.targets
        if t.health < 1.0
    ]
    tags = dict(anomaly_tags or {})
    ctx.active_faults = [
        {"name": f.name, "scope": f.scope, "factor": f.factor, "when": dict(f.when)}
        for f in testbed.fs.faults.faults
        if not tags or f.matches(tags)
    ]
    ctx.filesystem = testbed.fs.df()
    return ctx
