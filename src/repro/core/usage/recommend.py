"""Configuration recommendation from the knowledge base.

§IV: "in the offline mode, the users can be suggested with suitable
configurations via a recommendation module, which can be applied
manually for individual runs."  The recommender searches stored
knowledge for runs comparable to the user's situation and suggests the
configuration that performed best, together with the evidence.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.knowledge import Knowledge
from repro.util.errors import UsageError

__all__ = ["Recommendation", "Recommender"]


@dataclass(frozen=True, slots=True)
class Recommendation:
    """A suggested configuration with its supporting evidence."""

    command: str
    expected_bw_mean: float
    operation: str
    knowledge_id: int | None
    improvement_over_worst: float  # best mean / worst mean among candidates
    n_candidates: int

    @property
    def description(self) -> str:
        """Human-readable suggestion."""
        return (
            f"run `{self.command}` (expected {self.operation} throughput "
            f"{self.expected_bw_mean:.0f} MiB/s, best of {self.n_candidates} "
            f"comparable runs, {self.improvement_over_worst:.2f}x over the worst)"
        )


class Recommender:
    """Suggests the best-performing stored configuration."""

    def __init__(self, knowledge_base: list[Knowledge]) -> None:
        self.knowledge_base = list(knowledge_base)

    def candidates(
        self,
        operation: str = "write",
        num_tasks: int | None = None,
        api: str | None = None,
        benchmark: str = "ior",
    ) -> list[Knowledge]:
        """Stored runs comparable to the user's situation."""
        out = []
        for k in self.knowledge_base:
            if k.benchmark != benchmark:
                continue
            if num_tasks is not None and k.num_tasks != num_tasks:
                continue
            if api is not None and k.api.upper() != api.upper():
                continue
            if not any(s.operation == operation for s in k.summaries):
                continue
            out.append(k)
        return out

    def recommend(
        self,
        operation: str = "write",
        num_tasks: int | None = None,
        api: str | None = None,
        benchmark: str = "ior",
    ) -> Recommendation:
        """Best stored configuration for the given constraints."""
        candidates = self.candidates(operation, num_tasks, api, benchmark)
        if not candidates:
            raise UsageError(
                "no comparable knowledge in the base; generate knowledge first "
                f"(operation={operation!r}, num_tasks={num_tasks}, api={api!r})"
            )
        ranked = sorted(
            candidates, key=lambda k: k.summary(operation).bw_mean, reverse=True
        )
        best, worst = ranked[0], ranked[-1]
        best_mean = best.summary(operation).bw_mean
        worst_mean = worst.summary(operation).bw_mean
        return Recommendation(
            command=best.command,
            expected_bw_mean=best_mean,
            operation=operation,
            knowledge_id=best.knowledge_id,
            improvement_over_worst=best_mean / worst_mean if worst_mean > 0 else float("inf"),
            n_candidates=len(candidates),
        )
