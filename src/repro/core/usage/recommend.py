"""Configuration recommendation from the knowledge base.

§IV: "in the offline mode, the users can be suggested with suitable
configurations via a recommendation module, which can be applied
manually for individual runs."  The recommender searches stored
knowledge for runs comparable to the user's situation and suggests the
configuration that performed best, together with the evidence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.core.knowledge import Knowledge
from repro.util.errors import UsageError

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.core.scenario.periodic import PeriodDetection

__all__ = [
    "Recommendation",
    "Recommender",
    "PeriodicRecommendation",
    "recommend_for_periods",
]


@dataclass(frozen=True, slots=True)
class Recommendation:
    """A suggested configuration with its supporting evidence."""

    command: str
    expected_bw_mean: float
    operation: str
    knowledge_id: int | None
    improvement_over_worst: float  # best mean / worst mean among candidates
    n_candidates: int

    @property
    def description(self) -> str:
        """Human-readable suggestion."""
        return (
            f"run `{self.command}` (expected {self.operation} throughput "
            f"{self.expected_bw_mean:.0f} MiB/s, best of {self.n_candidates} "
            f"comparable runs, {self.improvement_over_worst:.2f}x over the worst)"
        )


class Recommender:
    """Suggests the best-performing stored configuration."""

    def __init__(self, knowledge_base: list[Knowledge]) -> None:
        self.knowledge_base = list(knowledge_base)

    def candidates(
        self,
        operation: str = "write",
        num_tasks: int | None = None,
        api: str | None = None,
        benchmark: str = "ior",
    ) -> list[Knowledge]:
        """Stored runs comparable to the user's situation."""
        out = []
        for k in self.knowledge_base:
            if k.benchmark != benchmark:
                continue
            if num_tasks is not None and k.num_tasks != num_tasks:
                continue
            if api is not None and k.api.upper() != api.upper():
                continue
            if not any(s.operation == operation for s in k.summaries):
                continue
            out.append(k)
        return out

    def recommend(
        self,
        operation: str = "write",
        num_tasks: int | None = None,
        api: str | None = None,
        benchmark: str = "ior",
    ) -> Recommendation:
        """Best stored configuration for the given constraints."""
        candidates = self.candidates(operation, num_tasks, api, benchmark)
        if not candidates:
            raise UsageError(
                "no comparable knowledge in the base; generate knowledge first "
                f"(operation={operation!r}, num_tasks={num_tasks}, api={api!r})"
            )
        ranked = sorted(
            candidates, key=lambda k: k.summary(operation).bw_mean, reverse=True
        )
        best, worst = ranked[0], ranked[-1]
        best_mean = best.summary(operation).bw_mean
        worst_mean = worst.summary(operation).bw_mean
        return Recommendation(
            command=best.command,
            expected_bw_mean=best_mean,
            operation=operation,
            knowledge_id=best.knowledge_id,
            improvement_over_worst=best_mean / worst_mean if worst_mean > 0 else float("inf"),
            n_candidates=len(candidates),
        )


@dataclass(frozen=True, slots=True)
class PeriodicRecommendation:
    """An actionable suggestion derived from a detected I/O period."""

    action: str  # 'collective-buffering' | 'burst-absorb' | 'stagger-phases'
    period_s: float
    confidence: float
    message: str

    @property
    def description(self) -> str:
        """Human-readable suggestion."""
        return (
            f"[{self.action}] {self.message} "
            f"(period {self.period_s:.2f}s, confidence {self.confidence:.2f})"
        )


def recommend_for_periods(
    detections: "Sequence[PeriodDetection]",
    *,
    min_confidence: float = 0.5,
) -> list[PeriodicRecommendation]:
    """Map detected periods onto concrete mitigations.

    The action depends on the timescale of the periodicity: sub-second
    periods point at per-operation overhead (collective buffering /
    aggregation amortizes it), seconds-scale bursts are the classic
    checkpoint cadence (absorb them in a burst buffer or node-local
    staging), and very long periods are whole application phases (best
    staggered against other jobs or prefetched ahead of the phase).
    Detections below ``min_confidence`` are dropped rather than turned
    into noise.
    """
    recommendations = []
    for d in detections:
        if d.confidence < min_confidence:
            continue
        if d.period_s < 1.0:
            action = "collective-buffering"
            message = (
                f"sub-second periodic I/O every {d.period_s * 1000:.0f} ms — "
                "aggregate small operations (collective buffering, larger "
                "transfer sizes) to amortize per-request overhead"
            )
        elif d.period_s < 30.0:
            action = "burst-absorb"
            message = (
                f"burst cadence of {d.period_s:.1f}s — absorb bursts in a "
                "burst buffer or node-local staging, and size write-behind "
                "to drain one burst before the next arrives"
            )
        else:
            action = "stagger-phases"
            message = (
                f"long I/O phase every {d.period_s:.0f}s — stagger the phase "
                "against co-scheduled jobs, or prefetch/flush asynchronously "
                "ahead of the next phase boundary"
            )
        recommendations.append(
            PeriodicRecommendation(
                action=action,
                period_s=d.period_s,
                confidence=d.confidence,
                message=message,
            )
        )
    recommendations.sort(key=lambda r: r.confidence, reverse=True)
    return recommendations
