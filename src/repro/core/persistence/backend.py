"""Persistence backends — the storage abstraction under the repositories.

§V-C allows knowledge to be stored "either directly as a local SQLite
database or by specifying a SQL connection URL remotely".  The
repositories therefore depend on the :class:`PersistenceBackend`
protocol, not on a concrete engine: anything that can execute
parameterised SQL against the paper's schema and manage transactions
can hold the knowledge base.  :class:`~repro.core.persistence.database.
KnowledgeDatabase` is the synchronous SQLite backend;
:class:`BatchedBackend` wraps any backend and coalesces a burst of
per-object commits into a single transaction — the write path for
ingesting large corpora such as the public IO500 submission data.
:class:`ResilientBackend` wraps any backend with retry/backoff against
transient driver errors ("database is locked") and a circuit breaker
that degrades into a read-only mode buffering unsaved writes for a
later flush — so one wedged database never loses a revolution's
knowledge.
"""

from __future__ import annotations

import re
import sqlite3
import time
from contextlib import contextmanager
from typing import TYPE_CHECKING, Callable, Iterable, Protocol, Sequence, runtime_checkable

from repro.core.resilience import CircuitBreaker, RetryPolicy, retry
from repro.util.errors import PersistenceError

if TYPE_CHECKING:  # pragma: no cover - type-only import (avoids a cycle)
    from repro.core.metrics import MetricsRegistry

__all__ = [
    "PersistenceBackend",
    "BatchedBackend",
    "ResilientBackend",
    "transient_db_error",
]


@runtime_checkable
class PersistenceBackend(Protocol):
    """What the repositories require from a storage engine."""

    def execute(self, sql: str, params: tuple = ()) -> sqlite3.Cursor:
        """Run one parameterised statement; returns its cursor."""
        ...

    def executemany(self, sql: str, seq_of_params: Iterable[Sequence]) -> sqlite3.Cursor:
        """Run one statement over many parameter rows."""
        ...

    def commit(self) -> None:
        """Make completed writes durable."""
        ...

    def rollback(self) -> None:
        """Discard uncommitted writes."""
        ...

    def close(self) -> None:
        """Release the underlying storage; must be idempotent."""
        ...

    def transaction(self):
        """Context manager: group writes into one atomic transaction."""
        ...

    def table_count(self, table: str) -> int:
        """Row count of one table (for tests and reports)."""
        ...


class BatchedBackend:
    """Defer commits so many ``save()`` calls share one transaction.

    Repositories commit after every object; over a large ingest that
    costs one fsync per object.  This wrapper turns each inner
    ``commit()`` into a deferral and makes the whole batch durable at
    :meth:`flush` (or ``close()``/context-manager exit), so a thousand
    saves hit the disk once.  ``rollback()`` abandons the entire
    pending batch — the all-or-nothing semantics of one transaction.
    """

    def __init__(self, backend: PersistenceBackend) -> None:
        self.backend = backend
        self.pending_commits = 0

    # -- write path ----------------------------------------------------
    def execute(self, sql: str, params: tuple = ()) -> sqlite3.Cursor:
        """Run one statement on the wrapped backend."""
        return self.backend.execute(sql, params)

    def executemany(self, sql: str, seq_of_params: Iterable[Sequence]) -> sqlite3.Cursor:
        """Run one statement over many rows on the wrapped backend."""
        return self.backend.executemany(sql, seq_of_params)

    def commit(self) -> None:
        """Record the commit request; durability is deferred to flush()."""
        self.pending_commits += 1

    def rollback(self) -> None:
        """Abandon every deferred write."""
        self.pending_commits = 0
        self.backend.rollback()

    def flush(self) -> None:
        """Commit everything deferred since the last flush."""
        if self.pending_commits:
            self.pending_commits = 0
            self.backend.commit()

    def close(self) -> None:
        """Flush, then close the wrapped backend."""
        self.flush()
        self.backend.close()

    def transaction(self):
        """Delegate grouping to the wrapped backend's transaction."""
        return self.backend.transaction()

    # -- read path -----------------------------------------------------
    def table_count(self, table: str) -> int:
        """Row count of one table (reads see the pending batch)."""
        return self.backend.table_count(table)

    def __enter__(self) -> "BatchedBackend":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.flush()
        else:
            self.rollback()
        self.close()


# ----------------------------------------------------------------------
# resilient wrapper: retry, circuit breaker, degraded write buffering
# ----------------------------------------------------------------------
_TRANSIENT_DB_MARKERS = ("database is locked", "database table is locked", "busy", "disk i/o error")


def transient_db_error(exc: BaseException) -> bool:
    """Whether a database error is worth retrying.

    SQLite signals contention as ``sqlite3.OperationalError`` with a
    "database is locked"/"busy" message — possibly already wrapped into
    :class:`PersistenceError` by :class:`~repro.core.persistence.
    database.KnowledgeDatabase`.  Errors carrying a truthy ``transient``
    attribute (injected faults) count too.
    """
    if getattr(exc, "transient", False):
        return True
    if isinstance(exc, (sqlite3.OperationalError, PersistenceError)):
        msg = str(exc).lower()
        return any(marker in msg for marker in _TRANSIENT_DB_MARKERS)
    return False


_WRITE_VERBS = frozenset({"insert", "update", "delete", "replace", "create", "drop", "alter"})
_INSERT_TABLE_RE = re.compile(r"insert\s+(?:or\s+\w+\s+)?into\s+([A-Za-z_]\w*)", re.IGNORECASE)


class _BufferedCursor:
    """Stand-in cursor returned for a write deferred in degraded mode."""

    def __init__(self, lastrowid: int | None) -> None:
        self.lastrowid = lastrowid
        self.rowcount = -1

    def fetchone(self):
        raise PersistenceError("statement was buffered (degraded mode); nothing to fetch")

    def fetchall(self):
        raise PersistenceError("statement was buffered (degraded mode); nothing to fetch")


class ResilientBackend:
    """Retry + circuit-breaker wrapper around any persistence backend.

    Transient driver errors (``transient_db_error``) are retried under
    a deterministic :class:`RetryPolicy`.  A write that still fails —
    or arrives while the breaker is OPEN — is *buffered* instead of
    raised: the backend degrades to read-only, knowledge keeps
    accumulating in order, and :meth:`flush` (called automatically by
    the half-open probe and by ``close()``) replays the buffer once the
    database heals.  Reads always pass straight through.

    Buffered ``INSERT`` statements are handed predicted ``lastrowid``
    values (continuing the table's rowid sequence) so repositories can
    keep wiring up child rows; the replay verifies every prediction and
    fails loudly on a mismatch.  This is sound under this backend's
    single-writer assumption — the same assumption SQLite itself makes
    of the local knowledge base.
    """

    def __init__(
        self,
        backend: PersistenceBackend,
        retry_policy: RetryPolicy | None = None,
        breaker: CircuitBreaker | None = None,
        sleep: Callable[[float], None] = time.sleep,
        metrics: "MetricsRegistry | None" = None,
    ) -> None:
        self.backend = backend
        self.metrics = metrics
        self.retry_policy = retry_policy or RetryPolicy(
            max_attempts=4, base_delay_s=0.01, salt="persistence",
            retryable=transient_db_error,
        )
        self.breaker = breaker or CircuitBreaker(
            failure_threshold=3, reset_timeout_s=1.0, metrics=metrics, name="persistence"
        )
        self._sleep = sleep
        self._buffer: list[tuple] = []  # ("stmt", sql, params, predicted) | ("many", ...) | ("commit",)
        self._next_rowid: dict[str, int] = {}
        self._deferred_commit = False

    # -- state ---------------------------------------------------------
    @property
    def degraded(self) -> bool:
        """Whether writes are currently buffered instead of executed.

        A pure peek: never claims the breaker's half-open probe slot.
        """
        return (
            bool(self._buffer)
            or self._deferred_commit
            or self.breaker.state == CircuitBreaker.OPEN
        )

    @property
    def buffered_statements(self) -> int:
        """Writes waiting in the degraded-mode buffer."""
        return sum(1 for entry in self._buffer if entry[0] != "commit")

    @staticmethod
    def _is_write(sql: str) -> bool:
        head = sql.lstrip().split(None, 1)
        return bool(head) and head[0].lower() in _WRITE_VERBS

    def _predict_rowid(self, sql: str) -> int | None:
        m = _INSERT_TABLE_RE.match(sql.lstrip())
        if m is None:
            return None
        table = m.group(1).lower()
        if table not in self._next_rowid:
            # Seed from the live table; reads still work in degraded mode.
            try:
                row = self.backend.execute(
                    f"SELECT COALESCE(MAX(rowid), 0) AS m FROM {m.group(1)}"
                ).fetchone()
                self._next_rowid[table] = int(row["m"] if hasattr(row, "keys") else row[0]) + 1
            except Exception as exc:
                raise PersistenceError(
                    f"cannot buffer INSERT into {table!r}: rowid sequence "
                    f"unavailable while degraded ({exc})"
                ) from exc
        predicted = self._next_rowid[table]
        self._next_rowid[table] = predicted + 1
        return predicted

    def _note_real_insert(self, sql: str, cursor) -> None:
        m = _INSERT_TABLE_RE.match(sql.lstrip())
        if m is not None and getattr(cursor, "lastrowid", None):
            self._next_rowid[m.group(1).lower()] = cursor.lastrowid + 1

    def _run(self, fn):
        """One backend call under the retry policy."""
        return retry(
            fn, self.retry_policy, sleep=self._sleep,
            metrics=self.metrics, site="persistence",
        )

    def _count_stmt(self, kind: str, outcome: str, rows: int = 0) -> None:
        if self.metrics is None:
            return
        self.metrics.counter(
            "persistence.statements_total", "statements through the resilient backend",
            kind=kind, outcome=outcome,
        ).inc()
        if rows > 0:
            self.metrics.counter(
                "persistence.rows_written_total", "rows written through the backend"
            ).inc(rows)

    def _note_buffer_depth(self) -> None:
        if self.metrics is not None:
            self.metrics.gauge(
                "persistence.degraded_buffer_depth",
                "writes waiting in the degraded-mode buffer",
            ).set(self.buffered_statements)

    # -- write path ----------------------------------------------------
    def execute(self, sql: str, params: tuple = ()) -> sqlite3.Cursor:
        """Run one statement; transient write failures degrade to the buffer."""
        if not self._is_write(sql):
            cursor = self._run(lambda: self.backend.execute(sql, params))
            self._count_stmt("read", "ok")
            return cursor
        if not self.breaker.allow():
            return self._buffer_stmt(sql, params)
        if self._buffer or self._deferred_commit:
            # Half-open probe: the buffer must replay first to keep order.
            try:
                self._replay()
            except Exception as exc:
                self.breaker.record_failure()
                if not transient_db_error(exc):
                    raise
                return self._buffer_stmt(sql, params)
        try:
            cursor = self._run(lambda: self.backend.execute(sql, params))
        except Exception as exc:
            # Success or failure must be reported either way: the
            # half-open probe slot is held until the breaker hears back.
            self.breaker.record_failure()
            self._count_stmt("write", "failed")
            if not transient_db_error(exc):
                raise
            return self._buffer_stmt(sql, params)
        self.breaker.record_success()
        self._note_real_insert(sql, cursor)
        self._count_stmt("write", "ok", rows=max(getattr(cursor, "rowcount", 0), 0) or 1)
        return cursor

    def executemany(self, sql: str, seq_of_params: Iterable[Sequence]) -> sqlite3.Cursor:
        """Run one statement over many rows, degrading like :meth:`execute`."""
        rows = [tuple(p) for p in seq_of_params]
        if not self.breaker.allow():
            self._buffer.append(("many", sql, rows))
            self._count_stmt("write", "buffered")
            self._note_buffer_depth()
            return _BufferedCursor(None)
        try:
            if self._buffer or self._deferred_commit:
                self._replay()
            cursor = self._run(lambda: self.backend.executemany(sql, rows))
        except Exception as exc:
            self.breaker.record_failure()
            self._count_stmt("write", "failed")
            if not transient_db_error(exc):
                raise
            self._buffer.append(("many", sql, rows))
            self._note_buffer_depth()
            return _BufferedCursor(None)
        self.breaker.record_success()
        # A batch INSERT advances the table's rowid sequence by an
        # amount the cursor does not report reliably; drop the cached
        # prediction base so the next degraded buffering re-seeds from
        # the live table instead of predicting stale rowids.
        m = _INSERT_TABLE_RE.match(sql.lstrip())
        if m is not None:
            self._next_rowid.pop(m.group(1).lower(), None)
        self._count_stmt("write", "ok", rows=len(rows))
        return cursor

    def _buffer_stmt(self, sql: str, params: tuple) -> _BufferedCursor:
        predicted = self._predict_rowid(sql)
        self._buffer.append(("stmt", sql, tuple(params), predicted))
        self._count_stmt("write", "buffered")
        self._note_buffer_depth()
        return _BufferedCursor(predicted)

    def _count_event(self, name: str, help_: str, outcome: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(name, help_, outcome=outcome).inc()

    def _replay(self) -> None:
        """Re-execute the buffered writes in order against the backend."""
        try:
            while self._buffer:
                entry = self._buffer[0]
                if entry[0] == "commit":
                    self._run(self.backend.commit)
                elif entry[0] == "many":
                    self._run(lambda e=entry: self.backend.executemany(e[1], e[2]))
                    self._count_stmt("write", "replayed", rows=len(entry[2]))
                else:
                    _, sql, params, predicted = entry
                    cursor = self._run(lambda: self.backend.execute(sql, params))
                    if predicted is not None and cursor.lastrowid != predicted:
                        self.backend.rollback()
                        raise PersistenceError(
                            f"degraded-mode replay drifted: expected rowid {predicted}, "
                            f"database assigned {cursor.lastrowid} — was the database "
                            "written by another client while degraded?"
                        )
                    self._count_stmt(
                        "write", "replayed",
                        rows=max(getattr(cursor, "rowcount", 0), 0) or 1,
                    )
                self._buffer.pop(0)
            if self._deferred_commit:
                self._run(self.backend.commit)
                self._deferred_commit = False
        except Exception:
            self._count_event(
                "persistence.replays_total", "degraded-buffer replay attempts", "failed"
            )
            self._note_buffer_depth()
            raise
        self.breaker.record_success()
        self._count_event(
            "persistence.replays_total", "degraded-buffer replay attempts", "ok"
        )
        self._note_buffer_depth()

    def flush(self) -> None:
        """Replay any buffered writes and make them durable."""
        if not self._buffer and not self._deferred_commit:
            return
        try:
            self._replay()
            self._run(self.backend.commit)
        except Exception as exc:
            self._count_event("persistence.flushes_total", "degraded-buffer flushes", "failed")
            if transient_db_error(exc):
                self.breaker.record_failure()
                raise PersistenceError(
                    f"cannot flush degraded buffer ({self.buffered_statements} "
                    f"statement(s) still unsaved): {exc}"
                ) from exc
            raise
        self._count_event("persistence.flushes_total", "degraded-buffer flushes", "ok")

    def commit(self) -> None:
        """Commit, deferring durability while degraded."""
        if self._buffer or not self.breaker.allow():
            self._buffer.append(("commit",))
            return
        try:
            self._run(self.backend.commit)
        except Exception as exc:
            if not transient_db_error(exc):
                self.breaker.record_failure()
                raise
            self.breaker.record_failure()
            self._deferred_commit = True
            return
        self.breaker.record_success()

    def rollback(self) -> None:
        """Discard writes since the last commit, buffered ones included.

        State is only *peeked* here: rollback is housekeeping, not a
        half-open probe, so it must not claim the probe slot.
        """
        while self._buffer and self._buffer[-1][0] != "commit":
            self._buffer.pop()
        self._note_buffer_depth()
        if self.breaker.state != CircuitBreaker.OPEN:
            self.backend.rollback()

    @contextmanager
    def transaction(self):
        """Group writes atomically; a degraded group stays in the buffer."""
        if self.breaker.state == CircuitBreaker.OPEN:
            mark = len(self._buffer)
            try:
                yield self
            except BaseException:
                del self._buffer[mark:]
                raise
            else:
                self._buffer.append(("commit",))
        else:
            with self.backend.transaction():
                yield self

    def close(self) -> None:
        """Flush the degraded buffer, then close the wrapped backend.

        Raises :class:`PersistenceError` (keeping the backend open and
        the buffer intact) if the flush still cannot reach the
        database, so no buffered knowledge is silently dropped.
        """
        self.flush()
        self.backend.close()

    # -- read path -----------------------------------------------------
    def table_count(self, table: str) -> int:
        """Row count of one table (buffered writes are not yet visible)."""
        return self.backend.table_count(table)

    def __enter__(self) -> "ResilientBackend":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        else:
            self.rollback()
            self.backend.close()
