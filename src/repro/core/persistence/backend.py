"""Persistence backends — the storage abstraction under the repositories.

§V-C allows knowledge to be stored "either directly as a local SQLite
database or by specifying a SQL connection URL remotely".  The
repositories therefore depend on the :class:`PersistenceBackend`
protocol, not on a concrete engine: anything that can execute
parameterised SQL against the paper's schema and manage transactions
can hold the knowledge base.  :class:`~repro.core.persistence.database.
KnowledgeDatabase` is the synchronous SQLite backend;
:class:`BatchedBackend` wraps any backend and coalesces a burst of
per-object commits into a single transaction — the write path for
ingesting large corpora such as the public IO500 submission data.
"""

from __future__ import annotations

import sqlite3
from typing import Iterable, Protocol, Sequence, runtime_checkable

__all__ = ["PersistenceBackend", "BatchedBackend"]


@runtime_checkable
class PersistenceBackend(Protocol):
    """What the repositories require from a storage engine."""

    def execute(self, sql: str, params: tuple = ()) -> sqlite3.Cursor:
        """Run one parameterised statement; returns its cursor."""
        ...

    def executemany(self, sql: str, seq_of_params: Iterable[Sequence]) -> sqlite3.Cursor:
        """Run one statement over many parameter rows."""
        ...

    def commit(self) -> None:
        """Make completed writes durable."""
        ...

    def rollback(self) -> None:
        """Discard uncommitted writes."""
        ...

    def close(self) -> None:
        """Release the underlying storage; must be idempotent."""
        ...

    def transaction(self):
        """Context manager: group writes into one atomic transaction."""
        ...

    def table_count(self, table: str) -> int:
        """Row count of one table (for tests and reports)."""
        ...


class BatchedBackend:
    """Defer commits so many ``save()`` calls share one transaction.

    Repositories commit after every object; over a large ingest that
    costs one fsync per object.  This wrapper turns each inner
    ``commit()`` into a deferral and makes the whole batch durable at
    :meth:`flush` (or ``close()``/context-manager exit), so a thousand
    saves hit the disk once.  ``rollback()`` abandons the entire
    pending batch — the all-or-nothing semantics of one transaction.
    """

    def __init__(self, backend: PersistenceBackend) -> None:
        self.backend = backend
        self.pending_commits = 0

    # -- write path ----------------------------------------------------
    def execute(self, sql: str, params: tuple = ()) -> sqlite3.Cursor:
        """Run one statement on the wrapped backend."""
        return self.backend.execute(sql, params)

    def executemany(self, sql: str, seq_of_params: Iterable[Sequence]) -> sqlite3.Cursor:
        """Run one statement over many rows on the wrapped backend."""
        return self.backend.executemany(sql, seq_of_params)

    def commit(self) -> None:
        """Record the commit request; durability is deferred to flush()."""
        self.pending_commits += 1

    def rollback(self) -> None:
        """Abandon every deferred write."""
        self.pending_commits = 0
        self.backend.rollback()

    def flush(self) -> None:
        """Commit everything deferred since the last flush."""
        if self.pending_commits:
            self.pending_commits = 0
            self.backend.commit()

    def close(self) -> None:
        """Flush, then close the wrapped backend."""
        self.flush()
        self.backend.close()

    def transaction(self):
        """Delegate grouping to the wrapped backend's transaction."""
        return self.backend.transaction()

    # -- read path -----------------------------------------------------
    def table_count(self, table: str) -> int:
        """Row count of one table (reads see the pending batch)."""
        return self.backend.table_count(table)

    def __enter__(self) -> "BatchedBackend":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.flush()
        else:
            self.rollback()
        self.close()
