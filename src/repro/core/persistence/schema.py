"""SQLite schema (Phase III).

The paper's schema (§V-C): IOR-style knowledge lives in
``performances`` (I/O pattern + benchmark configuration, one row per
knowledge object), ``summaries`` (one per operation, FK
``performance_id``), ``results`` (per-iteration details, FK
``summaries_id``) and ``filesystems`` (user-level file-system
information).  IO500 knowledge is deliberately separate: ``IOFHsRuns``,
``IOFHsScores``, ``IOFHsTestcases``, ``IOFHsOptions`` and
``IOFHsResults``, keyed by ``IOFH_id``.  System information joins both
worlds through the ``systems`` table.
"""

from __future__ import annotations

import sqlite3

__all__ = [
    "SCHEMA_VERSION",
    "DDL_STATEMENTS",
    "create_schema",
    "TABLES",
    "AGG_METRICS",
    "agg_insert_select",
]

SCHEMA_VERSION = 2

DDL_STATEMENTS: tuple[str, ...] = (
    """
    CREATE TABLE IF NOT EXISTS performances (
        id              INTEGER PRIMARY KEY AUTOINCREMENT,
        benchmark       TEXT NOT NULL,
        command         TEXT NOT NULL DEFAULT '',
        api             TEXT NOT NULL DEFAULT '',
        testFileName    TEXT NOT NULL DEFAULT '',
        filePerProc     INTEGER NOT NULL DEFAULT 0,
        num_nodes       INTEGER NOT NULL DEFAULT 0,
        num_tasks       INTEGER NOT NULL DEFAULT 0,
        tasks_per_node  INTEGER NOT NULL DEFAULT 0,
        start_time      REAL NOT NULL DEFAULT 0,
        end_time        REAL NOT NULL DEFAULT 0,
        parameters_json TEXT NOT NULL DEFAULT '{}'
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS summaries (
        id             INTEGER PRIMARY KEY AUTOINCREMENT,
        performance_id INTEGER NOT NULL REFERENCES performances(id) ON DELETE CASCADE,
        operation      TEXT NOT NULL,
        api            TEXT NOT NULL DEFAULT '',
        bw_max         REAL NOT NULL,
        bw_min         REAL NOT NULL,
        bw_mean        REAL NOT NULL,
        bw_stddev      REAL NOT NULL,
        ops_max        REAL NOT NULL,
        ops_min        REAL NOT NULL,
        ops_mean       REAL NOT NULL,
        ops_stddev     REAL NOT NULL,
        iterations     INTEGER NOT NULL
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS results (
        id           INTEGER PRIMARY KEY AUTOINCREMENT,
        summaries_id INTEGER NOT NULL REFERENCES summaries(id) ON DELETE CASCADE,
        iteration    INTEGER NOT NULL,
        bandwidth    REAL NOT NULL,
        ops          REAL NOT NULL,
        latency      REAL NOT NULL DEFAULT 0,
        openTime     REAL NOT NULL DEFAULT 0,
        wrRdTime     REAL NOT NULL DEFAULT 0,
        closeTime    REAL NOT NULL DEFAULT 0,
        totalTime    REAL NOT NULL DEFAULT 0
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS filesystems (
        id             INTEGER PRIMARY KEY AUTOINCREMENT,
        performance_id INTEGER NOT NULL REFERENCES performances(id) ON DELETE CASCADE,
        fs_type        TEXT NOT NULL DEFAULT '',
        entry_type     TEXT NOT NULL DEFAULT '',
        entry_id       TEXT NOT NULL DEFAULT '',
        metadata_node  TEXT NOT NULL DEFAULT '',
        stripe_pattern TEXT NOT NULL DEFAULT '',
        chunk_size     TEXT NOT NULL DEFAULT '',
        num_targets    INTEGER NOT NULL DEFAULT 0,
        raid_scheme    TEXT NOT NULL DEFAULT '',
        storage_pool   TEXT NOT NULL DEFAULT ''
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS systems (
        id              INTEGER PRIMARY KEY AUTOINCREMENT,
        performance_id  INTEGER REFERENCES performances(id) ON DELETE CASCADE,
        IOFH_id         INTEGER REFERENCES IOFHsRuns(id) ON DELETE CASCADE,
        hostname        TEXT NOT NULL DEFAULT '',
        system_name     TEXT NOT NULL DEFAULT '',
        processor_model TEXT NOT NULL DEFAULT '',
        architecture    TEXT NOT NULL DEFAULT '',
        processor_cores INTEGER NOT NULL DEFAULT 0,
        processor_mhz   REAL NOT NULL DEFAULT 0,
        cache_bytes     INTEGER NOT NULL DEFAULT 0,
        memory_bytes    INTEGER NOT NULL DEFAULT 0,
        CHECK (performance_id IS NOT NULL OR IOFH_id IS NOT NULL)
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS IOFHsRuns (
        id        INTEGER PRIMARY KEY AUTOINCREMENT,
        timestamp REAL NOT NULL DEFAULT 0,
        num_nodes INTEGER NOT NULL DEFAULT 0,
        num_tasks INTEGER NOT NULL DEFAULT 0,
        version   TEXT NOT NULL DEFAULT ''
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS IOFHsScores (
        id          INTEGER PRIMARY KEY AUTOINCREMENT,
        IOFH_id     INTEGER NOT NULL REFERENCES IOFHsRuns(id) ON DELETE CASCADE,
        score_total REAL NOT NULL,
        score_bw    REAL NOT NULL,
        score_md    REAL NOT NULL
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS IOFHsTestcases (
        id      INTEGER PRIMARY KEY AUTOINCREMENT,
        IOFH_id INTEGER NOT NULL REFERENCES IOFHsRuns(id) ON DELETE CASCADE,
        name    TEXT NOT NULL
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS IOFHsOptions (
        id          INTEGER PRIMARY KEY AUTOINCREMENT,
        testcase_id INTEGER NOT NULL REFERENCES IOFHsTestcases(id) ON DELETE CASCADE,
        key         TEXT NOT NULL,
        value       TEXT NOT NULL DEFAULT ''
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS IOFHsResults (
        id          INTEGER PRIMARY KEY AUTOINCREMENT,
        testcase_id INTEGER NOT NULL REFERENCES IOFHsTestcases(id) ON DELETE CASCADE,
        metric      TEXT NOT NULL,
        value       REAL NOT NULL,
        unit        TEXT NOT NULL DEFAULT '',
        time_s      REAL NOT NULL DEFAULT 0
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS agg_summaries (
        benchmark TEXT NOT NULL,
        api       TEXT NOT NULL,
        operation TEXT NOT NULL,
        metric    TEXT NOT NULL,
        n         INTEGER NOT NULL,
        total     REAL NOT NULL,
        total_sq  REAL NOT NULL,
        vmin      REAL NOT NULL,
        vmax      REAL NOT NULL,
        PRIMARY KEY (benchmark, api, operation, metric)
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS meta (
        key   TEXT PRIMARY KEY,
        value TEXT NOT NULL
    )
    """,
    "CREATE INDEX IF NOT EXISTS idx_summaries_perf ON summaries(performance_id)",
    "CREATE INDEX IF NOT EXISTS idx_results_summary ON results(summaries_id)",
    "CREATE INDEX IF NOT EXISTS idx_filesystems_perf ON filesystems(performance_id)",
    "CREATE INDEX IF NOT EXISTS idx_testcases_run ON IOFHsTestcases(IOFH_id)",
)

#: All knowledge tables, in creation order.
TABLES = (
    "performances",
    "summaries",
    "results",
    "filesystems",
    "systems",
    "IOFHsRuns",
    "IOFHsScores",
    "IOFHsTestcases",
    "IOFHsOptions",
    "IOFHsResults",
    "agg_summaries",
)

#: Summary metrics mirrored into ``agg_summaries`` — one pre-aggregated
#: row per (benchmark, api, operation, metric), maintained in the same
#: transaction as every ``save`` so cheap fleet-wide aggregate scans
#: never have to touch the base tables.
AGG_METRICS = (
    "bw_max",
    "bw_min",
    "bw_mean",
    "bw_stddev",
    "ops_max",
    "ops_min",
    "ops_mean",
    "ops_stddev",
    "iterations",
)


def agg_insert_select(metric: str, where: str = "") -> str:
    """The ``INSERT … SELECT`` that (re)builds one metric's agg rows.

    ``metric`` must come from :data:`AGG_METRICS` (it is interpolated,
    not bound); ``where`` optionally narrows the rebuild, e.g.
    ``"p.benchmark = ?"`` after a delete.
    """
    if metric not in AGG_METRICS:
        raise ValueError(f"unknown agg metric {metric!r}")
    col = f"s.{metric}"
    clause = f"WHERE {where} " if where else ""
    return (
        "INSERT INTO agg_summaries "
        "(benchmark, api, operation, metric, n, total, total_sq, vmin, vmax) "
        f"SELECT p.benchmark, p.api, s.operation, '{metric}', COUNT(*), "
        f"SUM({col}), SUM({col} * {col}), MIN({col}), MAX({col}) "
        "FROM summaries s JOIN performances p ON p.id = s.performance_id "
        f"{clause}GROUP BY p.benchmark, p.api, s.operation"
    )


def create_schema(conn: sqlite3.Connection) -> None:
    """Create all tables, indexes and schema metadata (idempotent).

    Opening a version-1 store (no ``agg_summaries`` rows yet) backfills
    the pre-aggregated table from the base tables, so the upgrade is a
    plain re-open.
    """
    cur = conn.cursor()
    cur.execute("PRAGMA foreign_keys = ON")
    for ddl in DDL_STATEMENTS:
        cur.execute(ddl)
    agg_rows = cur.execute("SELECT COUNT(*) FROM agg_summaries").fetchone()[0]
    summary_rows = cur.execute("SELECT COUNT(*) FROM summaries").fetchone()[0]
    if agg_rows == 0 and summary_rows > 0:
        for metric in AGG_METRICS:
            cur.execute(agg_insert_select(metric))
    cur.execute(
        "INSERT OR REPLACE INTO meta (key, value) VALUES ('schema_version', ?)",
        (str(SCHEMA_VERSION),),
    )
    conn.commit()
