"""Knowledge repository: save/load benchmark knowledge objects.

Maps :class:`~repro.core.knowledge.Knowledge` onto the
performances/summaries/results/filesystems/systems tables and back,
losslessly — the paper's requirement that stored knowledge supports
"a rich set of visualization options" (§V-C) means the individual
iteration results must round-trip, not just the summaries.
"""

from __future__ import annotations

import json
from typing import Sequence

from repro.core.knowledge import (
    FilesystemInfo,
    Knowledge,
    KnowledgeResult,
    KnowledgeSummary,
)
from repro.core.persistence import schema
from repro.core.persistence.backend import PersistenceBackend
from repro.core.persistence.scan import (
    GROUP_COLUMNS,
    METRIC_COLUMNS,
    AggregateState,
    PercentileSketch,
    ScanQuery,
    ScanResult,
    chunked,
    escape_like,
    finalize_partials,
    group_key,
)
from repro.util.errors import PersistenceError

__all__ = ["KnowledgeRepository"]

_AGG_UPSERT = """
    INSERT INTO agg_summaries
        (benchmark, api, operation, metric, n, total, total_sq, vmin, vmax)
    VALUES (?, ?, ?, ?, 1, ?, ?, ?, ?)
    ON CONFLICT (benchmark, api, operation, metric) DO UPDATE SET
        n = n + 1,
        total = total + excluded.total,
        total_sq = total_sq + excluded.total_sq,
        vmin = MIN(vmin, excluded.vmin),
        vmax = MAX(vmax, excluded.vmax)
"""


class KnowledgeRepository:
    """CRUD for benchmark knowledge objects.

    Depends only on the :class:`PersistenceBackend` protocol, so any
    conforming engine (plain SQLite, batched, future async/sharded
    backends) can hold the knowledge base.
    """

    def __init__(self, db: PersistenceBackend) -> None:
        self.db = db

    # ------------------------------------------------------------------
    # write path
    # ------------------------------------------------------------------
    def save(self, knowledge: Knowledge) -> int:
        """Persist one knowledge object; returns its new id."""
        cur = self.db.execute(
            """
            INSERT INTO performances
                (benchmark, command, api, testFileName, filePerProc,
                 num_nodes, num_tasks, tasks_per_node, start_time, end_time,
                 parameters_json)
            VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)
            """,
            (
                knowledge.benchmark,
                knowledge.command,
                knowledge.api,
                knowledge.test_file,
                int(knowledge.file_per_proc),
                knowledge.num_nodes,
                knowledge.num_tasks,
                knowledge.tasks_per_node,
                knowledge.start_time,
                knowledge.end_time,
                json.dumps(knowledge.parameters, sort_keys=True, default=str),
            ),
        )
        perf_id = int(cur.lastrowid)
        for summary in knowledge.summaries:
            self._save_summary(perf_id, summary)
        if knowledge.filesystem is not None:
            self._save_filesystem(perf_id, knowledge.filesystem)
        if knowledge.system is not None:
            self._save_system(perf_id, knowledge.system)
        self._record_agg(knowledge)
        self.db.commit()
        knowledge.knowledge_id = perf_id
        return perf_id

    def save_many(self, knowledge: Sequence[Knowledge]) -> list[int]:
        """Persist several knowledge objects in one transaction.

        Either every object lands or none does — a failure mid-batch
        rolls the whole batch back.

        The write path is batched: ids are computed up front (continuing
        the ``AUTOINCREMENT`` sequence, so deleted ids are never reused)
        and each table receives one ``executemany`` for the whole batch
        instead of one ``INSERT`` round-trip per row.  The agg upsert
        stays inside the same transaction, so ``agg_summaries`` cannot
        drift from the base tables.  A degraded
        :class:`~repro.core.persistence.backend.ResilientBackend`
        falls back to the row-at-a-time path: its buffered-write rowid
        predictions are per statement, which explicit precomputed ids
        would bypass.
        """
        knowledge = list(knowledge)
        if not knowledge:
            return []
        if getattr(self.db, "degraded", False):
            with self.db.transaction():
                return [self.save(k) for k in knowledge]
        with self.db.transaction():
            ids = self._save_batch(knowledge)
        for k, perf_id in zip(knowledge, ids):
            k.knowledge_id = perf_id
        return ids

    def _next_explicit_id(self, table: str) -> int:
        """First id an explicit-id batch insert into ``table`` may use.

        ``MAX(id)`` alone regresses after a delete; ``AUTOINCREMENT``
        tables promise never to reuse ids, so the ``sqlite_sequence``
        high-water mark (when present) is folded in too — explicit-id
        inserts above it keep the sequence advancing exactly as the
        implicit path would.
        """
        row = self.db.execute(f"SELECT COALESCE(MAX(id), 0) AS m FROM {table}").fetchone()
        base = int(row["m"])
        has_seq = self.db.execute(
            "SELECT 1 FROM sqlite_master WHERE type = 'table' AND name = 'sqlite_sequence'"
        ).fetchone()
        if has_seq is not None:
            seq = self.db.execute(
                "SELECT seq FROM sqlite_sequence WHERE name = ?", (table,)
            ).fetchone()
            if seq is not None:
                base = max(base, int(seq["seq"]))
        return base + 1

    def _save_batch(self, knowledge: list[Knowledge]) -> list[int]:
        """One ``executemany`` per table for the whole batch."""
        perf_base = self._next_explicit_id("performances")
        summary_base = self._next_explicit_id("summaries")
        perf_rows: list[tuple] = []
        summary_rows: list[tuple] = []
        result_rows: list[tuple] = []
        fs_rows: list[tuple] = []
        sys_rows: list[tuple] = []
        agg_rows: list[tuple] = []
        next_summary = summary_base
        for offset, k in enumerate(knowledge):
            perf_id = perf_base + offset
            perf_rows.append(
                (
                    perf_id,
                    k.benchmark,
                    k.command,
                    k.api,
                    k.test_file,
                    int(k.file_per_proc),
                    k.num_nodes,
                    k.num_tasks,
                    k.tasks_per_node,
                    k.start_time,
                    k.end_time,
                    json.dumps(k.parameters, sort_keys=True, default=str),
                )
            )
            for s in k.summaries:
                summary_id = next_summary
                next_summary += 1
                summary_rows.append(
                    (
                        summary_id,
                        perf_id,
                        s.operation,
                        s.api,
                        s.bw_max,
                        s.bw_min,
                        s.bw_mean,
                        s.bw_stddev,
                        s.ops_max,
                        s.ops_min,
                        s.ops_mean,
                        s.ops_stddev,
                        s.iterations,
                    )
                )
                result_rows.extend(
                    (
                        summary_id,
                        r.iteration,
                        r.bandwidth_mib,
                        r.iops,
                        r.latency_s,
                        r.open_time_s,
                        r.wrrd_time_s,
                        r.close_time_s,
                        r.total_time_s,
                    )
                    for r in s.results
                )
                for metric in schema.AGG_METRICS:
                    value = float(getattr(s, metric))
                    agg_rows.append(
                        (k.benchmark, k.api, s.operation, metric,
                         value, value * value, value, value)
                    )
            if k.filesystem is not None:
                fs = k.filesystem
                fs_rows.append(
                    (
                        perf_id,
                        fs.fs_type,
                        fs.entry_type,
                        fs.entry_id,
                        fs.metadata_node,
                        fs.stripe_pattern,
                        fs.chunk_size,
                        fs.num_targets,
                        fs.raid_scheme,
                        fs.storage_pool,
                    )
                )
            if k.system is not None:
                system = k.system
                sys_rows.append(
                    (
                        perf_id,
                        str(system.get("hostname", "")),
                        str(system.get("system_name", "")),
                        str(system.get("processor_model", "")),
                        str(system.get("architecture", "")),
                        int(system.get("processor_cores", 0) or 0),
                        float(system.get("processor_mhz", 0) or 0),
                        int(system.get("cache_size_bytes", 0) or 0),
                        int(system.get("memory_bytes", 0) or 0),
                    )
                )
        self.db.executemany(
            """
            INSERT INTO performances
                (id, benchmark, command, api, testFileName, filePerProc,
                 num_nodes, num_tasks, tasks_per_node, start_time, end_time,
                 parameters_json)
            VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)
            """,
            perf_rows,
        )
        if summary_rows:
            self.db.executemany(
                """
                INSERT INTO summaries
                    (id, performance_id, operation, api, bw_max, bw_min, bw_mean,
                     bw_stddev, ops_max, ops_min, ops_mean, ops_stddev, iterations)
                VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)
                """,
                summary_rows,
            )
        if result_rows:
            self.db.executemany(
                """
                INSERT INTO results
                    (summaries_id, iteration, bandwidth, ops, latency,
                     openTime, wrRdTime, closeTime, totalTime)
                VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)
                """,
                result_rows,
            )
        if fs_rows:
            self.db.executemany(
                """
                INSERT INTO filesystems
                    (performance_id, fs_type, entry_type, entry_id, metadata_node,
                     stripe_pattern, chunk_size, num_targets, raid_scheme, storage_pool)
                VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)
                """,
                fs_rows,
            )
        if sys_rows:
            self.db.executemany(
                """
                INSERT INTO systems
                    (performance_id, IOFH_id, hostname, system_name, processor_model,
                     architecture, processor_cores, processor_mhz, cache_bytes, memory_bytes)
                VALUES (?, NULL, ?, ?, ?, ?, ?, ?, ?, ?)
                """,
                sys_rows,
            )
        if agg_rows:
            self.db.executemany(_AGG_UPSERT, agg_rows)
        return [perf_base + offset for offset in range(len(knowledge))]

    def _save_summary(self, perf_id: int, s: KnowledgeSummary) -> int:
        cur = self.db.execute(
            """
            INSERT INTO summaries
                (performance_id, operation, api, bw_max, bw_min, bw_mean,
                 bw_stddev, ops_max, ops_min, ops_mean, ops_stddev, iterations)
            VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)
            """,
            (
                perf_id,
                s.operation,
                s.api,
                s.bw_max,
                s.bw_min,
                s.bw_mean,
                s.bw_stddev,
                s.ops_max,
                s.ops_min,
                s.ops_mean,
                s.ops_stddev,
                s.iterations,
            ),
        )
        summary_id = int(cur.lastrowid)
        if s.results:
            self.db.executemany(
                """
                INSERT INTO results
                    (summaries_id, iteration, bandwidth, ops, latency,
                     openTime, wrRdTime, closeTime, totalTime)
                VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)
                """,
                [
                    (
                        summary_id,
                        r.iteration,
                        r.bandwidth_mib,
                        r.iops,
                        r.latency_s,
                        r.open_time_s,
                        r.wrrd_time_s,
                        r.close_time_s,
                        r.total_time_s,
                    )
                    for r in s.results
                ],
            )
        return summary_id

    def _save_filesystem(self, perf_id: int, fs: FilesystemInfo) -> None:
        self.db.execute(
            """
            INSERT INTO filesystems
                (performance_id, fs_type, entry_type, entry_id, metadata_node,
                 stripe_pattern, chunk_size, num_targets, raid_scheme, storage_pool)
            VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)
            """,
            (
                perf_id,
                fs.fs_type,
                fs.entry_type,
                fs.entry_id,
                fs.metadata_node,
                fs.stripe_pattern,
                fs.chunk_size,
                fs.num_targets,
                fs.raid_scheme,
                fs.storage_pool,
            ),
        )

    def _record_agg(self, knowledge: Knowledge) -> None:
        """Fold one knowledge object into the pre-aggregated summaries.

        Runs inside the same transaction as :meth:`save`, so the agg
        table can never drift from the base tables — and because the
        upsert is one plain SQL statement, a degraded
        :class:`ResilientBackend` buffers and replays it in write order
        like any other ingest statement.
        """
        rows = []
        for s in knowledge.summaries:
            for metric in schema.AGG_METRICS:
                value = float(getattr(s, metric))
                rows.append(
                    (
                        knowledge.benchmark,
                        knowledge.api,
                        s.operation,
                        metric,
                        value,
                        value * value,
                        value,
                        value,
                    )
                )
        if rows:
            self.db.executemany(_AGG_UPSERT, rows)

    def _save_system(self, perf_id: int, system: dict[str, object]) -> None:
        self.db.execute(
            """
            INSERT INTO systems
                (performance_id, IOFH_id, hostname, system_name, processor_model,
                 architecture, processor_cores, processor_mhz, cache_bytes, memory_bytes)
            VALUES (?, NULL, ?, ?, ?, ?, ?, ?, ?, ?)
            """,
            (
                perf_id,
                str(system.get("hostname", "")),
                str(system.get("system_name", "")),
                str(system.get("processor_model", "")),
                str(system.get("architecture", "")),
                int(system.get("processor_cores", 0) or 0),
                float(system.get("processor_mhz", 0) or 0),
                int(system.get("cache_size_bytes", 0) or 0),
                int(system.get("memory_bytes", 0) or 0),
            ),
        )

    # ------------------------------------------------------------------
    # read path
    # ------------------------------------------------------------------
    def load(self, knowledge_id: int) -> Knowledge:
        """Load one knowledge object by id."""
        row = self.db.execute(
            "SELECT * FROM performances WHERE id = ?", (knowledge_id,)
        ).fetchone()
        if row is None:
            raise PersistenceError(f"no knowledge object with id {knowledge_id}")
        knowledge = Knowledge(
            benchmark=row["benchmark"],
            command=row["command"],
            api=row["api"],
            test_file=row["testFileName"],
            file_per_proc=bool(row["filePerProc"]),
            num_nodes=row["num_nodes"],
            num_tasks=row["num_tasks"],
            tasks_per_node=row["tasks_per_node"],
            start_time=row["start_time"],
            end_time=row["end_time"],
            parameters=json.loads(row["parameters_json"]),
            knowledge_id=knowledge_id,
        )
        for srow in self.db.execute(
            "SELECT * FROM summaries WHERE performance_id = ? ORDER BY id", (knowledge_id,)
        ).fetchall():
            results = [
                KnowledgeResult(
                    iteration=r["iteration"],
                    bandwidth_mib=r["bandwidth"],
                    iops=r["ops"],
                    latency_s=r["latency"],
                    open_time_s=r["openTime"],
                    wrrd_time_s=r["wrRdTime"],
                    close_time_s=r["closeTime"],
                    total_time_s=r["totalTime"],
                )
                for r in self.db.execute(
                    "SELECT * FROM results WHERE summaries_id = ? ORDER BY iteration",
                    (srow["id"],),
                ).fetchall()
            ]
            knowledge.summaries.append(
                KnowledgeSummary(
                    operation=srow["operation"],
                    api=srow["api"],
                    bw_max=srow["bw_max"],
                    bw_min=srow["bw_min"],
                    bw_mean=srow["bw_mean"],
                    bw_stddev=srow["bw_stddev"],
                    ops_max=srow["ops_max"],
                    ops_min=srow["ops_min"],
                    ops_mean=srow["ops_mean"],
                    ops_stddev=srow["ops_stddev"],
                    iterations=srow["iterations"],
                    results=results,
                )
            )
        fsrow = self.db.execute(
            "SELECT * FROM filesystems WHERE performance_id = ?", (knowledge_id,)
        ).fetchone()
        if fsrow is not None:
            knowledge.filesystem = FilesystemInfo(
                fs_type=fsrow["fs_type"],
                entry_type=fsrow["entry_type"],
                entry_id=fsrow["entry_id"],
                metadata_node=fsrow["metadata_node"],
                stripe_pattern=fsrow["stripe_pattern"],
                chunk_size=fsrow["chunk_size"],
                num_targets=fsrow["num_targets"],
                raid_scheme=fsrow["raid_scheme"],
                storage_pool=fsrow["storage_pool"],
            )
        sysrow = self.db.execute(
            "SELECT * FROM systems WHERE performance_id = ?", (knowledge_id,)
        ).fetchone()
        if sysrow is not None:
            knowledge.system = {
                "hostname": sysrow["hostname"],
                "system_name": sysrow["system_name"],
                "processor_model": sysrow["processor_model"],
                "architecture": sysrow["architecture"],
                "processor_cores": sysrow["processor_cores"],
                "processor_mhz": sysrow["processor_mhz"],
                "cache_size_bytes": sysrow["cache_bytes"],
                "memory_bytes": sysrow["memory_bytes"],
            }
        return knowledge

    def count(self, benchmark: str | None = None) -> int:
        """Number of stored knowledge objects (``SELECT COUNT``, no rows).

        The fast path for cache warm-up and summary headers: counting a
        large knowledge base must not deserialise it.
        """
        if benchmark is None:
            row = self.db.execute("SELECT COUNT(*) AS n FROM performances").fetchone()
        else:
            row = self.db.execute(
                "SELECT COUNT(*) AS n FROM performances WHERE benchmark = ?", (benchmark,)
            ).fetchone()
        return int(row["n"])

    def exists(self, knowledge_id: int) -> bool:
        """Whether a knowledge object exists (``SELECT 1``, no row fetch)."""
        row = self.db.execute(
            "SELECT 1 FROM performances WHERE id = ? LIMIT 1", (knowledge_id,)
        ).fetchone()
        return row is not None

    def list_ids(self, benchmark: str | None = None) -> list[int]:
        """All knowledge ids, optionally filtered by benchmark name."""
        if benchmark is None:
            rows = self.db.execute("SELECT id FROM performances ORDER BY id").fetchall()
        else:
            rows = self.db.execute(
                "SELECT id FROM performances WHERE benchmark = ? ORDER BY id", (benchmark,)
            ).fetchall()
        return [int(r["id"]) for r in rows]

    def fetch_many(self, ids: Sequence[int]) -> list[Knowledge]:
        """Load several knowledge objects with one query per table.

        ``load`` issues 2 + 2·summaries queries per object; comparing a
        24-run sweep that way is ~100 round-trips through the backend.
        Here the performances, summaries, results, filesystems and
        systems rows for *all* requested ids are fetched in five
        ``WHERE … IN`` queries per id chunk and assembled in Python.
        Id lists are chunked (:data:`~repro.core.persistence.scan.SQL_VARIABLE_CHUNK`
        ids per query) so fleet-scale fetches stay under SQLite's
        host-variable limit instead of dying with ``too many SQL
        variables``.  Input order is preserved; a missing id raises
        :class:`PersistenceError`.
        """
        unique = list(dict.fromkeys(int(i) for i in ids))
        if not unique:
            return []
        by_id: dict[int, Knowledge] = {}
        for batch in chunked(unique):
            marks = ", ".join("?" for _ in batch)
            for row in self.db.execute(
                f"SELECT * FROM performances WHERE id IN ({marks})", tuple(batch)
            ).fetchall():
                knowledge_id = int(row["id"])
                by_id[knowledge_id] = Knowledge(
                    benchmark=row["benchmark"],
                    command=row["command"],
                    api=row["api"],
                    test_file=row["testFileName"],
                    file_per_proc=bool(row["filePerProc"]),
                    num_nodes=row["num_nodes"],
                    num_tasks=row["num_tasks"],
                    tasks_per_node=row["tasks_per_node"],
                    start_time=row["start_time"],
                    end_time=row["end_time"],
                    parameters=json.loads(row["parameters_json"]),
                    knowledge_id=knowledge_id,
                )
        missing = [i for i in unique if i not in by_id]
        if missing:
            raise PersistenceError(f"no knowledge object(s) with id(s) {missing}")
        for batch in chunked(unique):
            marks = ", ".join("?" for _ in batch)
            results_by_summary: dict[int, list[KnowledgeResult]] = {}
            for r in self.db.execute(
                f"SELECT r.* FROM results r JOIN summaries s ON s.id = r.summaries_id "
                f"WHERE s.performance_id IN ({marks}) "
                f"ORDER BY r.summaries_id, r.iteration",
                tuple(batch),
            ).fetchall():
                results_by_summary.setdefault(int(r["summaries_id"]), []).append(
                    KnowledgeResult(
                        iteration=r["iteration"],
                        bandwidth_mib=r["bandwidth"],
                        iops=r["ops"],
                        latency_s=r["latency"],
                        open_time_s=r["openTime"],
                        wrrd_time_s=r["wrRdTime"],
                        close_time_s=r["closeTime"],
                        total_time_s=r["totalTime"],
                    )
                )
            for srow in self.db.execute(
                f"SELECT * FROM summaries WHERE performance_id IN ({marks}) ORDER BY id",
                tuple(batch),
            ).fetchall():
                by_id[int(srow["performance_id"])].summaries.append(
                    KnowledgeSummary(
                        operation=srow["operation"],
                        api=srow["api"],
                        bw_max=srow["bw_max"],
                        bw_min=srow["bw_min"],
                        bw_mean=srow["bw_mean"],
                        bw_stddev=srow["bw_stddev"],
                        ops_max=srow["ops_max"],
                        ops_min=srow["ops_min"],
                        ops_mean=srow["ops_mean"],
                        ops_stddev=srow["ops_stddev"],
                        iterations=srow["iterations"],
                        results=results_by_summary.get(int(srow["id"]), []),
                    )
                )
            for fsrow in self.db.execute(
                f"SELECT * FROM filesystems WHERE performance_id IN ({marks})",
                tuple(batch),
            ).fetchall():
                by_id[int(fsrow["performance_id"])].filesystem = FilesystemInfo(
                    fs_type=fsrow["fs_type"],
                    entry_type=fsrow["entry_type"],
                    entry_id=fsrow["entry_id"],
                    metadata_node=fsrow["metadata_node"],
                    stripe_pattern=fsrow["stripe_pattern"],
                    chunk_size=fsrow["chunk_size"],
                    num_targets=fsrow["num_targets"],
                    raid_scheme=fsrow["raid_scheme"],
                    storage_pool=fsrow["storage_pool"],
                )
            for sysrow in self.db.execute(
                f"SELECT * FROM systems WHERE performance_id IN ({marks})",
                tuple(batch),
            ).fetchall():
                by_id[int(sysrow["performance_id"])].system = {
                    "hostname": sysrow["hostname"],
                    "system_name": sysrow["system_name"],
                    "processor_model": sysrow["processor_model"],
                    "architecture": sysrow["architecture"],
                    "processor_cores": sysrow["processor_cores"],
                    "processor_mhz": sysrow["processor_mhz"],
                    "cache_size_bytes": sysrow["cache_bytes"],
                    "memory_bytes": sysrow["memory_bytes"],
                }
        return [by_id[int(i)] for i in ids]

    def find_ids_by_parameter(self, key: str, value: str) -> list[int]:
        """Ids of knowledge objects whose ``parameters[key] == value``.

        The campaign orchestrator's exactly-once lookup: parameters are
        stored as sorted JSON, so a SQL ``LIKE`` on the serialised
        ``"key": "value"`` pair prefilters candidates cheaply; each hit
        is then verified against the decoded dict, which removes any
        substring false positive.

        The serialised pair is LIKE-escaped before the wildcards are
        wrapped around it, so values containing ``%``/``_`` (e.g. a
        utilisation of ``"100%"``) keep the prefilter selective instead
        of degrading it to a near-full scan.
        """
        fragment = f"{json.dumps(key)}: {json.dumps(value)}"
        needle = f"%{escape_like(fragment)}%"
        rows = self.db.execute(
            "SELECT id, parameters_json FROM performances "
            "WHERE parameters_json LIKE ? ESCAPE '\\' ORDER BY id",
            (needle,),
        ).fetchall()
        return [
            int(r["id"])
            for r in rows
            if json.loads(r["parameters_json"]).get(key) == value
        ]

    def load_all(self, benchmark: str | None = None) -> list[Knowledge]:
        """Load every stored knowledge object (batched, not per-row)."""
        return self.fetch_many(self.list_ids(benchmark))

    # ------------------------------------------------------------------
    # columnar scan
    # ------------------------------------------------------------------
    def scan(self, query: ScanQuery) -> ScanResult:
        """Evaluate a columnar aggregate query entirely down in SQL.

        No :class:`Knowledge` objects are materialised: filters,
        group-bys and the five mergeable aggregates are pushed into one
        ``GROUP BY`` over ``summaries ⋈ performances`` (plus a
        values-only pass when percentile sketches are requested).
        Queries the pre-aggregated ``agg_summaries`` table can answer —
        no range/parameter filters, no percentiles, grouping only by
        benchmark/api/operation — never touch the base tables at all.
        """
        source = "summary-table" if self._agg_eligible(query) else "base-tables"
        return finalize_partials(query, self.scan_partial(query), source=source)

    def scan_partial(self, query: ScanQuery) -> dict[str, object]:
        """Evaluate ``query`` into mergeable partial aggregate states.

        This is the per-shard half of a distributed scan: the returned
        mapping (canonical group key → JSON-safe
        :class:`AggregateState` payload) can be merged with any other
        shard's partials via
        :func:`~repro.core.persistence.scan.merge_partial_payloads`.
        """
        if self._agg_eligible(query):
            return self._scan_partial_from_agg(query)
        return self._scan_partial_from_base(query)

    @staticmethod
    def _agg_eligible(query: ScanQuery) -> bool:
        """Whether ``agg_summaries`` alone can answer this query."""
        return (
            not query.percentiles
            and query.parameter is None
            and query.num_nodes_min is None
            and query.num_nodes_max is None
            and query.num_tasks_min is None
            and query.num_tasks_max is None
            and set(query.group_by) <= {"benchmark", "api", "operation"}
        )

    def _scan_partial_from_agg(self, query: ScanQuery) -> dict[str, object]:
        """Answer from the pre-aggregated rows (no base-table touch)."""
        clauses = ["metric = ?"]
        params: list[object] = [query.metric]
        for column in ("benchmark", "api", "operation"):
            value = getattr(query, column)
            if value is not None:
                clauses.append(f"{column} = ?")
                params.append(value)
        rows = self.db.execute(
            "SELECT benchmark, api, operation, n, total, total_sq, vmin, vmax "
            f"FROM agg_summaries WHERE {' AND '.join(clauses)}",
            tuple(params),
        ).fetchall()
        groups: dict[str, AggregateState] = {}
        for row in rows:
            key = group_key([row[dim] for dim in query.group_by])
            state = AggregateState(
                n=int(row["n"]),
                total=float(row["total"]),
                total_sq=float(row["total_sq"]),
                vmin=float(row["vmin"]),
                vmax=float(row["vmax"]),
            )
            if key in groups:
                groups[key].merge(state)
            else:
                groups[key] = state
        return {key: state.to_payload() for key, state in groups.items()}

    def _scan_where(self, query: ScanQuery) -> tuple[list[str], list[object]]:
        """The pushed-down WHERE clauses (minus any parameter filter)."""
        clauses: list[str] = []
        params: list[object] = []
        for column, value in (
            ("p.benchmark", query.benchmark),
            ("p.api", query.api),
            ("s.operation", query.operation),
        ):
            if value is not None:
                clauses.append(f"{column} = ?")
                params.append(value)
        for column, value, op in (
            ("p.num_nodes", query.num_nodes_min, ">="),
            ("p.num_nodes", query.num_nodes_max, "<="),
            ("p.num_tasks", query.num_tasks_min, ">="),
            ("p.num_tasks", query.num_tasks_max, "<="),
        ):
            if value is not None:
                clauses.append(f"{column} {op} ?")
                params.append(value)
        return clauses, params

    def _scan_partial_from_base(self, query: ScanQuery) -> dict[str, object]:
        """Push the scan into SQL over ``summaries ⋈ performances``.

        A parameter filter is resolved to an id set first (via the
        LIKE-prefiltered, JSON-verified lookup) and applied as chunked
        ``p.id IN (…)`` clauses; the per-chunk aggregate states merge,
        so the chunking is invisible in the result.
        """
        column = f"s.{METRIC_COLUMNS[query.metric]}"
        base_clauses, base_params = self._scan_where(query)
        id_batches: list[tuple[int, ...]] | None = None
        if query.parameter is not None:
            ids = self.find_ids_by_parameter(*query.parameter)
            if not ids:
                return {}
            id_batches = [tuple(batch) for batch in chunked(ids)]
        group_exprs = [GROUP_COLUMNS[dim] for dim in query.group_by]
        select_groups = "".join(f"{expr}, " for expr in group_exprs)
        group_clause = (
            f" GROUP BY {', '.join(group_exprs)}" if group_exprs else ""
        )
        groups: dict[str, AggregateState] = {}
        for batch in id_batches if id_batches is not None else [None]:
            clauses = list(base_clauses)
            params = list(base_params)
            if batch is not None:
                marks = ", ".join("?" for _ in batch)
                clauses.append(f"p.id IN ({marks})")
                params.extend(batch)
            where_clause = (
                f" WHERE {' AND '.join(clauses)}" if clauses else ""
            )
            for row in self.db.execute(
                f"SELECT {select_groups}COUNT(*) AS n, SUM({column}) AS total, "
                f"SUM({column} * {column}) AS total_sq, "
                f"MIN({column}) AS vmin, MAX({column}) AS vmax "
                "FROM summaries s JOIN performances p ON p.id = s.performance_id"
                f"{where_clause}{group_clause}",
                tuple(params),
            ).fetchall():
                if int(row["n"]) == 0:
                    continue  # ungrouped aggregate over zero rows
                key = group_key([row[i] for i in range(len(group_exprs))])
                state = AggregateState(
                    n=int(row["n"]),
                    total=float(row["total"]),
                    total_sq=float(row["total_sq"]),
                    vmin=float(row["vmin"]),
                    vmax=float(row["vmax"]),
                )
                if key in groups:
                    groups[key].merge(state)
                else:
                    groups[key] = state
            if query.wants_sketch:
                for row in self.db.execute(
                    f"SELECT {select_groups}{column} AS value "
                    "FROM summaries s JOIN performances p ON p.id = s.performance_id"
                    f"{where_clause}",
                    tuple(params),
                ).fetchall():
                    key = group_key([row[i] for i in range(len(group_exprs))])
                    state = groups.get(key)
                    if state is None:  # pragma: no cover - same WHERE as above
                        continue
                    if state.sketch is None:
                        state.sketch = PercentileSketch()
                    state.sketch.add(float(row["value"]))
        return {key: state.to_payload() for key, state in groups.items()}

    def delete(self, knowledge_id: int) -> None:
        """Delete one knowledge object and its dependent rows.

        The deleted object's benchmark has its ``agg_summaries`` rows
        rebuilt from the base tables in the same transaction — an
        ``INSERT … SELECT`` recompute rather than a decrement, because
        min/max are not subtractable.
        """
        row = self.db.execute(
            "SELECT benchmark FROM performances WHERE id = ?", (knowledge_id,)
        ).fetchone()
        if row is None:
            raise PersistenceError(f"no knowledge object with id {knowledge_id}")
        benchmark = row["benchmark"]
        cur = self.db.execute("DELETE FROM performances WHERE id = ?", (knowledge_id,))
        if cur.rowcount == 0:
            raise PersistenceError(f"no knowledge object with id {knowledge_id}")
        self.db.execute(
            "DELETE FROM agg_summaries WHERE benchmark = ?", (benchmark,)
        )
        for metric in schema.AGG_METRICS:
            self.db.execute(
                schema.agg_insert_select(metric, where="p.benchmark = ?"),
                (benchmark,),
            )
        self.db.commit()
