"""IO500 knowledge repository (the IOFHs* tables of §V-C).

"While for each IO500 run an entry [in the] IOFHsRuns table and
IOFHsScores table is created, the number of performed test case[s] may
vary ... IOFH_id is applied as foreign key for mapping to individual
IO500 runs.  In addition to the score, for each test case applied,
options and the corresponding result are stored in [the] IOFHsOptions
table and IOFHsResults table."
"""

from __future__ import annotations

from typing import Sequence

from repro.core.knowledge import IO500Knowledge, IO500Testcase
from repro.core.persistence.backend import PersistenceBackend
from repro.core.persistence.scan import chunked
from repro.util.errors import PersistenceError

__all__ = ["IO500Repository"]


class IO500Repository:
    """CRUD for IO500 knowledge objects.

    Like :class:`~repro.core.persistence.repository.KnowledgeRepository`,
    this depends only on the :class:`PersistenceBackend` protocol.
    """

    def __init__(self, db: PersistenceBackend) -> None:
        self.db = db

    def save(self, knowledge: IO500Knowledge) -> int:
        """Persist one IO500 run; returns its IOFH id."""
        cur = self.db.execute(
            "INSERT INTO IOFHsRuns (timestamp, num_nodes, num_tasks, version) VALUES (?, ?, ?, ?)",
            (knowledge.timestamp, knowledge.num_nodes, knowledge.num_tasks, knowledge.version),
        )
        iofh_id = int(cur.lastrowid)
        self.db.execute(
            "INSERT INTO IOFHsScores (IOFH_id, score_total, score_bw, score_md) VALUES (?, ?, ?, ?)",
            (iofh_id, knowledge.score_total, knowledge.score_bw, knowledge.score_md),
        )
        for testcase in knowledge.testcases:
            tc_cur = self.db.execute(
                "INSERT INTO IOFHsTestcases (IOFH_id, name) VALUES (?, ?)",
                (iofh_id, testcase.name),
            )
            tc_id = int(tc_cur.lastrowid)
            if testcase.options:
                self.db.executemany(
                    "INSERT INTO IOFHsOptions (testcase_id, key, value) VALUES (?, ?, ?)",
                    [(tc_id, key, str(value)) for key, value in sorted(testcase.options.items())],
                )
            self.db.execute(
                "INSERT INTO IOFHsResults (testcase_id, metric, value, unit, time_s) "
                "VALUES (?, ?, ?, ?, ?)",
                (tc_id, "score", testcase.value, testcase.unit, testcase.time_s),
            )
        if knowledge.system is not None:
            self.db.execute(
                """
                INSERT INTO systems
                    (performance_id, IOFH_id, hostname, system_name, processor_model,
                     architecture, processor_cores, processor_mhz, cache_bytes, memory_bytes)
                VALUES (NULL, ?, ?, ?, ?, ?, ?, ?, ?, ?)
                """,
                (
                    iofh_id,
                    str(knowledge.system.get("hostname", "")),
                    str(knowledge.system.get("system_name", "")),
                    str(knowledge.system.get("processor_model", "")),
                    str(knowledge.system.get("architecture", "")),
                    int(knowledge.system.get("processor_cores", 0) or 0),
                    float(knowledge.system.get("processor_mhz", 0) or 0),
                    int(knowledge.system.get("cache_size_bytes", 0) or 0),
                    int(knowledge.system.get("memory_bytes", 0) or 0),
                ),
            )
        self.db.commit()
        knowledge.iofh_id = iofh_id
        return iofh_id

    def save_many(self, knowledge: Sequence[IO500Knowledge]) -> list[int]:
        """Persist several IO500 runs in one transaction (all or nothing)."""
        with self.db.transaction():
            return [self.save(k) for k in knowledge]

    def load(self, iofh_id: int) -> IO500Knowledge:
        """Load one IO500 run by IOFH id."""
        run = self.db.execute("SELECT * FROM IOFHsRuns WHERE id = ?", (iofh_id,)).fetchone()
        if run is None:
            raise PersistenceError(f"no IO500 run with IOFH id {iofh_id}")
        score = self.db.execute(
            "SELECT * FROM IOFHsScores WHERE IOFH_id = ?", (iofh_id,)
        ).fetchone()
        if score is None:
            raise PersistenceError(f"IO500 run {iofh_id} has no score row")
        knowledge = IO500Knowledge(
            score_total=score["score_total"],
            score_bw=score["score_bw"],
            score_md=score["score_md"],
            num_nodes=run["num_nodes"],
            num_tasks=run["num_tasks"],
            timestamp=run["timestamp"],
            version=run["version"],
            iofh_id=iofh_id,
        )
        for tc in self.db.execute(
            "SELECT * FROM IOFHsTestcases WHERE IOFH_id = ? ORDER BY id", (iofh_id,)
        ).fetchall():
            options = {
                r["key"]: r["value"]
                for r in self.db.execute(
                    "SELECT * FROM IOFHsOptions WHERE testcase_id = ? ORDER BY key",
                    (tc["id"],),
                ).fetchall()
            }
            result = self.db.execute(
                "SELECT * FROM IOFHsResults WHERE testcase_id = ?", (tc["id"],)
            ).fetchone()
            knowledge.testcases.append(
                IO500Testcase(
                    name=tc["name"],
                    value=result["value"] if result else 0.0,
                    unit=result["unit"] if result else "",
                    time_s=result["time_s"] if result else 0.0,
                    options=options,
                )
            )
        sysrow = self.db.execute(
            "SELECT * FROM systems WHERE IOFH_id = ?", (iofh_id,)
        ).fetchone()
        if sysrow is not None:
            knowledge.system = {
                "hostname": sysrow["hostname"],
                "system_name": sysrow["system_name"],
                "processor_model": sysrow["processor_model"],
                "architecture": sysrow["architecture"],
                "processor_cores": sysrow["processor_cores"],
                "processor_mhz": sysrow["processor_mhz"],
                "cache_size_bytes": sysrow["cache_bytes"],
                "memory_bytes": sysrow["memory_bytes"],
            }
        return knowledge

    def list_ids(self) -> list[int]:
        """All IOFH run ids."""
        rows = self.db.execute("SELECT id FROM IOFHsRuns ORDER BY id").fetchall()
        return [int(r["id"]) for r in rows]

    def fetch_many(self, ids: Sequence[int]) -> list[IO500Knowledge]:
        """Load several IO500 runs with chunked multi-row queries.

        The batched sibling of :meth:`load`: runs, scores, testcases,
        options, results and system rows for all requested ids come
        back in six ``WHERE … IN`` queries per id chunk instead of
        ``load``'s 3 + 2·testcases round-trips per run.  Input order is
        preserved; a missing id raises :class:`PersistenceError`.
        """
        unique = list(dict.fromkeys(int(i) for i in ids))
        if not unique:
            return []
        by_id: dict[int, IO500Knowledge] = {}
        for batch in chunked(unique):
            marks = ", ".join("?" for _ in batch)
            runs = {
                int(r["id"]): r
                for r in self.db.execute(
                    f"SELECT * FROM IOFHsRuns WHERE id IN ({marks})", tuple(batch)
                ).fetchall()
            }
            missing = [i for i in batch if i not in runs]
            if missing:
                raise PersistenceError(
                    f"no IO500 run(s) with IOFH id(s) {missing}"
                )
            scores = {
                int(r["IOFH_id"]): r
                for r in self.db.execute(
                    f"SELECT * FROM IOFHsScores WHERE IOFH_id IN ({marks})",
                    tuple(batch),
                ).fetchall()
            }
            unscored = [i for i in batch if i not in scores]
            if unscored:
                raise PersistenceError(
                    f"IO500 run {unscored[0]} has no score row"
                )
            for iofh_id in batch:
                run, score = runs[iofh_id], scores[iofh_id]
                by_id[iofh_id] = IO500Knowledge(
                    score_total=score["score_total"],
                    score_bw=score["score_bw"],
                    score_md=score["score_md"],
                    num_nodes=run["num_nodes"],
                    num_tasks=run["num_tasks"],
                    timestamp=run["timestamp"],
                    version=run["version"],
                    iofh_id=iofh_id,
                )
            options_by_tc: dict[int, dict[str, str]] = {}
            for r in self.db.execute(
                "SELECT o.* FROM IOFHsOptions o "
                "JOIN IOFHsTestcases t ON t.id = o.testcase_id "
                f"WHERE t.IOFH_id IN ({marks}) ORDER BY o.key",
                tuple(batch),
            ).fetchall():
                options_by_tc.setdefault(int(r["testcase_id"]), {})[r["key"]] = (
                    r["value"]
                )
            results_by_tc = {
                int(r["testcase_id"]): r
                for r in self.db.execute(
                    "SELECT r.* FROM IOFHsResults r "
                    "JOIN IOFHsTestcases t ON t.id = r.testcase_id "
                    f"WHERE t.IOFH_id IN ({marks})",
                    tuple(batch),
                ).fetchall()
            }
            for tc in self.db.execute(
                f"SELECT * FROM IOFHsTestcases WHERE IOFH_id IN ({marks}) ORDER BY id",
                tuple(batch),
            ).fetchall():
                result = results_by_tc.get(int(tc["id"]))
                by_id[int(tc["IOFH_id"])].testcases.append(
                    IO500Testcase(
                        name=tc["name"],
                        value=result["value"] if result else 0.0,
                        unit=result["unit"] if result else "",
                        time_s=result["time_s"] if result else 0.0,
                        options=options_by_tc.get(int(tc["id"]), {}),
                    )
                )
            for sysrow in self.db.execute(
                f"SELECT * FROM systems WHERE IOFH_id IN ({marks})", tuple(batch)
            ).fetchall():
                by_id[int(sysrow["IOFH_id"])].system = {
                    "hostname": sysrow["hostname"],
                    "system_name": sysrow["system_name"],
                    "processor_model": sysrow["processor_model"],
                    "architecture": sysrow["architecture"],
                    "processor_cores": sysrow["processor_cores"],
                    "processor_mhz": sysrow["processor_mhz"],
                    "cache_size_bytes": sysrow["cache_bytes"],
                    "memory_bytes": sysrow["memory_bytes"],
                }
        return [by_id[int(i)] for i in ids]

    def load_all(self) -> list[IO500Knowledge]:
        """Load every stored IO500 run (batched, not per-row)."""
        return self.fetch_many(self.list_ids())

    def fetch_score_columns(self) -> dict[str, list]:
        """Every run's scores as aligned columns (one JOIN, no objects).

        The columnar feed for fleet analytics: correlation matrices and
        scoring-balance analysis need whole-column vectors, not 100k
        :class:`IO500Knowledge` objects.
        """
        columns: dict[str, list] = {
            "iofh_id": [], "timestamp": [], "num_nodes": [], "num_tasks": [],
            "score_total": [], "score_bw": [], "score_md": [],
        }
        for row in self.db.execute(
            "SELECT r.id, r.timestamp, r.num_nodes, r.num_tasks, "
            "s.score_total, s.score_bw, s.score_md "
            "FROM IOFHsRuns r JOIN IOFHsScores s ON s.IOFH_id = r.id "
            "ORDER BY r.id"
        ).fetchall():
            columns["iofh_id"].append(int(row["id"]))
            columns["timestamp"].append(float(row["timestamp"]))
            columns["num_nodes"].append(int(row["num_nodes"]))
            columns["num_tasks"].append(int(row["num_tasks"]))
            columns["score_total"].append(float(row["score_total"]))
            columns["score_bw"].append(float(row["score_bw"]))
            columns["score_md"].append(float(row["score_md"]))
        return columns

    def fetch_testcase_columns(self) -> dict[str, dict[int, float]]:
        """Per-testcase result values, keyed ``name -> {iofh_id: value}``.

        One JOIN over testcases⋈results feeds every per-sub-benchmark
        distribution (ior-easy-write, mdtest-hard-stat, …) without
        materialising run objects.
        """
        out: dict[str, dict[int, float]] = {}
        for row in self.db.execute(
            "SELECT t.IOFH_id, t.name, r.value "
            "FROM IOFHsTestcases t JOIN IOFHsResults r ON r.testcase_id = t.id "
            "ORDER BY t.IOFH_id, t.id"
        ).fetchall():
            out.setdefault(row["name"], {})[int(row["IOFH_id"])] = float(row["value"])
        return out

    def delete(self, iofh_id: int) -> None:
        """Delete one IO500 run and its dependent rows."""
        cur = self.db.execute("DELETE FROM IOFHsRuns WHERE id = ?", (iofh_id,))
        if cur.rowcount == 0:
            raise PersistenceError(f"no IO500 run with IOFH id {iofh_id}")
        self.db.commit()
