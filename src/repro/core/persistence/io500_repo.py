"""IO500 knowledge repository (the IOFHs* tables of §V-C).

"While for each IO500 run an entry [in the] IOFHsRuns table and
IOFHsScores table is created, the number of performed test case[s] may
vary ... IOFH_id is applied as foreign key for mapping to individual
IO500 runs.  In addition to the score, for each test case applied,
options and the corresponding result are stored in [the] IOFHsOptions
table and IOFHsResults table."
"""

from __future__ import annotations

from typing import Sequence

from repro.core.knowledge import IO500Knowledge, IO500Testcase
from repro.core.persistence.backend import PersistenceBackend
from repro.util.errors import PersistenceError

__all__ = ["IO500Repository"]


class IO500Repository:
    """CRUD for IO500 knowledge objects.

    Like :class:`~repro.core.persistence.repository.KnowledgeRepository`,
    this depends only on the :class:`PersistenceBackend` protocol.
    """

    def __init__(self, db: PersistenceBackend) -> None:
        self.db = db

    def save(self, knowledge: IO500Knowledge) -> int:
        """Persist one IO500 run; returns its IOFH id."""
        cur = self.db.execute(
            "INSERT INTO IOFHsRuns (timestamp, num_nodes, num_tasks, version) VALUES (?, ?, ?, ?)",
            (knowledge.timestamp, knowledge.num_nodes, knowledge.num_tasks, knowledge.version),
        )
        iofh_id = int(cur.lastrowid)
        self.db.execute(
            "INSERT INTO IOFHsScores (IOFH_id, score_total, score_bw, score_md) VALUES (?, ?, ?, ?)",
            (iofh_id, knowledge.score_total, knowledge.score_bw, knowledge.score_md),
        )
        for testcase in knowledge.testcases:
            tc_cur = self.db.execute(
                "INSERT INTO IOFHsTestcases (IOFH_id, name) VALUES (?, ?)",
                (iofh_id, testcase.name),
            )
            tc_id = int(tc_cur.lastrowid)
            if testcase.options:
                self.db.executemany(
                    "INSERT INTO IOFHsOptions (testcase_id, key, value) VALUES (?, ?, ?)",
                    [(tc_id, key, str(value)) for key, value in sorted(testcase.options.items())],
                )
            self.db.execute(
                "INSERT INTO IOFHsResults (testcase_id, metric, value, unit, time_s) "
                "VALUES (?, ?, ?, ?, ?)",
                (tc_id, "score", testcase.value, testcase.unit, testcase.time_s),
            )
        if knowledge.system is not None:
            self.db.execute(
                """
                INSERT INTO systems
                    (performance_id, IOFH_id, hostname, system_name, processor_model,
                     architecture, processor_cores, processor_mhz, cache_bytes, memory_bytes)
                VALUES (NULL, ?, ?, ?, ?, ?, ?, ?, ?, ?)
                """,
                (
                    iofh_id,
                    str(knowledge.system.get("hostname", "")),
                    str(knowledge.system.get("system_name", "")),
                    str(knowledge.system.get("processor_model", "")),
                    str(knowledge.system.get("architecture", "")),
                    int(knowledge.system.get("processor_cores", 0) or 0),
                    float(knowledge.system.get("processor_mhz", 0) or 0),
                    int(knowledge.system.get("cache_size_bytes", 0) or 0),
                    int(knowledge.system.get("memory_bytes", 0) or 0),
                ),
            )
        self.db.commit()
        knowledge.iofh_id = iofh_id
        return iofh_id

    def save_many(self, knowledge: Sequence[IO500Knowledge]) -> list[int]:
        """Persist several IO500 runs in one transaction (all or nothing)."""
        with self.db.transaction():
            return [self.save(k) for k in knowledge]

    def load(self, iofh_id: int) -> IO500Knowledge:
        """Load one IO500 run by IOFH id."""
        run = self.db.execute("SELECT * FROM IOFHsRuns WHERE id = ?", (iofh_id,)).fetchone()
        if run is None:
            raise PersistenceError(f"no IO500 run with IOFH id {iofh_id}")
        score = self.db.execute(
            "SELECT * FROM IOFHsScores WHERE IOFH_id = ?", (iofh_id,)
        ).fetchone()
        if score is None:
            raise PersistenceError(f"IO500 run {iofh_id} has no score row")
        knowledge = IO500Knowledge(
            score_total=score["score_total"],
            score_bw=score["score_bw"],
            score_md=score["score_md"],
            num_nodes=run["num_nodes"],
            num_tasks=run["num_tasks"],
            timestamp=run["timestamp"],
            version=run["version"],
            iofh_id=iofh_id,
        )
        for tc in self.db.execute(
            "SELECT * FROM IOFHsTestcases WHERE IOFH_id = ? ORDER BY id", (iofh_id,)
        ).fetchall():
            options = {
                r["key"]: r["value"]
                for r in self.db.execute(
                    "SELECT * FROM IOFHsOptions WHERE testcase_id = ? ORDER BY key",
                    (tc["id"],),
                ).fetchall()
            }
            result = self.db.execute(
                "SELECT * FROM IOFHsResults WHERE testcase_id = ?", (tc["id"],)
            ).fetchone()
            knowledge.testcases.append(
                IO500Testcase(
                    name=tc["name"],
                    value=result["value"] if result else 0.0,
                    unit=result["unit"] if result else "",
                    time_s=result["time_s"] if result else 0.0,
                    options=options,
                )
            )
        sysrow = self.db.execute(
            "SELECT * FROM systems WHERE IOFH_id = ?", (iofh_id,)
        ).fetchone()
        if sysrow is not None:
            knowledge.system = {
                "hostname": sysrow["hostname"],
                "system_name": sysrow["system_name"],
                "processor_model": sysrow["processor_model"],
                "architecture": sysrow["architecture"],
                "processor_cores": sysrow["processor_cores"],
                "processor_mhz": sysrow["processor_mhz"],
                "cache_size_bytes": sysrow["cache_bytes"],
                "memory_bytes": sysrow["memory_bytes"],
            }
        return knowledge

    def list_ids(self) -> list[int]:
        """All IOFH run ids."""
        rows = self.db.execute("SELECT id FROM IOFHsRuns ORDER BY id").fetchall()
        return [int(r["id"]) for r in rows]

    def load_all(self) -> list[IO500Knowledge]:
        """Load every stored IO500 run."""
        return [self.load(i) for i in self.list_ids()]

    def delete(self, iofh_id: int) -> None:
        """Delete one IO500 run and its dependent rows."""
        cur = self.db.execute("DELETE FROM IOFHsRuns WHERE id = ?", (iofh_id,))
        if cur.rowcount == 0:
            raise PersistenceError(f"no IO500 run with IOFH id {iofh_id}")
        self.db.commit()
