"""Phase III: knowledge persistence behind the backend protocol.

The repositories depend on :class:`PersistenceBackend`; the built-in
implementations are the synchronous SQLite :class:`KnowledgeDatabase`
(local file or ``sqlite://`` URL) and the commit-coalescing
:class:`BatchedBackend` wrapper.
"""

from repro.core.persistence.backend import BatchedBackend, PersistenceBackend
from repro.core.persistence.database import KnowledgeDatabase, resolve_database_target
from repro.core.persistence.io500_repo import IO500Repository
from repro.core.persistence.queries import KnowledgeQueries, SummaryRow
from repro.core.persistence.repository import KnowledgeRepository
from repro.core.persistence.scan import (
    PercentileSketch,
    ScanQuery,
    ScanResult,
    ScanRow,
    fold_scan,
)
from repro.core.persistence.schema import SCHEMA_VERSION, TABLES, create_schema
from repro.core.persistence.transfer import (
    export_csv,
    export_json,
    import_json,
    io500_from_dict,
    io500_to_dict,
    knowledge_from_dict,
    knowledge_to_dict,
)

__all__ = [
    "PersistenceBackend",
    "BatchedBackend",
    "KnowledgeDatabase",
    "resolve_database_target",
    "KnowledgeRepository",
    "IO500Repository",
    "KnowledgeQueries",
    "SummaryRow",
    "ScanQuery",
    "ScanResult",
    "ScanRow",
    "PercentileSketch",
    "fold_scan",
    "create_schema",
    "SCHEMA_VERSION",
    "TABLES",
    "export_csv",
    "export_json",
    "import_json",
    "knowledge_to_dict",
    "knowledge_from_dict",
    "io500_to_dict",
    "io500_from_dict",
]
