"""Columnar scan/aggregate queries over the knowledge store.

The analytics the ROADMAP demands ("percentile/CDF distributions per
sub-benchmark, cross-metric correlation matrices … at fleet scale")
cannot be computed by materialising one :class:`Knowledge` object per
row — a 100k-run store folded through ``load_all()`` is hundreds of
thousands of SQL round-trips and gigabytes of Python objects.  This
module is the columnar alternative: a :class:`ScanQuery` describes a
projection (one summary metric), filters (benchmark/api/operation
equality, node/task ranges, parameter equality), a group-by and the
aggregates wanted; the repository pushes all of that down into SQL and
only *aggregate states* come back up.

Aggregate states are **mergeable**: ``(n, total, total_sq, min, max)``
plus an optional log-bucketed :class:`PercentileSketch`.  Merging is
associative and order-insensitive for every field except the floating
``total``/``total_sq`` sums (associative up to float rounding), which
is what lets

* the repository evaluate one chunked ``IN (…)`` id filter as several
  SQL passes and merge,
* the sharded service evaluate per shard and merge,
* the networked server's shard-group workers each answer with partial
  states that the router merges — no knowledge objects ever cross the
  wire for an aggregate query.

:func:`fold_scan` is the executable specification: the same query
evaluated as a plain Python fold over already-loaded knowledge
objects.  Tests (and ``repro-bench scan``) hold ``scan()`` to it.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field, replace
from typing import Iterable, Iterator, Mapping, Sequence, TypeVar

from repro.util.errors import PersistenceError

__all__ = [
    "METRIC_COLUMNS",
    "GROUP_COLUMNS",
    "SQL_VARIABLE_CHUNK",
    "chunked",
    "escape_like",
    "PercentileSketch",
    "AggregateState",
    "ScanQuery",
    "ScanRow",
    "ScanResult",
    "merge_partial_payloads",
    "finalize_partials",
    "fold_scan",
]

T = TypeVar("T")

#: Summary metrics a scan may project (name -> summaries column).
METRIC_COLUMNS: Mapping[str, str] = {
    "bw_max": "bw_max",
    "bw_min": "bw_min",
    "bw_mean": "bw_mean",
    "bw_stddev": "bw_stddev",
    "ops_max": "ops_max",
    "ops_min": "ops_min",
    "ops_mean": "ops_mean",
    "ops_stddev": "ops_stddev",
    "iterations": "iterations",
}

#: Group-by dimensions (name -> SQL expression over the joined tables).
GROUP_COLUMNS: Mapping[str, str] = {
    "benchmark": "p.benchmark",
    "api": "p.api",
    "operation": "s.operation",
    "num_nodes": "p.num_nodes",
    "num_tasks": "p.num_tasks",
}

#: SQLite's default host-variable limit is 999 (SQLITE_MAX_VARIABLE_NUMBER);
#: ``IN (…)`` id lists are chunked well below it so fleet-sized fetches
#: never trip ``sqlite3.OperationalError: too many SQL variables``.
SQL_VARIABLE_CHUNK = 500

#: Log-bucket growth factor of the percentile sketch: every bucket spans
#: values within 2% of each other, bounding quantile error to ~1%.
SKETCH_GAMMA = 1.02
_LOG_GAMMA = math.log(SKETCH_GAMMA)


def chunked(items: Sequence[T], size: int = SQL_VARIABLE_CHUNK) -> Iterator[Sequence[T]]:
    """Yield ``items`` in slices of at most ``size`` elements."""
    if size < 1:
        raise ValueError(f"chunk size must be >= 1, got {size}")
    for start in range(0, len(items), size):
        yield items[start : start + size]


def escape_like(text: str, escape: str = "\\") -> str:
    """Escape ``%``/``_`` (and the escape char) for a ``LIKE … ESCAPE``.

    Without this a parameter value such as ``"100%"`` turns the LIKE
    prefilter into a near-full scan (``%`` matches anything) — every
    LIKE the persistence layer builds from user data goes through here.
    """
    return (
        text.replace(escape, escape + escape)
        .replace("%", escape + "%")
        .replace("_", escape + "_")
    )


# ----------------------------------------------------------------------
# percentile sketch
# ----------------------------------------------------------------------
class PercentileSketch:
    """Mergeable log-bucketed quantile sketch (DDSketch-style).

    Positive values land in bucket ``floor(ln(v)/ln(gamma))``, negative
    values in the mirrored bucket of their magnitude, zeros in their
    own counter.  A quantile is answered with the *geometric midpoint*
    of its bucket, so the relative error is bounded by ``gamma - 1``
    (2% here) and — crucially — the answer depends only on the bucket
    counts, never on insertion order.  Same data, any partitioning,
    any merge order: identical quantiles.
    """

    __slots__ = ("zeros", "pos", "neg")

    def __init__(self) -> None:
        self.zeros = 0
        self.pos: dict[int, int] = {}
        self.neg: dict[int, int] = {}

    @staticmethod
    def _bucket(magnitude: float) -> int:
        return math.floor(math.log(magnitude) / _LOG_GAMMA)

    @staticmethod
    def _midpoint(bucket: int) -> float:
        low = SKETCH_GAMMA**bucket
        return low * (1.0 + SKETCH_GAMMA) / 2.0

    def add(self, value: float, count: int = 1) -> None:
        """Record ``count`` observations of ``value``."""
        if value == 0:
            self.zeros += count
        elif value > 0:
            bucket = self._bucket(value)
            self.pos[bucket] = self.pos.get(bucket, 0) + count
        else:
            bucket = self._bucket(-value)
            self.neg[bucket] = self.neg.get(bucket, 0) + count

    def merge(self, other: "PercentileSketch") -> None:
        """Fold another sketch's buckets into this one."""
        self.zeros += other.zeros
        for bucket, count in other.pos.items():
            self.pos[bucket] = self.pos.get(bucket, 0) + count
        for bucket, count in other.neg.items():
            self.neg[bucket] = self.neg.get(bucket, 0) + count

    @property
    def count(self) -> int:
        """Total observations recorded."""
        return self.zeros + sum(self.pos.values()) + sum(self.neg.values())

    def quantile(self, q: float) -> float:
        """The value at quantile ``q`` in [0, 1] (nearest-rank)."""
        if not 0.0 <= q <= 1.0:
            raise PersistenceError(f"quantile must be in [0, 1], got {q}")
        total = self.count
        if total == 0:
            raise PersistenceError("cannot take a quantile of an empty sketch")
        rank = min(total - 1, int(q * (total - 1) + 0.5))
        # Ascending value order: most-negative first, then zeros, then
        # positives — negative buckets descend as magnitude grows.
        seen = 0
        for bucket in sorted(self.neg, reverse=True):
            seen += self.neg[bucket]
            if rank < seen:
                return -self._midpoint(bucket)
        seen += self.zeros
        if rank < seen:
            return 0.0
        for bucket in sorted(self.pos):
            seen += self.pos[bucket]
            if rank < seen:
                return self._midpoint(bucket)
        raise AssertionError("rank outside sketch")  # pragma: no cover

    # -- JSON-safe round-trip (wire + partial-aggregate payloads) ------
    def to_payload(self) -> dict[str, object]:
        """JSON-safe form (bucket keys become strings)."""
        return {
            "zeros": self.zeros,
            "pos": {str(k): v for k, v in self.pos.items()},
            "neg": {str(k): v for k, v in self.neg.items()},
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, object]) -> "PercentileSketch":
        """Rebuild a sketch from :meth:`to_payload` output."""
        sketch = cls()
        sketch.zeros = int(payload.get("zeros", 0))
        sketch.pos = {int(k): int(v) for k, v in dict(payload.get("pos") or {}).items()}
        sketch.neg = {int(k): int(v) for k, v in dict(payload.get("neg") or {}).items()}
        return sketch


# ----------------------------------------------------------------------
# aggregate state
# ----------------------------------------------------------------------
@dataclass(slots=True)
class AggregateState:
    """The mergeable partial state of one group's aggregates."""

    n: int = 0
    total: float = 0.0
    total_sq: float = 0.0
    vmin: float = math.inf
    vmax: float = -math.inf
    sketch: PercentileSketch | None = None

    def add(self, value: float) -> None:
        """Fold one observation in (the pure-Python evaluation path)."""
        value = float(value)
        self.n += 1
        self.total += value
        self.total_sq += value * value
        self.vmin = min(self.vmin, value)
        self.vmax = max(self.vmax, value)
        if self.sketch is not None:
            self.sketch.add(value)

    def merge(self, other: "AggregateState") -> None:
        """Fold another partial state in (chunk/shard/worker merge)."""
        self.n += other.n
        self.total += other.total
        self.total_sq += other.total_sq
        self.vmin = min(self.vmin, other.vmin)
        self.vmax = max(self.vmax, other.vmax)
        if other.sketch is not None:
            if self.sketch is None:
                self.sketch = PercentileSketch()
            self.sketch.merge(other.sketch)

    def finalize(self, percentiles: Sequence[float] = ()) -> dict[str, float]:
        """Resolve the state into the aggregate values of one scan row.

        ``stddev`` is the population deviation (divide by N), matching
        :func:`repro.util.stats.summarize`; percentiles come from the
        sketch and carry its ~1% relative-error contract.
        """
        if self.n == 0:
            raise PersistenceError("cannot finalize an empty aggregate state")
        mean = self.total / self.n
        variance = max(0.0, self.total_sq / self.n - mean * mean)
        out: dict[str, float] = {
            "count": self.n,
            "min": self.vmin,
            "max": self.vmax,
            "mean": mean,
            "stddev": math.sqrt(variance),
        }
        if percentiles:
            if self.sketch is None:
                raise PersistenceError(
                    "scan asked for percentiles but no sketch was built"
                )
            for q in percentiles:
                out[_percentile_name(q)] = self.sketch.quantile(q / 100.0)
        return out

    def to_payload(self) -> dict[str, object]:
        """JSON-safe partial-aggregate form (wire and worker merges)."""
        payload: dict[str, object] = {
            "n": self.n,
            "total": self.total,
            "total_sq": self.total_sq,
            "min": self.vmin if math.isfinite(self.vmin) else None,
            "max": self.vmax if math.isfinite(self.vmax) else None,
        }
        if self.sketch is not None:
            payload["sketch"] = self.sketch.to_payload()
        return payload

    @classmethod
    def from_payload(cls, payload: Mapping[str, object]) -> "AggregateState":
        """Rebuild a partial state from :meth:`to_payload` output."""
        raw_min = payload.get("min")
        raw_max = payload.get("max")
        sketch_payload = payload.get("sketch")
        return cls(
            n=int(payload["n"]),  # type: ignore[arg-type]
            total=float(payload["total"]),  # type: ignore[arg-type]
            total_sq=float(payload["total_sq"]),  # type: ignore[arg-type]
            vmin=math.inf if raw_min is None else float(raw_min),  # type: ignore[arg-type]
            vmax=-math.inf if raw_max is None else float(raw_max),  # type: ignore[arg-type]
            sketch=(
                PercentileSketch.from_payload(sketch_payload)  # type: ignore[arg-type]
                if isinstance(sketch_payload, Mapping)
                else None
            ),
        )


def _percentile_name(q: float) -> str:
    """``50 -> "p50"``, ``99.9 -> "p99.9"`` — stable row-key names."""
    return f"p{q:g}"


# ----------------------------------------------------------------------
# the query
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class ScanQuery:
    """One columnar aggregate query over the knowledge store.

    ``metric`` names the projected summaries column; equality filters
    (``benchmark``/``api``/``operation``), inclusive ranges
    (``num_nodes_min``…``num_tasks_max``) and one parameter-equality
    filter narrow the rows; ``group_by`` splits the aggregates by any
    subset of :data:`GROUP_COLUMNS`; ``percentiles`` asks for sketch
    quantiles (values in (0, 100)) on top of the five standard
    aggregates.
    """

    metric: str = "bw_mean"
    benchmark: str | None = None
    api: str | None = None
    operation: str | None = None
    num_nodes_min: int | None = None
    num_nodes_max: int | None = None
    num_tasks_min: int | None = None
    num_tasks_max: int | None = None
    parameter: tuple[str, str] | None = None
    group_by: tuple[str, ...] = ()
    percentiles: tuple[float, ...] = ()

    def __post_init__(self) -> None:
        if self.metric not in METRIC_COLUMNS:
            raise PersistenceError(
                f"unknown scan metric {self.metric!r}; "
                f"known: {sorted(METRIC_COLUMNS)}"
            )
        for dim in self.group_by:
            if dim not in GROUP_COLUMNS:
                raise PersistenceError(
                    f"unknown scan group-by dimension {dim!r}; "
                    f"known: {sorted(GROUP_COLUMNS)}"
                )
        if len(set(self.group_by)) != len(self.group_by):
            raise PersistenceError(f"duplicate group-by dimensions: {self.group_by}")
        for q in self.percentiles:
            if not 0.0 < q < 100.0:
                raise PersistenceError(
                    f"percentiles must be in (0, 100), got {q}"
                )
        if self.parameter is not None and len(self.parameter) != 2:
            raise PersistenceError("parameter filter must be a (key, value) pair")

    # -- wire round-trip ----------------------------------------------
    def to_payload(self) -> dict[str, object]:
        """JSON-safe form for the ``scan`` wire op."""
        return {
            "metric": self.metric,
            "benchmark": self.benchmark,
            "api": self.api,
            "operation": self.operation,
            "num_nodes_min": self.num_nodes_min,
            "num_nodes_max": self.num_nodes_max,
            "num_tasks_min": self.num_tasks_min,
            "num_tasks_max": self.num_tasks_max,
            "parameter": list(self.parameter) if self.parameter else None,
            "group_by": list(self.group_by),
            "percentiles": list(self.percentiles),
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, object]) -> "ScanQuery":
        """Rebuild (and re-validate) a query from :meth:`to_payload`."""
        parameter = payload.get("parameter")

        def _opt_int(name: str) -> int | None:
            value = payload.get(name)
            return None if value is None else int(value)  # type: ignore[arg-type]

        def _opt_str(name: str) -> str | None:
            value = payload.get(name)
            return None if value is None else str(value)

        return cls(
            metric=str(payload.get("metric", "bw_mean")),
            benchmark=_opt_str("benchmark"),
            api=_opt_str("api"),
            operation=_opt_str("operation"),
            num_nodes_min=_opt_int("num_nodes_min"),
            num_nodes_max=_opt_int("num_nodes_max"),
            num_tasks_min=_opt_int("num_tasks_min"),
            num_tasks_max=_opt_int("num_tasks_max"),
            parameter=(
                (str(parameter[0]), str(parameter[1]))  # type: ignore[index]
                if parameter
                else None
            ),
            group_by=tuple(str(d) for d in payload.get("group_by") or ()),  # type: ignore[union-attr]
            percentiles=tuple(float(q) for q in payload.get("percentiles") or ()),  # type: ignore[union-attr]
        )

    def without_parameter(self) -> "ScanQuery":
        """This query minus its parameter filter (applied as an id set)."""
        return replace(self, parameter=None)

    @property
    def wants_sketch(self) -> bool:
        """Whether evaluating this query must build percentile sketches."""
        return bool(self.percentiles)


# ----------------------------------------------------------------------
# results
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class ScanRow:
    """One group's finalized aggregates."""

    group: dict[str, object]
    values: dict[str, float]


@dataclass(frozen=True, slots=True)
class ScanResult:
    """All groups of one scan, in stable group-key order.

    ``source`` records which evaluation path answered: ``summary-table``
    (the pre-aggregated ingest tables), ``base-tables`` (SQL pushdown
    over summaries/performances), ``service`` (merged shard/worker
    partials) or ``fold`` (the pure-Python reference).
    """

    query: ScanQuery
    rows: tuple[ScanRow, ...]
    source: str = "base-tables"

    def single(self) -> dict[str, float]:
        """The aggregates of an ungrouped scan (exactly one row)."""
        if len(self.rows) != 1:
            raise PersistenceError(
                f"expected exactly one scan row, got {len(self.rows)} "
                "(did the query set group_by?)"
            )
        return dict(self.rows[0].values)


def group_key(values: Sequence[object]) -> str:
    """Canonical JSON key of one group (payload dict keys are strings)."""
    return json.dumps(list(values), sort_keys=False, default=str)


def merge_partial_payloads(parts: Iterable[Mapping[str, object]]) -> dict[str, object]:
    """Merge per-chunk / per-shard / per-worker partial payloads.

    Each part maps the canonical group key to an
    :meth:`AggregateState.to_payload` dict; the merge is group-wise
    state merging, so any nesting of merges yields the same result.
    """
    merged: dict[str, AggregateState] = {}
    for part in parts:
        for key, payload in part.items():
            state = AggregateState.from_payload(payload)  # type: ignore[arg-type]
            if key in merged:
                merged[key].merge(state)
            else:
                merged[key] = state
    return {key: state.to_payload() for key, state in merged.items()}


def finalize_partials(
    query: ScanQuery, partials: Mapping[str, object], *, source: str
) -> ScanResult:
    """Resolve merged partial states into a :class:`ScanResult`."""
    rows = []
    for key in sorted(partials, key=_key_sort):
        state = AggregateState.from_payload(partials[key])  # type: ignore[arg-type]
        group_values = json.loads(key)
        rows.append(
            ScanRow(
                group=dict(zip(query.group_by, group_values)),
                values=state.finalize(query.percentiles),
            )
        )
    return ScanResult(query=query, rows=tuple(rows), source=source)


def _key_sort(key: str) -> tuple:
    """Sort group keys by their decoded values (mixed-type safe)."""
    return tuple((str(type(v)), v if isinstance(v, (int, float)) else str(v))
                 for v in json.loads(key))


# ----------------------------------------------------------------------
# the executable specification
# ----------------------------------------------------------------------
def fold_scan(query: ScanQuery, objects: Iterable) -> ScanResult:
    """Evaluate ``query`` as a plain fold over knowledge objects.

    This is the row-loop the scan API replaces — kept as the reference
    implementation so tests and ``repro-bench scan`` can hold the SQL
    pushdown to it value-for-value.  Accepts any iterable of
    :class:`~repro.core.knowledge.Knowledge`.
    """
    groups: dict[str, AggregateState] = {}
    for knowledge in objects:
        if query.benchmark is not None and knowledge.benchmark != query.benchmark:
            continue
        if query.api is not None and knowledge.api != query.api:
            continue
        if query.num_nodes_min is not None and knowledge.num_nodes < query.num_nodes_min:
            continue
        if query.num_nodes_max is not None and knowledge.num_nodes > query.num_nodes_max:
            continue
        if query.num_tasks_min is not None and knowledge.num_tasks < query.num_tasks_min:
            continue
        if query.num_tasks_max is not None and knowledge.num_tasks > query.num_tasks_max:
            continue
        if query.parameter is not None:
            key, value = query.parameter
            if knowledge.parameters.get(key) != value:
                continue
        for summary in knowledge.summaries:
            if query.operation is not None and summary.operation != query.operation:
                continue
            dims = []
            for dim in query.group_by:
                if dim == "operation":
                    dims.append(summary.operation)
                else:
                    dims.append(getattr(knowledge, dim))
            key_text = group_key(dims)
            state = groups.get(key_text)
            if state is None:
                state = AggregateState(
                    sketch=PercentileSketch() if query.wants_sketch else None
                )
                groups[key_text] = state
            state.add(getattr(summary, query.metric))
    partials = {key: state.to_payload() for key, state in groups.items()}
    return finalize_partials(query, partials, source="fold")
