"""Cross-cutting knowledge-base queries.

The comparison/filter features of the knowledge explorer (§V-D) and
the recommendation module (§IV) need set-oriented access: find similar
knowledge objects, rank configurations by a metric, and summarise the
whole base.  These queries work on the SQL level so they scale past
what loading every object would allow.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.persistence.database import KnowledgeDatabase
from repro.util.errors import PersistenceError

__all__ = ["SummaryRow", "KnowledgeQueries"]


@dataclass(frozen=True, slots=True)
class SummaryRow:
    """One (knowledge, operation) summary with its run context."""

    knowledge_id: int
    benchmark: str
    api: str
    command: str
    num_tasks: int
    num_nodes: int
    operation: str
    bw_mean: float
    bw_min: float
    bw_max: float
    ops_mean: float
    iterations: int


class KnowledgeQueries:
    """Read-only analytical queries over the knowledge base."""

    def __init__(self, db: KnowledgeDatabase) -> None:
        self.db = db

    def summary_rows(
        self,
        benchmark: str | None = None,
        operation: str | None = None,
        api: str | None = None,
    ) -> list[SummaryRow]:
        """Flat summary join, optionally filtered."""
        sql = """
            SELECT p.id AS knowledge_id, p.benchmark, p.api AS perf_api, p.command,
                   p.num_tasks, p.num_nodes,
                   s.operation, s.api AS summary_api, s.bw_mean, s.bw_min, s.bw_max,
                   s.ops_mean, s.iterations
            FROM performances p JOIN summaries s ON s.performance_id = p.id
        """
        conditions, params = [], []
        if benchmark is not None:
            conditions.append("p.benchmark = ?")
            params.append(benchmark)
        if operation is not None:
            conditions.append("s.operation = ?")
            params.append(operation)
        if api is not None:
            conditions.append("p.api = ?")
            params.append(api)
        if conditions:
            sql += " WHERE " + " AND ".join(conditions)
        sql += " ORDER BY p.id, s.id"
        rows = self.db.execute(sql, tuple(params)).fetchall()
        return [
            SummaryRow(
                knowledge_id=r["knowledge_id"],
                benchmark=r["benchmark"],
                api=r["perf_api"] or r["summary_api"],
                command=r["command"],
                num_tasks=r["num_tasks"],
                num_nodes=r["num_nodes"],
                operation=r["operation"],
                bw_mean=r["bw_mean"],
                bw_min=r["bw_min"],
                bw_max=r["bw_max"],
                ops_mean=r["ops_mean"],
                iterations=r["iterations"],
            )
            for r in rows
        ]

    def best_configuration(
        self, operation: str, benchmark: str | None = None
    ) -> SummaryRow:
        """The knowledge object with the highest mean bandwidth."""
        rows = self.summary_rows(benchmark=benchmark, operation=operation)
        if not rows:
            raise PersistenceError(
                f"no {operation!r} summaries in the knowledge base"
            )
        return max(rows, key=lambda r: r.bw_mean)

    def similar_knowledge(
        self, knowledge_id: int, same_api: bool = True, same_tasks: bool = True
    ) -> list[int]:
        """Knowledge ids whose run context matches the given object's.

        "To find similar knowledge object[s] and perform fine-grained
        evaluations" (§V-D) — similarity here is same benchmark plus,
        optionally, same API and task count.
        """
        row = self.db.execute(
            "SELECT benchmark, api, num_tasks FROM performances WHERE id = ?",
            (knowledge_id,),
        ).fetchone()
        if row is None:
            raise PersistenceError(f"no knowledge object with id {knowledge_id}")
        sql = "SELECT id FROM performances WHERE benchmark = ? AND id != ?"
        params: list[object] = [row["benchmark"], knowledge_id]
        if same_api:
            sql += " AND api = ?"
            params.append(row["api"])
        if same_tasks:
            sql += " AND num_tasks = ?"
            params.append(row["num_tasks"])
        return [int(r["id"]) for r in self.db.execute(sql + " ORDER BY id", tuple(params))]

    def database_report(self) -> dict[str, int]:
        """Row counts of every knowledge table."""
        from repro.core.persistence.schema import TABLES

        return {table: self.db.table_count(table) for table in TABLES}
