"""Knowledge import/export: JSON interchange and CSV reporting.

Two paper requirements live here.  §III's persistence phase allows
knowledge to be "saved, e.g., as a CSV file or as a database entry";
§VI plans "the ability to add knowledge manually through the web-based
user interface".  The JSON format is the manual-entry / sharing
interchange (lossless round trip of whole knowledge objects); the CSV
export is the flat report of summary rows.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import asdict
from pathlib import Path

from repro.core.knowledge import (
    FilesystemInfo,
    IO500Knowledge,
    IO500Testcase,
    Knowledge,
    KnowledgeResult,
    KnowledgeSummary,
)
from repro.util.errors import PersistenceError

__all__ = [
    "knowledge_to_dict",
    "knowledge_from_dict",
    "io500_to_dict",
    "io500_from_dict",
    "export_json",
    "import_json",
    "export_csv",
]

_FORMAT = "repro-knowledge/1"


def knowledge_to_dict(k: Knowledge) -> dict[str, object]:
    """Serialize one knowledge object to a JSON-safe dict."""
    return {
        "type": "knowledge",
        "benchmark": k.benchmark,
        "command": k.command,
        "api": k.api,
        "test_file": k.test_file,
        "file_per_proc": k.file_per_proc,
        "num_nodes": k.num_nodes,
        "num_tasks": k.num_tasks,
        "tasks_per_node": k.tasks_per_node,
        "start_time": k.start_time,
        "end_time": k.end_time,
        "parameters": dict(k.parameters),
        "summaries": [
            {
                **{
                    f: getattr(s, f)
                    for f in (
                        "operation", "api", "bw_max", "bw_min", "bw_mean", "bw_stddev",
                        "ops_max", "ops_min", "ops_mean", "ops_stddev", "iterations",
                    )
                },
                "results": [asdict(r) for r in s.results],
            }
            for s in k.summaries
        ],
        "filesystem": asdict(k.filesystem) if k.filesystem else None,
        "system": dict(k.system) if k.system else None,
    }


def knowledge_from_dict(data: dict[str, object]) -> Knowledge:
    """Deserialize a knowledge object (the manual-entry path).

    Validates the essentials so hand-written entries fail early with a
    useful message instead of poisoning the knowledge base.
    """
    if data.get("type") != "knowledge":
        raise PersistenceError(f"not a knowledge dict (type={data.get('type')!r})")
    if not data.get("benchmark"):
        raise PersistenceError("knowledge entry needs a 'benchmark' field")
    summaries = []
    for s in data.get("summaries", []):  # type: ignore[union-attr]
        try:
            results = [KnowledgeResult(**r) for r in s.get("results", [])]
            summaries.append(
                KnowledgeSummary(
                    operation=s["operation"],
                    api=s.get("api", ""),
                    bw_max=float(s["bw_max"]),
                    bw_min=float(s["bw_min"]),
                    bw_mean=float(s["bw_mean"]),
                    bw_stddev=float(s.get("bw_stddev", 0.0)),
                    ops_max=float(s.get("ops_max", 0.0)),
                    ops_min=float(s.get("ops_min", 0.0)),
                    ops_mean=float(s.get("ops_mean", 0.0)),
                    ops_stddev=float(s.get("ops_stddev", 0.0)),
                    iterations=int(s.get("iterations", len(results))),
                    results=results,
                )
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise PersistenceError(f"malformed summary in knowledge entry: {exc}") from exc
    fs = data.get("filesystem")
    return Knowledge(
        benchmark=str(data["benchmark"]),
        command=str(data.get("command", "")),
        api=str(data.get("api", "")),
        test_file=str(data.get("test_file", "")),
        file_per_proc=bool(data.get("file_per_proc", False)),
        num_nodes=int(data.get("num_nodes", 0)),  # type: ignore[arg-type]
        num_tasks=int(data.get("num_tasks", 0)),  # type: ignore[arg-type]
        tasks_per_node=int(data.get("tasks_per_node", 0)),  # type: ignore[arg-type]
        start_time=float(data.get("start_time", 0.0)),  # type: ignore[arg-type]
        end_time=float(data.get("end_time", 0.0)),  # type: ignore[arg-type]
        parameters=dict(data.get("parameters", {})),  # type: ignore[arg-type]
        summaries=summaries,
        filesystem=FilesystemInfo(**fs) if isinstance(fs, dict) else None,
        system=dict(data["system"]) if isinstance(data.get("system"), dict) else None,
    )


def io500_to_dict(k: IO500Knowledge) -> dict[str, object]:
    """Serialize one IO500 knowledge object."""
    return {
        "type": "io500",
        "score_total": k.score_total,
        "score_bw": k.score_bw,
        "score_md": k.score_md,
        "num_nodes": k.num_nodes,
        "num_tasks": k.num_tasks,
        "timestamp": k.timestamp,
        "version": k.version,
        "testcases": [asdict(t) for t in k.testcases],
        "system": dict(k.system) if k.system else None,
    }


def io500_from_dict(data: dict[str, object]) -> IO500Knowledge:
    """Deserialize an IO500 knowledge object."""
    if data.get("type") != "io500":
        raise PersistenceError(f"not an io500 dict (type={data.get('type')!r})")
    try:
        return IO500Knowledge(
            score_total=float(data["score_total"]),  # type: ignore[arg-type]
            score_bw=float(data["score_bw"]),  # type: ignore[arg-type]
            score_md=float(data["score_md"]),  # type: ignore[arg-type]
            num_nodes=int(data.get("num_nodes", 0)),  # type: ignore[arg-type]
            num_tasks=int(data.get("num_tasks", 0)),  # type: ignore[arg-type]
            timestamp=float(data.get("timestamp", 0.0)),  # type: ignore[arg-type]
            version=str(data.get("version", "")),
            testcases=[IO500Testcase(**t) for t in data.get("testcases", [])],  # type: ignore[union-attr]
            system=dict(data["system"]) if isinstance(data.get("system"), dict) else None,
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise PersistenceError(f"malformed io500 entry: {exc}") from exc


def export_json(
    objects: list[Knowledge | IO500Knowledge], path: str | Path
) -> Path:
    """Export knowledge objects to a shareable JSON file."""
    payload = {
        "format": _FORMAT,
        "entries": [
            io500_to_dict(k) if isinstance(k, IO500Knowledge) else knowledge_to_dict(k)
            for k in objects
        ],
    }
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(payload, indent=2, sort_keys=True), encoding="utf-8")
    return out


def import_json(path: str | Path) -> list[Knowledge | IO500Knowledge]:
    """Import knowledge objects from a JSON file (manual entry path)."""
    p = Path(path)
    if not p.exists():
        raise PersistenceError(f"knowledge file not found: {p}")
    try:
        payload = json.loads(p.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise PersistenceError(f"invalid JSON in {p}: {exc}") from exc
    if payload.get("format") != _FORMAT:
        raise PersistenceError(
            f"{p} is not a {_FORMAT} file (format={payload.get('format')!r})"
        )
    out: list[Knowledge | IO500Knowledge] = []
    for entry in payload.get("entries", []):
        if entry.get("type") == "io500":
            out.append(io500_from_dict(entry))
        else:
            out.append(knowledge_from_dict(entry))
    return out


_CSV_COLUMNS = (
    "knowledge_id", "benchmark", "api", "command", "num_nodes", "num_tasks",
    "operation", "bw_max", "bw_min", "bw_mean", "bw_stddev",
    "ops_mean", "iterations",
)


def export_csv(objects: list[Knowledge], path: str | Path | None = None) -> str:
    """Export summary rows as CSV; optionally write to ``path``.

    One row per (knowledge object, operation) — the flat form §III
    mentions for simple persistence/sharing.
    """
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(_CSV_COLUMNS)
    for k in objects:
        for s in k.summaries:
            writer.writerow(
                [
                    k.knowledge_id if k.knowledge_id is not None else "",
                    k.benchmark, k.api, k.command, k.num_nodes, k.num_tasks,
                    s.operation, s.bw_max, s.bw_min, s.bw_mean, s.bw_stddev,
                    s.ops_mean, s.iterations,
                ]
            )
    text = buffer.getvalue()
    if path is not None:
        out = Path(path)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(text, encoding="utf-8")
    return text
