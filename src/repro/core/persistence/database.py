"""Database connection management (DB-API 2.0 over SQLite).

§V-C: knowledge can be stored "either directly as a local SQLite
database or by specifying a SQL connection URL remotely".  Both
spellings are accepted here — a plain filesystem path, ``:memory:``,
or a ``sqlite:///...`` URL (the "remote" flavour of the prototype; the
URL scheme is validated so pointing the tool at an unsupported engine
fails loudly instead of silently writing a local file).

:class:`KnowledgeDatabase` is the synchronous SQLite implementation of
the :class:`~repro.core.persistence.backend.PersistenceBackend`
protocol the repositories depend on.
"""

from __future__ import annotations

import sqlite3
from contextlib import contextmanager
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Iterator, Sequence

from repro.core.persistence.schema import create_schema
from repro.util.errors import PersistenceError

if TYPE_CHECKING:  # pragma: no cover - type-only import (avoids a cycle)
    from repro.core.metrics import MetricsRegistry

__all__ = ["resolve_database_target", "KnowledgeDatabase"]


def resolve_database_target(target: str | Path) -> str:
    """Normalise a path / URL into an sqlite3 connect target."""
    if isinstance(target, Path):
        return str(target)
    if target == ":memory:":
        return target
    if "://" in target:
        scheme, _, rest = target.partition("://")
        if scheme not in ("sqlite", "sqlite3"):
            raise PersistenceError(
                f"unsupported database URL scheme {scheme!r}; only sqlite:// URLs "
                "are supported by this prototype"
            )
        path = rest.lstrip("/")
        if not path:
            raise PersistenceError(f"database URL {target!r} has no path")
        return "/" + path if target.count("/") >= 3 else path
    return target


class KnowledgeDatabase:
    """An open knowledge database with the schema in place.

    Usable as a context manager; commits on clean exit, rolls back on
    error.  ``close()`` is idempotent, and using a closed database
    raises :class:`PersistenceError` rather than a raw driver error.
    """

    def __init__(
        self,
        target: str | Path = ":memory:",
        metrics: "MetricsRegistry | None" = None,
        check_same_thread: bool = True,
    ) -> None:
        self.metrics = metrics
        resolved = resolve_database_target(target)
        if resolved != ":memory:":
            try:
                Path(resolved).parent.mkdir(parents=True, exist_ok=True)
            except OSError as exc:
                raise PersistenceError(
                    f"cannot create database directory for {target!r}: {exc}"
                ) from exc
        try:
            # check_same_thread=False lets the knowledge service share one
            # connection per shard across its worker pool; the service
            # serialises access with a per-shard lock, which is the
            # discipline sqlite3 requires when the check is disabled.
            self.conn = sqlite3.connect(resolved, check_same_thread=check_same_thread)
            self.conn.row_factory = sqlite3.Row
            self.conn.execute("PRAGMA foreign_keys = ON")
            create_schema(self.conn)
        except sqlite3.Error as exc:
            raise PersistenceError(f"cannot open database {target!r}: {exc}") from exc
        self.target = resolved
        self._closed = False
        self._txn_depth = 0

    def __enter__(self) -> "KnowledgeDatabase":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if not self._closed:
            if exc_type is None:
                self.conn.commit()
            else:
                self.conn.rollback()
        self.close()

    def close(self) -> None:
        """Close the connection; safe to call more than once."""
        if self._closed:
            return
        self._closed = True
        self.conn.close()

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        return self._closed

    def _check_open(self) -> None:
        if self._closed:
            raise PersistenceError(f"database {self.target!r} is closed")

    def _count(self, sql: str, outcome: str) -> None:
        if self.metrics is not None:
            verb = sql.lstrip().split(None, 1)[0].lower() if sql.strip() else "?"
            self.metrics.counter(
                "persistence.db_statements_total", "statements run on the SQLite engine",
                verb=verb, outcome=outcome,
            ).inc()

    def execute(self, sql: str, params: tuple = ()) -> sqlite3.Cursor:
        """Run one statement, wrapping driver errors."""
        self._check_open()
        try:
            cursor = self.conn.execute(sql, params)
        except sqlite3.Error as exc:
            self._count(sql, "error")
            raise PersistenceError(f"database error on {sql.split()[0]}: {exc}") from exc
        self._count(sql, "ok")
        return cursor

    def executemany(self, sql: str, seq_of_params: Iterable[Sequence]) -> sqlite3.Cursor:
        """Run one statement over many parameter rows."""
        self._check_open()
        try:
            cursor = self.conn.executemany(sql, seq_of_params)
        except sqlite3.Error as exc:
            self._count(sql, "error")
            raise PersistenceError(f"database error on {sql.split()[0]}: {exc}") from exc
        self._count(sql, "ok")
        return cursor

    def commit(self) -> None:
        """Commit completed writes (deferred inside a :meth:`transaction`)."""
        self._check_open()
        if self._txn_depth:
            return
        try:
            self.conn.commit()
        except sqlite3.Error as exc:
            raise PersistenceError(f"database error on commit: {exc}") from exc

    def rollback(self) -> None:
        """Discard uncommitted writes."""
        self._check_open()
        try:
            self.conn.rollback()
        except sqlite3.Error as exc:
            raise PersistenceError(f"database error on rollback: {exc}") from exc

    @contextmanager
    def transaction(self) -> Iterator["KnowledgeDatabase"]:
        """Group writes into one atomic transaction.

        Inner ``commit()`` calls become no-ops until the outermost
        ``transaction()`` block exits cleanly; any exception rolls the
        whole batch back.  Nested use composes: only the outermost
        block touches the connection.
        """
        self._check_open()
        self._txn_depth += 1
        try:
            yield self
        except BaseException:
            self._txn_depth -= 1
            if self._txn_depth == 0 and not self._closed:
                self.rollback()
            raise
        else:
            self._txn_depth -= 1
            if self._txn_depth == 0:
                self.commit()

    def table_count(self, table: str) -> int:
        """Row count of one table (for tests and reports)."""
        if not table.isidentifier():
            raise PersistenceError(f"invalid table name {table!r}")
        return int(self.execute(f"SELECT COUNT(*) AS n FROM {table}").fetchone()["n"])
