"""The phase-pipeline engine — pluggable orchestration of the cycle.

The paper stresses that "further modules … can be integrated in the
future with minimal effort" (Fig. 4).  This module generalises that
promise from Phase V to the whole cycle: a revolution is a sequence of
:class:`Phase` objects held in an ordered :class:`PhaseRegistry`
(mirroring the use-case :class:`~repro.core.registry.ModuleRegistry`),
executed by :class:`PhasePipeline` over a shared :class:`CycleContext`.
Deployments insert, replace, or drop phases — a validation phase
between extraction and persistence, say — without touching the engine
or :class:`~repro.core.cycle.KnowledgeCycle`.

Every transition is observable: :class:`PhaseObserver` callbacks fire
on phase start/finish/error with wall time and artifact counts, so a
revolution is traceable end to end.  :class:`TimingObserver` and
:class:`LoggingObserver` are the built-in consumers.
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Iterator, Protocol, Sequence, runtime_checkable

from repro.core.knowledge import IO500Knowledge, Knowledge
from repro.util.errors import PipelineError

if TYPE_CHECKING:  # pragma: no cover - imports for type checkers only
    from repro.core.explorer.io500_viewer import IO500Viewer
    from repro.core.explorer.viewer import KnowledgeViewer
    from repro.core.persistence.backend import PersistenceBackend
    from repro.core.persistence.io500_repo import IO500Repository
    from repro.core.persistence.repository import KnowledgeRepository
    from repro.core.registry import ModuleRegistry
    from repro.iostack.stack import Testbed

__all__ = [
    "CycleResult",
    "CycleContext",
    "Phase",
    "PhaseRegistry",
    "PhaseObserver",
    "PhaseTiming",
    "TimingObserver",
    "LoggingObserver",
    "PhasePipeline",
]


@dataclass(slots=True)
class CycleResult:
    """Everything one revolution of the cycle produced."""

    knowledge: list[Knowledge] = field(default_factory=list)
    io500_knowledge: list[IO500Knowledge] = field(default_factory=list)
    knowledge_ids: list[int] = field(default_factory=list)
    iofh_ids: list[int] = field(default_factory=list)
    usage_results: dict[str, object] = field(default_factory=dict)
    analysis_report: str = ""

    @property
    def all_knowledge(self) -> list[Knowledge | IO500Knowledge]:
        """Benchmark and IO500 knowledge together."""
        return [*self.knowledge, *self.io500_knowledge]


@dataclass(slots=True)
class CycleContext:
    """Shared state one revolution's phases read and write.

    The engine never interprets these fields; each phase takes what it
    needs and leaves its products for downstream phases.  Custom phases
    can stash arbitrary extras in :attr:`artifacts`.
    """

    testbed: "Testbed"
    workspace: Path
    backend: "PersistenceBackend"
    repository: "KnowledgeRepository"
    io500_repository: "IO500Repository"
    modules: "ModuleRegistry"
    viewer: "KnowledgeViewer"
    io500_viewer: "IO500Viewer"
    jube_xml: str = ""
    benchmark: object | None = None
    extracted: list[Knowledge | IO500Knowledge] = field(default_factory=list)
    result: CycleResult = field(default_factory=CycleResult)
    artifacts: dict[str, object] = field(default_factory=dict)


@runtime_checkable
class Phase(Protocol):
    """One pluggable stage of a revolution.

    ``run`` mutates the context and returns the number of artifacts the
    phase produced (or ``None`` when counting makes no sense); the
    count is reported to observers.
    """

    name: str

    def run(self, context: CycleContext) -> int | None:  # pragma: no cover - protocol
        """Execute the phase over the shared context."""
        ...


class PhaseRegistry:
    """Ordered, named collection of phases.

    Mirrors :class:`~repro.core.registry.ModuleRegistry`, but order
    matters: phases execute in registration order, and ``before`` /
    ``after`` anchors position an insertion relative to an existing
    phase.
    """

    def __init__(self, phases: Iterable[Phase] = ()) -> None:
        self._phases: list[Phase] = []
        for phase in phases:
            self.register(phase)

    def _index(self, name: str) -> int:
        for i, phase in enumerate(self._phases):
            if phase.name == name:
                return i
        raise PipelineError(f"no phase {name!r} registered; registered: {self.names()}")

    def register(
        self, phase: Phase, *, before: str | None = None, after: str | None = None
    ) -> None:
        """Add a phase; names must be unique.

        With ``before``/``after`` (mutually exclusive) the phase is
        inserted relative to the named existing phase; otherwise it is
        appended.
        """
        if not getattr(phase, "name", ""):
            raise PipelineError(f"phase {phase!r} has no name")
        if phase.name in self.names():
            raise PipelineError(f"phase {phase.name!r} already registered")
        if before is not None and after is not None:
            raise PipelineError("register() takes before= or after=, not both")
        if before is not None:
            self._phases.insert(self._index(before), phase)
        elif after is not None:
            self._phases.insert(self._index(after) + 1, phase)
        else:
            self._phases.append(phase)

    def replace(self, name: str, phase: Phase) -> Phase:
        """Swap the named phase for another in place; returns the old one."""
        if not getattr(phase, "name", ""):
            raise PipelineError(f"phase {phase!r} has no name")
        i = self._index(name)
        if phase.name != name and phase.name in self.names():
            raise PipelineError(f"phase {phase.name!r} already registered")
        old, self._phases[i] = self._phases[i], phase
        return old

    def unregister(self, name: str) -> Phase:
        """Remove and return the named phase."""
        return self._phases.pop(self._index(name))

    def get(self, name: str) -> Phase:
        """Look up one phase by name."""
        return self._phases[self._index(name)]

    def names(self) -> list[str]:
        """Phase names in execution order."""
        return [phase.name for phase in self._phases]

    def __iter__(self) -> Iterator[Phase]:
        return iter(list(self._phases))

    def __len__(self) -> int:
        return len(self._phases)

    def __contains__(self, name: object) -> bool:
        return any(phase.name == name for phase in self._phases)


class PhaseObserver:
    """Callbacks fired around every phase of a revolution.

    Subclass and override what you need; the defaults are no-ops, so an
    observer only pays for what it watches.
    """

    def on_phase_start(self, phase: Phase, context: CycleContext) -> None:
        """A phase is about to run."""

    def on_phase_finish(
        self, phase: Phase, context: CycleContext, duration_s: float, artifacts: int
    ) -> None:
        """A phase completed; ``artifacts`` is its reported product count."""

    def on_phase_error(
        self, phase: Phase, context: CycleContext, duration_s: float, error: BaseException
    ) -> None:
        """A phase raised; the exception propagates after all observers fire."""


@dataclass(frozen=True, slots=True)
class PhaseTiming:
    """One observed phase execution."""

    phase: str
    duration_s: float
    artifacts: int
    error: str | None = None


class TimingObserver(PhaseObserver):
    """Records wall time and artifact count for every phase executed."""

    def __init__(self) -> None:
        self.timings: list[PhaseTiming] = []

    def on_phase_finish(
        self, phase: Phase, context: CycleContext, duration_s: float, artifacts: int
    ) -> None:
        """Record one completed phase."""
        self.timings.append(PhaseTiming(phase.name, duration_s, artifacts))

    def on_phase_error(
        self, phase: Phase, context: CycleContext, duration_s: float, error: BaseException
    ) -> None:
        """Record one failed phase with its exception."""
        self.timings.append(PhaseTiming(phase.name, duration_s, 0, error=repr(error)))

    @property
    def durations(self) -> dict[str, float]:
        """Phase name → total wall seconds across all observed revolutions."""
        out: dict[str, float] = {}
        for t in self.timings:
            out[t.phase] = out.get(t.phase, 0.0) + t.duration_s
        return out

    def reset(self) -> None:
        """Forget everything observed so far."""
        self.timings.clear()


class LoggingObserver(PhaseObserver):
    """Emits one log line per phase transition on ``repro.pipeline``."""

    def __init__(self, logger: logging.Logger | None = None) -> None:
        self.logger = logger or logging.getLogger("repro.pipeline")

    def on_phase_start(self, phase: Phase, context: CycleContext) -> None:
        """Log the phase start at DEBUG."""
        self.logger.debug("phase %s: start", phase.name)

    def on_phase_finish(
        self, phase: Phase, context: CycleContext, duration_s: float, artifacts: int
    ) -> None:
        """Log the completion, duration and artifact count at INFO."""
        self.logger.info(
            "phase %s: done in %.3fs (%d artifact(s))", phase.name, duration_s, artifacts
        )

    def on_phase_error(
        self, phase: Phase, context: CycleContext, duration_s: float, error: BaseException
    ) -> None:
        """Log the failure at ERROR."""
        self.logger.error("phase %s: failed after %.3fs: %s", phase.name, duration_s, error)


class PhasePipeline:
    """Executes the registered phases, in order, over one context."""

    def __init__(
        self, registry: PhaseRegistry, observers: Sequence[PhaseObserver] = ()
    ) -> None:
        if len(registry) == 0:
            raise PipelineError("cannot build a pipeline from an empty phase registry")
        self.registry = registry
        self.observers = list(observers)

    def run(self, context: CycleContext) -> CycleResult:
        """Run every phase over ``context``; returns ``context.result``.

        A phase exception aborts the revolution after the error
        observers have fired, leaving the context as the failed phase
        left it — partial artifacts stay inspectable.
        """
        for phase in self.registry:
            for observer in self.observers:
                observer.on_phase_start(phase, context)
            started = time.perf_counter()
            try:
                produced = phase.run(context)
            except BaseException as exc:
                elapsed = time.perf_counter() - started
                for observer in self.observers:
                    observer.on_phase_error(phase, context, elapsed, exc)
                raise
            elapsed = time.perf_counter() - started
            count = int(produced) if produced is not None else 0
            for observer in self.observers:
                observer.on_phase_finish(phase, context, elapsed, count)
        return context.result
